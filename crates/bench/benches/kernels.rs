//! Criterion micro-benchmarks of the compute kernels behind the FDW's job
//! cost model, plus the ablations DESIGN.md calls out:
//!
//! * rupture generation — Cholesky vs truncated Karhunen–Loève sampling;
//! * waveform synthesis — Rayon-parallel vs sequential across stations;
//! * distance-matrix construction (the A-phase bootstrap);
//! * NPY/MSEED artifact serialisation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fakequakes::distance::DistanceMatrices;
use fakequakes::geometry::FaultModel;
use fakequakes::greens::GfLibrary;
use fakequakes::noise::NoiseModel;
use fakequakes::rupture::{RuptureConfig, RuptureGenerator};
use fakequakes::stations::StationNetwork;
use fakequakes::stochastic::FieldMethod;
use fakequakes::waveform::{synthesize_all_stations, synthesize_all_stations_seq, WaveformConfig};
use fakequakes::{artifacts, npy};

fn bench_rupture(c: &mut Criterion) {
    let fault = FaultModel::chilean_subduction(24, 10).unwrap();
    let net = StationNetwork::chilean(2, 1).unwrap();
    let d = DistanceMatrices::compute(&fault, &net);
    let mut group = c.benchmark_group("rupture_generation");
    for (label, method) in [
        ("cholesky", FieldMethod::Cholesky),
        ("kl_64modes", FieldMethod::KarhunenLoeve { modes: 64 }),
    ] {
        let generator = RuptureGenerator::new(
            &fault,
            &d.subfault_to_subfault,
            RuptureConfig {
                method,
                ..Default::default()
            },
        )
        .unwrap();
        group.bench_function(BenchmarkId::new("draw", label), |b| {
            let mut id = 0u64;
            b.iter(|| {
                id += 1;
                black_box(generator.generate(7, id))
            });
        });
    }
    group.finish();
}

fn bench_factorization(c: &mut Criterion) {
    let fault = FaultModel::chilean_subduction(24, 10).unwrap();
    let net = StationNetwork::chilean(2, 1).unwrap();
    let d = DistanceMatrices::compute(&fault, &net);
    let mut group = c.benchmark_group("covariance_factorization");
    group.sample_size(10);
    group.bench_function("cholesky_240", |b| {
        b.iter(|| {
            RuptureGenerator::new(
                &fault,
                &d.subfault_to_subfault,
                RuptureConfig {
                    method: FieldMethod::Cholesky,
                    ..Default::default()
                },
            )
            .unwrap()
        });
    });
    group.bench_function("kl_64modes_240", |b| {
        b.iter(|| {
            RuptureGenerator::new(
                &fault,
                &d.subfault_to_subfault,
                RuptureConfig {
                    method: FieldMethod::KarhunenLoeve { modes: 64 },
                    ..Default::default()
                },
            )
            .unwrap()
        });
    });
    group.finish();
}

fn bench_waveform(c: &mut Criterion) {
    let fault = FaultModel::chilean_subduction(16, 8).unwrap();
    let net = StationNetwork::chilean(24, 1).unwrap();
    let d = DistanceMatrices::compute(&fault, &net);
    let gfs = GfLibrary::compute(&fault, &net).unwrap();
    let generator =
        RuptureGenerator::new(&fault, &d.subfault_to_subfault, RuptureConfig::default()).unwrap();
    let scenario = generator.generate(1, 0);
    let cfg = WaveformConfig {
        noise: NoiseModel::none(),
        ..Default::default()
    };
    let mut group = c.benchmark_group("waveform_synthesis_24sta");
    group.bench_function("rayon", |b| {
        b.iter(|| {
            synthesize_all_stations(
                &fault,
                &gfs,
                &d.station_to_subfault,
                black_box(&scenario),
                &cfg,
                1,
            )
            .unwrap()
        });
    });
    group.bench_function("sequential", |b| {
        b.iter(|| {
            synthesize_all_stations_seq(
                &fault,
                &gfs,
                &d.station_to_subfault,
                black_box(&scenario),
                &cfg,
                1,
            )
            .unwrap()
        });
    });
    group.finish();
}

fn bench_greens_methods(c: &mut Criterion) {
    use fakequakes::greens::GfMethod;
    let fault = FaultModel::chilean_subduction(16, 8).unwrap();
    let net = StationNetwork::chilean(12, 1).unwrap();
    let mut group = c.benchmark_group("gf_library_12sta_128sf");
    group.sample_size(20);
    group.bench_function("point_source", |b| {
        b.iter(|| {
            GfLibrary::compute_with_method(
                black_box(&fault),
                black_box(&net),
                GfMethod::PointSource,
            )
            .unwrap()
        });
    });
    group.bench_function("okada_rectangular", |b| {
        b.iter(|| {
            GfLibrary::compute_with_method(
                black_box(&fault),
                black_box(&net),
                GfMethod::OkadaRectangular,
            )
            .unwrap()
        });
    });
    group.finish();
}

fn bench_artifacts(c: &mut Criterion) {
    let fault = FaultModel::chilean_subduction(20, 10).unwrap();
    let net = StationNetwork::chilean(12, 1).unwrap();
    let d = DistanceMatrices::compute(&fault, &net);
    let gfs = GfLibrary::compute(&fault, &net).unwrap();
    let mut group = c.benchmark_group("artifact_io");
    group.bench_function("distance_matrix_compute", |b| {
        b.iter(|| DistanceMatrices::compute(black_box(&fault), black_box(&net)));
    });
    group.bench_function("npy_roundtrip", |b| {
        b.iter(|| {
            let bytes = npy::to_npy_bytes(&d.subfault_to_subfault);
            npy::from_npy_bytes(black_box(&bytes)).unwrap()
        });
    });
    group.bench_function("gf_mseed_roundtrip", |b| {
        b.iter(|| {
            let ms = artifacts::gf_library_to_mseed(&gfs);
            let bytes = ms.to_bytes().unwrap();
            fakequakes::mseed::MseedFile::from_bytes(black_box(&bytes)).unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    kernels,
    bench_rupture,
    bench_factorization,
    bench_waveform,
    bench_greens_methods,
    bench_artifacts
);
criterion_main!(kernels);
