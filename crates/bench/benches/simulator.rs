//! Criterion benchmarks of the simulation substrates: the DES event loop
//! driving an FDW DAGMan, and the per-second bursting replay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fakequakes::stations::ChileanInput;
use fdw_core::prelude::*;
use vdc_burst::prelude::*;

fn bench_des(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_fdw_run");
    group.sample_size(10);
    for quantity in [512u64, 2048, 8192] {
        let cfg = FdwConfig {
            n_waveforms: quantity,
            station_input: StationInput::Chilean(ChileanInput::Small),
            ..Default::default()
        };
        group.bench_function(BenchmarkId::new("waveforms", quantity), |b| {
            b.iter(|| run_fdw(black_box(&cfg), osg_cluster_config(), 1).unwrap());
        });
    }
    group.finish();
}

fn bench_burst_replay(c: &mut Criterion) {
    // Record one batch, then benchmark the replay loop alone.
    let cfg = FdwConfig {
        n_waveforms: 4_000,
        station_input: StationInput::Chilean(ChileanInput::Full),
        ..Default::default()
    };
    let out = run_fdw(&cfg, osg_cluster_config(), 1).unwrap();
    let input = BatchInput::from_report(&out.report).unwrap();
    let mut group = c.benchmark_group("burst_replay");
    group.sample_size(10);
    group.bench_function("control", |b| {
        b.iter(|| simulate(black_box(&input), &BurstPolicies::control()).unwrap());
    });
    group.bench_function("paper_sweep_probe5_q90", |b| {
        b.iter(|| simulate(black_box(&input), &BurstPolicies::paper_sweep(5, 90)).unwrap());
    });
    group.finish();
}

fn bench_single_machine(c: &mut Criterion) {
    let cfg = FdwConfig {
        n_waveforms: 4_096,
        ..Default::default()
    };
    c.bench_function("aws_baseline_4096", |b| {
        b.iter(|| aws_baseline(black_box(&cfg), 1));
    });
}

criterion_group!(
    simulators,
    bench_des,
    bench_burst_replay,
    bench_single_machine
);
criterion_main!(simulators);
