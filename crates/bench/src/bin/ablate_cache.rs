//! Ablation (DESIGN.md §4) — Stash/OSDF cache on vs off for the C Phase's
//! large `.mseed` delivery. The paper leans on the cache "to help expedite
//! the delivery time of the large, compressed .mseed files (possibly
//! exceeding 1GB)"; this quantifies what it buys.

#![forbid(unsafe_code)]
use fakequakes::stations::ChileanInput;
use fdw_bench::REPLICATION_SEEDS;
use fdw_core::prelude::*;

fn main() {
    println!("Ablation — Stash cache on/off (4,000 full-input waveforms, 3 reps)\n");
    let base = FdwConfig {
        n_waveforms: 4_000,
        station_input: StationInput::Chilean(ChileanInput::Full),
        ..Default::default()
    };
    println!(
        "{:<10} {:>14} {:>18} {:>14}",
        "cache", "runtime (h)", "throughput (JPM)", "hit rate"
    );
    for enabled in [true, false] {
        let mut cluster = osg_cluster_config();
        cluster.cache_enabled = enabled;
        let mut runtimes = Vec::new();
        let mut thpts = Vec::new();
        let mut hits = Vec::new();
        for &seed in &REPLICATION_SEEDS {
            let out = run_fdw(&base, cluster.clone(), seed).expect("run failed");
            runtimes.push(out.stats[0].runtime_hours());
            thpts.push(out.stats[0].throughput_jpm());
            hits.push(out.report.cache_hit_rate);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "{:<10} {:>14.2} {:>18.2} {:>13.1}%",
            if enabled { "on" } else { "off" },
            mean(&runtimes),
            mean(&thpts),
            mean(&hits) * 100.0
        );
    }
    println!("\nExpected: disabling the cache forces every C-phase job to pull the");
    println!("~1.1 GB GF bundle and 928 MB image from the origin, inflating stage-in");
    println!("time and total runtime.");
}
