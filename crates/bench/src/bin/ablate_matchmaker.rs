//! Ablation (DESIGN.md §4) — matchmaker sensitivity: negotiation-cycle
//! period and pool contention level. Quantifies how much of the FDW's
//! wait-time behaviour comes from matchmaking cadence vs raw capacity.

#![forbid(unsafe_code)]
use fakequakes::stations::ChileanInput;
use fdw_core::prelude::*;

fn main() {
    println!("Ablation — negotiation period and available capacity (4,000 full-input waveforms)\n");
    let base = FdwConfig {
        n_waveforms: 4_000,
        station_input: StationInput::Chilean(ChileanInput::Full),
        ..Default::default()
    };
    println!(
        "{:<26} {:>12} {:>16} {:>16}",
        "configuration", "runtime (h)", "throughput", "mean wait (min)"
    );
    let run = |label: &str, mutate: &dyn Fn(&mut htcsim::cluster::ClusterConfig)| {
        let mut cluster = osg_cluster_config();
        mutate(&mut cluster);
        let out = run_fdw(&base, cluster, 1).expect("run failed");
        let s = &out.stats[0];
        println!(
            "{:<26} {:>12.2} {:>16.2} {:>16.1}",
            label,
            s.runtime_hours(),
            s.throughput_jpm(),
            dagman::monitor::DagmanStats::mean_mins(&s.wait_secs).unwrap_or(0.0)
        );
    };
    run("baseline (60 s cycle)", &|_| {});
    run("fast negotiation (15 s)", &|c| {
        c.pool.negotiation_period_s = 15
    });
    run("slow negotiation (300 s)", &|c| {
        c.pool.negotiation_period_s = 300
    });
    run("calm pool (avail 0.8)", &|c| {
        c.pool.avail_mean = 0.8;
        c.pool.avail_sigma = 0.05;
    });
    run("congested pool (avail 0.3)", &|c| {
        c.pool.avail_mean = 0.3;
        c.pool.avail_sigma = 0.18;
    });
    println!("\nExpected: cadence matters little next to available capacity — the");
    println!("paper's wait-time tails are a shared-pool phenomenon, not a scheduler one.");
}
