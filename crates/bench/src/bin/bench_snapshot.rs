//! Perf snapshot harness: times each optimised compute kernel against its
//! retained baseline **in the same process and run**, then writes the
//! results as `BENCH_kernels.json` (median ns per kernel, machine info,
//! git revision).
//!
//! The committed snapshot is the evidence for the PR-level acceptance
//! criteria (≥5× on `symmetric_eigen` at n = 240, ≥2× on the end-to-end
//! rupture draw with factor recycling); CI re-runs it at reduced scale
//! under `FDW_SMOKE=1` to keep the baseline/optimised pairs honest.
//!
//! Output path: `BENCH_kernels.json` in the working directory, or
//! `$FDW_BENCH_OUT` when set. Regenerate with
//! `cargo run --release -p fdw-bench --bin bench_snapshot`.

#![forbid(unsafe_code)]
use std::hint::black_box;
use std::time::{Duration, Instant};

use fakequakes::distance::DistanceMatrices;
use fakequakes::geometry::FaultModel;
use fakequakes::rupture::{RuptureConfig, RuptureGenerator};
use fakequakes::stations::StationNetwork;
use fakequakes::stochastic::{assemble_covariance, assemble_covariance_seq, FactorCache};
use fakequakes::vonkarman::VonKarman;

/// One timed baseline-vs-optimised pair.
struct KernelRow {
    name: &'static str,
    n: usize,
    baseline: &'static str,
    baseline_median_ns: u64,
    baseline_iters: usize,
    optimized: &'static str,
    optimized_median_ns: u64,
    optimized_iters: usize,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.baseline_median_ns as f64 / self.optimized_median_ns.max(1) as f64
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":\"{}\",\"n\":{},",
                "\"baseline\":\"{}\",\"baseline_median_ns\":{},\"baseline_iters\":{},",
                "\"optimized\":\"{}\",\"optimized_median_ns\":{},\"optimized_iters\":{},",
                "\"speedup\":{:.3}}}"
            ),
            self.name,
            self.n,
            self.baseline,
            self.baseline_median_ns,
            self.baseline_iters,
            self.optimized,
            self.optimized_median_ns,
            self.optimized_iters,
            self.speedup(),
        )
    }
}

/// Median wall-clock nanoseconds over repeated calls: at least
/// `min_iters` iterations, continuing until `budget` elapses (capped at
/// 1000 iterations so fast kernels terminate).
fn median_ns(min_iters: usize, budget: Duration, mut f: impl FnMut()) -> (u64, usize) {
    let mut samples = Vec::new();
    let start = Instant::now();
    loop {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as u64);
        if (samples.len() >= min_iters && start.elapsed() >= budget) || samples.len() >= 1000 {
            break;
        }
    }
    samples.sort_unstable();
    (samples[samples.len() / 2], samples.len())
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

fn main() {
    let smoke = fdw_bench::smoke();
    // Full scale matches the acceptance criterion (24×10 ⇒ n = 240);
    // smoke keeps the same pairs honest at CI-friendly size.
    let (nx, nd) = if smoke { (12, 5) } else { (24, 10) };
    let budget = if smoke {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(300)
    };

    let fault = FaultModel::chilean_subduction(nx, nd).expect("fault mesh");
    let net = StationNetwork::chilean(8, 1).expect("station network");
    let n = fault.len();
    let dists = DistanceMatrices::compute(&fault, &net);
    let kernel = VonKarman::default();
    let cov = assemble_covariance(&dists.subfault_to_subfault, &kernel);
    let mut rows = Vec::new();

    eprintln!("bench_snapshot: n = {n} ({nx}×{nd} mesh), smoke = {smoke}");

    // 1. Symmetric eigensolver: classical Jacobi vs Householder+QL.
    let (b_ns, b_it) = median_ns(3, budget, || {
        black_box(cov.jacobi_eigen_reference(30).unwrap());
    });
    let (o_ns, o_it) = median_ns(3, budget, || {
        black_box(cov.symmetric_eigen(30).unwrap());
    });
    rows.push(KernelRow {
        name: "symmetric_eigen",
        n,
        baseline: "jacobi_eigen_reference",
        baseline_median_ns: b_ns,
        baseline_iters: b_it,
        optimized: "symmetric_eigen",
        optimized_median_ns: o_ns,
        optimized_iters: o_it,
    });

    // 2. Truncated KL eigensolver vs the full decomposition it replaces.
    let k = (n / 4).max(1);
    let (o_ns, o_it) = median_ns(3, budget, || {
        black_box(cov.symmetric_eigen_topk(k, 30).unwrap());
    });
    rows.push(KernelRow {
        name: "symmetric_eigen_topk",
        n,
        baseline: "symmetric_eigen",
        baseline_median_ns: rows[0].optimized_median_ns,
        baseline_iters: rows[0].optimized_iters,
        optimized: "symmetric_eigen_topk",
        optimized_median_ns: o_ns,
        optimized_iters: o_it,
    });

    // 3. Cholesky: row-ordered reference vs column-panel parallel.
    let (b_ns, b_it) = median_ns(5, budget, || {
        black_box(cov.cholesky_reference().unwrap());
    });
    let (o_ns, o_it) = median_ns(5, budget, || {
        black_box(cov.cholesky().unwrap());
    });
    rows.push(KernelRow {
        name: "cholesky",
        n,
        baseline: "cholesky_reference",
        baseline_median_ns: b_ns,
        baseline_iters: b_it,
        optimized: "cholesky",
        optimized_median_ns: o_ns,
        optimized_iters: o_it,
    });

    // 4. Covariance assembly: full-matrix sequential vs symmetric-half
    //    parallel (halves the expensive Bessel-kernel evaluations).
    let (b_ns, b_it) = median_ns(3, budget, || {
        black_box(assemble_covariance_seq(
            &dists.subfault_to_subfault,
            &kernel,
        ));
    });
    let (o_ns, o_it) = median_ns(3, budget, || {
        black_box(assemble_covariance(&dists.subfault_to_subfault, &kernel));
    });
    rows.push(KernelRow {
        name: "assemble_covariance",
        n,
        baseline: "assemble_covariance_seq",
        baseline_median_ns: b_ns,
        baseline_iters: b_it,
        optimized: "assemble_covariance",
        optimized_median_ns: o_ns,
        optimized_iters: o_it,
    });

    // 5. Distance-matrix construction (A-phase bootstrap).
    let (b_ns, b_it) = median_ns(3, budget, || {
        black_box(DistanceMatrices::compute_seq(&fault, &net));
    });
    let (o_ns, o_it) = median_ns(3, budget, || {
        black_box(DistanceMatrices::compute(&fault, &net));
    });
    rows.push(KernelRow {
        name: "distance_matrices",
        n,
        baseline: "compute_seq",
        baseline_median_ns: b_ns,
        baseline_iters: b_it,
        optimized: "compute",
        optimized_median_ns: o_ns,
        optimized_iters: o_it,
    });

    // 6. End-to-end rupture draw: build a generator and draw one scenario,
    //    fresh factorisation vs recycled factor from a warmed cache.
    let rcfg = RuptureConfig::default();
    let cache = FactorCache::new();
    RuptureGenerator::new_cached(&fault, &dists.subfault_to_subfault, rcfg.clone(), &cache)
        .expect("warm factor cache");
    let (b_ns, b_it) = median_ns(3, budget, || {
        let g = RuptureGenerator::new(&fault, &dists.subfault_to_subfault, rcfg.clone()).unwrap();
        black_box(g.generate(7, 1));
    });
    let (o_ns, o_it) = median_ns(3, budget, || {
        let g =
            RuptureGenerator::new_cached(&fault, &dists.subfault_to_subfault, rcfg.clone(), &cache)
                .unwrap();
        black_box(g.generate(7, 1));
    });
    rows.push(KernelRow {
        name: "rupture_draw_end_to_end",
        n,
        baseline: "fresh_factorization",
        baseline_median_ns: b_ns,
        baseline_iters: b_it,
        optimized: "recycled_factor",
        optimized_median_ns: o_ns,
        optimized_iters: o_it,
    });

    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let stats = cache.stats();
    let doc = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"fdw-bench-kernels-v1\",\n",
            "  \"git_rev\": \"{}\",\n",
            "  \"smoke\": {},\n",
            "  \"machine\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {}}},\n",
            "  \"mesh\": {{\"nx\": {}, \"nd\": {}, \"n_subfaults\": {}}},\n",
            "  \"factor_cache\": {{\"hits\": {}, \"misses\": {}}},\n",
            "  \"kernels\": [\n    {}\n  ]\n",
            "}}\n"
        ),
        git_rev(),
        smoke,
        std::env::consts::OS,
        std::env::consts::ARCH,
        cpus,
        nx,
        nd,
        n,
        stats.hits,
        stats.misses,
        rows.iter()
            .map(KernelRow::to_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    fdw_obs::json::validate(&doc).expect("snapshot JSON must parse");

    for r in &rows {
        eprintln!(
            "  {:<26} n={:<4} {:>12} ns -> {:>12} ns  ({:.2}x)",
            r.name,
            r.n,
            r.baseline_median_ns,
            r.optimized_median_ns,
            r.speedup()
        );
    }

    let out = std::env::var("FDW_BENCH_OUT").unwrap_or_else(|_| "BENCH_kernels.json".into());
    std::fs::write(&out, &doc).expect("write snapshot");
    println!("wrote {out}");
}
