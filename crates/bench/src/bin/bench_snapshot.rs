//! Perf snapshot harness: times each optimised compute kernel against its
//! retained baseline **in the same process and run**, then writes the
//! results as `BENCH_kernels.json` (median ns per kernel, machine info,
//! git revision).
//!
//! Schema v2 additions over v1:
//!
//! * a **measurement floor** per row — every median runs for at least
//!   `floor_ms` of wall clock (and `min_iters` calls), both recorded in
//!   the JSON so a reader can judge how settled the median is;
//! * **multi-scale rows** for the mesh-bound kernels (cholesky,
//!   covariance assembly, matmul, distances) at n = 240/480/960 plus a
//!   log-log **scaling exponent** fit per kernel;
//! * a **1000-station** Green's-function row (station-batched synthesis
//!   vs the per-pair reference loop);
//! * **bitwise oracle gates**: every optimised kernel is compared against
//!   its scalar/sequential twin in-process and the run aborts on any
//!   mismatch;
//! * **FDW_THREADS invariance gates**: the harness re-executes itself as
//!   a child under `FDW_THREADS ∈ {1, 2, 8}` and asserts the kernel
//!   digests agree across thread counts;
//! * **flop-rate gauges** routed through the fdw-obs metrics registry.
//!
//! The committed snapshot is the evidence for the PR-level acceptance
//! criteria; CI re-runs it at reduced scale under `FDW_SMOKE=1` and
//! ratchets the recorded speedups (`scripts/ci.sh`).
//!
//! Output path: `BENCH_kernels.json` in the working directory, or
//! `$FDW_BENCH_OUT` when set. Regenerate with
//! `cargo run --release -p fdw-bench --bin bench_snapshot`.

#![forbid(unsafe_code)]
use std::hint::black_box;
use std::time::{Duration, Instant};

use fakequakes::distance::DistanceMatrices;
use fakequakes::geometry::FaultModel;
use fakequakes::greens::{GfLibrary, GfMethod};
use fakequakes::linalg::Matrix;
use fakequakes::rupture::{RuptureConfig, RuptureGenerator};
use fakequakes::stations::StationNetwork;
use fakequakes::stochastic::{
    assemble_covariance, assemble_covariance_reference_libm, assemble_covariance_seq, FactorCache,
};
use fakequakes::vonkarman::VonKarman;

/// One timed baseline-vs-optimised pair.
struct KernelRow {
    name: &'static str,
    n: usize,
    baseline: &'static str,
    baseline_median_ns: u64,
    baseline_iters: usize,
    optimized: &'static str,
    optimized_median_ns: u64,
    optimized_iters: usize,
    floor_ms: u64,
    min_iters: usize,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.baseline_median_ns as f64 / self.optimized_median_ns.max(1) as f64
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":\"{}\",\"n\":{},",
                "\"baseline\":\"{}\",\"baseline_median_ns\":{},\"baseline_iters\":{},",
                "\"optimized\":\"{}\",\"optimized_median_ns\":{},\"optimized_iters\":{},",
                "\"floor_ms\":{},\"min_iters\":{},",
                "\"speedup\":{:.3}}}"
            ),
            self.name,
            self.n,
            self.baseline,
            self.baseline_median_ns,
            self.baseline_iters,
            self.optimized,
            self.optimized_median_ns,
            self.optimized_iters,
            self.floor_ms,
            self.min_iters,
            self.speedup(),
        )
    }
}

/// Median wall-clock nanoseconds over repeated calls: at least
/// `min_iters` iterations, continuing until the `floor` of wall time has
/// elapsed (capped at 1000 iterations so fast kernels terminate).
fn median_ns(min_iters: usize, floor: Duration, mut f: impl FnMut()) -> (u64, usize) {
    let mut samples = Vec::new();
    let start = Instant::now();
    loop {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as u64);
        if (samples.len() >= min_iters && start.elapsed() >= floor) || samples.len() >= 1000 {
            break;
        }
    }
    samples.sort_unstable();
    (samples[samples.len() / 2], samples.len())
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// FNV-1a fold of one word (same constants as the DES engine digests).
fn fold(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x0000_0100_0000_01b3)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fold_slice(mut h: u64, xs: &[f64]) -> u64 {
    for x in xs {
        h = fold(h, x.to_bits());
    }
    h
}

/// Deterministic digest over every laned kernel's output at the given
/// mesh scale. Children re-executed under different `FDW_THREADS` print
/// this; the parent asserts the values agree.
fn kernel_digest(nx: usize, nd: usize) -> u64 {
    let fault = FaultModel::chilean_subduction(nx, nd).expect("fault mesh");
    let net = StationNetwork::chilean(8, 1).expect("station network");
    let dists = DistanceMatrices::compute(&fault, &net);
    let kernel = VonKarman::default();
    let cov = assemble_covariance(&dists.subfault_to_subfault, &kernel);
    let chol = cov.cholesky().expect("spd covariance");
    let n = fault.len();
    let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.1 - 0.5);
    let prod = a.matmul(&cov).expect("matmul");
    let v: Vec<f64> = (0..n)
        .map(|i| ((i * 13) % 17) as f64 * 0.25 - 2.0)
        .collect();
    let mv = cov.matvec(&v);
    let gfs = GfLibrary::compute(&fault, &net).expect("gf library");
    let mut h = FNV_OFFSET;
    h = fold_slice(h, dists.subfault_to_subfault.as_slice());
    h = fold_slice(h, dists.station_to_subfault.as_slice());
    h = fold_slice(h, cov.as_slice());
    h = fold_slice(h, chol.as_slice());
    h = fold_slice(h, prod.as_slice());
    h = fold_slice(h, &mv);
    for s in gfs.stations() {
        for r in &s.responses {
            h = fold(h, r.e.to_bits());
            h = fold(h, r.n.to_bits());
            h = fold(h, r.u.to_bits());
        }
    }
    h
}

/// Every optimised kernel against its scalar/sequential oracle, bitwise.
/// Panics (aborting the snapshot) on the first mismatch.
fn assert_oracles_bitwise(
    fault: &FaultModel,
    net: &StationNetwork,
    dists: &DistanceMatrices,
    kernel: &VonKarman,
    cov: &Matrix,
) {
    let seq = DistanceMatrices::compute_seq(fault, net);
    assert_eq!(
        dists.subfault_to_subfault.as_slice(),
        seq.subfault_to_subfault.as_slice(),
        "distance matrix: parallel != sequential"
    );
    assert_eq!(
        dists.station_to_subfault.as_slice(),
        seq.station_to_subfault.as_slice(),
        "station distances: parallel != sequential"
    );
    let cov_seq = assemble_covariance_seq(&dists.subfault_to_subfault, kernel);
    assert_eq!(
        cov.as_slice(),
        cov_seq.as_slice(),
        "covariance: laned != scalar oracle"
    );
    assert_eq!(
        cov.cholesky().unwrap().as_slice(),
        cov.cholesky_reference().unwrap().as_slice(),
        "cholesky: blocked != reference"
    );
    let n = fault.len();
    let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.1 - 0.5);
    assert_eq!(
        a.matmul(cov).unwrap().as_slice(),
        a.matmul_reference(cov).unwrap().as_slice(),
        "matmul: panel-blocked != reference"
    );
    let v: Vec<f64> = (0..n)
        .map(|i| ((i * 13) % 17) as f64 * 0.25 - 2.0)
        .collect();
    assert_eq!(
        cov.matvec(&v),
        cov.matvec_reference(&v),
        "matvec: laned != reference"
    );
    let hoisted = GfLibrary::compute(fault, net).unwrap();
    let reference = GfLibrary::compute_reference(fault, net, GfMethod::PointSource).unwrap();
    for (a, b) in hoisted.stations().iter().zip(reference.stations()) {
        assert_eq!(a.responses, b.responses, "greens: hoisted != per-pair");
    }
    eprintln!("  oracles: all kernels bitwise-equal to their references");
}

/// Re-execute this binary under each `FDW_THREADS` setting and collect
/// the kernel digest each child prints. Returns (digests, invariant?).
fn thread_invariance_digests(smoke: bool) -> (Vec<(usize, u64)>, bool) {
    let exe = std::env::current_exe().expect("current_exe");
    let mut out = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut cmd = std::process::Command::new(&exe);
        // FDW_THREADS is the suite-level knob; it maps onto
        // RAYON_NUM_THREADS, which rayon reads once at pool init — hence
        // child processes rather than in-process pool juggling.
        cmd.env("FDW_BENCH_CHILD", "digest")
            .env("FDW_THREADS", threads.to_string())
            .env("RAYON_NUM_THREADS", threads.to_string());
        if smoke {
            cmd.env("FDW_SMOKE", "1");
        }
        let o = cmd.output().expect("spawn digest child");
        assert!(
            o.status.success(),
            "digest child (FDW_THREADS={threads}) failed: {}",
            String::from_utf8_lossy(&o.stderr)
        );
        let text = String::from_utf8_lossy(&o.stdout);
        let digest = text
            .lines()
            .find_map(|l| l.strip_prefix("digest="))
            .and_then(|d| u64::from_str_radix(d.trim(), 16).ok())
            .expect("child digest line");
        out.push((threads, digest));
    }
    let invariant = out.iter().all(|(_, d)| *d == out[0].1);
    (out, invariant)
}

/// Least-squares slope of log(median_ns) vs log(n) — the empirical
/// scaling exponent of a kernel across mesh sizes.
fn scaling_exponent(points: &[(usize, u64)]) -> f64 {
    let k = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(n, ns) in points {
        let x = (n as f64).ln();
        let y = (ns as f64).ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    (k * sxy - sx * sy) / (k * sxx - sx * sx)
}

/// Timed rows for the mesh-bound kernels at one mesh scale.
#[allow(clippy::too_many_arguments)]
fn scale_rows(
    nx: usize,
    nd: usize,
    net: &StationNetwork,
    min_iters: usize,
    floor: Duration,
    rows: &mut Vec<KernelRow>,
) {
    let fault = FaultModel::chilean_subduction(nx, nd).expect("fault mesh");
    let n = fault.len();
    let kernel = VonKarman::default();
    let dists = DistanceMatrices::compute(&fault, net);
    let cov = assemble_covariance(&dists.subfault_to_subfault, &kernel);
    let floor_ms = floor.as_millis() as u64;

    let (b_ns, b_it) = median_ns(min_iters, floor, || {
        black_box(cov.cholesky_reference().unwrap());
    });
    let (o_ns, o_it) = median_ns(min_iters, floor, || {
        black_box(cov.cholesky().unwrap());
    });
    rows.push(KernelRow {
        name: "cholesky",
        n,
        baseline: "cholesky_reference",
        baseline_median_ns: b_ns,
        baseline_iters: b_it,
        optimized: "cholesky",
        optimized_median_ns: o_ns,
        optimized_iters: o_it,
        floor_ms,
        min_iters,
    });

    let (b_ns, b_it) = median_ns(min_iters, floor, || {
        black_box(assemble_covariance_reference_libm(
            &dists.subfault_to_subfault,
            &kernel,
        ));
    });
    let (o_ns, o_it) = median_ns(min_iters, floor, || {
        black_box(assemble_covariance(&dists.subfault_to_subfault, &kernel));
    });
    rows.push(KernelRow {
        name: "assemble_covariance",
        n,
        baseline: "assemble_covariance_reference_libm",
        baseline_median_ns: b_ns,
        baseline_iters: b_it,
        optimized: "assemble_covariance",
        optimized_median_ns: o_ns,
        optimized_iters: o_it,
        floor_ms,
        min_iters,
    });

    let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.1 - 0.5);
    let b = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 13) % 7) as f64 * 0.2 - 0.6);
    let (b_ns, b_it) = median_ns(min_iters, floor, || {
        black_box(a.matmul_reference(&b).unwrap());
    });
    let (o_ns, o_it) = median_ns(min_iters, floor, || {
        black_box(a.matmul(&b).unwrap());
    });
    rows.push(KernelRow {
        name: "matmul",
        n,
        baseline: "matmul_reference",
        baseline_median_ns: b_ns,
        baseline_iters: b_it,
        optimized: "matmul",
        optimized_median_ns: o_ns,
        optimized_iters: o_it,
        floor_ms,
        min_iters,
    });

    // Baseline is the frozen per-pair trig path: `compute_seq` shares the
    // hoisted UnitEcef kernel (it must stay the bitwise oracle of the
    // parallel path), so timing against it would only measure fan-out
    // overhead, not the trig hoist.
    let (b_ns, b_it) = median_ns(min_iters, floor, || {
        black_box(DistanceMatrices::compute_reference_trig(&fault, net));
    });
    let (o_ns, o_it) = median_ns(min_iters, floor, || {
        black_box(DistanceMatrices::compute(&fault, net));
    });
    rows.push(KernelRow {
        name: "distance_matrices",
        n,
        baseline: "compute_reference_trig",
        baseline_median_ns: b_ns,
        baseline_iters: b_it,
        optimized: "compute",
        optimized_median_ns: o_ns,
        optimized_iters: o_it,
        floor_ms,
        min_iters,
    });
}

fn main() {
    let smoke = fdw_bench::smoke();

    // Child mode: print the kernel digest for the parent's FDW_THREADS
    // invariance gate and exit. The mesh matches the parent's primary
    // scale so the digest covers the same code paths it times.
    if std::env::var("FDW_BENCH_CHILD").is_ok() {
        let (nx, nd) = if smoke { (12, 5) } else { (24, 10) };
        println!("digest={:016x}", kernel_digest(nx, nd));
        return;
    }

    // Full scale matches the acceptance criterion (24×10 ⇒ n = 240);
    // smoke keeps the same pairs honest at CI-friendly size.
    let (nx, nd) = if smoke { (12, 5) } else { (24, 10) };
    let floor = if smoke {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(300)
    };
    let floor_ms = floor.as_millis() as u64;

    let fault = FaultModel::chilean_subduction(nx, nd).expect("fault mesh");
    let net = StationNetwork::chilean(8, 1).expect("station network");
    let n = fault.len();
    let dists = DistanceMatrices::compute(&fault, &net);
    let kernel = VonKarman::default();
    let cov = assemble_covariance(&dists.subfault_to_subfault, &kernel);
    let mut rows = Vec::new();

    eprintln!("bench_snapshot: n = {n} ({nx}×{nd} mesh), smoke = {smoke}");

    // Gate 1: bitwise oracles, in this very process.
    assert_oracles_bitwise(&fault, &net, &dists, &kernel, &cov);

    // Gate 2: digests under FDW_THREADS ∈ {1, 2, 8} must agree.
    let (digests, invariant) = thread_invariance_digests(smoke);
    for (t, d) in &digests {
        eprintln!("  FDW_THREADS={t}: digest {d:016x}");
    }
    assert!(invariant, "kernel digests differ across FDW_THREADS");

    // 1. Symmetric eigensolver: classical Jacobi vs Householder+QL.
    let (b_ns, b_it) = median_ns(3, floor, || {
        black_box(cov.jacobi_eigen_reference(30).unwrap());
    });
    let (o_ns, o_it) = median_ns(3, floor, || {
        black_box(cov.symmetric_eigen(30).unwrap());
    });
    rows.push(KernelRow {
        name: "symmetric_eigen",
        n,
        baseline: "jacobi_eigen_reference",
        baseline_median_ns: b_ns,
        baseline_iters: b_it,
        optimized: "symmetric_eigen",
        optimized_median_ns: o_ns,
        optimized_iters: o_it,
        floor_ms,
        min_iters: 3,
    });

    // 2. Truncated KL eigensolver vs the full decomposition it replaces.
    let k = (n / 4).max(1);
    let (o_ns, o_it) = median_ns(3, floor, || {
        black_box(cov.symmetric_eigen_topk(k, 30).unwrap());
    });
    rows.push(KernelRow {
        name: "symmetric_eigen_topk",
        n,
        baseline: "symmetric_eigen",
        baseline_median_ns: rows[0].optimized_median_ns,
        baseline_iters: rows[0].optimized_iters,
        optimized: "symmetric_eigen_topk",
        optimized_median_ns: o_ns,
        optimized_iters: o_it,
        floor_ms,
        min_iters: 3,
    });

    // 3–6. Mesh-bound kernels at the primary scale.
    scale_rows(nx, nd, &net, 3, floor, &mut rows);

    // 7. End-to-end rupture draw: build a generator and draw one scenario,
    //    fresh factorisation vs recycled factor from a warmed cache.
    let rcfg = RuptureConfig::default();
    let cache = FactorCache::new();
    RuptureGenerator::new_cached(&fault, &dists.subfault_to_subfault, rcfg.clone(), &cache)
        .expect("warm factor cache");
    let (b_ns, b_it) = median_ns(3, floor, || {
        let g = RuptureGenerator::new(&fault, &dists.subfault_to_subfault, rcfg.clone()).unwrap();
        black_box(g.generate(7, 1));
    });
    let (o_ns, o_it) = median_ns(3, floor, || {
        let g =
            RuptureGenerator::new_cached(&fault, &dists.subfault_to_subfault, rcfg.clone(), &cache)
                .unwrap();
        black_box(g.generate(7, 1));
    });
    rows.push(KernelRow {
        name: "rupture_draw_end_to_end",
        n,
        baseline: "fresh_factorization",
        baseline_median_ns: b_ns,
        baseline_iters: b_it,
        optimized: "recycled_factor",
        optimized_median_ns: o_ns,
        optimized_iters: o_it,
        floor_ms,
        min_iters: 3,
    });

    // 8. Station-batched Green's functions on a large network: hoisted
    //    per-subfault geometry vs the per-pair reference loop.
    let big_net = StationNetwork::chilean(if smoke { 50 } else { 1000 }, 1).expect("big network");
    let (b_ns, b_it) = median_ns(2, floor, || {
        black_box(GfLibrary::compute_reference(&fault, &big_net, GfMethod::PointSource).unwrap());
    });
    let (o_ns, o_it) = median_ns(2, floor, || {
        black_box(GfLibrary::compute(&fault, &big_net).unwrap());
    });
    rows.push(KernelRow {
        name: "gf_point_source_big_network",
        n: big_net.len(),
        baseline: "compute_reference",
        baseline_median_ns: b_ns,
        baseline_iters: b_it,
        optimized: "compute",
        optimized_median_ns: o_ns,
        optimized_iters: o_it,
        floor_ms,
        min_iters: 2,
    });

    // Multi-scale rows + scaling exponents (full mode only — the 4×/16×
    // meshes are too heavy for CI smoke).
    let scale_meshes: &[(usize, usize)] = if smoke { &[] } else { &[(24, 20), (48, 20)] };
    let scale_start = rows.len();
    for &(sx, sd) in scale_meshes {
        eprintln!("  scaling mesh {sx}×{sd} (n = {})", sx * sd);
        scale_rows(sx, sd, &net, 2, floor, &mut rows);
    }
    let mut scaling = Vec::new();
    if !scale_meshes.is_empty() {
        for name in [
            "cholesky",
            "assemble_covariance",
            "matmul",
            "distance_matrices",
        ] {
            let mut points: Vec<(usize, u64)> = rows
                .iter()
                .filter(|r| r.name == name)
                .map(|r| (r.n, r.optimized_median_ns))
                .collect();
            points.sort_unstable();
            let exponent = scaling_exponent(&points);
            let pts_json = points
                .iter()
                .map(|(pn, ns)| format!("[{pn},{ns}]"))
                .collect::<Vec<_>>()
                .join(",");
            scaling.push(format!(
                "{{\"name\":\"{name}\",\"points\":[{pts_json}],\"exponent\":{exponent:.3}}}"
            ));
        }
    }
    let _ = scale_start;

    // Flop-rate gauges through the fdw-obs registry: set from the timed
    // medians, then read back for the snapshot so the JSON reflects what
    // an observer subscribing to the registry would see.
    let obs = fdw_obs::Obs::metrics_only();
    for r in &rows {
        let flops = match r.name {
            "cholesky" => (r.n as f64).powi(3) / 3.0,
            "matmul" => 2.0 * (r.n as f64).powi(3),
            _ => continue,
        };
        let gname = format!("bench.{}.n{}.gflops", r.name, r.n);
        obs.gauge(&gname, flops / r.optimized_median_ns.max(1) as f64);
    }
    let mut gauge_json = Vec::new();
    for r in &rows {
        if matches!(r.name, "cholesky" | "matmul") {
            let gname = format!("bench.{}.n{}.gflops", r.name, r.n);
            if let Some(v) = obs.sink().and_then(|s| s.registry.gauge_value(&gname)) {
                gauge_json.push(format!("\"{gname}\":{v:.3}"));
            }
        }
    }

    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let stats = cache.stats();
    let digests_json = digests
        .iter()
        .map(|(t, d)| format!("{{\"threads\":{t},\"digest\":\"{d:016x}\"}}"))
        .collect::<Vec<_>>()
        .join(",");
    let doc = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"fdw-bench-kernels-v2\",\n",
            "  \"git_rev\": \"{}\",\n",
            "  \"smoke\": {},\n",
            "  \"machine\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {}}},\n",
            "  \"mesh\": {{\"nx\": {}, \"nd\": {}, \"n_subfaults\": {}}},\n",
            "  \"measure\": {{\"floor_ms\": {}, \"max_iters\": 1000}},\n",
            "  \"determinism\": {{\"oracles_bitwise\": true, \"threads_invariant\": {}, \"digests\": [{}]}},\n",
            "  \"factor_cache\": {{\"hits\": {}, \"misses\": {}}},\n",
            "  \"flop_rate_gflops\": {{{}}},\n",
            "  \"scaling\": [{}],\n",
            "  \"kernels\": [\n    {}\n  ]\n",
            "}}\n"
        ),
        git_rev(),
        smoke,
        std::env::consts::OS,
        std::env::consts::ARCH,
        cpus,
        nx,
        nd,
        n,
        floor_ms,
        invariant,
        digests_json,
        stats.hits,
        stats.misses,
        gauge_json.join(","),
        scaling.join(","),
        rows.iter()
            .map(KernelRow::to_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    fdw_obs::json::validate(&doc).expect("snapshot JSON must parse");

    for r in &rows {
        eprintln!(
            "  {:<28} n={:<4} {:>12} ns -> {:>12} ns  ({:.2}x)",
            r.name,
            r.n,
            r.baseline_median_ns,
            r.optimized_median_ns,
            r.speedup()
        );
    }

    let out = std::env::var("FDW_BENCH_OUT").unwrap_or_else(|_| "BENCH_kernels.json".into());
    std::fs::write(&out, &doc).expect("write snapshot");
    println!("wrote {out}");
}
