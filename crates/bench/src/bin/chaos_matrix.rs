//! Chaos-recovery matrix: run a small FDW campaign under every fault
//! class × intensity, recover through the rescue-DAG round-trip, and
//! verify the science products are byte-identical to the fault-free
//! baseline at the same seed. Each cell runs twice with full telemetry
//! and the determinism check compares the *exported artifacts* — the
//! Chrome traces and registry JSON must match byte for byte, a far
//! stronger probe than comparing a few scalars.
//!
//! Every cell's trace is merged into one master timeline (`pid` = cell
//! index); set `FDW_OBS_DIR` to write `chaos_matrix.trace.json`,
//! `chaos_matrix.metrics.json` and the final round's `.dag.metrics`
//! file. `FDW_SMOKE` shrinks the matrix to one intensity per class.

#![forbid(unsafe_code)]
use fakequakes::stations::ChileanInput;
use fdw_bench::{smoke, write_obs_artifact};
use fdw_core::prelude::*;

fn main() {
    println!("Chaos matrix — fault class x intensity, rescue round-trip, digest check\n");
    let cfg = FdwConfig {
        fault_nx: 10,
        fault_nd: 5,
        station_input: StationInput::Chilean(ChileanInput::Small),
        n_waveforms: 8,
        ruptures_per_job: 2,
        waveforms_per_job: 2,
        retries: 3,
        retry_defer_s: 30,
        seed: 5,
        ..Default::default()
    };
    let cluster = chaos_cluster_config();
    let baseline = baseline_digest(&cfg).expect("baseline digest");
    println!("fault-free baseline digest: {baseline:#018x}");
    println!(
        "workload: {} jobs ({} waveforms, small input)\n",
        cfg.total_jobs(),
        cfg.n_waveforms
    );

    let intensities: &[f64] = if smoke() { &[0.8] } else { &[0.3, 0.8] };
    println!(
        "{:<16} {:>9} {:>7} {:>8} {:>6} {:>9} {:>8} {:>13}",
        "class", "intensity", "rounds", "retries", "holds", "failures", "digest", "deterministic"
    );
    let master = Obs::enabled();
    let mut all_ok = true;
    let mut cell = 0u32;
    let mut last_dag_metrics = String::new();
    for class in FaultClass::ALL {
        for &intensity in intensities {
            cell += 1;
            let run = |obs: &Obs| {
                run_chaos_campaign_with_obs(class, intensity, &cfg, &cluster, 6, obs)
                    .unwrap_or_else(|e| panic!("campaign {}@{intensity}: {e}", class.label()))
            };
            let obs_a = Obs::enabled();
            let obs_b = Obs::enabled();
            let a = run(&obs_a);
            let b = run(&obs_b);
            let digest_ok = a.digest == baseline;
            // Same seed, same faults: the full telemetry must replay
            // byte-identically, not just the headline counters.
            let deterministic = a.digest == b.digest
                && a.rounds == b.rounds
                && a.retries == b.retries
                && a.holds == b.holds
                && obs_a.chrome_trace() == obs_b.chrome_trace()
                && obs_a.registry_json() == obs_b.registry_json()
                && a.round_metrics == b.round_metrics;
            all_ok &= digest_ok && deterministic;
            master
                .merge_from(&obs_a, cell)
                .expect("merge cell telemetry");
            if let Some(m) = a.round_metrics.last() {
                last_dag_metrics = m.clone();
            }
            println!(
                "{:<16} {:>9.1} {:>7} {:>8} {:>6} {:>9} {:>8} {:>13}",
                class.label(),
                intensity,
                a.rounds,
                a.retries,
                a.holds,
                a.first_round_failures,
                if digest_ok { "match" } else { "MISMATCH" },
                if deterministic { "yes" } else { "NO" },
            );
        }
    }
    println!();

    let trace = master.chrome_trace();
    let cats = fdw_obs::chrome::categories(&trace);
    let trace_ok = fdw_obs::json::validate(&trace).is_ok();
    println!(
        "merged trace: {} bytes, categories {:?}, valid JSON: {}",
        trace.len(),
        cats,
        if trace_ok { "yes" } else { "NO" }
    );
    for want in ["chaos", "dagman", "phase", "pool"] {
        if !cats.contains(&want.to_string()) {
            println!("MISSING trace category {want}");
            all_ok = false;
        }
    }
    all_ok &= trace_ok;
    if let Some(p) = write_obs_artifact("chaos_matrix.trace.json", &trace) {
        println!("trace written to {}", p.display());
    }
    if let Some(p) = write_obs_artifact("chaos_matrix.metrics.json", &master.registry_json()) {
        println!("registry written to {}", p.display());
    }
    if !last_dag_metrics.is_empty() {
        if let Some(p) = write_obs_artifact("chaos_matrix.dag.metrics", &last_dag_metrics) {
            println!("dag metrics written to {}", p.display());
        }
    }

    if all_ok {
        println!(
            "\nevery campaign completed with science outputs byte-identical to the \
             fault-free run; no artifacts lost to {} fault classes",
            FaultClass::ALL.len()
        );
    } else {
        println!("\nDIGEST, DETERMINISM OR TRACE FAILURE — see rows above");
        std::process::exit(1);
    }
}
