//! Chaos-recovery matrix: run a small FDW campaign under every fault
//! class × intensity, recover through the rescue-DAG round-trip, and
//! verify the science products are byte-identical to the fault-free
//! baseline at the same seed. Each cell runs twice to confirm the
//! campaign itself is deterministic.

use fakequakes::stations::ChileanInput;
use fdw_core::prelude::*;

fn main() {
    println!("Chaos matrix — fault class x intensity, rescue round-trip, digest check\n");
    let cfg = FdwConfig {
        fault_nx: 10,
        fault_nd: 5,
        station_input: StationInput::Chilean(ChileanInput::Small),
        n_waveforms: 8,
        ruptures_per_job: 2,
        waveforms_per_job: 2,
        retries: 3,
        retry_defer_s: 30,
        seed: 5,
        ..Default::default()
    };
    let cluster = chaos_cluster_config();
    let baseline = baseline_digest(&cfg).expect("baseline digest");
    println!("fault-free baseline digest: {baseline:#018x}");
    println!(
        "workload: {} jobs ({} waveforms, small input)\n",
        cfg.total_jobs(),
        cfg.n_waveforms
    );

    println!(
        "{:<16} {:>9} {:>7} {:>8} {:>6} {:>9} {:>8} {:>13}",
        "class", "intensity", "rounds", "retries", "holds", "failures", "digest", "deterministic"
    );
    let mut all_ok = true;
    for class in FaultClass::ALL {
        for intensity in [0.3, 0.8] {
            let run = || {
                run_chaos_campaign(class, intensity, &cfg, &cluster, 6)
                    .unwrap_or_else(|e| panic!("campaign {}@{intensity}: {e}", class.label()))
            };
            let a = run();
            let b = run();
            let digest_ok = a.digest == baseline;
            let deterministic = a.digest == b.digest
                && a.rounds == b.rounds
                && a.retries == b.retries
                && a.holds == b.holds;
            all_ok &= digest_ok && deterministic;
            println!(
                "{:<16} {:>9.1} {:>7} {:>8} {:>6} {:>9} {:>8} {:>13}",
                class.label(),
                intensity,
                a.rounds,
                a.retries,
                a.holds,
                a.first_round_failures,
                if digest_ok { "match" } else { "MISMATCH" },
                if deterministic { "yes" } else { "NO" },
            );
        }
    }
    println!();
    if all_ok {
        println!(
            "every campaign completed with science outputs byte-identical to the \
             fault-free run; no artifacts lost to {} fault classes",
            FaultClass::ALL.len()
        );
    } else {
        println!("DIGEST OR DETERMINISM FAILURE — see rows above");
        std::process::exit(1);
    }
}
