//! Defense ablation: the same hostile campaign — black holes at 0.3 plus
//! a silent-corruption campaign on the cached GF bundle — run with every
//! self-healing defense off, then on (reliability scoreboard, transfer
//! checksums, speculative re-execution). Proves three things:
//!
//! 1. **Science is untouched**: both arms produce products byte-identical
//!    to the fault-free baseline digest.
//! 2. **The defenses pay**: defenses-on badput must come in at least 30%
//!    under defenses-off badput, and never above it.
//! 3. **Determinism**: each arm runs twice and must reproduce its badput,
//!    makespan, digest and defense counters exactly.
//!
//! Output: `BENCH_defenses.json` in the working directory (or
//! `$FDW_BENCH_OUT`). `FDW_SMOKE` shrinks the workload. Exits 1 on any
//! digest mismatch, determinism break, or badput regression.

#![forbid(unsafe_code)]
use fakequakes::stations::ChileanInput;
use fdw_bench::{smoke, smoke_scaled};
use fdw_core::prelude::*;

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// One ablation arm, summarised.
struct Arm {
    label: &'static str,
    badput_s: u64,
    goodput_s: u64,
    makespan_s: u64,
    rounds: u32,
    retries: u64,
    blacklists: u64,
    paroles: u64,
    quarantines: u64,
    speculations: u64,
    spec_wasted_s: f64,
    digest_ok: bool,
    deterministic: bool,
}

fn run_arm(
    label: &'static str,
    cfg: &FdwConfig,
    cluster: &htcsim::cluster::ClusterConfig,
    baseline: u64,
) -> Arm {
    let run = || {
        run_chaos_campaign(FaultClass::BlackHole, 0.3, cfg, cluster, 8)
            .unwrap_or_else(|e| panic!("{label} campaign: {e}"))
    };
    let a = run();
    let b = run();
    let deterministic = a.digest == b.digest
        && a.badput_s == b.badput_s
        && a.goodput_s == b.goodput_s
        && a.makespan_s == b.makespan_s
        && a.defense == b.defense
        && a.speculations == b.speculations
        && a.round_metrics == b.round_metrics;
    Arm {
        label,
        badput_s: a.badput_s,
        goodput_s: a.goodput_s,
        makespan_s: a.makespan_s,
        rounds: a.rounds,
        retries: a.retries,
        blacklists: a.defense.blacklists,
        paroles: a.defense.paroles,
        quarantines: a.defense.quarantines,
        speculations: a.speculations,
        spec_wasted_s: a.spec_wasted_s,
        digest_ok: a.digest == baseline,
        deterministic,
    }
}

fn arm_json(a: &Arm) -> String {
    format!(
        "{{\"label\":\"{}\",\"badput_s\":{},\"goodput_s\":{},\"makespan_s\":{},\
         \"rounds\":{},\"retries\":{},\"blacklists\":{},\"paroles\":{},\
         \"quarantines\":{},\"speculations\":{},\"spec_wasted_s\":{},\
         \"digest_matches_baseline\":{},\"deterministic\":{}}}",
        a.label,
        a.badput_s,
        a.goodput_s,
        a.makespan_s,
        a.rounds,
        a.retries,
        a.blacklists,
        a.paroles,
        a.quarantines,
        a.speculations,
        fdw_obs::json::fmt_f64(a.spec_wasted_s),
        a.digest_ok,
        a.deterministic,
    )
}

fn main() {
    println!("Defense ablation — black holes 0.3 + corruption 0.5, defenses off vs on\n");
    let mut cfg = FdwConfig {
        fault_nx: 10,
        fault_nd: 5,
        station_input: StationInput::Chilean(ChileanInput::Small),
        n_waveforms: smoke_scaled(16, 6),
        ruptures_per_job: 2,
        waveforms_per_job: 2,
        retries: 6,
        retry_defer_s: 30,
        seed: 5,
        ..Default::default()
    };
    cfg.fault.corrupt_prob = 0.5;
    // Every slot big so an unlucky pool draw cannot starve the 16 GB
    // matrix/GF requests — the ablation compares defenses, not matching.
    // Single-slot glideins spread the 16 slots over 16 distinct machines,
    // so black_hole_fraction=0.3 poisons several and the scoreboard has
    // real offenders to catch.
    let mut cluster = chaos_cluster_config();
    cluster.pool.big_slot_fraction = 1.0;
    cluster.pool.glidein_slots = 1;
    let baseline = baseline_digest(&cfg).expect("baseline digest");
    println!("fault-free baseline digest: {baseline:#018x}");
    println!(
        "workload: {} jobs ({} waveforms)\n",
        cfg.total_jobs(),
        cfg.n_waveforms
    );

    let off = run_arm("defenses-off", &cfg, &cluster, baseline);

    let mut defended = cfg.clone();
    defended.defense.scoreboard_enabled = true;
    defended.defense.checksum_enabled = true;
    defended.speculation.enabled = true;
    let on = run_arm("defenses-on", &defended, &cluster, baseline);

    println!(
        "{:<14} {:>9} {:>9} {:>10} {:>7} {:>8} {:>7} {:>7} {:>6} {:>6} {:>8} {:>6}",
        "arm",
        "badput_s",
        "goodput_s",
        "makespan_s",
        "rounds",
        "retries",
        "blackl",
        "parole",
        "quarn",
        "specs",
        "digest",
        "deter"
    );
    for a in [&off, &on] {
        println!(
            "{:<14} {:>9} {:>9} {:>10} {:>7} {:>8} {:>7} {:>7} {:>6} {:>6} {:>8} {:>6}",
            a.label,
            a.badput_s,
            a.goodput_s,
            a.makespan_s,
            a.rounds,
            a.retries,
            a.blacklists,
            a.paroles,
            a.quarantines,
            a.speculations,
            if a.digest_ok { "match" } else { "MISMATCH" },
            if a.deterministic { "yes" } else { "NO" },
        );
    }

    let reduction = if off.badput_s > 0 {
        100.0 * (off.badput_s.saturating_sub(on.badput_s)) as f64 / off.badput_s as f64
    } else {
        0.0
    };
    println!(
        "\nbadput: off={} s, on={} s ({reduction:.1}% reduction)",
        off.badput_s, on.badput_s
    );
    println!(
        "time-to-done: off={} s, on={} s; wasted speculative work: {} s",
        off.makespan_s,
        on.makespan_s,
        fdw_obs::json::fmt_f64(on.spec_wasted_s)
    );

    let doc = format!(
        "{{\n\
         \"schema\": \"fdw-bench-defenses-v1\",\n\
         \"git_rev\": \"{}\",\n\
         \"smoke\": {},\n\
         \"campaign\": {{\"black_hole_fraction\": 0.3, \"corrupt_prob\": 0.5, \"seed\": {}}},\n\
         \"baseline_digest\": \"{baseline:#018x}\",\n\
         \"badput_reduction_pct\": {},\n\
         \"arms\": [\n  {},\n  {}\n]\n\
         }}\n",
        git_rev(),
        smoke(),
        cfg.seed,
        fdw_obs::json::fmt_f64((reduction * 10.0).round() / 10.0),
        arm_json(&off),
        arm_json(&on),
    );
    fdw_obs::json::validate(&doc).expect("ablation JSON must be valid");
    let out = std::env::var("FDW_BENCH_OUT").unwrap_or_else(|_| "BENCH_defenses.json".into());
    if let Err(e) = std::fs::write(&out, &doc) {
        eprintln!("writing {out}: {e}");
    } else {
        println!("written to {out}");
    }

    let mut ok = true;
    for a in [&off, &on] {
        if !a.digest_ok {
            println!("FAIL: {} science digest deviates from baseline", a.label);
            ok = false;
        }
        if !a.deterministic {
            println!("FAIL: {} is not run-to-run deterministic", a.label);
            ok = false;
        }
    }
    if on.badput_s > off.badput_s {
        println!(
            "FAIL: defenses-on badput ({}) exceeds defenses-off ({})",
            on.badput_s, off.badput_s
        );
        ok = false;
    }
    if !smoke() && reduction < 30.0 {
        println!("FAIL: badput reduction {reduction:.1}% below the 30% acceptance floor");
        ok = false;
    }
    // The smoke workload is too small to guarantee a blacklisting; the
    // full run must exercise both defense layers to count.
    if !smoke() && (on.blacklists == 0 || on.quarantines == 0) {
        println!("FAIL: defended arm never exercised the scoreboard/checksum defenses");
        ok = false;
    }
    if ok {
        println!("\ndefenses-on: same science, {reduction:.1}% less badput");
    } else {
        std::process::exit(1);
    }
}
