//! DES event-loop scaling: the sharded engine against its own monolithic
//! baseline on a synthetic federated pool — ~10⁵ slots and 10⁶ jobs
//! spread over 64 lanes, heavy enough that the single global heap stops
//! fitting in cache. Two claims, both gated in-binary:
//!
//! 1. **Determinism**: every configuration — monolithic, and sharded at
//!    1/2/4/8 worker threads — must produce the identical
//!    `EngineReport` (events handled, makespan, digest). Any deviation
//!    exits 1; a fast-but-wrong engine is worthless.
//! 2. **Throughput**: the sharded engine must beat the monolithic
//!    baseline. Per-lane heaps stay small and cache-resident and the
//!    k-way merge runs per epoch instead of per event, so the win holds
//!    even at one worker thread; extra threads then scale it further on
//!    multi-core hosts (CI containers may be single-core — the committed
//!    curve records whatever the host honestly measured).
//!
//! Output: `BENCH_des.json` in the working directory (or
//! `$FDW_BENCH_OUT`). `FDW_SMOKE` shrinks the workload. Timing is the
//! median of three runs per configuration.

#![forbid(unsafe_code)]
use std::time::Instant;

use fdw_bench::smoke;
use htcsim::des::{synth_engine, EngineReport, SynthConfig};

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// One measured configuration.
struct Arm {
    label: String,
    threads: usize,
    report: EngineReport,
    /// Median wall-clock seconds over three runs.
    secs: f64,
    events_per_sec: f64,
}

/// Median-of-3 timing of one engine configuration; every run must
/// reproduce the same report or the measurement itself is invalid.
fn measure(cfg: &SynthConfig, label: &str, threads: Option<usize>) -> Arm {
    let mut secs = Vec::with_capacity(3);
    let mut report: Option<EngineReport> = None;
    for _ in 0..3 {
        let mut engine = synth_engine(cfg);
        let t0 = Instant::now();
        let rep = match threads {
            None => engine.run_monolithic(),
            Some(n) => engine.run_sharded(n),
        };
        secs.push(t0.elapsed().as_secs_f64());
        match &report {
            None => report = Some(rep),
            Some(prev) => assert_eq!(
                &rep, prev,
                "{label}: run-to-run nondeterminism within one configuration"
            ),
        }
    }
    secs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let report = report.unwrap();
    let median = secs[1];
    Arm {
        label: label.to_string(),
        threads: threads.unwrap_or(1),
        events_per_sec: report.events as f64 / median,
        report,
        secs: median,
    }
}

fn main() {
    let cfg = if smoke() {
        SynthConfig::smoke()
    } else {
        SynthConfig::full()
    };
    println!(
        "DES scaling — {} lanes × {} slots ({} jobs), epoch {} s{}\n",
        cfg.lanes,
        cfg.slots_per_lane,
        cfg.lanes * cfg.jobs_per_lane,
        cfg.epoch_s,
        if smoke() { " [smoke]" } else { "" },
    );

    let baseline = measure(&cfg, "monolithic", None);
    let mut arms = vec![baseline];
    for threads in [1usize, 2, 4, 8] {
        arms.push(measure(&cfg, &format!("sharded-t{threads}"), Some(threads)));
    }

    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>14} {:>10} {:>8}",
        "arm", "threads", "secs", "events", "events/sec", "speedup", "digest"
    );
    let base = &arms[0];
    let base_eps = base.events_per_sec;
    let base_digest = base.report.digest;
    let mut ok = true;
    let mut speedups = Vec::new();
    for a in &arms {
        let speedup = a.events_per_sec / base_eps;
        let digest_ok = a.report == arms[0].report;
        if !digest_ok {
            ok = false;
        }
        println!(
            "{:<12} {:>8} {:>12.3} {:>12} {:>14.0} {:>9.2}x {:>8}",
            a.label,
            a.threads,
            a.secs,
            a.report.events,
            a.events_per_sec,
            speedup,
            if digest_ok { "match" } else { "MISMATCH" },
        );
        speedups.push((a.label.clone(), speedup, digest_ok));
    }
    println!(
        "\nreport: {} events, makespan {} s, digest {:#018x}",
        base.report.events,
        base.report.makespan.as_secs(),
        base_digest
    );

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let arm_json = |a: &Arm| {
        format!(
            "{{\"label\":\"{}\",\"threads\":{},\"secs\":{},\"events\":{},\
             \"events_per_sec\":{},\"speedup_vs_monolithic\":{},\"digest_matches\":{}}}",
            a.label,
            a.threads,
            fdw_obs::json::fmt_f64((a.secs * 1e6).round() / 1e6),
            a.report.events,
            fdw_obs::json::fmt_f64(a.events_per_sec.round()),
            fdw_obs::json::fmt_f64((a.events_per_sec / base_eps * 1000.0).round() / 1000.0),
            a.report == arms[0].report,
        )
    };
    let doc = format!(
        "{{\n\
         \"schema\": \"fdw-bench-des-v1\",\n\
         \"git_rev\": \"{}\",\n\
         \"smoke\": {},\n\
         \"cpus\": {cpus},\n\
         \"workload\": {{\"lanes\": {}, \"slots\": {}, \"jobs\": {}, \"epoch_s\": {}, \"seed\": {}}},\n\
         \"digest\": \"{base_digest:#018x}\",\n\
         \"events\": {},\n\
         \"makespan_s\": {},\n\
         \"arms\": [\n  {}\n]\n\
         }}\n",
        git_rev(),
        smoke(),
        cfg.lanes,
        cfg.lanes * cfg.slots_per_lane,
        cfg.lanes * cfg.jobs_per_lane,
        cfg.epoch_s,
        cfg.seed,
        base.report.events,
        base.report.makespan.as_secs(),
        arms.iter().map(arm_json).collect::<Vec<_>>().join(",\n  "),
    );
    fdw_obs::json::validate(&doc).expect("scaling JSON must be valid");
    let out = std::env::var("FDW_BENCH_OUT").unwrap_or_else(|_| "BENCH_des.json".into());
    if let Err(e) = std::fs::write(&out, &doc) {
        eprintln!("writing {out}: {e}");
    } else {
        println!("written to {out}");
    }

    // Hard gates: byte-identical reports everywhere, and sharding must
    // actually pay against the monolithic heap at every thread count.
    for (label, speedup, digest_ok) in &speedups {
        if !digest_ok {
            println!("FAIL: {label} deviates from the monolithic report");
            ok = false;
        }
        if label != "monolithic" && *speedup < 1.0 {
            println!("FAIL: {label} is slower than the monolithic baseline ({speedup:.2}x)");
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
    let best = speedups
        .iter()
        .skip(1)
        .map(|(_, s, _)| *s)
        .fold(0.0f64, f64::max);
    println!("\nsharded engine: same digest, up to {best:.2}x the monolithic event rate");
}
