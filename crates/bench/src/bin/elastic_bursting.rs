//! Extension harness — the elastic bursting controller of the paper's §6
//! future work ("scaling utilized VDC resources based on OSG's common
//! resources"), compared against the static Policy-1 sweep on the same
//! recorded batches. The paper notes its static policies *worsened*
//! throughput consistency; the controller targets exactly that metric
//! (windowed-throughput SD).

#![forbid(unsafe_code)]
use fakequakes::stations::ChileanInput;
use fdw_core::prelude::*;
use vdc_burst::prelude::*;

fn main() {
    println!("Extension — elastic VDC bursting vs static Policy 1 (paper §6 future work)\n");
    let cluster = osg_cluster_config();
    let base = FdwConfig {
        n_waveforms: 16_000,
        station_input: StationInput::Chilean(ChileanInput::Full),
        ..Default::default()
    };
    for (seed, label) in [(1u64, "batch1"), (2u64, "batch2")] {
        let out = run_fdw(&base, cluster.clone(), seed).expect("recording run");
        let input = BatchInput::from_report(&out.report).expect("records");
        let control = simulate(&input, &BurstPolicies::control()).unwrap();
        let static1 = simulate(&input, &BurstPolicies::paper_sweep(5, 90)).unwrap();
        let elastic = simulate_elastic(
            &input,
            &ElasticPolicy {
                target_jpm: 20.0,
                control_period_s: 30,
                gain: 0.5,
                max_vdc_slots: 150,
                window_s: 300,
            },
        )
        .unwrap();

        println!("== {label} ({} jobs) ==", control.total_jobs);
        println!(
            "{:<22} {:>9} {:>9} {:>9} {:>9} {:>11}",
            "strategy", "AIT(jpm)", "runtime", "bursted", "cost($)", "consistency"
        );
        let row = |name: &str, o: &BurstOutcome, sd: Option<f64>| {
            println!(
                "{:<22} {:>9.1} {:>8.2}h {:>9} {:>9.2} {:>11}",
                name,
                o.ait_jpm,
                o.runtime_secs as f64 / 3600.0,
                o.bursted_jobs,
                o.cost_usd,
                sd.map(|s| format!("sd {s:.1}"))
                    .unwrap_or_else(|| "-".into()),
            );
        };
        row(
            "control (OSG only)",
            &control,
            Some(windowed_sd(&control.instant_series)),
        );
        row(
            "static policy 1 (5 s)",
            &static1,
            Some(windowed_sd(&static1.instant_series)),
        );
        row(
            "elastic (target 20)",
            &elastic.base,
            Some(windowed_sd(&elastic.base.instant_series)),
        );
        println!(
            "  elastic telemetry: peak {} VDC slots, mean {:.1} slots",
            elastic.peak_vdc_slots, elastic.mean_vdc_slots
        );
        println!();
    }
    println!("Expected: the elastic controller holds throughput near its target with a");
    println!("smaller consistency SD than the static policy, at comparable or lower cost,");
    println!("scaling its VDC pool down whenever OSG alone meets the target.");
}

/// Consistency metric, identical for every strategy: the SD of the
/// 5-minute-windowed completion throughput, derived from the cumulative
/// instant-throughput series (eq. 5): completed(t) = ω(t)·t/60.
fn windowed_sd(series: &[f64]) -> f64 {
    const W: usize = 300;
    if series.len() <= W {
        return 0.0;
    }
    let completed = |t: usize| series[t] * t.max(1) as f64 / 60.0;
    let samples: Vec<f64> = (W..series.len())
        .map(|t| (completed(t) - completed(t - W)) / (W as f64 / 60.0))
        .collect();
    let m = samples.iter().sum::<f64>() / samples.len() as f64;
    (samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / samples.len() as f64).sqrt()
}
