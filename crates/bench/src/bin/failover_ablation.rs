//! Failover ablation: the same federated campaign — cloud spot
//! reclamation at 0.9 plus a mid-run outage of the dedicated pool — run
//! with the health-gated burst controller off, then on (circuit
//! breakers, drain-and-migrate, checkpoint/restart). Proves three
//! things:
//!
//! 1. **Science is untouched**: both arms produce products byte-identical
//!    to the fault-free baseline digest — the controller only moves work.
//! 2. **Failover pays**: failover-on time-to-done and badput must never
//!    exceed failover-off.
//! 3. **Determinism**: each arm runs twice and must reproduce its
//!    makespan, badput, digest and federation counters exactly.
//!
//! Output: `BENCH_failover.json` in the working directory (or
//! `$FDW_BENCH_OUT`). `FDW_SMOKE` shrinks the workload. Exits 1 on any
//! digest mismatch, determinism break, or time/badput regression.

#![forbid(unsafe_code)]
use fakequakes::stations::ChileanInput;
use fdw_bench::{smoke, smoke_scaled};
use fdw_core::prelude::*;
use htcsim::fault::PoolFaultConfig;
use htcsim::federation::FederationConfig;

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// One ablation arm, summarised.
struct Arm {
    label: &'static str,
    makespan_s: u64,
    goodput_s: u64,
    badput_s: u64,
    outages: u64,
    preemptions: u64,
    checkpoints: u64,
    resumes: u64,
    migrations: u64,
    breaker_opens: u64,
    drained: u64,
    digest_ok: bool,
    deterministic: bool,
}

fn run_arm(
    label: &'static str,
    cfg: &FdwConfig,
    cluster: &htcsim::cluster::ClusterConfig,
    failover_on: bool,
    baseline: u64,
) -> Arm {
    let run = || {
        run_failover_campaign(cfg, cluster, failover_on)
            .unwrap_or_else(|e| panic!("{label} campaign: {e}"))
    };
    let a = run();
    let b = run();
    let deterministic = a.digest == b.digest
        && a.makespan_s == b.makespan_s
        && a.goodput_s == b.goodput_s
        && a.badput_s == b.badput_s
        && a.federation == b.federation
        && a.dag_metrics == b.dag_metrics;
    Arm {
        label,
        makespan_s: a.makespan_s,
        goodput_s: a.goodput_s,
        badput_s: a.badput_s,
        outages: a.federation.outages,
        preemptions: a.federation.preemptions,
        checkpoints: a.federation.checkpoints,
        resumes: a.federation.resumes,
        migrations: a.federation.migrations,
        breaker_opens: a.federation.breaker_opens,
        drained: a.federation.drained,
        digest_ok: a.digest == baseline,
        deterministic,
    }
}

fn arm_json(a: &Arm) -> String {
    format!(
        "{{\"label\":\"{}\",\"makespan_s\":{},\"goodput_s\":{},\"badput_s\":{},\
         \"outages\":{},\"preemptions\":{},\"checkpoints\":{},\"resumes\":{},\
         \"migrations\":{},\"breaker_opens\":{},\"jobs_drained\":{},\
         \"digest_matches_baseline\":{},\"deterministic\":{}}}",
        a.label,
        a.makespan_s,
        a.goodput_s,
        a.badput_s,
        a.outages,
        a.preemptions,
        a.checkpoints,
        a.resumes,
        a.migrations,
        a.breaker_opens,
        a.drained,
        a.digest_ok,
        a.deterministic,
    )
}

fn main() {
    println!("Failover ablation — spot preemption 0.9 + vdc outage, failover off vs on\n");
    let mut cfg = FdwConfig {
        fault_nx: 10,
        fault_nd: 5,
        station_input: StationInput::Chilean(ChileanInput::Small),
        n_waveforms: smoke_scaled(64, 16),
        ruptures_per_job: 2,
        waveforms_per_job: 2,
        retries: 3,
        retry_defer_s: 30,
        seed: 11,
        federation: FederationConfig {
            enabled: true,
            burst_idle_threshold: 0,
            checkpoint_enabled: true,
            checkpoint_interval_s: 5.0,
            cloud_spinup_s: 60.0,
            ..Default::default()
        },
        ..Default::default()
    };
    cfg.fault.pool = PoolFaultConfig {
        outage_pool: 1,
        outage_start_s: 500.0,
        outage_duration_s: 2000.0,
        partition_pool: 0,
        partition_start_s: 0.0,
        partition_duration_s: 0.0,
        preempt_prob: 0.9,
    };
    let cluster = federated_cluster_config();
    let baseline = baseline_digest(&cfg).expect("baseline digest");
    println!("fault-free baseline digest: {baseline:#018x}");
    println!(
        "workload: {} jobs ({} waveforms) on 3 federated pools\n",
        cfg.total_jobs(),
        cfg.n_waveforms
    );

    let off = run_arm("failover-off", &cfg, &cluster, false, baseline);
    let on = run_arm("failover-on", &cfg, &cluster, true, baseline);

    println!(
        "{:<13} {:>10} {:>9} {:>8} {:>7} {:>8} {:>7} {:>7} {:>8} {:>7} {:>8} {:>6}",
        "arm",
        "makespan_s",
        "goodput_s",
        "badput_s",
        "outages",
        "preempts",
        "ckpts",
        "resumes",
        "migrates",
        "breaker",
        "digest",
        "deter"
    );
    for a in [&off, &on] {
        println!(
            "{:<13} {:>10} {:>9} {:>8} {:>7} {:>8} {:>7} {:>7} {:>8} {:>7} {:>8} {:>6}",
            a.label,
            a.makespan_s,
            a.goodput_s,
            a.badput_s,
            a.outages,
            a.preemptions,
            a.checkpoints,
            a.resumes,
            a.migrations,
            a.breaker_opens,
            if a.digest_ok { "match" } else { "MISMATCH" },
            if a.deterministic { "yes" } else { "NO" },
        );
    }

    let time_saved = off.makespan_s.saturating_sub(on.makespan_s);
    let badput_cut = if off.badput_s > 0 {
        100.0 * (off.badput_s.saturating_sub(on.badput_s)) as f64 / off.badput_s as f64
    } else {
        0.0
    };
    println!(
        "\ntime-to-done: off={} s, on={} s ({time_saved} s saved)",
        off.makespan_s, on.makespan_s
    );
    println!(
        "badput: off={} s, on={} s ({badput_cut:.1}% cut); on-arm migrated {} jobs",
        off.badput_s, on.badput_s, on.migrations
    );

    let doc = format!(
        "{{\n\
         \"schema\": \"fdw-bench-failover-v1\",\n\
         \"git_rev\": \"{}\",\n\
         \"smoke\": {},\n\
         \"campaign\": {{\"preempt_prob\": 0.9, \"outage_pool\": 1, \"outage_s\": 2000, \"seed\": {}}},\n\
         \"baseline_digest\": \"{baseline:#018x}\",\n\
         \"time_saved_s\": {time_saved},\n\
         \"badput_cut_pct\": {},\n\
         \"arms\": [\n  {},\n  {}\n]\n\
         }}\n",
        git_rev(),
        smoke(),
        cfg.seed,
        fdw_obs::json::fmt_f64((badput_cut * 10.0).round() / 10.0),
        arm_json(&off),
        arm_json(&on),
    );
    fdw_obs::json::validate(&doc).expect("ablation JSON must be valid");
    let out = std::env::var("FDW_BENCH_OUT").unwrap_or_else(|_| "BENCH_failover.json".into());
    if let Err(e) = std::fs::write(&out, &doc) {
        eprintln!("writing {out}: {e}");
    } else {
        println!("written to {out}");
    }

    let mut ok = true;
    for a in [&off, &on] {
        if !a.digest_ok {
            println!("FAIL: {} science digest deviates from baseline", a.label);
            ok = false;
        }
        if !a.deterministic {
            println!("FAIL: {} is not run-to-run deterministic", a.label);
            ok = false;
        }
    }
    if on.makespan_s > off.makespan_s {
        println!(
            "FAIL: failover-on time-to-done ({}) exceeds failover-off ({})",
            on.makespan_s, off.makespan_s
        );
        ok = false;
    }
    if on.badput_s > off.badput_s {
        println!(
            "FAIL: failover-on badput ({}) exceeds failover-off ({})",
            on.badput_s, off.badput_s
        );
        ok = false;
    }
    // Both arms must actually face the faults, and the controller must
    // visibly respond: checkpoints resumed and displaced jobs migrated.
    if off.preemptions == 0 || on.preemptions == 0 || off.outages == 0 {
        println!("FAIL: pool faults never fired — the ablation compared nothing");
        ok = false;
    }
    if on.resumes == 0 || on.migrations == 0 {
        println!("FAIL: failover arm never exercised checkpoint/restart or migration");
        ok = false;
    }
    if off.resumes != 0 || off.drained != 0 {
        println!("FAIL: baseline arm ran controller actions with failover off");
        ok = false;
    }
    if ok {
        println!(
            "\nfailover-on: same science, {time_saved} s sooner, {badput_cut:.1}% less badput"
        );
    } else {
        std::process::exit(1);
    }
}
