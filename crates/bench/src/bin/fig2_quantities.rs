//! Fig. 2 — Increasing earthquake simulation quantities.
//!
//! Runs the FDW for the paper's six waveform quantities {1,024, 2,000,
//! 5,120, 10,000, 24,960, 50,000} with both the small (2-station) and full
//! (121-station) Chilean inputs, three replications each, and prints
//! average total runtime (hours) and average total throughput
//! (jobs/minute) with standard deviations — the two panels of Fig. 2.

use fakequakes::stations::ChileanInput;
use fdw_bench::{pm, REPLICATION_SEEDS};
use fdw_core::prelude::*;

/// The paper's quantities, "comparable to past work producing 36,800
/// synthetic FQs waveforms on a single machine".
const QUANTITIES: [u64; 6] = [1_024, 2_000, 5_120, 10_000, 24_960, 50_000];

fn main() {
    let cluster = osg_cluster_config();
    println!("Fig. 2 — increasing earthquake simulation quantities");
    println!("(3 replications per point, eqs. (1)/(2); paper Fig. 2)\n");
    for (input, label) in [
        (
            StationInput::Chilean(ChileanInput::Small),
            "small Chilean input (2 stations)",
        ),
        (
            StationInput::Chilean(ChileanInput::Full),
            "full Chilean input (121 stations)",
        ),
    ] {
        println!("== {label} ==");
        println!(
            "{:>10} {:>8} {:>20} {:>20}",
            "waveforms", "jobs", "runtime (h)", "throughput (JPM)"
        );
        for q in QUANTITIES {
            let cfg = FdwConfig {
                n_waveforms: q,
                station_input: input,
                ..Default::default()
            };
            let reps =
                replicate_fdw(&cfg, 1, q, &cluster, &REPLICATION_SEEDS).expect("fig2 run failed");
            println!(
                "{:>10} {:>8} {:>20} {:>20}",
                q,
                cfg.total_jobs(),
                pm(&reps.runtime_h),
                pm(&reps.throughput_jpm),
            );
        }
        println!();
    }
    println!("Expected shape (paper): runtime grows sublinearly in quantity;");
    println!("small-input throughput rises ~14.6 -> ~185 JPM; full-input ~3.3 -> ~16-19 JPM");
    println!("with a dip at 50,000; throughput SDs larger for the small input.");
}
