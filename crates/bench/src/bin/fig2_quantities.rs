//! Fig. 2 — Increasing earthquake simulation quantities.
//!
//! Runs the FDW for the paper's six waveform quantities {1,024, 2,000,
//! 5,120, 10,000, 24,960, 50,000} with both the small (2-station) and full
//! (121-station) Chilean inputs, three replications each, and prints
//! average total runtime (hours) and average total throughput
//! (jobs/minute) with standard deviations — the two panels of Fig. 2.
//!
//! Each (input, quantity) point records into the metrics registry under
//! scope `fig2.<input>.<quantity>`, and the printed cells are read back
//! from those histograms. `FDW_SMOKE` shrinks the sweep; `FDW_OBS_DIR`
//! dumps the registry JSON.

#![forbid(unsafe_code)]
use dagman::monitor::MeanSd;
use fakequakes::stations::ChileanInput;
use fdw_bench::{pm, smoke, write_obs_artifact, REPLICATION_SEEDS};
use fdw_core::prelude::*;

/// The paper's quantities, "comparable to past work producing 36,800
/// synthetic FQs waveforms on a single machine".
const QUANTITIES: [u64; 6] = [1_024, 2_000, 5_120, 10_000, 24_960, 50_000];

/// CI-smoke sweep: same code path, two small points.
const SMOKE_QUANTITIES: [u64; 2] = [128, 256];

fn main() {
    let cluster = osg_cluster_config();
    let quantities: &[u64] = if smoke() {
        &SMOKE_QUANTITIES
    } else {
        &QUANTITIES
    };
    let obs = Obs::metrics_only();
    println!("Fig. 2 — increasing earthquake simulation quantities");
    println!("(3 replications per point, eqs. (1)/(2); paper Fig. 2)\n");
    for (input, tag, label) in [
        (
            StationInput::Chilean(ChileanInput::Small),
            "small",
            "small Chilean input (2 stations)",
        ),
        (
            StationInput::Chilean(ChileanInput::Full),
            "full",
            "full Chilean input (121 stations)",
        ),
    ] {
        println!("== {label} ==");
        println!(
            "{:>10} {:>8} {:>20} {:>20}",
            "waveforms", "jobs", "runtime (h)", "throughput (JPM)"
        );
        for &q in quantities {
            let cfg = FdwConfig {
                n_waveforms: q,
                station_input: input,
                ..Default::default()
            };
            let scope = format!("fig2.{tag}.{q}");
            let reps =
                replicate_fdw_with_obs(&cfg, 1, q, &cluster, &REPLICATION_SEEDS, &scope, &obs)
                    .expect("fig2 run failed");
            // Spread cells come straight out of the registry; the means
            // are the eq. (1)/(2) aggregates the run returned.
            let cell = |which: &str, mean: f64| {
                let s = obs
                    .histogram_stats(&format!("fdw.{scope}.{which}"))
                    .expect("replication histogram");
                pm(&MeanSd {
                    mean,
                    sd: s.sd,
                    min: s.min,
                    max: s.max,
                })
            };
            println!(
                "{:>10} {:>8} {:>20} {:>20}",
                q,
                cfg.total_jobs(),
                cell("runtime_h", reps.runtime_h.mean),
                cell("throughput_jpm", reps.throughput_jpm.mean),
            );
        }
        println!();
    }
    println!("Expected shape (paper): runtime grows sublinearly in quantity;");
    println!("small-input throughput rises ~14.6 -> ~185 JPM; full-input ~3.3 -> ~16-19 JPM");
    println!("with a dip at 50,000; throughput SDs larger for the small input.");

    if let Some(p) = write_obs_artifact("fig2_quantities.metrics.json", &obs.registry_json()) {
        println!("registry dumped to {}", p.display());
    }
}
