//! Fig. 3 — Concurrent HTCondor DAGMans.
//!
//! One, two, four and eight DAGMans jointly produce 16,000 waveforms with
//! the full Chilean input (three replications each); prints the average
//! total runtime and average total throughput per DAGMan, eqs. (3)/(4).

#![forbid(unsafe_code)]
use dagman::monitor::mean_sd;
use fakequakes::stations::ChileanInput;
use fdw_bench::{pm_range, REPLICATION_SEEDS};
use fdw_core::prelude::*;

const TOTAL_WAVEFORMS: u64 = 16_000;

fn main() {
    let cluster = osg_cluster_config();
    let base = FdwConfig {
        station_input: StationInput::Chilean(ChileanInput::Full),
        ..Default::default()
    };
    println!("Fig. 3 — concurrent DAGMans producing {TOTAL_WAVEFORMS} waveforms together");
    println!("(full Chilean input, 3 replications, eqs. (3)/(4); paper Fig. 3)\n");
    println!(
        "{:>8} {:>14} {:>32} {:>32}",
        "DAGMans", "jobs/DAGMan", "avg runtime (h)", "avg throughput (JPM)"
    );
    let mut prev_thpt: Option<f64> = None;
    for n in [1usize, 2, 4, 8] {
        let mut runtimes = Vec::new();
        let mut thpts = Vec::new();
        for &seed in &REPLICATION_SEEDS {
            let out = run_concurrent_fdw(&base, n, TOTAL_WAVEFORMS, cluster.clone(), seed)
                .expect("fig3 run failed");
            runtimes.extend(out.runtimes_hours());
            for (j, r) in out.throughput_inputs() {
                thpts.push(if r > 0.0 { j as f64 / r } else { 0.0 });
            }
        }
        let rt = mean_sd(&runtimes);
        let tp = mean_sd(&thpts);
        let per_dag = FdwConfig {
            n_waveforms: TOTAL_WAVEFORMS / n as u64,
            ..base.clone()
        }
        .total_jobs();
        println!(
            "{:>8} {:>14} {:>32} {:>32}",
            n,
            per_dag,
            pm_range(&rt),
            pm_range(&tp)
        );
        if let Some(prev) = prev_thpt {
            println!(
                "{:>8}   per-DAGMan throughput change vs previous level: {:+.1}%",
                "",
                (tp.mean / prev - 1.0) * 100.0
            );
        }
        prev_thpt = Some(tp.mean);
    }
    println!();
    println!("Expected shape (paper): per-DAGMan throughput drops >=39.5% per level");
    println!("(10.7 -> 6.5 -> 3.7 -> 2.2 JPM); runtime does NOT shrink proportionally");
    println!("(14.1 / 11.9 / 12.5 / 15.7 h) and its SD grows with concurrency.");
}
