//! Fig. 4 + §5.2.3 — Individual job execution/wait times (sorted by
//! duration), instant throughput and running-job count over each
//! workflow's lifetime, for 1/2/4/8 concurrent DAGMans.

#![forbid(unsafe_code)]
use dagman::monitor::{instant_throughput_for, running_for, DagmanStats};
use fakequakes::stations::ChileanInput;
use fdw_bench::{five_number, sorted_minutes, sparkline};
use fdw_core::prelude::*;

const TOTAL_WAVEFORMS: u64 = 16_000;

fn main() {
    let cluster = osg_cluster_config();
    let base = FdwConfig {
        station_input: StationInput::Chilean(ChileanInput::Full),
        ..Default::default()
    };
    println!("Fig. 4 — per-job profiles and per-second footprints (paper Fig. 4, §5.2.3)\n");
    for n in [1usize, 2, 4, 8] {
        let out = run_concurrent_fdw(&base, n, TOTAL_WAVEFORMS, cluster.clone(), 1)
            .expect("fig4 run failed");
        println!("== {n} concurrent DAGMan(s), {TOTAL_WAVEFORMS} waveforms total ==");
        // Per-job distributions of the first DAGMan (the figure shows
        // representative workflows).
        let s = &out.stats[0];
        println!(
            "  waveform exec times: {}",
            five_number(&sorted_minutes(&s.waveform_exec_secs))
        );
        println!(
            "  rupture  exec times: {}",
            five_number(&sorted_minutes(&s.rupture_exec_secs))
        );
        println!(
            "  waveform wait times: {}  (mean {:.1} min)",
            five_number(&sorted_minutes(&s.waveform_wait_secs)),
            DagmanStats::mean_mins(&s.waveform_wait_secs).unwrap_or(0.0)
        );
        let thr = instant_throughput_for(&out.report, s.owner);
        let run = running_for(&out.report, s.owner);
        let run_f: Vec<f64> = run.iter().map(|v| *v as f64).collect();
        let peak_thr = thr.iter().cloned().fold(0.0, f64::max);
        let peak_run = run.iter().copied().max().unwrap_or(0);
        println!(
            "  instant throughput: peak {peak_thr:.1} JPM  {}",
            sparkline(&thr, 48)
        );
        println!(
            "  running jobs:       peak {peak_run:>5}      {}",
            sparkline(&run_f, 48)
        );
        println!();
    }
    println!("Expected shape (paper §5.2.3): waveform jobs 15-20 min, rupture ~2.5 min,");
    println!("consistent across concurrency; wait times blow up with concurrency");
    println!("(70.1 min at N=1 vs 189.2 min at N=4); lone DAGMans spike >35 JPM early");
    println!("while 4-way DAGMans rarely exceed ~6; all levels can exceed 400 running jobs.");
}
