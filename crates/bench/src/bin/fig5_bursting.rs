//! Fig. 5 — Simulated VDC bursting: average instant throughput and VDC
//! utilisation while sweeping Policy 1 probe times {1, 2, 5, 10, 30, 60,
//! 120 s} against a 34 JPM threshold, crossed with Policy 2 maximum queue
//! times {90, 120 min}, over two recorded DAGMan batches; the original
//! OSG records serve as controls (§4.3).

#![forbid(unsafe_code)]
use fakequakes::stations::ChileanInput;
use fdw_core::prelude::*;
use vdc_burst::prelude::*;

const PROBE_TIMES: [u64; 7] = [1, 2, 5, 10, 30, 60, 120];
const QUEUE_MINS: [u64; 2] = [90, 120];

/// Record two real (simulated-OSG) 16,000-waveform single-DAGMan batches,
/// as §4.3 takes its two batches from the §4.2 experiment.
fn record_batches() -> Vec<(String, BatchInput)> {
    let cluster = osg_cluster_config();
    let base = FdwConfig {
        n_waveforms: 16_000,
        station_input: StationInput::Chilean(ChileanInput::Full),
        ..Default::default()
    };
    [(1u64, "batch1"), (2u64, "batch2")]
        .into_iter()
        .map(|(seed, label)| {
            let out = run_fdw(&base, cluster.clone(), seed).expect("recording run failed");
            let input = BatchInput::from_report(&out.report).expect("CSV roundtrip failed");
            (label.to_string(), input)
        })
        .collect()
}

fn main() {
    println!("Fig. 5 — VDC bursting sweep (Policy 1 probe x Policy 2 queue; paper Fig. 5)\n");
    let batches = record_batches();
    let mut rows: Vec<SweepRow> = Vec::new();
    for (label, input) in &batches {
        // Control: the untouched OSG record.
        let control = simulate(input, &BurstPolicies::control()).expect("control failed");
        rows.push(SweepRow {
            batch: label.clone(),
            probe_secs: 0,
            queue_mins: 0,
            outcome: control,
        });
        for &queue in &QUEUE_MINS {
            for &probe in &PROBE_TIMES {
                let outcome = simulate(input, &BurstPolicies::paper_sweep(probe, queue))
                    .expect("sweep sim failed");
                rows.push(SweepRow {
                    batch: label.clone(),
                    probe_secs: probe,
                    queue_mins: queue,
                    outcome,
                });
            }
        }
    }
    print!("{}", format_sweep_table(&rows));
    println!();
    println!("Expected shape (paper §5.3.1-§5.3.2): faster probes raise AIT and VDC");
    println!("usage (sharply below 10 s); controls have the lowest AIT (14.1 / 8.6 JPM);");
    println!("a 30-min shorter queue limit bursts more jobs but moves AIT by < 1 JPM;");
    println!("batch asymmetry: one batch gains far more runtime than the other.");
}
