//! Fig. 6 + §5.3.3/§5.3.4 — Bursting cost and instant-throughput-over-time
//! for the two recorded batches: control vs a bursted configuration, with
//! the ≤30 % bursted-jobs constraint of the cost experiment.

#![forbid(unsafe_code)]
use fakequakes::stations::ChileanInput;
use fdw_bench::{downsample, sparkline};
use fdw_core::prelude::*;
use vdc_burst::prelude::*;

fn main() {
    println!("Fig. 6 — bursting cost and throughput timelines (paper Fig. 6)\n");
    let cluster = osg_cluster_config();
    let base = FdwConfig {
        n_waveforms: 16_000,
        station_input: StationInput::Chilean(ChileanInput::Full),
        ..Default::default()
    };
    for (seed, label) in [(1u64, "batch1"), (2u64, "batch2")] {
        let out = run_fdw(&base, cluster.clone(), seed).expect("recording run failed");
        let input = BatchInput::from_report(&out.report).expect("CSV roundtrip failed");
        let control = simulate(&input, &BurstPolicies::control()).unwrap();
        // The §5.3.4 configuration: 10 s probe, 120 min queue, <=30% bursted.
        let mut policies = BurstPolicies::paper_sweep(10, 120);
        policies.max_burst_fraction = Some(0.30);
        let bursted = simulate(&input, &policies).unwrap();
        println!("== {label} ({} jobs) ==", bursted.total_jobs);
        println!(
            "  control: runtime {:.2} h, AIT {:.1} JPM",
            control.runtime_secs as f64 / 3600.0,
            control.ait_jpm
        );
        println!(
            "  bursted: runtime {:.2} h ({:+.1}%), AIT {:.1} JPM, {} jobs bursted ({:.1}%), \
             {:.0} VDC min, cost ${:.2}",
            bursted.runtime_secs as f64 / 3600.0,
            (bursted.runtime_secs as f64 / control.runtime_secs as f64 - 1.0) * 100.0,
            bursted.ait_jpm,
            bursted.bursted_jobs,
            bursted.vdc_usage_pct(),
            bursted.vdc_minutes,
            bursted.cost_usd
        );
        println!("  instant throughput over time (JPM):");
        println!("    control: {}", sparkline(&control.instant_series, 60));
        println!("    bursted: {}", sparkline(&bursted.instant_series, 60));
        // A few sampled timeline points, like the Fig. 6 right panel.
        println!("    sampled bursted series (second, JPM):");
        for (s, v) in downsample(&bursted.instant_series, 8) {
            println!("      {s:>8}  {v:>6.2}");
        }
        println!();
    }
    println!("Expected shape (paper §5.3.3-§5.3.4): costs stay low (<= ~$11 / ~$13.9 per");
    println!("batch at 16,000 waveforms with <=30% bursted); one batch shows a large");
    println!("runtime cut (-38.7% in the paper) while the other barely moves; bursted");
    println!("AIT exceeds the control's.");
}
