//! Service overload ablation: the same multi-tenant campaign stream —
//! execution failures plus silent artifact corruption — pushed at the
//! front-end at 2x, 6x and 10x capacity, with every protection off
//! (admit-everything FIFO, no store) and then on (quotas, fair share,
//! shedding, degradation, breakers, verified shared store). Proves four
//! things:
//!
//! 1. **Nothing is dropped silently**: every request in every arm ends
//!    in exactly one terminal disposition (`unaccounted == 0`).
//! 2. **Robustness pays**: defended goodput fraction never falls below
//!    undefended at any overload level, and the shared store's
//!    cross-tenant hits are strictly positive.
//! 3. **Science is untouched**: the completed campaigns' rupture draws
//!    fold to the same digest whether factors come from one shared
//!    budgeted cache or per-campaign recompute, and across DES thread
//!    and executor-shard counts.
//! 4. **Determinism**: every arm reproduces its decision digest, stats
//!    and outcomes exactly across reruns with different thread counts.
//!
//! Output: `BENCH_service.json` in the working directory (or
//! `$FDW_BENCH_OUT`). `FDW_SMOKE` shrinks the workload. Exits 1 on any
//! gate failure.

#![forbid(unsafe_code)]
use fakequakes::stochastic::FactorCache;
use fdw_bench::{smoke, smoke_scaled};
use fdw_core::service::science_digest;
use fdw_service::config::ServiceConfig;
use fdw_service::engine::run_service;
use fdw_service::request::WorkloadConfig;

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// One (overload level, policy) arm, summarised.
struct Arm {
    label: String,
    overload_x: f64,
    goodput_fraction: f64,
    goodput_s: u64,
    badput_s: u64,
    completed: u64,
    completed_late: u64,
    failed: u64,
    rejected: u64,
    shed: u64,
    degraded: u64,
    breaker_opens: u64,
    store_hits: u64,
    cross_tenant_hits: u64,
    quarantines: u64,
    evictions: u64,
    p99_latency_s: Vec<u64>,
    unaccounted: usize,
    science_digest: u64,
    science_factorisations_shared: u64,
    science_factorisations_isolated: u64,
    deterministic: bool,
    science_store_invariant: bool,
}

fn run_arm(label: String, cfg: &ServiceConfig, wl: &WorkloadConfig) -> Arm {
    // Two runs with different thread counts AND different executor shard
    // counts: the decision digest, outcomes and stats must all agree.
    let a = run_service(cfg, wl, 2, 60, 1);
    let b = run_service(cfg, wl, 4, 60, 4);
    let deterministic = a.decision_digest == b.decision_digest
        && a.outcomes == b.outcomes
        && a.stats == b.stats
        && a.per_tenant == b.per_tenant;
    // Science pass, both sharing arms: one budgeted fleet-wide factor
    // cache vs per-campaign recompute. Bit-identical or the store is
    // changing the physics.
    let shared_cache = FactorCache::with_byte_budget(64 * 1024 * 1024);
    let shared = science_digest(&a.outcomes, wl.seed, Some(&shared_cache))
        .unwrap_or_else(|e| panic!("{label} shared science pass: {e}"));
    let isolated = science_digest(&a.outcomes, wl.seed, None)
        .unwrap_or_else(|e| panic!("{label} isolated science pass: {e}"));
    let s = &a.stats;
    Arm {
        label,
        overload_x: wl.overload_x,
        goodput_fraction: a.goodput_fraction(),
        goodput_s: s.goodput_s,
        badput_s: s.badput_s,
        completed: s.completed,
        completed_late: s.completed_late,
        failed: s.failed,
        rejected: s.rejected_quota + s.rejected_queue + s.rejected_breaker,
        shed: s.shed_backlog + s.shed_deadline,
        degraded: s.degraded_kl + s.degraded_replicas,
        breaker_opens: s.breaker_opens,
        store_hits: a.store.hits,
        cross_tenant_hits: a.store.cross_tenant_hits,
        quarantines: a.store.quarantines,
        evictions: a.store.evictions,
        p99_latency_s: a.per_tenant.values().map(|t| t.p99_latency_s).collect(),
        unaccounted: a.unaccounted,
        science_digest: shared.digest,
        science_factorisations_shared: shared.factorisations,
        science_factorisations_isolated: isolated.factorisations,
        deterministic,
        science_store_invariant: shared.digest == isolated.digest
            && shared.ruptures == isolated.ruptures,
    }
}

fn arm_json(a: &Arm) -> String {
    let p99s: Vec<String> = a.p99_latency_s.iter().map(|v| v.to_string()).collect();
    format!(
        "{{\"label\":\"{}\",\"overload_x\":{},\"goodput_fraction\":{},\
         \"goodput_s\":{},\"badput_s\":{},\"completed\":{},\"completed_late\":{},\
         \"failed\":{},\"rejected\":{},\"shed\":{},\"degraded\":{},\
         \"breaker_opens\":{},\"store_hits\":{},\"cross_tenant_hits\":{},\
         \"quarantines\":{},\"evictions\":{},\"p99_latency_s\":[{}],\
         \"unaccounted\":{},\"science_digest\":\"{:#018x}\",\
         \"factorisations_shared\":{},\"factorisations_isolated\":{},\
         \"deterministic\":{},\"science_store_invariant\":{}}}",
        a.label,
        fdw_obs::json::fmt_f64(a.overload_x),
        fdw_obs::json::fmt_f64((a.goodput_fraction * 1000.0).round() / 1000.0),
        a.goodput_s,
        a.badput_s,
        a.completed,
        a.completed_late,
        a.failed,
        a.rejected,
        a.shed,
        a.degraded,
        a.breaker_opens,
        a.store_hits,
        a.cross_tenant_hits,
        a.quarantines,
        a.evictions,
        p99s.join(","),
        a.unaccounted,
        a.science_digest,
        a.science_factorisations_shared,
        a.science_factorisations_isolated,
        a.deterministic,
        a.science_store_invariant,
    )
}

fn main() {
    println!("Service overload ablation — multi-tenant front-end off vs on, 2x/6x/10x\n");
    let tenants = 4;
    let base_wl = WorkloadConfig {
        seed: 17,
        campaigns: smoke_scaled(240, 60) as u32,
        classes: 4,
        overload_x: 2.0,
        fail_permille: 150,
        corrupt_permille: 150,
        replicas: 8,
        deadline_slack: 4.0,
    };
    let undefended = ServiceConfig::undefended(tenants);
    let defended = ServiceConfig::defended(tenants);
    println!(
        "workload: {} campaigns, {} tenants, {} classes, fail {}‰, corrupt {}‰\n",
        base_wl.campaigns,
        tenants,
        base_wl.classes,
        base_wl.fail_permille,
        base_wl.corrupt_permille
    );

    let levels = [2.0f64, 6.0, 10.0];
    let mut arms: Vec<(Arm, Arm)> = Vec::new();
    for x in levels {
        let wl = WorkloadConfig {
            overload_x: x,
            ..base_wl.clone()
        };
        let off = run_arm(format!("undefended-{x}x"), &undefended, &wl);
        let on = run_arm(format!("defended-{x}x"), &defended, &wl);
        arms.push((off, on));
    }

    println!(
        "{:<15} {:>8} {:>9} {:>9} {:>6} {:>6} {:>5} {:>5} {:>6} {:>7} {:>8} {:>6}",
        "arm",
        "goodput%",
        "goodput_s",
        "badput_s",
        "compl",
        "late",
        "rej",
        "shed",
        "degr",
        "xt-hits",
        "p99max",
        "deter"
    );
    for (off, on) in &arms {
        for a in [off, on] {
            println!(
                "{:<15} {:>8.1} {:>9} {:>9} {:>6} {:>6} {:>5} {:>5} {:>6} {:>7} {:>8} {:>6}",
                a.label,
                a.goodput_fraction * 100.0,
                a.goodput_s,
                a.badput_s,
                a.completed,
                a.completed_late,
                a.rejected,
                a.shed,
                a.degraded,
                a.cross_tenant_hits,
                a.p99_latency_s.iter().copied().max().unwrap_or(0),
                if a.deterministic { "yes" } else { "NO" },
            );
        }
    }

    let arms_json: Vec<String> = arms
        .iter()
        .flat_map(|(off, on)| [arm_json(off), arm_json(on)])
        .collect();
    let doc = format!(
        "{{\n\
         \"schema\": \"fdw-bench-service-v1\",\n\
         \"git_rev\": \"{}\",\n\
         \"smoke\": {},\n\
         \"workload\": {{\"campaigns\": {}, \"tenants\": {}, \"classes\": {}, \
         \"fail_permille\": {}, \"corrupt_permille\": {}, \"seed\": {}}},\n\
         \"overload_levels\": [2, 6, 10],\n\
         \"arms\": [\n  {}\n]\n\
         }}\n",
        git_rev(),
        smoke(),
        base_wl.campaigns,
        tenants,
        base_wl.classes,
        base_wl.fail_permille,
        base_wl.corrupt_permille,
        base_wl.seed,
        arms_json.join(",\n  "),
    );
    fdw_obs::json::validate(&doc).expect("ablation JSON must be valid");
    let out = std::env::var("FDW_BENCH_OUT").unwrap_or_else(|_| "BENCH_service.json".into());
    if let Err(e) = std::fs::write(&out, &doc) {
        eprintln!("writing {out}: {e}");
    } else {
        println!("written to {out}");
    }

    let mut ok = true;
    for (off, on) in &arms {
        for a in [off, on] {
            if a.unaccounted != 0 {
                println!(
                    "FAIL: {} dropped {} requests silently",
                    a.label, a.unaccounted
                );
                ok = false;
            }
            if !a.deterministic {
                println!("FAIL: {} decisions vary across threads/shards", a.label);
                ok = false;
            }
            if !a.science_store_invariant {
                println!("FAIL: {} shared store changed the science digest", a.label);
                ok = false;
            }
        }
        if on.goodput_fraction + 1e-9 < off.goodput_fraction {
            println!(
                "FAIL: defended goodput {:.3} below undefended {:.3} at {}x",
                on.goodput_fraction, off.goodput_fraction, on.overload_x
            );
            ok = false;
        }
        if on.cross_tenant_hits == 0 {
            println!("FAIL: {} saw no cross-tenant artifact reuse", on.label);
            ok = false;
        }
        if on.science_factorisations_shared >= on.science_factorisations_isolated {
            println!(
                "FAIL: {} sharing saved no factorisations ({} vs {})",
                on.label, on.science_factorisations_shared, on.science_factorisations_isolated
            );
            ok = false;
        }
        if off.rejected + off.shed + off.degraded + off.store_hits != 0 {
            println!("FAIL: {} ran protections with the service off", off.label);
            ok = false;
        }
    }
    // The top overload level must actually exercise the defenses.
    let (_, top) = arms.last().expect("levels nonempty");
    if top.shed + top.rejected == 0 || top.degraded == 0 {
        println!("FAIL: 10x arm never shed/rejected or never degraded — compared nothing");
        ok = false;
    }
    if top.quarantines == 0 {
        println!("FAIL: corruption never quarantined in the defended arm");
        ok = false;
    }
    if ok {
        let worst = &arms.last().expect("levels nonempty");
        println!(
            "\ndefended at 10x: goodput {:.1}% vs {:.1}% undefended, same science, nothing dropped",
            worst.1.goodput_fraction * 100.0,
            worst.0.goodput_fraction * 100.0
        );
    } else {
        std::process::exit(1);
    }
}
