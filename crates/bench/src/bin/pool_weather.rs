//! Supplementary harness — pool "weather" during an FDW run: the
//! glidein-churn and background-contention telemetry behind the paper's
//! §6 explanation that volatility comes from "OSG's variable resources
//! and many simulations".

#![forbid(unsafe_code)]
use fakequakes::stations::ChileanInput;
use fdw_bench::sparkline;
use fdw_core::prelude::*;

fn main() {
    println!("Pool weather during a 16,000-waveform FDW run\n");
    let cfg = FdwConfig {
        n_waveforms: 16_000,
        station_input: StationInput::Chilean(ChileanInput::Full),
        ..Default::default()
    };
    let out = run_fdw(&cfg, osg_cluster_config(), 1).expect("run");
    let series = &out.report.pool_series;
    assert!(!series.is_empty());

    let total: Vec<f64> = series.iter().map(|s| s.total_slots as f64).collect();
    let busy: Vec<f64> = series.iter().map(|s| s.busy_slots as f64).collect();
    let avail: Vec<f64> = series.iter().map(|s| s.avail_frac).collect();
    let idle: Vec<f64> = series.iter().map(|s| s.idle_jobs as f64).collect();

    let stat = |xs: &[f64]| {
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (mean, min, max)
    };
    let rows = [
        ("total slots", &total),
        ("busy slots (ours)", &busy),
        ("avail fraction", &avail),
        ("idle jobs queued", &idle),
    ];
    println!(
        "{:<20} {:>9} {:>9} {:>9}   over {} negotiation cycles",
        "series",
        "mean",
        "min",
        "max",
        series.len()
    );
    for (name, xs) in rows {
        let (mean, min, max) = stat(xs);
        println!(
            "{name:<20} {mean:>9.1} {min:>9.1} {max:>9.1}   {}",
            sparkline(xs, 48)
        );
    }
    println!(
        "\nmakespan {:.2} h, {} evictions from glidein churn",
        out.report.makespan.as_hours_f64(),
        out.report.evictions
    );
    println!("\nThe busy-slot trace is the supply side of Fig. 4's running-job");
    println!("footprint: glidein churn plus the contention process produce the gaps");
    println!("and peaks the paper attributes to OSG's shared, variable resources.");
}
