//! §6 headline numbers — FDW vs the single-machine AWS baseline, and the
//! throughput scaling claims.
//!
//! * "a 56.8% decrease in runtime when simulating 1,024 earthquakes in
//!   Chile using parallel computation on OSG versus on a single machine";
//! * "The throughput also increases by approximately five times when
//!   running 50,000 simulations compared to 1,024";
//! * "we produced, on average, 24,960 in 12.5 hours and 50,000 in under
//!   35 hours" (vs Lin et al.'s 20+ days for 36,800).
//!
//! Every number printed is read back from the `fdw-obs` metrics registry
//! (`fdw.<scope>.runtime_h` / `fdw.<scope>.throughput_jpm` histograms),
//! not from ad-hoc accumulators; set `FDW_OBS_DIR` to also dump the full
//! registry JSON, and `FDW_SMOKE` to run at CI-smoke scale.

#![forbid(unsafe_code)]
use fakequakes::stations::ChileanInput;
use fdw_bench::{smoke_scaled, write_obs_artifact, REPLICATION_SEEDS};
use fdw_core::prelude::*;

/// Registry-backed mean of a replication histogram.
fn hist_mean(obs: &Obs, scope: &str, which: &str) -> f64 {
    obs.histogram_stats(&format!("fdw.{scope}.{which}"))
        .map_or(0.0, |s| s.mean)
}

fn main() {
    let cluster = osg_cluster_config();
    let full = StationInput::Chilean(ChileanInput::Full);
    let obs = Obs::metrics_only();
    let q1 = smoke_scaled(1_024, 128);
    let q50 = smoke_scaled(50_000, 512);
    let q25 = smoke_scaled(24_960, 256);

    println!("§6 headline comparisons\n");

    // 1,024 full-input waveforms: FDW vs single machine.
    let cfg = FdwConfig {
        n_waveforms: q1,
        station_input: full,
        ..Default::default()
    };
    replicate_fdw_with_obs(&cfg, 1, q1, &cluster, &REPLICATION_SEEDS, "h1024", &obs).unwrap();
    let aws = aws_baseline(&cfg, 1);
    let fdw_h = hist_mean(&obs, "h1024", "runtime_h");
    let reduction = (1.0 - fdw_h / aws.makespan.as_hours_f64()) * 100.0;
    println!("FDW,   {q1} waveforms (full input): {fdw_h:.2} h (avg of 3)");
    println!(
        "AWS baseline (4-slot single machine):  {:.2} h",
        aws.makespan.as_hours_f64()
    );
    println!("runtime reduction: {reduction:.1}%   (paper: 56.8%)\n");

    // Throughput scaling 1,024 -> 50,000 (full input).
    let cfg50 = FdwConfig {
        n_waveforms: q50,
        ..cfg.clone()
    };
    replicate_fdw_with_obs(&cfg50, 1, q50, &cluster, &REPLICATION_SEEDS, "h50k", &obs).unwrap();
    let jpm1 = hist_mean(&obs, "h1024", "throughput_jpm");
    let jpm50 = hist_mean(&obs, "h50k", "throughput_jpm");
    println!(
        "throughput, full input: {:.1} JPM at {} -> {:.1} JPM at {} ({:.1}x; paper ~5x)\n",
        jpm1,
        q1,
        jpm50,
        q50,
        jpm50 / jpm1
    );

    // Large-batch wall times vs Lin et al.
    let cfg24960 = FdwConfig {
        n_waveforms: q25,
        ..cfg.clone()
    };
    replicate_fdw_with_obs(
        &cfg24960,
        1,
        q25,
        &cluster,
        &REPLICATION_SEEDS,
        "h25k",
        &obs,
    )
    .unwrap();
    println!(
        "{} waveforms: {:.1} h (paper: 12.5 h);  {}: {:.1} h (paper: < 35 h)",
        q25,
        hist_mean(&obs, "h25k", "runtime_h"),
        q50,
        hist_mean(&obs, "h50k", "runtime_h"),
    );
    println!("reference point: Lin et al. produced 36,800 on one machine in 20+ days (480+ h)");

    if let Some(p) = write_obs_artifact("table_headline.metrics.json", &obs.registry_json()) {
        println!("\nregistry dumped to {}", p.display());
    }
}
