//! §6 headline numbers — FDW vs the single-machine AWS baseline, and the
//! throughput scaling claims.
//!
//! * "a 56.8% decrease in runtime when simulating 1,024 earthquakes in
//!   Chile using parallel computation on OSG versus on a single machine";
//! * "The throughput also increases by approximately five times when
//!   running 50,000 simulations compared to 1,024";
//! * "we produced, on average, 24,960 in 12.5 hours and 50,000 in under
//!   35 hours" (vs Lin et al.'s 20+ days for 36,800).

use fakequakes::stations::ChileanInput;
use fdw_bench::REPLICATION_SEEDS;
use fdw_core::prelude::*;

fn main() {
    let cluster = osg_cluster_config();
    let full = StationInput::Chilean(ChileanInput::Full);

    println!("§6 headline comparisons\n");

    // 1,024 full-input waveforms: FDW vs single machine.
    let cfg = FdwConfig {
        n_waveforms: 1024,
        station_input: full,
        ..Default::default()
    };
    let reps = replicate_fdw(&cfg, 1, 1024, &cluster, &REPLICATION_SEEDS).unwrap();
    let aws = aws_baseline(&cfg, 1);
    let reduction = (1.0 - reps.runtime_h.mean / aws.makespan.as_hours_f64()) * 100.0;
    println!(
        "FDW,   1,024 waveforms (full input): {:.2} h (avg of 3)",
        reps.runtime_h.mean
    );
    println!(
        "AWS baseline (4-slot single machine):  {:.2} h",
        aws.makespan.as_hours_f64()
    );
    println!("runtime reduction: {reduction:.1}%   (paper: 56.8%)\n");

    // Throughput scaling 1,024 -> 50,000 (full input).
    let t1 = replicate_fdw(&cfg, 1, 1024, &cluster, &REPLICATION_SEEDS).unwrap();
    let cfg50 = FdwConfig {
        n_waveforms: 50_000,
        ..cfg.clone()
    };
    let t50 = replicate_fdw(&cfg50, 1, 50_000, &cluster, &REPLICATION_SEEDS).unwrap();
    println!(
        "throughput, full input: {:.1} JPM at 1,024 -> {:.1} JPM at 50,000 ({:.1}x; paper ~5x)\n",
        t1.throughput_jpm.mean,
        t50.throughput_jpm.mean,
        t50.throughput_jpm.mean / t1.throughput_jpm.mean
    );

    // Large-batch wall times vs Lin et al.
    let cfg24960 = FdwConfig {
        n_waveforms: 24_960,
        ..cfg.clone()
    };
    let t24960 = replicate_fdw(&cfg24960, 1, 24_960, &cluster, &REPLICATION_SEEDS).unwrap();
    println!(
        "24,960 waveforms: {:.1} h (paper: 12.5 h);  50,000: {:.1} h (paper: < 35 h)",
        t24960.runtime_h.mean, t50.runtime_h.mean
    );
    println!("reference point: Lin et al. produced 36,800 on one machine in 20+ days (480+ h)");
}
