//! Validate exported telemetry artifacts: each argument must parse as
//! JSON (via the dependency-free `fdw_obs::json` validator); files
//! containing Chrome trace events additionally report their span
//! categories, and `--min-cats N` enforces a lower bound on how many
//! distinct categories a trace carries. The CI smoke stage runs this
//! over everything the bench binaries dropped into `FDW_OBS_DIR`.

#![forbid(unsafe_code)]
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut min_cats = 0usize;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--min-cats" {
            let n = args.next().and_then(|v| v.parse().ok());
            match n {
                Some(n) => min_cats = n,
                None => {
                    eprintln!("--min-cats needs an integer");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            files.push(a);
        }
    }
    if files.is_empty() {
        eprintln!("usage: validate_trace [--min-cats N] <file>...");
        return ExitCode::FAILURE;
    }

    let mut ok = true;
    for f in &files {
        let content = match std::fs::read_to_string(f) {
            Ok(c) => c,
            Err(e) => {
                println!("{f}: UNREADABLE ({e})");
                ok = false;
                continue;
            }
        };
        match fdw_obs::json::validate(&content) {
            Ok(()) => {
                if content.contains("\"traceEvents\"") {
                    let cats = fdw_obs::chrome::categories(&content);
                    let enough = cats.len() >= min_cats;
                    println!(
                        "{f}: valid JSON, {} events, categories {:?}{}",
                        content.matches("\"ph\":").count(),
                        cats,
                        if enough { "" } else { " — TOO FEW" }
                    );
                    ok &= enough;
                } else {
                    println!("{f}: valid JSON");
                }
            }
            Err(pos) => {
                println!("{f}: INVALID JSON at byte {pos}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
