//! # fdw-bench — the experiment harness
//!
//! One binary per figure of the paper's evaluation section (run with
//! `cargo run -p fdw-bench --release --bin <name>`):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig1_products`    | Fig. 1 — example rupture + GNSS waveforms |
//! | `fig2_quantities`  | Fig. 2 — runtime/throughput vs quantity, both inputs |
//! | `fig3_concurrent`  | Fig. 3 — 1/2/4/8 concurrent DAGMans |
//! | `fig4_job_profiles`| Fig. 4 + §5.2.3 — job exec/wait distributions, instant throughput, running jobs |
//! | `fig5_bursting`    | Fig. 5 — bursting AIT & VDC usage sweep |
//! | `fig6_cost_timeline` | Fig. 6 + §5.3.4 — bursting cost and throughput timelines |
//! | `table_headline`   | §6 headline numbers (56.8 % reduction, ~5× throughput) |
//! | `ablate_cache`     | DESIGN.md ablation — Stash cache on/off |
//! | `ablate_matchmaker`| DESIGN.md ablation — negotiation period / fair share |
//! | `chaos_matrix`     | DESIGN.md §6 — fault class × intensity recovery matrix with science-digest check |
//!
//! Criterion micro-benchmarks (`cargo bench -p fdw-bench`) cover the
//! compute kernels: rupture generation (Cholesky vs Karhunen–Loève),
//! waveform synthesis (Rayon vs sequential), the DES event loop, and the
//! bursting replay loop.
//!
//! This library holds the shared formatting/summary helpers the binaries
//! use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use dagman::monitor::MeanSd;

/// The three replication seeds used throughout, mirroring the paper's
/// three runs per configuration.
pub const REPLICATION_SEEDS: [u64; 3] = [1, 2, 3];

/// True when `FDW_SMOKE` is set (non-empty): binaries shrink their
/// workloads to CI-smoke scale while exercising the same code paths.
pub fn smoke() -> bool {
    std::env::var("FDW_SMOKE").is_ok_and(|v| !v.is_empty())
}

/// Pick `full` normally, `reduced` under `FDW_SMOKE`.
pub fn smoke_scaled(full: u64, reduced: u64) -> u64 {
    if smoke() {
        reduced
    } else {
        full
    }
}

/// Telemetry output directory (`FDW_OBS_DIR`), if requested.
pub fn obs_dir() -> Option<PathBuf> {
    std::env::var_os("FDW_OBS_DIR")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// Write a telemetry artifact into `FDW_OBS_DIR` (no-op when unset).
/// Returns the path written, so binaries can report it.
pub fn write_obs_artifact(name: &str, content: &str) -> Option<PathBuf> {
    let dir = obs_dir()?;
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("FDW_OBS_DIR {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(name);
    match std::fs::write(&path, content) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("writing {}: {e}", path.display());
            None
        }
    }
}

/// Render a `mean ± sd` cell.
pub fn pm(m: &MeanSd) -> String {
    format!("{:.1} ± {:.1}", m.mean, m.sd)
}

/// Render a `mean ± sd [min, max]` cell.
pub fn pm_range(m: &MeanSd) -> String {
    format!("{:.1} ± {:.1} [{:.1}, {:.1}]", m.mean, m.sd, m.min, m.max)
}

/// Downsample a per-second series to at most `n` evenly spaced points
/// `(second, value)` for compact printing.
pub fn downsample(series: &[f64], n: usize) -> Vec<(usize, f64)> {
    if series.is_empty() || n == 0 {
        return Vec::new();
    }
    if series.len() <= n {
        return series.iter().cloned().enumerate().collect();
    }
    let step = (series.len() - 1) as f64 / (n - 1) as f64;
    (0..n)
        .map(|i| {
            let idx = (i as f64 * step).round() as usize;
            (idx, series[idx.min(series.len() - 1)])
        })
        .collect()
}

/// Sorted copy of a duration list converted to minutes — Fig. 4 plots
/// per-job times "sorted by duration".
pub fn sorted_minutes(secs: &[u64]) -> Vec<f64> {
    let mut v: Vec<f64> = secs.iter().map(|s| *s as f64 / 60.0).collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v
}

/// Percentile (0–100) of a sorted slice via nearest-rank.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Render a compact five-number summary of a sorted minutes list.
pub fn five_number(sorted_mins: &[f64]) -> String {
    if sorted_mins.is_empty() {
        return "(empty)".into();
    }
    format!(
        "min {:.1} / p25 {:.1} / median {:.1} / p75 {:.1} / max {:.1} min",
        percentile(sorted_mins, 0.0),
        percentile(sorted_mins, 25.0),
        percentile(sorted_mins, 50.0),
        percentile(sorted_mins, 75.0),
        percentile(sorted_mins, 100.0),
    )
}

/// A tiny fixed-width ASCII sparkline for a series (8 levels).
pub fn sparkline(series: &[f64], width: usize) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let pts = downsample(series, width);
    if pts.is_empty() {
        return String::new();
    }
    let max = pts
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::MIN_POSITIVE, f64::max);
    pts.iter()
        .map(|(_, v)| {
            let lvl = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
            LEVELS[lvl]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_preserves_endpoints() {
        let s: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let d = downsample(&s, 10);
        assert_eq!(d.len(), 10);
        assert_eq!(d[0], (0, 0.0));
        assert_eq!(d[9], (999, 999.0));
        assert!(downsample(&[], 5).is_empty());
        assert!(downsample(&s, 0).is_empty());
        assert_eq!(downsample(&[1.0, 2.0], 10).len(), 2);
    }

    #[test]
    fn sorted_minutes_sorts_and_converts() {
        let v = sorted_minutes(&[120, 60, 180]);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn five_number_formats() {
        assert_eq!(five_number(&[]), "(empty)");
        let s = five_number(&[1.0, 2.0, 3.0]);
        assert!(s.contains("median 2.0"));
    }

    #[test]
    fn sparkline_width_and_levels() {
        let s: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let spark = sparkline(&s, 16);
        assert_eq!(spark.chars().count(), 16);
        assert!(spark.starts_with('▁'));
        assert!(spark.ends_with('█'));
        assert_eq!(sparkline(&[], 8), "");
    }

    #[test]
    fn pm_formats() {
        let m = MeanSd {
            mean: 10.25,
            sd: 1.04,
            min: 9.0,
            max: 11.5,
        };
        assert_eq!(pm(&m), "10.2 ± 1.0");
        assert!(pm_range(&m).contains("[9.0, 11.5]"));
    }
}
