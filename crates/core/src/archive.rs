//! Output congregation: "after simulation, thousands of files are
//! congregated, labeled, and archived on OSG storage capacity" (§3).
//!
//! The archive manifest labels every product of a run — rupture files,
//! the GF bundle, per-scenario waveform bundles — with consistent names
//! and sizes, and serialises to a text manifest that downstream tooling
//! (and, in the paper's vision, the VDC data services) can index.

use crate::config::FdwConfig;

/// One archived product.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveEntry {
    /// Archive-relative path, e.g. `waveforms/run1/scenario_000042.mseed`.
    pub path: String,
    /// Product kind label (`rupture`, `gf`, `waveform`).
    pub kind: String,
    /// Size in megabytes.
    pub size_mb: f64,
}

/// The manifest of one FDW run's products.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArchiveManifest {
    /// Run label the products are archived under.
    pub run_label: String,
    /// All entries.
    pub entries: Vec<ArchiveEntry>,
}

impl ArchiveManifest {
    /// Build the manifest an FDW run with `cfg` produces, labelled
    /// `run_label`.
    pub fn for_run(run_label: &str, cfg: &FdwConfig) -> Self {
        let stations = cfg.station_input.station_count();
        let mut entries = Vec::new();
        entries.push(ArchiveEntry {
            path: format!("{run_label}/matrices/distance_matrices.npy"),
            kind: "npy".into(),
            size_mb: crate::calibration::npy_matrices().size_mb,
        });
        entries.push(ArchiveEntry {
            path: format!("{run_label}/gf/gf_{stations}sta.mseed"),
            kind: "gf".into(),
            size_mb: crate::calibration::gf_mseed(stations).size_mb,
        });
        for i in 0..cfg.n_waveforms {
            entries.push(ArchiveEntry {
                path: format!("{run_label}/ruptures/scenario_{i:06}.rupt"),
                kind: "rupture".into(),
                size_mb: 1.2,
            });
            entries.push(ArchiveEntry {
                path: format!("{run_label}/waveforms/scenario_{i:06}.mseed"),
                kind: "waveform".into(),
                size_mb: 10.0 * (stations as f64 / 121.0).max(0.05),
            });
        }
        Self {
            run_label: run_label.to_string(),
            entries,
        }
    }

    /// Number of products.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no products are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total archive size in megabytes.
    pub fn total_mb(&self) -> f64 {
        self.entries.iter().map(|e| e.size_mb).sum()
    }

    /// Entries of one kind.
    pub fn of_kind(&self, kind: &str) -> Vec<&ArchiveEntry> {
        self.entries.iter().filter(|e| e.kind == kind).collect()
    }

    /// Serialise as a text manifest (`size_mb<TAB>kind<TAB>path`).
    pub fn to_manifest_file(&self) -> String {
        let mut out = format!("# archive manifest: {}\n", self.run_label);
        for e in &self.entries {
            out.push_str(&format!("{:.3}\t{}\t{}\n", e.size_mb, e.kind, e.path));
        }
        out
    }

    /// Parse the text manifest format.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut manifest = ArchiveManifest::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# archive manifest:") {
                manifest.run_label = rest.trim().to_string();
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let size_mb: f64 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("line {}: bad size", lineno + 1))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {}: missing kind", lineno + 1))?
                .to_string();
            let path = parts
                .next()
                .ok_or_else(|| format!("line {}: missing path", lineno + 1))?
                .to_string();
            manifest.entries.push(ArchiveEntry {
                path,
                kind,
                size_mb,
            });
        }
        Ok(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StationInput;
    use fakequakes::stations::ChileanInput;

    fn cfg() -> FdwConfig {
        FdwConfig {
            n_waveforms: 10,
            station_input: StationInput::Chilean(ChileanInput::Full),
            ..Default::default()
        }
    }

    #[test]
    fn manifest_covers_all_products() {
        let m = ArchiveManifest::for_run("run1", &cfg());
        assert_eq!(m.of_kind("rupture").len(), 10);
        assert_eq!(m.of_kind("waveform").len(), 10);
        assert_eq!(m.of_kind("gf").len(), 1);
        assert_eq!(m.of_kind("npy").len(), 1);
        assert_eq!(m.len(), 22);
        assert!(!m.is_empty());
        assert!(m.total_mb() > 0.0);
    }

    #[test]
    fn paths_are_labelled_and_unique() {
        let m = ArchiveManifest::for_run("batchX", &cfg());
        let mut paths: Vec<&str> = m.entries.iter().map(|e| e.path.as_str()).collect();
        assert!(paths.iter().all(|p| p.starts_with("batchX/")));
        paths.sort_unstable();
        paths.dedup();
        assert_eq!(paths.len(), m.len());
    }

    #[test]
    fn manifest_roundtrip() {
        let m = ArchiveManifest::for_run("r", &cfg());
        let text = m.to_manifest_file();
        let parsed = ArchiveManifest::parse(&text).unwrap();
        assert_eq!(parsed.run_label, "r");
        assert_eq!(parsed.len(), m.len());
        assert!((parsed.total_mb() - m.total_mb()).abs() < 0.1);
    }

    #[test]
    fn parse_errors() {
        assert!(ArchiveManifest::parse("notasize\tkind\tpath\n").is_err());
        assert!(ArchiveManifest::parse("1.0\tkindonly\n").is_err());
        assert!(ArchiveManifest::parse("").unwrap().is_empty());
    }

    #[test]
    fn small_input_products_are_smaller() {
        let small = ArchiveManifest::for_run(
            "s",
            &FdwConfig {
                station_input: StationInput::Chilean(ChileanInput::Small),
                ..cfg()
            },
        );
        let full = ArchiveManifest::for_run("f", &cfg());
        assert!(small.total_mb() < full.total_mb());
    }
}
