//! Cost calibration: execution-time and artifact-size models for FDW jobs,
//! pinned to the values reported in the paper.
//!
//! | Quantity | Paper source | Value used |
//! |---|---|---|
//! | Rupture-job runtime | §5.2.3 "consistently executed in around 2.5 minutes" | median 150 s |
//! | Waveform-job runtime, full input | §5.2.3 "typically took 15 to 20 minutes" | median 20 s + 4.05 s/station/scenario (≈ 16.7 min at 121 stations × 2 scenarios) |
//! | Waveform-job runtime, small input | §5.2.3 "often completed in under 1 minute" | same model (≈ 36 s at 2 stations) |
//! | GF (B-phase) job runtime | §3.0.1 "can span multiple hours depending on the length of a required input list of GNSS stations" | 90 s + 85 s/station (≈ 2.9 h at 121) |
//! | Distance-matrix job | §3.0.1 "generating these files is time-consuming" | median 600 s |
//! | Singularity image size | §3 "928MB Singularity image" | 928 MB, cacheable |
//! | GF `.mseed` size | §3.0.1 "possibly exceeding 1GB" | 9.3 MB/station (≈ 1.1 GB full, ≈ 19 MB small), cacheable |
//! | `.npy` matrices size | §3 "less than 10GB per job input" | 450 MB total, cacheable |
//! | VDC rupture-job time | §3.1.1 | 287 s (constant) |
//! | VDC waveform-job time | §3.1.1 | 144 s (constant) |
//! | Cloud cost | §4.3, EC2 a1.xlarge on-demand | $0.0017 per minute |

use htcsim::job::{ExecModel, InputFile};

/// Seconds a VDC-bursted rupture job takes (paper §3.1.1).
pub const VDC_RUPTURE_SECS: u64 = 287;
/// Seconds a VDC-bursted waveform job takes (paper §3.1.1).
pub const VDC_WAVEFORM_SECS: u64 = 144;
/// Cloud cost per minute of VDC usage, USD (paper §4.3).
pub const CLOUD_COST_PER_MIN: f64 = 0.0017;

/// Lognormal spread applied to OSG job runtimes (node heterogeneity on
/// top of the pool's per-machine speed factor).
pub const RUNTIME_SIGMA: f64 = 0.10;

/// Execution model of an A-phase rupture job generating
/// `ruptures_per_job` scenarios.
pub fn rupture_job_exec(ruptures_per_job: u32) -> ExecModel {
    // 2.5 min at the default 16 ruptures/job; scales linearly.
    let median = 150.0 * ruptures_per_job as f64 / 16.0;
    ExecModel::LogNormalMedian {
        median_s: median.max(30.0),
        sigma: RUNTIME_SIGMA,
    }
}

/// Execution model of the one-off distance-matrix job.
pub fn matrix_job_exec() -> ExecModel {
    ExecModel::LogNormalMedian {
        median_s: 600.0,
        sigma: RUNTIME_SIGMA,
    }
}

/// Execution model of the B-phase Green's-function job for `stations`
/// GNSS stations.
pub fn gf_job_exec(stations: u32) -> ExecModel {
    ExecModel::LogNormalMedian {
        median_s: 90.0 + 85.0 * stations as f64,
        sigma: RUNTIME_SIGMA,
    }
}

/// Execution model of a C-phase waveform job synthesising
/// `waveforms_per_job` scenarios at `stations` stations.
pub fn waveform_job_exec(stations: u32, waveforms_per_job: u32) -> ExecModel {
    ExecModel::LogNormalMedian {
        median_s: 20.0 + 4.05 * stations as f64 * waveforms_per_job as f64,
        sigma: RUNTIME_SIGMA,
    }
}

/// The Singularity/Apptainer image every FDW job stages in (cache-served).
pub fn singularity_image() -> InputFile {
    InputFile {
        name: "mudpy_singularity.sif".into(),
        size_mb: 928.0,
        cacheable: true,
    }
}

/// The recyclable `.npy` distance-matrix pair.
pub fn npy_matrices() -> InputFile {
    InputFile {
        name: "distance_matrices.npy".into(),
        size_mb: 450.0,
        cacheable: true,
    }
}

/// The B-phase `.mseed` GF bundle for `stations` stations ("possibly
/// exceeding 1 GB" at the full 121-station input).
pub fn gf_mseed(stations: u32) -> InputFile {
    InputFile {
        name: format!("gf_{stations}sta.mseed"),
        size_mb: 9.3 * stations as f64,
        cacheable: true,
    }
}

/// The GNSS station-list input file (tiny, but staged like any input).
pub fn station_list_file(stations: u32) -> InputFile {
    InputFile {
        name: format!("stations_{stations}.gflist"),
        size_mb: 0.01 * stations as f64,
        cacheable: false,
    }
}

/// Single-machine (AWS baseline) per-job times: the §3.1 instance runs a
/// rupture job in [`VDC_RUPTURE_SECS`] and a waveform job in
/// [`VDC_WAVEFORM_SECS`]; with 4 Xeon CPUs it executes 4 jobs concurrently.
pub const AWS_BASELINE_SLOTS: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rupture_job_near_2_5_minutes() {
        assert_eq!(rupture_job_exec(16).median_s(), 150.0);
        assert_eq!(rupture_job_exec(32).median_s(), 300.0);
        // Tiny batches still cost the folder-setup floor.
        assert!(rupture_job_exec(1).median_s() >= 30.0);
    }

    #[test]
    fn waveform_job_matches_paper_ranges() {
        // Full input, 2 scenarios per job: 15–20 minutes.
        let full = waveform_job_exec(121, 2).median_s();
        assert!((900.0..1200.0).contains(&full), "full {full}");
        // Small input: under a minute.
        let small = waveform_job_exec(2, 2).median_s();
        assert!(small < 60.0, "small {small}");
    }

    #[test]
    fn gf_job_spans_hours_for_full_input() {
        let full = gf_job_exec(121).median_s();
        assert!((2.5 * 3600.0..3.5 * 3600.0).contains(&full), "full {full}");
        let small = gf_job_exec(2).median_s();
        assert!(small < 600.0, "small {small}");
    }

    #[test]
    fn artifact_sizes_match_paper() {
        assert_eq!(singularity_image().size_mb, 928.0);
        assert!(singularity_image().cacheable);
        let gf_full = gf_mseed(121);
        assert!(gf_full.size_mb > 1000.0, "full GF bundle exceeds 1 GB");
        let gf_small = gf_mseed(2);
        assert!(gf_small.size_mb < 25.0);
        assert!(
            npy_matrices().size_mb < 10_000.0,
            "under the 10 GB OSG input bound"
        );
    }

    #[test]
    fn vdc_constants() {
        assert_eq!(VDC_RUPTURE_SECS, 287);
        assert_eq!(VDC_WAVEFORM_SECS, 144);
        assert!((CLOUD_COST_PER_MIN - 0.0017).abs() < 1e-12);
    }
}
