//! Chaos-recovery harness: run an FDW campaign under injected faults and
//! prove the rescue-DAG round-trip recovers every science product.
//!
//! A campaign repeats rounds of *run → rescue → repair → resume* until the
//! DAG completes: the first round executes under a [`FaultClass`] at some
//! intensity; when nodes fail permanently, the rescue file is written,
//! parsed back, and resumed against a repaired configuration (faults
//! cleared, walltime limit lifted) — the operational "fix the bug and
//! resubmit the rescue DAG" loop. The campaign then proves zero artifact
//! loss by digesting the live science products of every completed node and
//! comparing against the fault-free baseline at the same seed.

use std::collections::BTreeSet;

use dagman::driver::Dagman;
use dagman::monitor::{dag_metrics, per_dagman_stats};
use dagman::rescue::{parse_rescue, rescue_file, resume};
use fdw_obs::Obs;
use htcsim::cluster::{Cluster, ClusterConfig};
use htcsim::fault::FaultConfig;
use htcsim::job::OwnerId;
use htcsim::pool::PoolConfig;
use htcsim::scoreboard::DefenseStats;

use crate::config::FdwConfig;
use crate::live;
use crate::phases::build_fdw_dag;

/// The seven fault classes the chaos matrix exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Execution attempts exit non-zero at random; retries cure them.
    TransientExit,
    /// A fraction of job names exits non-zero on every attempt; only the
    /// rescue/repair round-trip cures them.
    PermanentExit,
    /// A fraction of machines match fast and kill every job placed on
    /// them.
    BlackHole,
    /// Stage-in/stage-out transfers fail, holding the job until release.
    TransferFail,
    /// Jobs are held at execute time for policy reasons, then released.
    Hold,
    /// A tight walltime limit holds-and-removes long jobs.
    Timeout,
    /// Cached transfer payloads are silently corrupted; without the
    /// checksum defense the corruption surfaces only as a late exec
    /// failure after the full runtime is burned.
    Corruption,
}

impl FaultClass {
    /// Every class, in matrix order.
    pub const ALL: [FaultClass; 7] = [
        FaultClass::TransientExit,
        FaultClass::PermanentExit,
        FaultClass::BlackHole,
        FaultClass::TransferFail,
        FaultClass::Hold,
        FaultClass::Timeout,
        FaultClass::Corruption,
    ];

    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::TransientExit => "transient-exit",
            FaultClass::PermanentExit => "permanent-exit",
            FaultClass::BlackHole => "black-hole",
            FaultClass::TransferFail => "transfer-fail",
            FaultClass::Hold => "hold",
            FaultClass::Timeout => "timeout",
            FaultClass::Corruption => "corruption",
        }
    }

    /// Turn this fault class on in `cfg` at the given intensity (a
    /// probability/fraction for the stochastic classes; the timeout class
    /// tightens the walltime limit instead, harder at higher intensity).
    pub fn apply(self, intensity: f64, cfg: &mut FdwConfig) {
        match self {
            FaultClass::TransientExit => cfg.fault.transient_exit_prob = intensity,
            FaultClass::PermanentExit => cfg.fault.permanent_job_fraction = intensity,
            FaultClass::BlackHole => cfg.fault.black_hole_fraction = intensity,
            FaultClass::TransferFail => cfg.fault.transfer_fail_prob = intensity,
            FaultClass::Hold => cfg.fault.hold_prob = intensity,
            FaultClass::Timeout => {
                // 600 s cuts the fixed-time matrix job and the slow tail
                // of rupture jobs; higher intensity squeezes harder.
                cfg.job_timeout_s = (600.0 * (1.0 - intensity)).max(60.0) as u64;
            }
            FaultClass::Corruption => cfg.fault.corrupt_prob = intensity,
        }
    }
}

/// Outcome of one chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Fault class exercised.
    pub class: FaultClass,
    /// Intensity the class ran at.
    pub intensity: f64,
    /// Rounds until the DAG completed (1 = no rescue needed).
    pub rounds: u32,
    /// Retries consumed across all rounds.
    pub retries: u64,
    /// Hold events observed across all rounds.
    pub holds: u64,
    /// Nodes that failed permanently in round one (recovered later).
    pub first_round_failures: usize,
    /// FNV-1a digest of the live science products of every node.
    pub digest: u64,
    /// Rescue-DAG files written between rounds (empty when round one
    /// completed cleanly).
    pub rescue_files: Vec<String>,
    /// One `.dag.metrics` JSON document per round, written alongside the
    /// rescue file of that round (the last entry covers the finishing
    /// round, which needs no rescue).
    pub round_metrics: Vec<String>,
    /// Execution seconds that ended in a completion, summed over rounds.
    pub goodput_s: u64,
    /// Execution seconds lost to failures, evictions, holds and cancelled
    /// speculative duplicates, summed over rounds.
    pub badput_s: u64,
    /// Simulated wall-clock seconds to finish the campaign (all rounds).
    pub makespan_s: u64,
    /// Pool-side defense actions (blacklists, paroles, quarantines),
    /// summed over rounds. All-zero when defenses are off.
    pub defense: DefenseStats,
    /// Speculative duplicates launched by the straggler defense.
    pub speculations: u64,
    /// Execution seconds burned by cancelled speculative losers.
    pub spec_wasted_s: f64,
}

/// A small, fully available pool: campaigns finish in seconds and the
/// only nondeterminism is the seeded fault plan.
pub fn chaos_cluster_config() -> ClusterConfig {
    ClusterConfig {
        pool: PoolConfig {
            target_slots: 16,
            glidein_slots: 4,
            avail_mean: 1.0,
            avail_sigma: 0.0,
            glidein_lifetime_s: 1e9,
            ..Default::default()
        },
        ..ClusterConfig::with_cache()
    }
}

/// Run one chaos campaign: execute `cfg` (faults included) on the
/// cluster, and loop through the rescue/repair/resume round-trip until
/// every node completes. Errors if `max_rounds` rounds do not converge.
pub fn run_chaos_campaign(
    class: FaultClass,
    intensity: f64,
    base_cfg: &FdwConfig,
    cluster_cfg: &ClusterConfig,
    max_rounds: u32,
) -> Result<ChaosReport, String> {
    run_chaos_campaign_with_obs(
        class,
        intensity,
        base_cfg,
        cluster_cfg,
        max_rounds,
        &Obs::metrics_only(),
    )
}

/// [`run_chaos_campaign`] with a telemetry handle. Each round runs on its
/// own trace process lane (`pid` = round number) with timestamps shifted
/// so the rounds tile one continuous timeline; a `chaos`-category span
/// covers every round and a `rescue` instant marks each round-trip. When
/// the handle is enabled, the reported retry/hold totals are the
/// campaign's *deltas* of the `dagman.retries`/`dagman.holds` registry
/// counters — the registry is the system of record, and the DAGMan's own
/// tallies are reconciled against it in tests. Campaigns sharing one
/// sink must run sequentially for the deltas to be attributable.
pub fn run_chaos_campaign_with_obs(
    class: FaultClass,
    intensity: f64,
    base_cfg: &FdwConfig,
    cluster_cfg: &ClusterConfig,
    max_rounds: u32,
    obs: &Obs,
) -> Result<ChaosReport, String> {
    let mut cfg = base_cfg.clone();
    class.apply(intensity, &mut cfg);
    let total = cfg.total_jobs() as usize;

    let retries0 = obs.counter("dagman.retries");
    let holds0 = obs.counter("dagman.holds");
    obs.inc("chaos.campaigns", 1);

    let mut dm = Dagman::new(build_fdw_dag(&cfg)?, OwnerId(0)).with_speculation(cfg.speculation);
    let mut faulty_cluster = cluster_cfg.clone();
    faulty_cluster.faults = cfg.fault;
    // Defenses stay configured across every round: the operator repairs
    // the pool faults between rounds, not the defense layer.
    faulty_cluster.defense = cfg.defense;
    let mut repaired_cluster = cluster_cfg.clone();
    repaired_cluster.defense = cfg.defense;

    let mut rounds = 0u32;
    let mut dm_retries = 0u64;
    let mut dm_holds = 0u64;
    let mut first_round_failures = 0usize;
    let mut rescue_files: Vec<String> = Vec::new();
    let mut round_metrics: Vec<String> = Vec::new();
    let mut goodput_s = 0u64;
    let mut badput_s = 0u64;
    let mut defense = DefenseStats::default();
    let mut speculations = 0u64;
    let mut spec_wasted_s = 0f64;
    // Cumulative offset so round N+1's trace starts where round N ended.
    let mut clock_s = 0u64;
    loop {
        rounds += 1;
        if rounds > max_rounds {
            return Err(format!(
                "campaign {}@{intensity} did not converge in {max_rounds} rounds",
                class.label()
            ));
        }
        // Repair rounds run fault-free with the walltime limit lifted:
        // the operator fixed the environment and resubmitted the rescue.
        let cluster = if rounds == 1 {
            faulty_cluster.clone()
        } else {
            repaired_cluster.clone()
        };
        let round_obs = obs.scoped(rounds, clock_s);
        dm = dm.with_obs(round_obs.clone());
        let report = Cluster::new(cluster, cfg.seed.wrapping_add(rounds as u64))
            .with_obs(round_obs.clone())
            .run(&mut dm);
        dm_retries += dm.retries();
        dm_holds += dm.holds();
        defense.blacklists += report.defense.blacklists;
        defense.paroles += report.defense.paroles;
        defense.quarantines += report.defense.quarantines;
        speculations += dm.speculations();
        spec_wasted_s += dm.wasted_speculative_seconds();
        obs.inc("chaos.rounds", 1);
        let makespan_s = report.makespan.as_secs();
        round_obs.span("chaos", &format!("round:{rounds}"), 0, 0, makespan_s);
        crate::workflow::record_phase_spans(&round_obs, &report, std::slice::from_ref(&dm));
        if report.timed_out {
            return Err(format!(
                "campaign {}@{intensity} hit the simulation time cap",
                class.label()
            ));
        }
        let finished = dm.completed() == total;
        // Real DAGMan ships a .dag.metrics file at every DAG exit;
        // rescue_dag_number counts the rescue generation this exit wrote.
        let rescue_number = rescue_files.len() as u32 + u32::from(!finished);
        let stats = per_dagman_stats(&report);
        if let Some(s) = stats.iter().find(|s| s.owner == dm.owner()) {
            goodput_s += s.goodput_secs;
            badput_s += s.badput_secs;
            round_metrics.push(
                dag_metrics(&dm, s, rescue_number, report.defense, report.federation).render(),
            );
        }
        clock_s += makespan_s;
        if finished {
            break;
        }
        if rounds == 1 {
            first_round_failures = dm.failed_nodes().len();
        }
        obs.inc("chaos.rescues", 1);
        round_obs.instant("chaos", "rescue", 0, makespan_s);
        // Rescue round-trip: serialise, parse back, resume on a repaired
        // configuration (no faults, no walltime limit).
        let rescue = rescue_file(&dm);
        let done = parse_rescue(&rescue)?;
        rescue_files.push(rescue);
        let repaired = FdwConfig {
            fault: FaultConfig::default(),
            job_timeout_s: 0,
            ..cfg.clone()
        };
        dm =
            resume(build_fdw_dag(&repaired)?, &done, OwnerId(0))?.with_speculation(cfg.speculation);
    }

    let (retries, holds) = if obs.is_enabled() {
        (
            obs.counter("dagman.retries") - retries0,
            obs.counter("dagman.holds") - holds0,
        )
    } else {
        (dm_retries, dm_holds)
    };
    let done: BTreeSet<String> = dm.done_nodes().iter().map(|s| s.to_string()).collect();
    let digest = science_digest(base_cfg, &done)?;
    Ok(ChaosReport {
        class,
        intensity,
        rounds,
        retries,
        holds,
        first_round_failures,
        digest,
        rescue_files,
        round_metrics,
        goodput_s,
        badput_s,
        makespan_s: clock_s,
        defense,
        speculations,
        spec_wasted_s,
    })
}

/// The fault-free reference digest for a configuration: every node
/// completes, so every science product is present.
pub fn baseline_digest(cfg: &FdwConfig) -> Result<u64, String> {
    let dag = build_fdw_dag(cfg)?;
    let all: BTreeSet<String> = dag.nodes().iter().map(|n| n.name.clone()).collect();
    science_digest(cfg, &all)
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Digest the live science products covered by `completed` nodes: every
/// rupture job's slip distributions, plus a station-0 waveform sample of
/// the first waveform job. Errors if any expected node is missing — a
/// lost artifact must fail loudly, not produce a different digest.
pub fn science_digest(cfg: &FdwConfig, completed: &BTreeSet<String>) -> Result<u64, String> {
    let dag = build_fdw_dag(cfg)?;
    for node in dag.nodes() {
        if !completed.contains(&node.name) {
            return Err(format!("lost artifact: node {} never completed", node.name));
        }
    }

    let inputs = live::build_inputs(cfg).map_err(|e| e.to_string())?;
    let matrices = live::live_matrix_phase(&inputs);
    let mut h = FNV_OFFSET;
    // A-phase products: slip distributions of every rupture job.
    for i in 0..cfg.n_rupture_jobs() {
        let first = i * cfg.ruptures_per_job as u64;
        let count = (cfg.n_waveforms - first).min(cfg.ruptures_per_job as u64);
        let scenarios = live::live_rupture_job(cfg, &inputs, &matrices, first, count)
            .map_err(|e| e.to_string())?;
        for sc in &scenarios {
            for s in &sc.slip_m {
                h = fnv_u64(h, s.to_bits());
            }
        }
    }
    // C-phase sample: station traces of the first waveform job's
    // scenarios, short duration (keeps campaigns fast while still
    // covering the GF library and synthesis path).
    let gfs = live::live_gf_phase(&inputs).map_err(|e| e.to_string())?;
    let count = (cfg.waveforms_per_job as u64).min(cfg.n_waveforms);
    let scenarios =
        live::live_rupture_job(cfg, &inputs, &matrices, 0, count).map_err(|e| e.to_string())?;
    let wfs = live::live_waveform_job(cfg, &inputs, &matrices, &gfs, &scenarios, 32.0)
        .map_err(|e| e.to_string())?;
    for per_station in &wfs {
        for sample in per_station[0].east_m.iter().chain(&per_station[0].north_m) {
            h = fnv_u64(h, sample.to_bits());
        }
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StationInput;
    use fakequakes::stations::ChileanInput;

    fn tiny_cfg() -> FdwConfig {
        FdwConfig {
            fault_nx: 10,
            fault_nd: 5,
            station_input: StationInput::Chilean(ChileanInput::Small),
            n_waveforms: 4,
            ruptures_per_job: 2,
            waveforms_per_job: 2,
            retries: 3,
            retry_defer_s: 30,
            seed: 5,
            ..Default::default()
        }
    }

    #[test]
    fn transient_campaign_recovers_with_matching_digest() {
        let cfg = tiny_cfg();
        let baseline = baseline_digest(&cfg).unwrap();
        let rep = run_chaos_campaign(
            FaultClass::TransientExit,
            0.4,
            &cfg,
            &chaos_cluster_config(),
            4,
        )
        .unwrap();
        assert_eq!(rep.digest, baseline, "science products must be identical");
        assert!(rep.retries > 0, "p=0.4 must trigger retries");
    }

    #[test]
    fn permanent_campaign_needs_the_rescue_round_trip() {
        let cfg = tiny_cfg();
        let baseline = baseline_digest(&cfg).unwrap();
        let rep = run_chaos_campaign(
            FaultClass::PermanentExit,
            1.0,
            &cfg,
            &chaos_cluster_config(),
            4,
        )
        .unwrap();
        assert!(rep.rounds >= 2, "permanent faults require a rescue round");
        assert!(rep.first_round_failures > 0);
        assert_eq!(rep.digest, baseline);
        // One rescue per non-final round, one metrics document per round;
        // failing rounds exit 1, the finishing round exits 0.
        assert_eq!(rep.rescue_files.len(), rep.rounds as usize - 1);
        assert_eq!(rep.round_metrics.len(), rep.rounds as usize);
        for doc in &rep.round_metrics {
            fdw_obs::json::validate(doc).unwrap();
        }
        assert!(rep.round_metrics[0].contains("\"exitcode\":1"));
        assert!(rep.round_metrics[0].contains("\"rescue_dag_number\":1"));
        assert!(rep.round_metrics.last().unwrap().contains("\"exitcode\":0"));
    }

    #[test]
    fn chaos_telemetry_reconciles_with_dagman_tallies() {
        let cfg = tiny_cfg();
        let obs = Obs::enabled();
        let rep = run_chaos_campaign_with_obs(
            FaultClass::TransferFail,
            0.8,
            &cfg,
            &chaos_cluster_config(),
            4,
            &obs,
        )
        .unwrap();
        // Registry deltas (the enabled path) must equal the DAGMan's own
        // tallies (the disabled-handle fallback) on the same campaign.
        let plain = run_chaos_campaign_with_obs(
            FaultClass::TransferFail,
            0.8,
            &cfg,
            &chaos_cluster_config(),
            4,
            &Obs::disabled(),
        )
        .unwrap();
        assert_eq!(rep.retries, plain.retries);
        assert_eq!(rep.holds, plain.holds);
        assert_eq!(rep.digest, plain.digest);
        assert!(rep.holds > 0, "transfer faults at 0.8 must hold jobs");
        assert_eq!(obs.counter("dagman.holds"), rep.holds);
        assert_eq!(obs.counter("chaos.rounds"), rep.rounds as u64);
        assert_eq!(obs.counter("chaos.campaigns"), 1);
        assert_eq!(obs.counter("chaos.rescues"), rep.rescue_files.len() as u64);
        let trace = obs.chrome_trace();
        fdw_obs::json::validate(&trace).unwrap();
        let cats = fdw_obs::chrome::categories(&trace);
        for want in ["chaos", "dagman", "phase", "pool"] {
            assert!(cats.contains(&want.to_string()), "missing {want}: {cats:?}");
        }
        assert!(trace.contains("\"name\":\"round:1\""));
        // Rounds tile one timeline: round 2's lane is pid 2.
        if rep.rounds >= 2 {
            assert!(trace.contains("\"pid\":2"));
        }
    }

    #[test]
    fn corruption_campaign_recovers_with_and_without_checksums() {
        let cfg = tiny_cfg();
        let baseline = baseline_digest(&cfg).unwrap();
        // Undefended: silent corruption surfaces as late exec failures
        // (the full runtime is burned before the bad input is noticed);
        // retries on a fresh generation eventually cure each job.
        let off = run_chaos_campaign(
            FaultClass::Corruption,
            0.9,
            &cfg,
            &chaos_cluster_config(),
            4,
        )
        .unwrap();
        assert_eq!(off.digest, baseline, "corruption must never alter products");
        assert!(off.retries > 0, "p=0.9 must poison some stage-ins");
        // Defended: verify-on-read quarantines the bad copy at stage-in
        // and re-fetches from origin — same products, no poisoned runs.
        let mut defended = cfg.clone();
        defended.defense.checksum_enabled = true;
        let on = run_chaos_campaign(
            FaultClass::Corruption,
            0.9,
            &defended,
            &chaos_cluster_config(),
            4,
        )
        .unwrap();
        assert_eq!(on.digest, baseline);
        assert!(
            on.defense.quarantines > 0,
            "checksums must catch corruption"
        );
        assert!(
            on.badput_s < off.badput_s,
            "verify-on-read must beat burn-the-runtime: on={} off={}",
            on.badput_s,
            off.badput_s
        );
    }

    #[test]
    fn digest_detects_lost_artifacts() {
        let cfg = tiny_cfg();
        let dag = build_fdw_dag(&cfg).unwrap();
        let mut done: BTreeSet<String> = dag.nodes().iter().map(|n| n.name.clone()).collect();
        done.remove("waveform.1");
        let err = science_digest(&cfg, &done).unwrap_err();
        assert!(err.contains("lost artifact"), "{err}");
    }

    #[test]
    fn class_labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            FaultClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), FaultClass::ALL.len());
    }
}
