//! FDW configuration: the single parameter file a user edits before
//! launching the workflow ("editing a configuration file for simulation
//! parameters", §3).
//!
//! The format is `key = value` lines with `#` comments — serialisable via
//! [`FdwConfig::to_config_file`] and parsed by [`FdwConfig::parse`].

use dagman::driver::SpeculationConfig;
use fakequakes::stations::ChileanInput;
use fakequakes::stf::StfKind;
use fdw_service::config::ServiceConfig;
use htcsim::fault::FaultConfig;
use htcsim::federation::FederationConfig;
use htcsim::scoreboard::DefenseConfig;

/// Which subduction margin to simulate. The paper evaluates Chile; §7
/// names "regions beyond Chile" as future work, realised here as
/// Cascadia.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Region {
    /// The Chilean subduction zone (the paper's evaluation region).
    #[default]
    Chile,
    /// The Cascadia subduction zone (future-work region).
    Cascadia,
}

impl Region {
    /// Configuration-file label.
    pub fn label(self) -> &'static str {
        match self {
            Region::Chile => "chile",
            Region::Cascadia => "cascadia",
        }
    }

    /// Parse a configuration label.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "chile" => Some(Region::Chile),
            "cascadia" => Some(Region::Cascadia),
            _ => None,
        }
    }
}

/// Which GNSS station input to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StationInput {
    /// One of the paper's two canonical inputs.
    Chilean(ChileanInput),
    /// An arbitrary station count (for sweeps beyond the paper).
    Count(u32),
}

impl StationInput {
    /// Number of stations this input provides.
    pub fn station_count(self) -> u32 {
        match self {
            StationInput::Chilean(c) => c.station_count() as u32,
            StationInput::Count(n) => n,
        }
    }

    /// Configuration-file label.
    pub fn label(self) -> String {
        match self {
            StationInput::Chilean(c) => c.label().to_string(),
            StationInput::Count(n) => n.to_string(),
        }
    }
}

/// The FDW parameter file.
#[derive(Debug, Clone, PartialEq)]
pub struct FdwConfig {
    /// Subduction margin to simulate.
    pub region: Region,
    /// Along-strike subfault count of the fault mesh.
    pub fault_nx: usize,
    /// Down-dip subfault count.
    pub fault_nd: usize,
    /// Station input selection.
    pub station_input: StationInput,
    /// Total waveform scenarios to generate.
    pub n_waveforms: u64,
    /// Rupture scenarios generated per A-phase job.
    pub ruptures_per_job: u32,
    /// Waveform scenarios synthesised per C-phase job.
    pub waveforms_per_job: u32,
    /// Target magnitude range.
    pub mw_range: (f64, f64),
    /// Source time function.
    pub stf: StfKind,
    /// Whether recycled `.npy` matrices are supplied (skips the matrix job).
    pub recycle_npy: bool,
    /// DAGMan maxidle throttle (0 = unlimited).
    pub max_idle: usize,
    /// DAGMan maxjobs throttle (0 = unlimited).
    pub max_jobs: usize,
    /// Base random seed.
    pub seed: u64,
    /// Per-node retry budget (DAGMan `RETRY`).
    pub retries: u32,
    /// Base retry backoff in seconds (`RETRY ... DEFER`, 0 = immediate).
    pub retry_defer_s: u64,
    /// Per-job wall-time limit in seconds (0 = unlimited); jobs over the
    /// limit are held and removed, consuming a retry.
    pub job_timeout_s: u64,
    /// Fault-injection plan applied to the cluster (all-zero = no faults).
    pub fault: FaultConfig,
    /// Pool-side failure defenses (scoreboard, checksums; off by default).
    pub defense: DefenseConfig,
    /// DAGMan straggler speculation (off by default).
    pub speculation: SpeculationConfig,
    /// Federated multi-pool layer: pool fault domains, circuit-breaker
    /// failover, checkpoint/restart migration (off by default).
    pub federation: FederationConfig,
    /// Multi-tenant campaign front-end: admission control, fair share,
    /// load shedding, shared artifact store (off by default).
    pub service: ServiceConfig,
    /// Physical event-queue shards for the cluster DES (0 = simulator
    /// default). Output is byte-identical for every value — the event
    /// order is pinned by the `(time, lane, seq)` key, never by layout.
    pub des_shards: usize,
}

impl Default for FdwConfig {
    fn default() -> Self {
        Self {
            region: Region::Chile,
            fault_nx: 32,
            fault_nd: 16,
            station_input: StationInput::Chilean(ChileanInput::Full),
            n_waveforms: 1024,
            ruptures_per_job: 16,
            waveforms_per_job: 2,
            mw_range: (7.5, 9.0),
            stf: StfKind::Dreger,
            recycle_npy: false,
            max_idle: 1000,
            max_jobs: 0,
            seed: 1,
            retries: 3,
            retry_defer_s: 60,
            job_timeout_s: 0,
            fault: FaultConfig::default(),
            defense: DefenseConfig::default(),
            speculation: SpeculationConfig::default(),
            federation: FederationConfig::default(),
            service: ServiceConfig::default(),
            des_shards: 0,
        }
    }
}

impl FdwConfig {
    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.fault_nx == 0 || self.fault_nd == 0 {
            return Err("fault mesh dimensions must be positive".into());
        }
        if self.n_waveforms == 0 {
            return Err("n_waveforms must be positive".into());
        }
        if self.ruptures_per_job == 0 || self.waveforms_per_job == 0 {
            return Err("per-job batch sizes must be positive".into());
        }
        if self.station_input.station_count() == 0 {
            return Err("station input cannot be empty".into());
        }
        if self.mw_range.0 > self.mw_range.1 {
            return Err("mw_range must be ordered".into());
        }
        if self.des_shards > 4096 {
            return Err("des_shards must be at most 4096".into());
        }
        self.fault.validate()?;
        self.defense.validate()?;
        self.speculation.validate()?;
        self.federation.validate()?;
        self.service.validate()?;
        Ok(())
    }

    /// Number of A-phase rupture jobs this config produces.
    pub fn n_rupture_jobs(&self) -> u64 {
        self.n_waveforms.div_ceil(self.ruptures_per_job as u64)
    }

    /// Number of C-phase waveform jobs this config produces.
    pub fn n_waveform_jobs(&self) -> u64 {
        self.n_waveforms.div_ceil(self.waveforms_per_job as u64)
    }

    /// Total OSG jobs in the DAG (including the B-phase GF job and the
    /// optional matrix job).
    pub fn total_jobs(&self) -> u64 {
        self.n_rupture_jobs() + self.n_waveform_jobs() + 1 + if self.recycle_npy { 0 } else { 1 }
    }

    /// Serialise as the FDW parameter file.
    pub fn to_config_file(&self) -> String {
        format!(
            "# FakeQuakes DAGMan Workflow configuration\n\
             region = {}\n\
             fault_nx = {}\n\
             fault_nd = {}\n\
             station_input = {}\n\
             n_waveforms = {}\n\
             ruptures_per_job = {}\n\
             waveforms_per_job = {}\n\
             mw_min = {}\n\
             mw_max = {}\n\
             stf = {}\n\
             recycle_npy = {}\n\
             max_idle = {}\n\
             max_jobs = {}\n\
             seed = {}\n\
             retries = {}\n\
             retry_defer_s = {}\n\
             job_timeout_s = {}\n\
             fault_seed = {}\n\
             fault_transient = {}\n\
             fault_permanent = {}\n\
             fault_black_hole = {}\n\
             fault_transfer = {}\n\
             fault_hold = {}\n\
             fault_hold_release_s = {}\n\
             fault_corrupt = {}\n\
             defense_scoreboard = {}\n\
             defense_ewma_alpha = {}\n\
             defense_fast_fail_s = {}\n\
             defense_deprioritize = {}\n\
             defense_blacklist_after = {}\n\
             defense_parole_s = {}\n\
             defense_checksum = {}\n\
             defense_checksum_requeue_s = {}\n\
             speculation = {}\n\
             speculation_multiplier = {}\n\
             speculation_quantile = {}\n\
             speculation_min_samples = {}\n\
             federation_enabled = {}\n\
             federation_failover = {}\n\
             federation_burst_idle = {}\n\
             federation_breaker_threshold = {}\n\
             federation_breaker_probe_s = {}\n\
             federation_spinup_s = {}\n\
             checkpoint_enabled = {}\n\
             checkpoint_interval_s = {}\n\
             fault_pool_outage_pool = {}\n\
             fault_pool_outage_start_s = {}\n\
             fault_pool_outage_s = {}\n\
             fault_partition_pool = {}\n\
             fault_partition_start_s = {}\n\
             fault_partition_s = {}\n\
             fault_preempt = {}\n\
             service_enabled = {}\n\
             service_max_concurrent = {}\n\
             service_fair_share = {}\n\
             service_degrade_depth = {}\n\
             service_shed_backlog = {}\n\
             service_breaker_threshold = {}\n\
             service_breaker_probe_s = {}\n\
             service_store = {}\n\
             service_store_mb = {}\n\
             service_store_verify = {}\n\
             tenant_count = {}\n\
             tenant_quota = {}\n\
             tenant_queue_depth = {}\n\
             tenant_deadline_shed = {}\n\
             des_shards = {}\n",
            self.region.label(),
            self.fault_nx,
            self.fault_nd,
            self.station_input.label(),
            self.n_waveforms,
            self.ruptures_per_job,
            self.waveforms_per_job,
            self.mw_range.0,
            self.mw_range.1,
            self.stf.label(),
            self.recycle_npy,
            self.max_idle,
            self.max_jobs,
            self.seed,
            self.retries,
            self.retry_defer_s,
            self.job_timeout_s,
            self.fault.seed,
            self.fault.transient_exit_prob,
            self.fault.permanent_job_fraction,
            self.fault.black_hole_fraction,
            self.fault.transfer_fail_prob,
            self.fault.hold_prob,
            self.fault.hold_release_s,
            self.fault.corrupt_prob,
            self.defense.scoreboard_enabled,
            self.defense.ewma_alpha,
            self.defense.fast_fail_s,
            self.defense.deprioritize_threshold,
            self.defense.blacklist_after,
            self.defense.parole_s,
            self.defense.checksum_enabled,
            self.defense.checksum_requeue_s,
            self.speculation.enabled,
            self.speculation.multiplier,
            self.speculation.quantile,
            self.speculation.min_samples,
            self.federation.enabled,
            self.federation.failover_enabled,
            self.federation.burst_idle_threshold,
            self.federation.breaker_failure_threshold,
            self.federation.breaker_probe_s,
            self.federation.cloud_spinup_s,
            self.federation.checkpoint_enabled,
            self.federation.checkpoint_interval_s,
            self.fault.pool.outage_pool,
            self.fault.pool.outage_start_s,
            self.fault.pool.outage_duration_s,
            self.fault.pool.partition_pool,
            self.fault.pool.partition_start_s,
            self.fault.pool.partition_duration_s,
            self.fault.pool.preempt_prob,
            self.service.enabled,
            self.service.max_concurrent,
            self.service.fair_share,
            self.service.degrade_depth,
            self.service.shed_backlog,
            self.service.breaker_threshold,
            self.service.breaker_probe_s,
            self.service.store_enabled,
            self.service.store_budget_mb,
            self.service.store_verify,
            self.service.tenants,
            self.service.tenant_quota,
            self.service.tenant_queue_depth,
            self.service.tenant_deadline_shed,
            self.des_shards,
        )
    }

    /// Parse the parameter-file format; unknown keys are an error (typos
    /// in simulation configs must not pass silently).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut cfg = FdwConfig::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key = value", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| format!("line {}: invalid {what} '{value}'", lineno + 1);
            match key {
                "region" => {
                    cfg.region = Region::parse(value).ok_or_else(|| bad("region"))?;
                }
                "fault_nx" => cfg.fault_nx = value.parse().map_err(|_| bad("fault_nx"))?,
                "fault_nd" => cfg.fault_nd = value.parse().map_err(|_| bad("fault_nd"))?,
                "station_input" => {
                    cfg.station_input = match value {
                        "full" => StationInput::Chilean(ChileanInput::Full),
                        "small" => StationInput::Chilean(ChileanInput::Small),
                        n => StationInput::Count(n.parse().map_err(|_| bad("station_input"))?),
                    }
                }
                "n_waveforms" => cfg.n_waveforms = value.parse().map_err(|_| bad("n_waveforms"))?,
                "ruptures_per_job" => {
                    cfg.ruptures_per_job = value.parse().map_err(|_| bad("ruptures_per_job"))?
                }
                "waveforms_per_job" => {
                    cfg.waveforms_per_job = value.parse().map_err(|_| bad("waveforms_per_job"))?
                }
                "mw_min" => cfg.mw_range.0 = value.parse().map_err(|_| bad("mw_min"))?,
                "mw_max" => cfg.mw_range.1 = value.parse().map_err(|_| bad("mw_max"))?,
                "stf" => {
                    cfg.stf = StfKind::parse(value).ok_or_else(|| bad("stf"))?;
                }
                "recycle_npy" => cfg.recycle_npy = value.parse().map_err(|_| bad("recycle_npy"))?,
                "max_idle" => cfg.max_idle = value.parse().map_err(|_| bad("max_idle"))?,
                "max_jobs" => cfg.max_jobs = value.parse().map_err(|_| bad("max_jobs"))?,
                "seed" => cfg.seed = value.parse().map_err(|_| bad("seed"))?,
                "retries" => cfg.retries = value.parse().map_err(|_| bad("retries"))?,
                "retry_defer_s" => {
                    cfg.retry_defer_s = value.parse().map_err(|_| bad("retry_defer_s"))?
                }
                "job_timeout_s" => {
                    cfg.job_timeout_s = value.parse().map_err(|_| bad("job_timeout_s"))?
                }
                "fault_seed" => cfg.fault.seed = value.parse().map_err(|_| bad("fault_seed"))?,
                "fault_transient" => {
                    cfg.fault.transient_exit_prob =
                        value.parse().map_err(|_| bad("fault_transient"))?
                }
                "fault_permanent" => {
                    cfg.fault.permanent_job_fraction =
                        value.parse().map_err(|_| bad("fault_permanent"))?
                }
                "fault_black_hole" => {
                    cfg.fault.black_hole_fraction =
                        value.parse().map_err(|_| bad("fault_black_hole"))?
                }
                "fault_transfer" => {
                    cfg.fault.transfer_fail_prob =
                        value.parse().map_err(|_| bad("fault_transfer"))?
                }
                "fault_hold" => {
                    cfg.fault.hold_prob = value.parse().map_err(|_| bad("fault_hold"))?
                }
                "fault_hold_release_s" => {
                    cfg.fault.hold_release_s =
                        value.parse().map_err(|_| bad("fault_hold_release_s"))?
                }
                "fault_corrupt" => {
                    cfg.fault.corrupt_prob = value.parse().map_err(|_| bad("fault_corrupt"))?
                }
                "defense_scoreboard" => {
                    cfg.defense.scoreboard_enabled =
                        value.parse().map_err(|_| bad("defense_scoreboard"))?
                }
                "defense_ewma_alpha" => {
                    cfg.defense.ewma_alpha = value.parse().map_err(|_| bad("defense_ewma_alpha"))?
                }
                "defense_fast_fail_s" => {
                    cfg.defense.fast_fail_s =
                        value.parse().map_err(|_| bad("defense_fast_fail_s"))?
                }
                "defense_deprioritize" => {
                    cfg.defense.deprioritize_threshold =
                        value.parse().map_err(|_| bad("defense_deprioritize"))?
                }
                "defense_blacklist_after" => {
                    cfg.defense.blacklist_after =
                        value.parse().map_err(|_| bad("defense_blacklist_after"))?
                }
                "defense_parole_s" => {
                    cfg.defense.parole_s = value.parse().map_err(|_| bad("defense_parole_s"))?
                }
                "defense_checksum" => {
                    cfg.defense.checksum_enabled =
                        value.parse().map_err(|_| bad("defense_checksum"))?
                }
                "defense_checksum_requeue_s" => {
                    cfg.defense.checksum_requeue_s = value
                        .parse()
                        .map_err(|_| bad("defense_checksum_requeue_s"))?
                }
                "speculation" => {
                    cfg.speculation.enabled = value.parse().map_err(|_| bad("speculation"))?
                }
                "speculation_multiplier" => {
                    cfg.speculation.multiplier =
                        value.parse().map_err(|_| bad("speculation_multiplier"))?
                }
                "speculation_quantile" => {
                    cfg.speculation.quantile =
                        value.parse().map_err(|_| bad("speculation_quantile"))?
                }
                "speculation_min_samples" => {
                    cfg.speculation.min_samples =
                        value.parse().map_err(|_| bad("speculation_min_samples"))?
                }
                "federation_enabled" => {
                    cfg.federation.enabled = value.parse().map_err(|_| bad("federation_enabled"))?
                }
                "federation_failover" => {
                    cfg.federation.failover_enabled =
                        value.parse().map_err(|_| bad("federation_failover"))?
                }
                "federation_burst_idle" => {
                    cfg.federation.burst_idle_threshold =
                        value.parse().map_err(|_| bad("federation_burst_idle"))?
                }
                "federation_breaker_threshold" => {
                    cfg.federation.breaker_failure_threshold = value
                        .parse()
                        .map_err(|_| bad("federation_breaker_threshold"))?
                }
                "federation_breaker_probe_s" => {
                    cfg.federation.breaker_probe_s = value
                        .parse()
                        .map_err(|_| bad("federation_breaker_probe_s"))?
                }
                "federation_spinup_s" => {
                    cfg.federation.cloud_spinup_s =
                        value.parse().map_err(|_| bad("federation_spinup_s"))?
                }
                "checkpoint_enabled" => {
                    cfg.federation.checkpoint_enabled =
                        value.parse().map_err(|_| bad("checkpoint_enabled"))?
                }
                "checkpoint_interval_s" => {
                    cfg.federation.checkpoint_interval_s =
                        value.parse().map_err(|_| bad("checkpoint_interval_s"))?
                }
                "fault_pool_outage_pool" => {
                    cfg.fault.pool.outage_pool =
                        value.parse().map_err(|_| bad("fault_pool_outage_pool"))?
                }
                "fault_pool_outage_start_s" => {
                    cfg.fault.pool.outage_start_s = value
                        .parse()
                        .map_err(|_| bad("fault_pool_outage_start_s"))?
                }
                "fault_pool_outage_s" => {
                    cfg.fault.pool.outage_duration_s =
                        value.parse().map_err(|_| bad("fault_pool_outage_s"))?
                }
                "fault_partition_pool" => {
                    cfg.fault.pool.partition_pool =
                        value.parse().map_err(|_| bad("fault_partition_pool"))?
                }
                "fault_partition_start_s" => {
                    cfg.fault.pool.partition_start_s =
                        value.parse().map_err(|_| bad("fault_partition_start_s"))?
                }
                "fault_partition_s" => {
                    cfg.fault.pool.partition_duration_s =
                        value.parse().map_err(|_| bad("fault_partition_s"))?
                }
                "fault_preempt" => {
                    cfg.fault.pool.preempt_prob = value.parse().map_err(|_| bad("fault_preempt"))?
                }
                "service_enabled" => {
                    cfg.service.enabled = value.parse().map_err(|_| bad("service_enabled"))?
                }
                "service_max_concurrent" => {
                    cfg.service.max_concurrent =
                        value.parse().map_err(|_| bad("service_max_concurrent"))?
                }
                "service_fair_share" => {
                    cfg.service.fair_share = value.parse().map_err(|_| bad("service_fair_share"))?
                }
                "service_degrade_depth" => {
                    cfg.service.degrade_depth =
                        value.parse().map_err(|_| bad("service_degrade_depth"))?
                }
                "service_shed_backlog" => {
                    cfg.service.shed_backlog =
                        value.parse().map_err(|_| bad("service_shed_backlog"))?
                }
                "service_breaker_threshold" => {
                    cfg.service.breaker_threshold = value
                        .parse()
                        .map_err(|_| bad("service_breaker_threshold"))?
                }
                "service_breaker_probe_s" => {
                    cfg.service.breaker_probe_s =
                        value.parse().map_err(|_| bad("service_breaker_probe_s"))?
                }
                "service_store" => {
                    cfg.service.store_enabled = value.parse().map_err(|_| bad("service_store"))?
                }
                "service_store_mb" => {
                    cfg.service.store_budget_mb =
                        value.parse().map_err(|_| bad("service_store_mb"))?
                }
                "service_store_verify" => {
                    cfg.service.store_verify =
                        value.parse().map_err(|_| bad("service_store_verify"))?
                }
                "tenant_count" => {
                    cfg.service.tenants = value.parse().map_err(|_| bad("tenant_count"))?
                }
                "tenant_quota" => {
                    cfg.service.tenant_quota = value.parse().map_err(|_| bad("tenant_quota"))?
                }
                "tenant_queue_depth" => {
                    cfg.service.tenant_queue_depth =
                        value.parse().map_err(|_| bad("tenant_queue_depth"))?
                }
                "tenant_deadline_shed" => {
                    cfg.service.tenant_deadline_shed =
                        value.parse().map_err(|_| bad("tenant_deadline_shed"))?
                }
                "des_shards" => cfg.des_shards = value.parse().map_err(|_| bad("des_shards"))?,
                other => return Err(format!("line {}: unknown key '{other}'", lineno + 1)),
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(FdwConfig::default().validate().is_ok());
    }

    #[test]
    fn job_counts() {
        let cfg = FdwConfig {
            n_waveforms: 1024,
            ..Default::default()
        };
        assert_eq!(cfg.n_rupture_jobs(), 64);
        assert_eq!(cfg.n_waveform_jobs(), 512);
        assert_eq!(cfg.total_jobs(), 64 + 512 + 1 + 1);
        let recycled = FdwConfig {
            recycle_npy: true,
            ..cfg
        };
        assert_eq!(recycled.total_jobs(), 64 + 512 + 1);
    }

    #[test]
    fn job_counts_round_up() {
        let cfg = FdwConfig {
            n_waveforms: 17,
            ..Default::default()
        };
        assert_eq!(cfg.n_rupture_jobs(), 2);
        assert_eq!(cfg.n_waveform_jobs(), 9);
    }

    #[test]
    fn config_file_roundtrip() {
        let cfg = FdwConfig {
            n_waveforms: 50_000,
            station_input: StationInput::Chilean(ChileanInput::Small),
            recycle_npy: true,
            mw_range: (7.8, 8.4),
            stf: StfKind::Cosine,
            ..Default::default()
        };
        let text = cfg.to_config_file();
        let parsed = FdwConfig::parse(&text).unwrap();
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn parse_custom_station_count() {
        let cfg = FdwConfig::parse("station_input = 60\n").unwrap();
        assert_eq!(cfg.station_input, StationInput::Count(60));
        assert_eq!(cfg.station_input.station_count(), 60);
    }

    #[test]
    fn parse_rejects_unknown_keys_and_bad_values() {
        assert!(FdwConfig::parse("frobnicate = 3\n").is_err());
        assert!(FdwConfig::parse("n_waveforms = many\n").is_err());
        assert!(FdwConfig::parse("n_waveforms 1024\n").is_err());
        assert!(FdwConfig::parse("stf = boxcar\n").is_err());
        // Misspelled fault knobs must error, not inject nothing silently.
        assert!(FdwConfig::parse("fault_transients = 0.1\n").is_err());
        assert!(FdwConfig::parse("fault_transient = lots\n").is_err());
    }

    #[test]
    fn fault_keys_roundtrip() {
        let cfg = FdwConfig {
            retries: 5,
            retry_defer_s: 120,
            job_timeout_s: 7200,
            fault: FaultConfig {
                seed: 99,
                transient_exit_prob: 0.25,
                permanent_job_fraction: 0.01,
                black_hole_fraction: 0.1,
                transfer_fail_prob: 0.05,
                hold_prob: 0.02,
                hold_release_s: 300.0,
                corrupt_prob: 0.03,
                pool: Default::default(),
            },
            ..Default::default()
        };
        let text = cfg.to_config_file();
        assert!(text.contains("fault_transient = 0.25"));
        assert!(text.contains("fault_corrupt = 0.03"));
        let parsed = FdwConfig::parse(&text).unwrap();
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn defense_keys_roundtrip() {
        let cfg = FdwConfig {
            defense: DefenseConfig {
                scoreboard_enabled: true,
                ewma_alpha: 0.3,
                fast_fail_s: 45.0,
                deprioritize_threshold: 0.6,
                blacklist_after: 3,
                parole_s: 900.0,
                checksum_enabled: true,
                checksum_requeue_s: 20.0,
            },
            speculation: SpeculationConfig {
                enabled: true,
                multiplier: 2.5,
                quantile: 0.9,
                min_samples: 4,
            },
            ..Default::default()
        };
        let text = cfg.to_config_file();
        assert!(text.contains("defense_scoreboard = true"));
        assert!(text.contains("speculation_multiplier = 2.5"));
        let parsed = FdwConfig::parse(&text).unwrap();
        assert_eq!(parsed, cfg);
        // Defaults keep every defense off, so legacy configs are
        // untouched by the new knobs.
        let d = FdwConfig::default();
        assert!(!d.defense.any_enabled());
        assert!(!d.speculation.enabled);
        // Bad knob values are rejected at validate time.
        assert!(FdwConfig::parse("defense_scoreboard = true\ndefense_ewma_alpha = 2.0\n").is_err());
        assert!(FdwConfig::parse("speculation = true\nspeculation_multiplier = 0.5\n").is_err());
        assert!(FdwConfig::parse("defense_scoreboards = true\n").is_err());
    }

    #[test]
    fn service_keys_roundtrip() {
        let cfg = FdwConfig {
            service: ServiceConfig::defended(6),
            ..Default::default()
        };
        let text = cfg.to_config_file();
        assert!(text.contains("service_enabled = true"));
        assert!(text.contains("service_fair_share = 600"));
        assert!(text.contains("tenant_count = 6"));
        assert!(text.contains("tenant_deadline_shed = true"));
        let parsed = FdwConfig::parse(&text).unwrap();
        assert_eq!(parsed, cfg);
        // Defaults keep the front-end off so legacy configs behave as
        // before.
        assert!(!FdwConfig::default().service.enabled);
        // Inconsistent service knobs fail validation at parse time.
        assert!(FdwConfig::parse("tenant_count = 0\n").is_err());
        assert!(FdwConfig::parse("service_breaker_threshold = 3\n").is_err());
        assert!(FdwConfig::parse("service_degrade_depth = 8\nservice_shed_backlog = 8\n").is_err());
        assert!(
            FdwConfig::parse("service_tenants = 4\n").is_err(),
            "unknown key"
        );
    }

    #[test]
    fn federation_keys_roundtrip() {
        let cfg = FdwConfig {
            federation: FederationConfig {
                enabled: true,
                failover_enabled: true,
                burst_idle_threshold: 12,
                breaker_failure_threshold: 5,
                breaker_probe_s: 450.0,
                checkpoint_enabled: true,
                checkpoint_interval_s: 90.0,
                cloud_spinup_s: 240.0,
            },
            fault: FaultConfig {
                pool: htcsim::fault::PoolFaultConfig {
                    outage_pool: 1,
                    outage_start_s: 400.0,
                    outage_duration_s: 1800.0,
                    partition_pool: 0,
                    partition_start_s: 120.0,
                    partition_duration_s: 900.0,
                    preempt_prob: 0.35,
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let text = cfg.to_config_file();
        assert!(text.contains("federation_failover = true"));
        assert!(text.contains("checkpoint_interval_s = 90"));
        assert!(text.contains("fault_preempt = 0.35"));
        let parsed = FdwConfig::parse(&text).unwrap();
        assert_eq!(parsed, cfg);
        // Defaults keep the federation off, so legacy configs still run
        // on the single flat pool.
        assert!(!FdwConfig::default().federation.enabled);
        // Bad knob values are rejected at validate time.
        assert!(
            FdwConfig::parse("federation_enabled = true\nfederation_breaker_probe_s = 0\n")
                .is_err()
        );
        assert!(FdwConfig::parse("fault_preempt = 1.5\n").is_err());
        assert!(FdwConfig::parse("federation_failovers = true\n").is_err());
    }

    #[test]
    fn fault_probabilities_are_validated() {
        assert!(FdwConfig::parse("fault_transient = 1.5\n").is_err());
        assert!(FdwConfig::parse("fault_hold = -0.1\n").is_err());
    }

    #[test]
    fn parse_validates_result() {
        assert!(FdwConfig::parse("n_waveforms = 0\n").is_err());
        assert!(FdwConfig::parse("mw_min = 9.0\nmw_max = 8.0\n").is_err());
        assert!(FdwConfig::parse("fault_nx = 0\n").is_err());
        assert!(FdwConfig::parse("station_input = 0\n").is_err());
        assert!(FdwConfig::parse("ruptures_per_job = 0\n").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let cfg = FdwConfig::parse("# hi\n\nseed = 9 # trailing\n").unwrap();
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn station_input_labels() {
        assert_eq!(StationInput::Chilean(ChileanInput::Full).label(), "full");
        assert_eq!(StationInput::Count(7).label(), "7");
    }
}
