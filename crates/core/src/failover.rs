//! Failover-ablation harness: run one FDW campaign on the federated
//! three-pool cluster under pool-level faults, with the health-gated
//! burst controller either on or off.
//!
//! Unlike the [`crate::chaos`] harness, a failover campaign is a single
//! round: pool-level displacements (outages, spot preemption, drained
//! partitions) requeue jobs without consuming DAGMan retries, so the DAG
//! completes without a rescue round-trip. The interesting comparison is
//! *how fast* it completes and *how much work is burned* — the ablation
//! pits `failover_enabled = false` (pools and pool faults exist, nothing
//! routes around them) against the full controller (circuit breakers,
//! drain-and-migrate, checkpoint/restart). Both arms must produce
//! byte-identical science products; the controller may only move work,
//! never change it.

use std::collections::BTreeSet;

use fdw_obs::Obs;
use htcsim::cluster::ClusterConfig;
use htcsim::federation::FederationStats;
use htcsim::pool::PoolConfig;

use crate::chaos::science_digest;
use crate::config::FdwConfig;
use crate::phases::build_fdw_dag;
use crate::workflow::run_concurrent_fdw_with_obs;

/// Outcome of one failover campaign arm.
#[derive(Debug, Clone)]
pub struct FailoverReport {
    /// Whether the health-gated failover controller was on.
    pub failover_on: bool,
    /// Simulated seconds until every node completed (time-to-done).
    pub makespan_s: u64,
    /// Execution seconds that ended in a completion.
    pub goodput_s: u64,
    /// Execution seconds lost to displacements and failures.
    pub badput_s: u64,
    /// Machine-level evictions observed (pool displacements must not
    /// count here; they surface as preemptions/outages instead).
    pub evictions: u64,
    /// Federated-layer counters (outages, preemptions, migrations, …).
    pub federation: FederationStats,
    /// FNV-1a digest of the live science products of every node.
    pub digest: u64,
    /// The rendered `.dag.metrics` JSON document of the campaign.
    pub dag_metrics: String,
}

/// A fully available federated pool: three pools behind the federation
/// (shared / dedicated / cloud), machines always up, so the only
/// nondeterminism is the seeded pool-fault plan — campaigns are exactly
/// reproducible and the ablation isolates the failover controller.
pub fn federated_cluster_config() -> ClusterConfig {
    ClusterConfig {
        pool: PoolConfig {
            target_slots: 24,
            glidein_slots: 4,
            avail_mean: 1.0,
            avail_sigma: 0.0,
            glidein_lifetime_s: 1e9,
            // Every slot takes every phase: with a 6-machine bootstrap
            // pool and effectively no later arrivals, a small-slot-only
            // draw would strand the 16 GB GF/rupture jobs forever.
            big_slot_fraction: 1.0,
            ..Default::default()
        },
        ..ClusterConfig::with_cache()
    }
}

/// Run one arm of the failover ablation: execute `base_cfg` on the
/// federated cluster with the failover controller (circuit breakers,
/// drain-and-migrate, checkpoint/restart) forced on or off. The
/// federation itself — and the pool-fault plan in `base_cfg.fault.pool` —
/// is live in both arms. Errors if the DAG does not complete.
pub fn run_failover_campaign(
    base_cfg: &FdwConfig,
    cluster_cfg: &ClusterConfig,
    failover_on: bool,
) -> Result<FailoverReport, String> {
    run_failover_campaign_with_obs(base_cfg, cluster_cfg, failover_on, &Obs::metrics_only())
}

/// [`run_failover_campaign`] with a telemetry handle; the
/// `pool.federation.*` registry counters accumulate across arms sharing
/// one handle.
pub fn run_failover_campaign_with_obs(
    base_cfg: &FdwConfig,
    cluster_cfg: &ClusterConfig,
    failover_on: bool,
    obs: &Obs,
) -> Result<FailoverReport, String> {
    let mut cfg = base_cfg.clone();
    cfg.federation.enabled = true;
    cfg.federation.failover_enabled = failover_on;
    // Checkpoint/restart is part of the controller under ablation: the
    // baseline arm loses all progress on every displacement.
    cfg.federation.checkpoint_enabled = failover_on && cfg.federation.checkpoint_enabled;
    cfg.validate()?;

    let out =
        run_concurrent_fdw_with_obs(&cfg, 1, cfg.n_waveforms, cluster_cfg.clone(), cfg.seed, obs)?;
    let stats = &out.stats[0];
    let total = cfg.total_jobs();
    if stats.completed as u64 != total {
        return Err(format!(
            "failover campaign (failover={failover_on}) finished only {} of {total} jobs",
            stats.completed
        ));
    }
    // Every node completed, so every science product must be present and
    // regenerable — science_digest errors loudly on a lost artifact.
    let done: BTreeSet<String> = build_fdw_dag(&cfg)?
        .nodes()
        .iter()
        .map(|n| n.name.clone())
        .collect();
    let digest = science_digest(&cfg, &done)?;
    Ok(FailoverReport {
        failover_on,
        makespan_s: out.report.makespan.as_secs(),
        goodput_s: stats.goodput_secs,
        badput_s: stats.badput_secs,
        evictions: out.report.evictions,
        federation: out.report.federation,
        digest,
        dag_metrics: out.dag_metrics[0].clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::baseline_digest;
    use crate::config::StationInput;
    use fakequakes::stations::ChileanInput;
    use htcsim::fault::PoolFaultConfig;
    use htcsim::federation::FederationConfig;

    /// A tiny federated campaign under heavy pool faults: cloud spot
    /// reclamation plus a mid-run outage of the dedicated pool.
    fn faulty_cfg() -> FdwConfig {
        let mut cfg = FdwConfig {
            fault_nx: 10,
            fault_nd: 5,
            station_input: StationInput::Chilean(ChileanInput::Small),
            n_waveforms: 16,
            ruptures_per_job: 2,
            waveforms_per_job: 2,
            retries: 3,
            retry_defer_s: 30,
            seed: 11,
            federation: FederationConfig {
                enabled: true,
                burst_idle_threshold: 0,
                checkpoint_enabled: true,
                checkpoint_interval_s: 5.0,
                cloud_spinup_s: 60.0,
                ..Default::default()
            },
            ..Default::default()
        };
        cfg.fault.pool = PoolFaultConfig {
            outage_pool: 1,
            outage_start_s: 500.0,
            outage_duration_s: 2000.0,
            partition_pool: 0,
            partition_start_s: 0.0,
            partition_duration_s: 0.0,
            preempt_prob: 0.9,
        };
        cfg
    }

    #[test]
    fn failover_beats_the_no_failover_baseline() {
        let cfg = faulty_cfg();
        let cluster = federated_cluster_config();
        let off = run_failover_campaign(&cfg, &cluster, false).unwrap();
        let on = run_failover_campaign(&cfg, &cluster, true).unwrap();
        // Identical science in both arms, identical to fault-free.
        let baseline = baseline_digest(&cfg).unwrap();
        assert_eq!(off.digest, baseline);
        assert_eq!(on.digest, baseline);
        // The controller must not lose to the do-nothing baseline.
        assert!(
            on.makespan_s <= off.makespan_s,
            "failover-on must finish no later: on={} off={}",
            on.makespan_s,
            off.makespan_s
        );
        assert!(
            on.badput_s <= off.badput_s,
            "checkpoints must cut badput: on={} off={}",
            on.badput_s,
            off.badput_s
        );
        // Checkpoint/restart is exclusive to the on arm.
        assert!(on.federation.resumes > 0, "on arm must resume checkpoints");
        assert_eq!(off.federation.resumes, 0);
        assert_eq!(off.federation.checkpoints, 0);
        // Pool faults fired in both arms.
        assert!(off.federation.preemptions > 0);
        assert!(on.federation.preemptions > 0);
        assert_eq!(on.federation.outages, 1);
        assert_eq!(off.federation.outages, 1);
        // Displaced jobs restarted in other pools.
        assert!(on.federation.migrations > 0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = faulty_cfg();
        let cluster = federated_cluster_config();
        for arm in [false, true] {
            let a = run_failover_campaign(&cfg, &cluster, arm).unwrap();
            let b = run_failover_campaign(&cfg, &cluster, arm).unwrap();
            assert_eq!(a.makespan_s, b.makespan_s, "arm {arm}");
            assert_eq!(a.federation, b.federation, "arm {arm}");
            assert_eq!(a.digest, b.digest, "arm {arm}");
        }
    }

    #[test]
    fn metrics_document_carries_federation_counters() {
        let cfg = faulty_cfg();
        let rep = run_failover_campaign(&cfg, &federated_cluster_config(), true).unwrap();
        fdw_obs::json::validate(&rep.dag_metrics).unwrap();
        assert!(rep.dag_metrics.contains("\"preemptions\":"));
        assert!(rep
            .dag_metrics
            .contains(&format!("\"migrations\":{}", rep.federation.migrations)));
        // Pool displacements ride on requeues, not machine evictions.
        assert_eq!(rep.evictions, 0);
    }
}
