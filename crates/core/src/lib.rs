//! # fdw-core — the FakeQuakes DAGMan Workflow
//!
//! The primary contribution of Adair et al., SC-W 2023: a workflow tool
//! that parallelises MudPy/FakeQuakes earthquake simulation on
//! high-throughput computing infrastructure.
//!
//! * [`config`] — the single parameter file a user edits (§3);
//! * [`phases`] — the three-phase DAG builder (A: matrices + ruptures,
//!   B: Green's functions, C: waveforms; §3.0.1);
//! * [`calibration`] — job cost and artifact size models pinned to the
//!   paper's reported values;
//! * [`workflow`] — running one or many concurrent DAGMans on the
//!   simulated OSPool, replication, and the single-machine AWS baseline;
//! * [`stats`] — the paper's evaluation formulas, eqs. (1)–(4);
//! * [`live`] — the real science computation each job performs (the
//!   `fakequakes` crate), runnable end-to-end at laptop scale;
//! * [`chaos`] — the fault-injection campaign harness: run the FDW under a
//!   fault class, recover through the rescue-DAG round-trip, and prove the
//!   science products match the fault-free baseline;
//! * [`failover`] — the federated-failover ablation: the same campaign on
//!   the three-pool federation under pool-level faults, with the
//!   health-gated burst controller on vs off;
//! * [`service`] — the multi-tenant campaign front-end bridge: map the
//!   `fdw-service` layer's completed campaigns onto real rupture draws
//!   and prove the shared artifact store never changes the science;
//! * [`archive`] — output congregation and manifest labelling (§3).
//!
//! ```
//! use fdw_core::prelude::*;
//!
//! // Simulate a small FDW run on a modest pool.
//! let cfg = FdwConfig {
//!     n_waveforms: 32,
//!     station_input: StationInput::Chilean(fakequakes::stations::ChileanInput::Small),
//!     ..Default::default()
//! };
//! let out = run_fdw(&cfg, osg_cluster_config(), 1).unwrap();
//! assert_eq!(out.stats[0].completed as u64, cfg.total_jobs());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod calibration;
pub mod chaos;
pub mod config;
pub mod failover;
pub mod live;
pub mod phases;
pub mod service;
pub mod stats;
pub mod submit;
pub mod workflow;

/// Glob import of the most-used types.
pub mod prelude {
    pub use crate::archive::{ArchiveEntry, ArchiveManifest};
    pub use crate::chaos::{
        baseline_digest, chaos_cluster_config, run_chaos_campaign, run_chaos_campaign_with_obs,
        ChaosReport, FaultClass,
    };
    pub use crate::config::{FdwConfig, StationInput};
    pub use crate::failover::{
        federated_cluster_config, run_failover_campaign, run_failover_campaign_with_obs,
        FailoverReport,
    };
    pub use crate::phases::{build_fdw_dag, split_waveforms};
    pub use crate::service::{
        run_service_campaign, science_digest, ScienceReport, ServiceCampaignReport,
    };
    pub use crate::stats::{
        avg_total_runtime, avg_total_throughput, concurrent_avg_runtime, concurrent_avg_throughput,
    };
    pub use crate::submit::{parse_submit_file, to_submit_file, workflow_files};
    pub use crate::workflow::{
        aws_baseline, osg_cluster_config, replicate_fdw, replicate_fdw_with_obs,
        run_concurrent_fdw, run_concurrent_fdw_with_obs, run_fdw, FdwOutcome, ReplicatedStats,
    };
    pub use fdw_obs::Obs;
}
