//! The live-compute path: execute the actual FakeQuakes science for an FDW
//! configuration on this machine, phase by phase — what an individual OSG
//! job runs inside the Singularity image, and what the integration tests
//! exercise end-to-end.
//!
//! The grid experiments model job *costs*; this module produces the real
//! *products* (ruptures, GF library, waveforms) so the two can be
//! cross-checked: a live A-phase job and a simulated one correspond to the
//! same unit of work.

use fakequakes::catalog::{generate_catalog, Catalog};
use fakequakes::distance::DistanceMatrices;
use fakequakes::error::FqResult;
use fakequakes::geometry::FaultModel;
use fakequakes::greens::GfLibrary;
use fakequakes::noise::NoiseModel;
use fakequakes::rupture::{RuptureConfig, RuptureGenerator, RuptureScenario};
use fakequakes::stations::StationNetwork;
use fakequakes::stochastic::{FactorBackend, FactorCache};
use fakequakes::waveform::WaveformConfig;
use fdw_obs::Obs;

use crate::config::{FdwConfig, StationInput};

/// Run `f`, timing it on the wall clock, and record the duration as a
/// `fq`-category microsecond span plus a `fq.{kernel}_us` histogram
/// sample. Free when the handle is disabled. The clock is read through
/// [`fdw_obs::wallclock::WallTimer`] — the one allowlisted wall-clock
/// site — so sim code stays `Instant`-free (fdwlint `wall-clock-in-sim`).
// fdwlint::allow(nondet-flow-to-sink): measured host wall time IS the telemetry payload here; spans/histograms are profiling artifacts, excluded from byte-stable comparison (BYTE_STABLE_CRATES) and never folded into science outputs
fn timed<T>(obs: &Obs, kernel: &str, tid: u64, f: impl FnOnce() -> T) -> T {
    if !obs.is_enabled() {
        return f();
    }
    let t0 = fdw_obs::wallclock::WallTimer::start();
    let out = f();
    let us = t0.elapsed_us();
    obs.span_us("fq", kernel, tid, 0, us);
    obs.observe(&format!("fq.{kernel}_us"), us as f64);
    out
}

/// Materialised inputs of a live run.
pub struct LiveInputs {
    /// The fault model built from the config's mesh dimensions.
    pub fault: FaultModel,
    /// The GNSS network for the configured station input.
    pub network: StationNetwork,
}

/// Build the fault and network for a config, honouring the configured
/// region.
pub fn build_inputs(cfg: &FdwConfig) -> FqResult<LiveInputs> {
    use crate::config::Region;
    let fault = match cfg.region {
        Region::Chile => FaultModel::chilean_subduction(cfg.fault_nx, cfg.fault_nd)?,
        Region::Cascadia => FaultModel::cascadia_subduction(cfg.fault_nx, cfg.fault_nd)?,
    };
    let network = match (cfg.region, cfg.station_input) {
        (Region::Chile, StationInput::Chilean(c)) => StationNetwork::chilean_input(c, cfg.seed),
        (Region::Chile, StationInput::Count(n)) => StationNetwork::chilean(n as usize, cfg.seed)?,
        // Cascadia uses its own network generator; the "full"/"small"
        // labels keep their station counts.
        (Region::Cascadia, input) => {
            StationNetwork::cascadia(input.station_count() as usize, cfg.seed)?
        }
    };
    Ok(LiveInputs { fault, network })
}

/// Live A-phase bootstrap: compute the recyclable distance matrices (the
/// `matrix.0` job).
pub fn live_matrix_phase(inputs: &LiveInputs) -> DistanceMatrices {
    DistanceMatrices::compute(&inputs.fault, &inputs.network)
}

/// Live A-phase work of one rupture job: generate the scenarios with ids
/// `[first, first + count)`.
pub fn live_rupture_job(
    cfg: &FdwConfig,
    inputs: &LiveInputs,
    matrices: &DistanceMatrices,
    first: u64,
    count: u64,
) -> FqResult<Vec<RuptureScenario>> {
    let rcfg = RuptureConfig {
        mw_range: cfg.mw_range,
        ..Default::default()
    };
    // Every rupture job on the same (mesh, correlation-params) pair shares
    // one correlated-field factorisation via the process-wide cache — the
    // FDW analogue of recycling the `.npy` factors across grid jobs.
    let generator = RuptureGenerator::new_cached(
        &inputs.fault,
        &matrices.subfault_to_subfault,
        rcfg,
        FactorCache::global(),
    )?;
    Ok((first..first + count)
        .map(|id| generator.generate(cfg.seed, id))
        .collect())
}

/// [`live_matrix_phase`] with kernel telemetry: the distance-matrix build
/// is timed into span/histogram `kernel.matrix_phase`.
pub fn live_matrix_phase_with_obs(inputs: &LiveInputs, obs: &Obs) -> DistanceMatrices {
    timed(obs, "kernel.matrix_phase", 0, || live_matrix_phase(inputs))
}

/// [`live_rupture_job`] with kernel telemetry: the job is timed into
/// span/histogram `kernel.rupture_job` (track = `first`), and the
/// process-wide correlated-field factor cache's hit/miss deltas across
/// the job are accumulated under `fq.factor_cache.hits` / `.misses` — the
/// counters the bench harness reads to show recycling at work.
pub fn live_rupture_job_with_obs(
    cfg: &FdwConfig,
    inputs: &LiveInputs,
    matrices: &DistanceMatrices,
    first: u64,
    count: u64,
    obs: &Obs,
) -> FqResult<Vec<RuptureScenario>> {
    let before = FactorCache::global().stats();
    let out = timed(obs, "kernel.rupture_job", first, || {
        live_rupture_job(cfg, inputs, matrices, first, count)
    })?;
    let after = FactorCache::global().stats();
    obs.inc(
        "fq.factor_cache.hits",
        after.hits.saturating_sub(before.hits),
    );
    obs.inc(
        "fq.factor_cache.misses",
        after.misses.saturating_sub(before.misses),
    );
    Ok(out)
}

/// [`live_rupture_job`] over an explicit [`FactorBackend`] — the seam
/// the service layer's shared artifact store plugs into, so a fleet of
/// tenants' rupture jobs can share one budgeted factor cache instead of
/// the process-wide one.
pub fn live_rupture_job_with_backend(
    cfg: &FdwConfig,
    inputs: &LiveInputs,
    matrices: &DistanceMatrices,
    first: u64,
    count: u64,
    backend: &dyn FactorBackend,
) -> FqResult<Vec<RuptureScenario>> {
    let rcfg = RuptureConfig {
        mw_range: cfg.mw_range,
        ..Default::default()
    };
    let generator = RuptureGenerator::new_with_backend(
        &inputs.fault,
        &matrices.subfault_to_subfault,
        rcfg,
        backend,
    )?;
    Ok((first..first + count)
        .map(|id| generator.generate(cfg.seed, id))
        .collect())
}

/// Live B-phase work: compute the Green's function library (the `gf.0`
/// job).
pub fn live_gf_phase(inputs: &LiveInputs) -> FqResult<GfLibrary> {
    GfLibrary::compute(&inputs.fault, &inputs.network)
}

/// Live C-phase work of one waveform job: synthesise waveforms for the
/// given scenarios at every station.
pub fn live_waveform_job(
    cfg: &FdwConfig,
    inputs: &LiveInputs,
    matrices: &DistanceMatrices,
    gfs: &GfLibrary,
    scenarios: &[RuptureScenario],
    duration_s: f64,
) -> FqResult<Vec<Vec<fakequakes::waveform::GnssWaveform>>> {
    let wcfg = WaveformConfig {
        stf: cfg.stf,
        duration_s,
        ..Default::default()
    };
    scenarios
        .iter()
        .map(|sc| {
            fakequakes::waveform::synthesize_all_stations(
                &inputs.fault,
                gfs,
                &matrices.station_to_subfault,
                sc,
                &wcfg,
                cfg.seed,
            )
        })
        .collect()
}

/// [`live_waveform_job`] with kernel telemetry: the job is timed into
/// span/histogram `kernel.waveform_job` (track = index of the first
/// scenario, or 0 when empty).
pub fn live_waveform_job_with_obs(
    cfg: &FdwConfig,
    inputs: &LiveInputs,
    matrices: &DistanceMatrices,
    gfs: &GfLibrary,
    scenarios: &[RuptureScenario],
    duration_s: f64,
    obs: &Obs,
) -> FqResult<Vec<Vec<fakequakes::waveform::GnssWaveform>>> {
    let tid = scenarios.first().map_or(0, |s| s.id);
    timed(obs, "kernel.waveform_job", tid, || {
        live_waveform_job(cfg, inputs, matrices, gfs, scenarios, duration_s)
    })
}

/// Run the whole pipeline live for a (small) configuration — what the
/// single-machine baseline computes, and what the quickstart example
/// shows.
pub fn live_full_run(cfg: &FdwConfig, duration_s: f64) -> FqResult<Catalog> {
    let inputs = build_inputs(cfg)?;
    generate_catalog(
        &inputs.fault,
        &inputs.network,
        None,
        None,
        RuptureConfig {
            mw_range: cfg.mw_range,
            ..Default::default()
        },
        WaveformConfig {
            stf: cfg.stf,
            duration_s,
            noise: NoiseModel::default(),
            ..Default::default()
        },
        cfg.n_waveforms,
        cfg.seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakequakes::stations::ChileanInput;

    fn tiny_cfg() -> FdwConfig {
        FdwConfig {
            fault_nx: 10,
            fault_nd: 5,
            station_input: StationInput::Chilean(ChileanInput::Small),
            n_waveforms: 4,
            ruptures_per_job: 2,
            waveforms_per_job: 2,
            ..Default::default()
        }
    }

    #[test]
    fn inputs_match_config() {
        let cfg = tiny_cfg();
        let inputs = build_inputs(&cfg).unwrap();
        assert_eq!(inputs.fault.len(), 50);
        assert_eq!(inputs.network.len(), 2);
        let custom = FdwConfig {
            station_input: StationInput::Count(7),
            ..cfg
        };
        assert_eq!(build_inputs(&custom).unwrap().network.len(), 7);
    }

    #[test]
    fn phase_outputs_compose() {
        let cfg = tiny_cfg();
        let inputs = build_inputs(&cfg).unwrap();
        let matrices = live_matrix_phase(&inputs);
        let scenarios = live_rupture_job(&cfg, &inputs, &matrices, 0, 4).unwrap();
        assert_eq!(scenarios.len(), 4);
        let gfs = live_gf_phase(&inputs).unwrap();
        let wfs = live_waveform_job(&cfg, &inputs, &matrices, &gfs, &scenarios[..2], 64.0).unwrap();
        assert_eq!(wfs.len(), 2);
        assert_eq!(wfs[0].len(), 2); // two stations
        assert_eq!(wfs[0][0].len(), 64);
    }

    #[test]
    fn rupture_job_ids_are_globally_consistent() {
        // Two jobs covering disjoint id ranges must produce exactly what a
        // single job covering the union would — the property that makes
        // the A phase embarrassingly parallel.
        let cfg = tiny_cfg();
        let inputs = build_inputs(&cfg).unwrap();
        let matrices = live_matrix_phase(&inputs);
        let all = live_rupture_job(&cfg, &inputs, &matrices, 0, 4).unwrap();
        let a = live_rupture_job(&cfg, &inputs, &matrices, 0, 2).unwrap();
        let b = live_rupture_job(&cfg, &inputs, &matrices, 2, 2).unwrap();
        for (x, y) in all.iter().zip(a.iter().chain(b.iter())) {
            assert_eq!(x.slip_m, y.slip_m);
            assert_eq!(x.hypocenter_idx, y.hypocenter_idx);
        }
    }

    #[test]
    fn instrumented_jobs_record_kernel_spans_and_cache_counters() {
        let cfg = tiny_cfg();
        let inputs = build_inputs(&cfg).unwrap();
        let obs = Obs::enabled();
        let matrices = live_matrix_phase_with_obs(&inputs, &obs);
        // Same mesh + correlation params twice: the second job must reuse
        // the recycled correlated-field factorisation.
        let a = live_rupture_job_with_obs(&cfg, &inputs, &matrices, 0, 2, &obs).unwrap();
        let b = live_rupture_job_with_obs(&cfg, &inputs, &matrices, 2, 2, &obs).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        assert!(
            obs.counter("fq.factor_cache.hits") >= 1,
            "second rupture job should hit the factor cache"
        );
        let gfs = live_gf_phase(&inputs).unwrap();
        let wfs = live_waveform_job_with_obs(&cfg, &inputs, &matrices, &gfs, &a[..1], 64.0, &obs)
            .unwrap();
        assert_eq!(wfs.len(), 1);
        for kernel in ["matrix_phase", "rupture_job", "waveform_job"] {
            let h = obs.histogram_stats(&format!("fq.kernel.{kernel}_us"));
            assert!(h.is_some(), "missing fq.kernel.{kernel}_us histogram");
        }
        let trace = obs.chrome_trace();
        assert!(trace.contains("\"name\":\"kernel.rupture_job\""), "{trace}");
        // Instrumented and plain paths produce identical science.
        let plain = live_rupture_job(&cfg, &inputs, &matrices, 0, 2).unwrap();
        for (x, y) in a.iter().zip(&plain) {
            assert_eq!(x.slip_m, y.slip_m);
        }
    }

    #[test]
    fn backend_job_matches_cached_job_bit_for_bit() {
        // A budgeted private backend and the process-wide cache must
        // produce the same scenarios — the backend seam is pure plumbing.
        let cfg = tiny_cfg();
        let inputs = build_inputs(&cfg).unwrap();
        let matrices = live_matrix_phase(&inputs);
        let via_global = live_rupture_job(&cfg, &inputs, &matrices, 0, 3).unwrap();
        let private = FactorCache::with_byte_budget(1);
        let via_backend =
            live_rupture_job_with_backend(&cfg, &inputs, &matrices, 0, 3, &private).unwrap();
        for (a, b) in via_global.iter().zip(&via_backend) {
            assert_eq!(a.slip_m, b.slip_m);
            assert_eq!(a.onset_s, b.onset_s);
        }
        assert!(private.stats().misses >= 1);
    }

    #[test]
    fn full_live_run_produces_catalog() {
        let catalog = live_full_run(&tiny_cfg(), 64.0).unwrap();
        assert_eq!(catalog.len(), 4);
        for s in catalog.summaries() {
            assert!(s.peak_slip_m > 0.0);
        }
    }

    #[test]
    fn cascadia_region_builds_and_runs() {
        use crate::config::Region;
        let cfg = FdwConfig {
            region: Region::Cascadia,
            ..tiny_cfg()
        };
        let inputs = build_inputs(&cfg).unwrap();
        assert_eq!(inputs.fault.name(), "cascadia_slab2like");
        assert!(inputs.network.name().starts_with("cascadia"));
        // Stations sit in the northern hemisphere near the margin.
        assert!(inputs.network.station(0).location.lat > 39.0);
        let catalog = live_full_run(&cfg, 64.0).unwrap();
        assert_eq!(catalog.len(), 4);
        assert!(catalog.summaries().iter().all(|s| s.peak_slip_m > 0.0));
    }

    #[test]
    fn region_config_roundtrip() {
        use crate::config::Region;
        let cfg = FdwConfig {
            region: Region::Cascadia,
            ..tiny_cfg()
        };
        let parsed = FdwConfig::parse(&cfg.to_config_file()).unwrap();
        assert_eq!(parsed.region, Region::Cascadia);
        assert!(FdwConfig::parse("region = atlantis\n").is_err());
    }
}
