//! DAG construction: the FDW's three sequential phases (§3.0.1).
//!
//! * **A Phase** — one optional distance-matrix job (when no recycled
//!   `.npy` files are provided) followed by parallel rupture jobs;
//! * **B Phase** — the Green's-function job producing the `.mseed` bundle;
//! * **C Phase** — parallel waveform jobs, each staging the large
//!   `.mseed` through the Stash cache.
//!
//! Phases are sequenced with DAG edges: `matrix → ruptures → gf →
//! waveforms`, matching the paper's "phases run sequentially, with the
//! numerous jobs of each one executed in parallel".

use dagman::dag::{Dag, NodeId, Throttles};
use htcsim::job::JobSpec;

use crate::calibration;
use crate::config::FdwConfig;

/// Phase labels used in job names (`<phase>.<index>`); the monitoring and
/// bursting tooling dispatch on these prefixes.
pub mod phase_names {
    /// Distance-matrix bootstrap job.
    pub const MATRIX: &str = "matrix";
    /// A-phase rupture jobs.
    pub const RUPTURE: &str = "rupture";
    /// B-phase Green's-function job.
    pub const GF: &str = "gf";
    /// C-phase waveform jobs.
    pub const WAVEFORM: &str = "waveform";
}

/// Build the FDW DAG for one configuration.
pub fn build_fdw_dag(cfg: &FdwConfig) -> Result<Dag, String> {
    cfg.validate()?;
    let stations = cfg.station_input.station_count();
    let mut dag = Dag::new();
    dag.throttles = Throttles {
        max_jobs: cfg.max_jobs,
        max_idle: cfg.max_idle,
    };

    let image = calibration::singularity_image();
    let npy = calibration::npy_matrices();
    let gf_bundle = calibration::gf_mseed(stations);

    // Optional matrix job (A-phase bootstrap).
    let matrix: Option<NodeId> = if cfg.recycle_npy {
        None
    } else {
        let mut spec = JobSpec {
            name: format!("{}.0", phase_names::MATRIX),
            cpus: 4,
            memory_mb: 16_384, // "up to 16GB ... if jobs need to generate large matrix files"
            disk_mb: 16_384,
            inputs: vec![image.clone()],
            output_mb: npy.size_mb,
            exec: calibration::matrix_job_exec(),
            timeout_s: cfg.job_timeout_s as f64,
        };
        spec.inputs.push(calibration::station_list_file(stations));
        Some(dag.add_node(spec).map_err(|e| e.to_string())?)
    };

    // A-phase rupture jobs.
    let mut rupture_ids = Vec::with_capacity(cfg.n_rupture_jobs() as usize);
    for i in 0..cfg.n_rupture_jobs() {
        let spec = JobSpec {
            name: format!("{}.{i}", phase_names::RUPTURE),
            cpus: 4,
            memory_mb: 8192,
            disk_mb: 8192,
            inputs: vec![image.clone(), npy.clone()],
            output_mb: 1.2 * cfg.ruptures_per_job as f64, // .rupt files
            exec: calibration::rupture_job_exec(cfg.ruptures_per_job),
            timeout_s: cfg.job_timeout_s as f64,
        };
        let id = dag.add_node(spec).map_err(|e| e.to_string())?;
        if let Some(m) = matrix {
            dag.add_edge(m, id)?;
        }
        rupture_ids.push(id);
    }

    // B-phase GF job: requires all ruptures (phases run sequentially).
    let gf_spec = JobSpec {
        name: format!("{}.0", phase_names::GF),
        cpus: 4,
        memory_mb: 16_384,
        disk_mb: 16_384,
        inputs: vec![
            image.clone(),
            npy.clone(),
            calibration::station_list_file(stations),
        ],
        output_mb: gf_bundle.size_mb,
        exec: calibration::gf_job_exec(stations),
        timeout_s: cfg.job_timeout_s as f64,
    };
    let gf = dag.add_node(gf_spec).map_err(|e| e.to_string())?;
    for &r in &rupture_ids {
        dag.add_edge(r, gf)?;
    }

    // C-phase waveform jobs.
    for i in 0..cfg.n_waveform_jobs() {
        // "up to 16GB (depending on if jobs need to generate large matrix
        // files)" — only the matrix/GF jobs need the big request; waveform
        // jobs fit standard 8 GB slots (inputs ≈ 2.5 GB + workspace).
        let spec = JobSpec {
            name: format!("{}.{i}", phase_names::WAVEFORM),
            cpus: 4,
            memory_mb: 8192,
            disk_mb: 8192,
            inputs: vec![image.clone(), npy.clone(), gf_bundle.clone()],
            // Compressed waveform archives for this job's scenarios.
            output_mb: 20.0 * cfg.waveforms_per_job as f64 * (stations as f64 / 121.0).max(0.05),
            exec: calibration::waveform_job_exec(stations, cfg.waveforms_per_job),
            timeout_s: cfg.job_timeout_s as f64,
        };
        let id = dag.add_node(spec).map_err(|e| e.to_string())?;
        dag.add_edge(gf, id)?;
    }

    // Retry policy: every node shares the config's budget and backoff.
    if cfg.retries > 0 {
        for i in 0..dag.len() {
            dag.set_retries(NodeId(i), cfg.retries);
            dag.set_retry_defer(NodeId(i), cfg.retry_defer_s);
        }
    }

    Ok(dag)
}

/// Split a target waveform count evenly across `n` concurrent DAGMans
/// (the §4.2 experiment); remainders go to the earlier DAGs.
pub fn split_waveforms(total: u64, n: usize) -> Vec<u64> {
    let n64 = n as u64;
    let base = total / n64;
    let extra = total % n64;
    (0..n64).map(|i| base + u64::from(i < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StationInput;
    use fakequakes::stations::ChileanInput;

    fn cfg(n: u64) -> FdwConfig {
        FdwConfig {
            n_waveforms: n,
            ..Default::default()
        }
    }

    #[test]
    fn dag_has_expected_node_count() {
        let c = cfg(1024);
        let dag = build_fdw_dag(&c).unwrap();
        assert_eq!(dag.len() as u64, c.total_jobs());
    }

    #[test]
    fn recycled_npy_drops_matrix_job() {
        let c = FdwConfig {
            recycle_npy: true,
            ..cfg(64)
        };
        let dag = build_fdw_dag(&c).unwrap();
        assert!(dag.id_of("matrix.0").is_none());
        // Rupture jobs become roots.
        let roots = dag.roots();
        assert_eq!(roots.len() as u64, c.n_rupture_jobs());
    }

    #[test]
    fn phase_sequencing_edges() {
        let dag = build_fdw_dag(&cfg(64)).unwrap();
        let matrix = dag.id_of("matrix.0").unwrap();
        let gf = dag.id_of("gf.0").unwrap();
        // Matrix is the only root.
        assert_eq!(dag.roots(), vec![matrix]);
        // GF depends on every rupture job.
        assert_eq!(dag.node(gf).parents.len() as u64, cfg(64).n_rupture_jobs());
        // Every waveform job depends on GF.
        assert_eq!(
            dag.node(gf).children.len() as u64,
            cfg(64).n_waveform_jobs()
        );
        // The whole thing is acyclic.
        assert!(dag.topological_order().is_ok());
    }

    #[test]
    fn waveform_jobs_stage_gf_through_cache() {
        let dag = build_fdw_dag(&cfg(16)).unwrap();
        let w = dag.node(dag.id_of("waveform.0").unwrap());
        let gf_input = w
            .spec
            .inputs
            .iter()
            .find(|f| f.name.contains("mseed"))
            .expect("waveform job must stage the GF bundle");
        assert!(gf_input.cacheable);
        assert!(
            gf_input.size_mb > 1000.0,
            "full-input GF bundle exceeds 1 GB"
        );
        // All jobs carry the Singularity image.
        for n in dag.nodes() {
            assert!(n.spec.inputs.iter().any(|f| f.name.ends_with(".sif")));
        }
    }

    #[test]
    fn small_input_shrinks_gf_and_runtime() {
        let small = FdwConfig {
            station_input: StationInput::Chilean(ChileanInput::Small),
            ..cfg(64)
        };
        let dag_small = build_fdw_dag(&small).unwrap();
        let dag_full = build_fdw_dag(&cfg(64)).unwrap();
        let wf_small = &dag_small.node(dag_small.id_of("waveform.0").unwrap()).spec;
        let wf_full = &dag_full.node(dag_full.id_of("waveform.0").unwrap()).spec;
        assert!(wf_small.exec.median_s() < 60.0);
        assert!(wf_full.exec.median_s() > 900.0);
        assert!(wf_small.total_input_mb() < wf_full.total_input_mb());
    }

    #[test]
    fn throttles_propagate() {
        let c = FdwConfig {
            max_idle: 500,
            max_jobs: 200,
            ..cfg(32)
        };
        let dag = build_fdw_dag(&c).unwrap();
        assert_eq!(dag.throttles.max_idle, 500);
        assert_eq!(dag.throttles.max_jobs, 200);
    }

    #[test]
    fn retry_and_timeout_policy_propagates() {
        let c = FdwConfig {
            retries: 4,
            retry_defer_s: 90,
            job_timeout_s: 7200,
            ..cfg(32)
        };
        let dag = build_fdw_dag(&c).unwrap();
        for n in dag.nodes() {
            assert_eq!(n.retries, 4);
            assert_eq!(n.retry_defer_s, 90);
            assert_eq!(n.spec.timeout_s, 7200.0);
        }
        // retries = 0 leaves nodes bare (no RETRY lines in the DAG file).
        let bare = build_fdw_dag(&FdwConfig {
            retries: 0,
            ..cfg(16)
        })
        .unwrap();
        assert!(!bare.to_dag_file().contains("RETRY"));
    }

    #[test]
    fn invalid_config_rejected() {
        let c = FdwConfig {
            n_waveforms: 0,
            ..Default::default()
        };
        assert!(build_fdw_dag(&c).is_err());
    }

    #[test]
    fn split_waveforms_conserves_total() {
        assert_eq!(split_waveforms(16_000, 8), vec![2000; 8]);
        let parts = split_waveforms(16_001, 4);
        assert_eq!(parts.iter().sum::<u64>(), 16_001);
        assert_eq!(parts, vec![4001, 4000, 4000, 4000]);
        assert_eq!(split_waveforms(3, 8).iter().sum::<u64>(), 3);
    }

    #[test]
    fn memory_requests_match_paper_bounds() {
        // "dynamically request varying amounts of disk and memory, up to 16GB"
        let dag = build_fdw_dag(&cfg(16)).unwrap();
        for n in dag.nodes() {
            assert!(n.spec.memory_mb <= 16_384);
            assert_eq!(n.spec.cpus, 4, "OSG-ideal jobs use 4 CPU cores");
        }
    }
}
