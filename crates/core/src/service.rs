//! Bridge from the multi-tenant campaign front-end (`fdw-service`) to
//! the FakeQuakes science: map each *completed* campaign onto actual
//! rupture draws and fold the slip fields into a science digest.
//!
//! The digest is the ground truth the robustness claims are checked
//! against: the front-end may admit, shed, degrade or dedupe however it
//! likes, but for the campaigns it *completes*, the science must be a
//! pure function of `(workload seed, request id, degrade mode, replica
//! count)` — never of which tenant's insert populated the shared store,
//! what order campaigns finished in, or how many threads the DES ran
//! on. `science_digest` realises the mapping; the cross-arm equality
//! tests (shared store vs isolated recompute, 1 vs N threads) enforce
//! it.

use std::collections::BTreeMap;

use fakequakes::distance::DistanceMatrices;
use fakequakes::error::FqResult;
use fakequakes::geometry::FaultModel;
use fakequakes::rupture::{RuptureConfig, RuptureGenerator};
use fakequakes::stations::{ChileanInput, StationNetwork};
use fakequakes::stochastic::{FactorCache, FieldMethod};
use fdw_service::config::ServiceConfig;
use fdw_service::engine::{run_service, ServiceReport};
use fdw_service::request::{Disposition, RequestOutcome, WorkloadConfig};
use htcsim::des::{digest_fold, DIGEST_INIT};

/// FNV-1a over the bit patterns of a slip field — the same digest idiom
/// the DES differential harness uses, so "bit-identical science" means
/// exactly that.
fn slip_hash(xs: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Per-class mesh inputs: class `c` gets an `(8 + 2c) × 4` Chilean
/// mesh, mirroring the byte model of
/// [`fdw_service::store::artifact_bytes`] so heavier classes really are
/// bigger factorisations.
struct ClassInputs {
    fault: FaultModel,
    distances: DistanceMatrices,
}

fn class_inputs(class: u32, seed: u64) -> FqResult<ClassInputs> {
    let fault = FaultModel::chilean_subduction(8 + 2 * class as usize, 4)?;
    let network = StationNetwork::chilean_input(ChileanInput::Small, seed);
    let distances = DistanceMatrices::compute(&fault, &network);
    Ok(ClassInputs { fault, distances })
}

/// What the science pass produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScienceReport {
    /// Order-stable fold of every completed campaign's slip fields
    /// (request-id order), the cross-arm comparison value.
    pub digest: u64,
    /// Completed campaigns mapped.
    pub campaigns: u64,
    /// Total rupture scenarios drawn.
    pub ruptures: u64,
    /// Covariance factorisations actually computed — the work the
    /// shared factor cache saves relative to the isolated arm.
    pub factorisations: u64,
}

/// Map every [`Disposition::Completed`] outcome onto rupture draws and
/// fold the slip fields into a digest, in request-id order.
///
/// `shared` selects the artifact-sharing arm: `Some(cache)` routes
/// every campaign's factorisation through one (optionally budgeted)
/// [`FactorCache`] — the front-end's shared store, where tenant B
/// reuses the factor tenant A computed; `None` gives each campaign a
/// fresh private cache — the isolated-recompute arm. The returned
/// `digest` must be identical either way (the cache's bit-identical
/// draw guarantee), while `factorisations` shows the saved work.
pub fn science_digest(
    outcomes: &[RequestOutcome],
    seed: u64,
    shared: Option<&FactorCache>,
) -> FqResult<ScienceReport> {
    let mut inputs: BTreeMap<u32, ClassInputs> = BTreeMap::new();
    let mut sorted: Vec<&RequestOutcome> = outcomes.iter().collect();
    sorted.sort_by_key(|o| o.request.id);
    let mut digest = DIGEST_INIT;
    let mut campaigns = 0u64;
    let mut ruptures = 0u64;
    let mut factorisations = 0u64;
    for o in sorted {
        let Disposition::Completed {
            degraded, replicas, ..
        } = o.disposition
        else {
            continue;
        };
        let req = o.request;
        let ci = match inputs.entry(req.class) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(class_inputs(req.class, seed)?)
            }
        };
        // Degraded campaigns run the truncated Karhunen–Loève
        // factorisation (half the modes) — same switch the engine's
        // cost model halves the factor price for.
        let method = if degraded.is_some() {
            FieldMethod::KarhunenLoeve {
                modes: (ci.fault.len() / 2).max(1),
            }
        } else {
            FieldMethod::Cholesky
        };
        let rcfg = RuptureConfig {
            method,
            ..Default::default()
        };
        let fresh;
        let cache: &FactorCache = match shared {
            Some(c) => c,
            None => {
                fresh = FactorCache::new();
                &fresh
            }
        };
        let before = cache.stats().misses;
        let generator = RuptureGenerator::new_with_backend(
            &ci.fault,
            &ci.distances.subfault_to_subfault,
            rcfg,
            cache,
        )?;
        let batch_seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (req.id + 1);
        for k in 0..replicas as u64 {
            let sc = generator.generate(batch_seed, k);
            digest = digest_fold(digest, req.id + 1);
            digest = digest_fold(digest, slip_hash(&sc.slip_m));
            ruptures += 1;
        }
        factorisations += cache.stats().misses - before;
        campaigns += 1;
    }
    Ok(ScienceReport {
        digest,
        campaigns,
        ruptures,
        factorisations,
    })
}

/// A front-end run plus the science of its completed campaigns.
#[derive(Debug)]
pub struct ServiceCampaignReport {
    /// The service-layer report (dispositions, stats, store, log).
    pub service: ServiceReport,
    /// The science pass over its completed outcomes.
    pub science: ScienceReport,
}

/// Run the multi-tenant front-end over a workload, then map its
/// completed campaigns to science. When the config's store is on, the
/// science pass shares one byte-budgeted [`FactorCache`] fleet-wide
/// (the store arm); otherwise every campaign recomputes privately.
pub fn run_service_campaign(
    cfg: &ServiceConfig,
    wl: &WorkloadConfig,
    exec_shards: u32,
    epoch_s: u64,
    threads: usize,
) -> FqResult<ServiceCampaignReport> {
    let service = run_service(cfg, wl, exec_shards, epoch_s, threads);
    let science = if cfg.enabled && cfg.store_enabled {
        let cache = FactorCache::with_byte_budget(cfg.store_budget_mb as usize * 1024 * 1024);
        science_digest(&service.outcomes, wl.seed, Some(&cache))?
    } else {
        science_digest(&service.outcomes, wl.seed, None)?
    };
    Ok(ServiceCampaignReport { service, science })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_wl() -> WorkloadConfig {
        WorkloadConfig {
            seed: 11,
            campaigns: 24,
            classes: 2,
            overload_x: 3.0,
            replicas: 2,
            ..Default::default()
        }
    }

    #[test]
    fn shared_store_and_isolated_recompute_agree_bit_for_bit() {
        let cfg = ServiceConfig::defended(3);
        let report = run_service(&cfg, &small_wl(), 2, 60, 2);
        assert!(report.stats.completed > 0);
        let shared_cache = FactorCache::with_byte_budget(64 * 1024 * 1024);
        let shared = science_digest(&report.outcomes, 11, Some(&shared_cache)).expect("shared");
        let isolated = science_digest(&report.outcomes, 11, None).expect("isolated");
        assert_eq!(shared.digest, isolated.digest, "dedupe changed the science");
        assert_eq!(shared.campaigns, isolated.campaigns);
        assert_eq!(shared.ruptures, isolated.ruptures);
        assert!(
            shared.factorisations < isolated.factorisations,
            "sharing must save factorisations: {} vs {}",
            shared.factorisations,
            isolated.factorisations
        );
    }

    #[test]
    fn campaign_report_is_thread_invariant() {
        let cfg = ServiceConfig::defended(3);
        let a = run_service_campaign(&cfg, &small_wl(), 2, 60, 1).expect("run");
        let b = run_service_campaign(&cfg, &small_wl(), 2, 60, 4).expect("run");
        assert_eq!(a.service.decision_digest, b.service.decision_digest);
        assert_eq!(a.science, b.science);
        assert_eq!(a.science.campaigns, a.service.stats.completed);
    }

    #[test]
    fn degraded_campaigns_draw_different_but_deterministic_science() {
        // Same outcomes, but flipping a completion's degrade mode must
        // change the digest (truncated KL is a different factorisation),
        // while re-running identically must not.
        let cfg = ServiceConfig::defended(3);
        let report = run_service(&cfg, &small_wl(), 2, 60, 2);
        let base = science_digest(&report.outcomes, 11, None).expect("base");
        let again = science_digest(&report.outcomes, 11, None).expect("again");
        assert_eq!(base, again);
        let mut flipped = report.outcomes.clone();
        let victim = flipped
            .iter_mut()
            .find_map(|o| match &mut o.disposition {
                Disposition::Completed { degraded, .. } if degraded.is_none() => Some(degraded),
                _ => None,
            })
            .expect("an undegraded completion");
        *victim = Some(htcsim::service::DegradeMode::TruncatedKl);
        let bent = science_digest(&flipped, 11, None).expect("bent");
        assert_ne!(base.digest, bent.digest);
    }
}
