//! The paper's evaluation formulas, equations (1)–(4).
//!
//! Equations (5)–(7) live where they are used: instant throughput (5) in
//! `dagman::monitor` / the bursting simulator, average instant throughput
//! (6) and cost (7) in `vdc-burst`.

/// Equation (1): average total runtime `α = (r1 + r2 + r3)/3` over
/// replicated runs (any replication count).
pub fn avg_total_runtime(runtimes: &[f64]) -> f64 {
    if runtimes.is_empty() {
        return 0.0;
    }
    runtimes.iter().sum::<f64>() / runtimes.len() as f64
}

/// Equation (2): average total throughput `β = Σ(j_n/r_n)/N` over
/// replicated runs, given `(jobs, runtime_minutes)` pairs.
pub fn avg_total_throughput(runs: &[(u64, f64)]) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter()
        .map(|(j, r)| if *r > 0.0 { *j as f64 / r } else { 0.0 })
        .sum::<f64>()
        / runs.len() as f64
}

/// Equation (3): average total runtime across all DAGMans of all parallel
/// batches, `α = Σ d_i / N`, where `d_i` are individual DAGMan runtimes
/// and `N` their total count.
pub fn concurrent_avg_runtime(dagman_runtimes: &[f64]) -> f64 {
    avg_total_runtime(dagman_runtimes)
}

/// Equation (4): average total throughput across all DAGMans of all
/// parallel batches, `β = Σ (j_i/r_i) / N`.
pub fn concurrent_avg_throughput(dagman_runs: &[(u64, f64)]) -> f64 {
    avg_total_throughput(dagman_runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_matches_paper_form() {
        assert_eq!(avg_total_runtime(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(avg_total_runtime(&[]), 0.0);
    }

    #[test]
    fn eq2_divides_per_run_then_averages() {
        // Two runs: 100 jobs in 10 min (10 JPM) and 100 jobs in 20 min
        // (5 JPM) → average 7.5, NOT 200/30 = 6.67.
        let b = avg_total_throughput(&[(100, 10.0), (100, 20.0)]);
        assert!((b - 7.5).abs() < 1e-12);
        assert_eq!(avg_total_throughput(&[]), 0.0);
        assert_eq!(avg_total_throughput(&[(5, 0.0)]), 0.0);
    }

    #[test]
    fn eq3_eq4_are_flat_averages_over_all_dagmans() {
        // 2 batches of 2 DAGMans each: runtimes 10,12,14,16 → α = 13.
        assert_eq!(concurrent_avg_runtime(&[10.0, 12.0, 14.0, 16.0]), 13.0);
        let runs = [(100u64, 10.0), (100, 20.0), (200, 10.0), (200, 40.0)];
        let beta = concurrent_avg_throughput(&runs);
        assert!((beta - (10.0 + 5.0 + 20.0 + 5.0) / 4.0).abs() < 1e-12);
    }
}
