//! HTCondor submit description files.
//!
//! "HTCondor uses 'submit description files' to specify job compute
//! requirements, orchestrate scripts on OSG nodes, and handle input
//! files" (§3). The FDW generates one per DAG node; this module renders
//! [`JobSpec`]s into the submit-file dialect and parses it back, so the
//! generated workflow directory looks exactly like what a user would
//! inspect on an OSG login node.

use htcsim::job::{ExecModel, InputFile, JobSpec};

/// Render a job spec as an HTCondor submit description file.
///
/// The executable is the FDW phase script (`<phase>.sh`); the runtime
/// model is carried in a comment so the round-trip through
/// [`parse_submit_file`] is lossless for simulation purposes (real
/// submit files obviously do not declare their runtime).
pub fn to_submit_file(spec: &JobSpec) -> String {
    let phase = spec.name.split('.').next().unwrap_or("job");
    let mut out = String::new();
    out.push_str(&format!(
        "# FDW submit description for node {}\n",
        spec.name
    ));
    out.push_str("universe = vanilla\n");
    out.push_str(&format!("executable = {phase}.sh\n"));
    out.push_str(&format!("arguments = {}\n", spec.name));
    out.push_str(&format!("request_cpus = {}\n", spec.cpus));
    out.push_str(&format!("request_memory = {}MB\n", spec.memory_mb));
    out.push_str(&format!("request_disk = {}MB\n", spec.disk_mb));
    if !spec.inputs.is_empty() {
        let names: Vec<String> = spec
            .inputs
            .iter()
            .map(|f| {
                if f.cacheable {
                    // Stash/OSDF-served inputs use the osdf:// scheme.
                    format!("osdf:///ospool/fdw/{}", f.name)
                } else {
                    f.name.clone()
                }
            })
            .collect();
        out.push_str(&format!("transfer_input_files = {}\n", names.join(", ")));
        // Size metadata kept as comments for the simulator round-trip.
        for f in &spec.inputs {
            out.push_str(&format!("# input_size {} {}\n", f.name, f.size_mb));
        }
    }
    out.push_str("should_transfer_files = YES\n");
    out.push_str("when_to_transfer_output = ON_EXIT\n");
    if spec.timeout_s > 0.0 {
        // Walltime policy: hold over-limit jobs, then remove held jobs —
        // the periodic_hold/periodic_remove pair OSG guides recommend.
        out.push_str(&format!(
            "periodic_hold = (time() - JobCurrentStartDate) > {}\n",
            spec.timeout_s
        ));
        out.push_str("periodic_hold_reason = \"Job exceeded allowed walltime\"\n");
        out.push_str("periodic_remove = JobStatus == 5\n");
        out.push_str(&format!("# timeout_s {}\n", spec.timeout_s));
    }
    out.push_str(&format!("# output_size {}\n", spec.output_mb));
    match spec.exec {
        ExecModel::Fixed(s) => out.push_str(&format!("# exec_model fixed {s}\n")),
        ExecModel::LogNormalMedian { median_s, sigma } => {
            out.push_str(&format!("# exec_model lognormal {median_s} {sigma}\n"))
        }
    }
    out.push_str("+SingularityImage = \"osdf:///ospool/fdw/mudpy_singularity.sif\"\n");
    out.push_str("queue\n");
    out
}

/// Parse a submit description file produced by [`to_submit_file`].
pub fn parse_submit_file(text: &str) -> Result<JobSpec, String> {
    let mut name = String::new();
    let mut cpus = 1u32;
    let mut memory_mb = 1024u32;
    let mut disk_mb = 1024u32;
    let mut inputs: Vec<InputFile> = Vec::new();
    let mut sizes: Vec<(String, f64)> = Vec::new();
    let mut output_mb = 0.0f64;
    let mut exec = ExecModel::Fixed(60.0);
    let mut timeout_s = 0.0f64;
    let mut saw_queue = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}", lineno + 1);
        if let Some(rest) = line.strip_prefix("# input_size ") {
            let mut parts = rest.split_whitespace();
            let fname = parts.next().ok_or_else(|| err("input_size needs a name"))?;
            let mb: f64 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("input_size needs a size"))?;
            sizes.push((fname.to_string(), mb));
            continue;
        }
        if let Some(rest) = line.strip_prefix("# output_size ") {
            output_mb = rest.trim().parse().map_err(|_| err("bad output_size"))?;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# timeout_s ") {
            timeout_s = rest.trim().parse().map_err(|_| err("bad timeout_s"))?;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# exec_model ") {
            let mut parts = rest.split_whitespace();
            match parts.next() {
                Some("fixed") => {
                    let s: f64 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("fixed exec needs seconds"))?;
                    exec = ExecModel::Fixed(s);
                }
                Some("lognormal") => {
                    let median_s: f64 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("lognormal needs a median"))?;
                    let sigma: f64 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("lognormal needs a sigma"))?;
                    exec = ExecModel::LogNormalMedian { median_s, sigma };
                }
                _ => return Err(err("unknown exec_model")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        if line == "queue" {
            saw_queue = true;
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err("expected key = value"));
        };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "arguments" => name = value.to_string(),
            "request_cpus" => cpus = value.parse().map_err(|_| err("bad request_cpus"))?,
            "request_memory" => {
                memory_mb = value
                    .trim_end_matches("MB")
                    .parse()
                    .map_err(|_| err("bad request_memory"))?
            }
            "request_disk" => {
                disk_mb = value
                    .trim_end_matches("MB")
                    .parse()
                    .map_err(|_| err("bad request_disk"))?
            }
            "transfer_input_files" => {
                for item in value.split(',') {
                    let item = item.trim();
                    let (fname, cacheable) = match item.strip_prefix("osdf:///ospool/fdw/") {
                        Some(rest) => (rest.to_string(), true),
                        None => (item.to_string(), false),
                    };
                    inputs.push(InputFile {
                        name: fname,
                        size_mb: 0.0,
                        cacheable,
                    });
                }
            }
            // Boilerplate keys accepted and ignored (the walltime policy
            // expressions are reconstructed from the timeout_s comment).
            "universe"
            | "executable"
            | "should_transfer_files"
            | "when_to_transfer_output"
            | "+SingularityImage"
            | "periodic_hold"
            | "periodic_hold_reason"
            | "periodic_remove" => {}
            other => return Err(err(&format!("unknown key '{other}'"))),
        }
    }
    if !saw_queue {
        return Err("missing 'queue' statement".into());
    }
    if name.is_empty() {
        return Err("missing job name (arguments line)".into());
    }
    // Re-attach recorded sizes.
    for f in &mut inputs {
        if let Some((_, mb)) = sizes.iter().find(|(n, _)| n == &f.name) {
            f.size_mb = *mb;
        }
    }
    Ok(JobSpec {
        name,
        cpus,
        memory_mb,
        disk_mb,
        inputs,
        output_mb,
        exec,
        timeout_s,
    })
}

/// Render the whole workflow directory listing for a DAG: the `.dag` file
/// plus one `.sub` per node, as `(file name, contents)` pairs. This is
/// the directory the FDW materialises before `condor_submit_dag`.
pub fn workflow_files(dag: &dagman::dag::Dag) -> Vec<(String, String)> {
    let mut files = Vec::with_capacity(dag.len() + 1);
    files.push(("fdw.dag".to_string(), dag.to_dag_file()));
    for node in dag.nodes() {
        files.push((format!("{}.sub", node.name), to_submit_file(&node.spec)));
    }
    files
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FdwConfig;
    use crate::phases::build_fdw_dag;

    fn waveform_spec() -> JobSpec {
        let dag = build_fdw_dag(&FdwConfig {
            n_waveforms: 8,
            ..Default::default()
        })
        .unwrap();
        dag.node(dag.id_of("waveform.0").unwrap()).spec.clone()
    }

    #[test]
    fn renders_condor_keywords() {
        let text = to_submit_file(&waveform_spec());
        assert!(text.contains("universe = vanilla"));
        assert!(text.contains("request_cpus = 4"));
        assert!(text.contains("request_memory = 8192MB"));
        assert!(text.contains("osdf:///ospool/fdw/"));
        assert!(text.contains("+SingularityImage"));
        assert!(text.trim_end().ends_with("queue"));
        assert!(text.contains("executable = waveform.sh"));
    }

    #[test]
    fn submit_file_roundtrip() {
        let spec = waveform_spec();
        let parsed = parse_submit_file(&to_submit_file(&spec)).unwrap();
        assert_eq!(parsed.name, spec.name);
        assert_eq!(parsed.cpus, spec.cpus);
        assert_eq!(parsed.memory_mb, spec.memory_mb);
        assert_eq!(parsed.disk_mb, spec.disk_mb);
        assert_eq!(parsed.output_mb, spec.output_mb);
        assert_eq!(parsed.exec, spec.exec);
        assert_eq!(parsed.inputs.len(), spec.inputs.len());
        for (a, b) in parsed.inputs.iter().zip(&spec.inputs) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.cacheable, b.cacheable);
            assert!((a.size_mb - b.size_mb).abs() < 1e-9);
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_submit_file("").is_err());
        assert!(parse_submit_file("queue\n").is_err(), "needs a name");
        assert!(parse_submit_file("arguments = x\nfrobnicate = 1\nqueue\n").is_err());
        assert!(parse_submit_file("arguments = x\nrequest_cpus = many\nqueue\n").is_err());
        assert!(
            parse_submit_file("arguments = x\n").is_err(),
            "missing queue"
        );
        assert!(parse_submit_file("arguments = x\n# exec_model warp 9\nqueue\n").is_err());
    }

    #[test]
    fn fixed_exec_model_roundtrip() {
        let mut spec = JobSpec::fixed("matrix.0", 600.0);
        spec.output_mb = 450.0;
        let parsed = parse_submit_file(&to_submit_file(&spec)).unwrap();
        assert_eq!(parsed.exec, ExecModel::Fixed(600.0));
        assert_eq!(parsed.output_mb, 450.0);
    }

    #[test]
    fn walltime_policy_roundtrip() {
        let mut spec = JobSpec::fixed("waveform.0", 600.0);
        spec.timeout_s = 7200.0;
        let text = to_submit_file(&spec);
        assert!(text.contains("periodic_hold = (time() - JobCurrentStartDate) > 7200"));
        assert!(text.contains("periodic_remove = JobStatus == 5"));
        let parsed = parse_submit_file(&text).unwrap();
        assert_eq!(parsed.timeout_s, 7200.0);
        // No timeout: no policy expressions in the file.
        let bare = to_submit_file(&JobSpec::fixed("waveform.1", 600.0));
        assert!(!bare.contains("periodic_hold"));
        assert_eq!(parse_submit_file(&bare).unwrap().timeout_s, 0.0);
    }

    #[test]
    fn workflow_directory_is_complete() {
        let cfg = FdwConfig {
            n_waveforms: 8,
            ..Default::default()
        };
        let dag = build_fdw_dag(&cfg).unwrap();
        let files = workflow_files(&dag);
        assert_eq!(files.len() as u64, cfg.total_jobs() + 1);
        assert_eq!(files[0].0, "fdw.dag");
        assert!(files.iter().any(|(n, _)| n == "gf.0.sub"));
        // Every sub file parses back to a spec matching its node.
        for (fname, contents) in files.iter().skip(1) {
            let parsed = parse_submit_file(contents).unwrap();
            assert_eq!(format!("{}.sub", parsed.name), *fname);
        }
    }
}
