//! Workflow orchestration: run one or several FDW DAGMans on the simulated
//! OSPool, gather the paper's statistics, and run the single-machine AWS
//! baseline.

use std::collections::BTreeMap;

use dagman::driver::MultiDagman;
use dagman::monitor::{dag_metrics, mean_sd, per_dagman_stats, DagmanStats, MeanSd};
use fdw_obs::Obs;
use htcsim::cluster::{Cluster, ClusterConfig, RunReport};
use htcsim::job::JobSpec;
use htcsim::pool::PoolConfig;
use htcsim::single::{SingleMachine, SingleRunReport};

use crate::calibration;
use crate::config::FdwConfig;
use crate::phases::{build_fdw_dag, split_waveforms};
use crate::stats;

/// The OSPool configuration the experiments run against, calibrated so the
/// FDW lands in the paper's operating regime (≈10 JPM average and ~14 h
/// for 16,000 full-input waveforms from a single DAGMan; >400 running-job
/// peaks).
pub fn osg_cluster_config() -> ClusterConfig {
    ClusterConfig {
        pool: PoolConfig {
            target_slots: 520,
            glidein_slots: 8,
            glidein_lifetime_s: 4.0 * 3600.0,
            n_sites: 30,
            negotiation_period_s: 60,
            avail_mean: 0.55,
            avail_sigma: 0.18,
            avail_theta: 0.05,
            speed_sigma: 0.15,
            big_slot_fraction: 0.35,
            max_sim_time_s: 21 * 24 * 3600,
        },
        transfer: Default::default(),
        cache_enabled: true,
        // OSG does not cap evictions for FDW jobs; retries are free.
        max_evictions_per_job: 0,
        faults: Default::default(),
        defense: Default::default(),
        federation: Default::default(),
        shards: 0,
    }
}

/// Outcome of one FDW execution (one or more concurrent DAGMans).
#[derive(Debug)]
pub struct FdwOutcome {
    /// Raw cluster report (user log, cache stats, …).
    pub report: RunReport,
    /// Per-DAGMan statistics, ordered by owner id.
    pub stats: Vec<DagmanStats>,
    /// Rendered `*.dag.metrics` JSON documents, one per DAGMan in owner
    /// order, reconciled against [`FdwOutcome::stats`].
    pub dag_metrics: Vec<String>,
}

impl FdwOutcome {
    /// Per-DAGMan runtimes in hours.
    pub fn runtimes_hours(&self) -> Vec<f64> {
        self.stats.iter().map(|s| s.runtime_hours()).collect()
    }

    /// Per-DAGMan `(jobs, runtime-minutes)` pairs for eq. (2)/(4).
    pub fn throughput_inputs(&self) -> Vec<(u64, f64)> {
        self.stats
            .iter()
            .map(|s| (s.completed as u64, s.runtime_secs() as f64 / 60.0))
            .collect()
    }
}

/// Run one FDW DAGMan built from `cfg` on a cluster.
pub fn run_fdw(
    cfg: &FdwConfig,
    cluster_cfg: ClusterConfig,
    seed: u64,
) -> Result<FdwOutcome, String> {
    run_concurrent_fdw(cfg, 1, cfg.n_waveforms, cluster_cfg, seed)
}

/// Run `n_dagmans` concurrent FDW DAGMans that together produce
/// `total_waveforms` (the §4.2 experiment). Each DAGMan gets its own
/// owner id, so the pool's fair share arbitrates between them.
pub fn run_concurrent_fdw(
    base_cfg: &FdwConfig,
    n_dagmans: usize,
    total_waveforms: u64,
    cluster_cfg: ClusterConfig,
    seed: u64,
) -> Result<FdwOutcome, String> {
    run_concurrent_fdw_with_obs(
        base_cfg,
        n_dagmans,
        total_waveforms,
        cluster_cfg,
        seed,
        &Obs::disabled(),
    )
}

/// [`run_concurrent_fdw`] with a telemetry handle threaded through the
/// cluster and every DAGMan. Per-phase spans land in trace category
/// `phase` (one track per owner), pool/transfer metrics under `pool.*`
/// and `xfer.*`, DAG engine metrics under `dagman.*`.
pub fn run_concurrent_fdw_with_obs(
    base_cfg: &FdwConfig,
    n_dagmans: usize,
    total_waveforms: u64,
    mut cluster_cfg: ClusterConfig,
    seed: u64,
    obs: &Obs,
) -> Result<FdwOutcome, String> {
    if n_dagmans == 0 {
        return Err("need at least one DAGMan".into());
    }
    // The FDW config's fault plan overrides the cluster's when enabled, so
    // chaos campaigns are driven entirely from the parameter file.
    if base_cfg.fault.any_enabled() {
        cluster_cfg.faults = base_cfg.fault;
    }
    // Same for the pool-side defense layer.
    if base_cfg.defense.any_enabled() {
        cluster_cfg.defense = base_cfg.defense;
    }
    // And the federated multi-pool layer.
    if base_cfg.federation.enabled {
        cluster_cfg.federation = base_cfg.federation;
    }
    // Event-queue sharding (0 = leave the cluster default). Pure layout:
    // the pop order is pinned by the (time, lane, seq) key, so this knob
    // never changes a byte of output — des_differential.rs enforces it.
    if base_cfg.des_shards > 0 {
        cluster_cfg.shards = base_cfg.des_shards;
    }
    let mut dags = Vec::with_capacity(n_dagmans);
    for share in split_waveforms(total_waveforms, n_dagmans) {
        let cfg = FdwConfig {
            n_waveforms: share.max(1),
            ..base_cfg.clone()
        };
        dags.push(build_fdw_dag(&cfg)?);
    }
    let mut multi = MultiDagman::new(dags)
        .with_obs(obs.clone())
        .with_speculation(base_cfg.speculation);
    let report = Cluster::new(cluster_cfg, seed)
        .with_obs(obs.clone())
        .run(&mut multi);
    if report.timed_out {
        return Err(format!(
            "simulation hit the time cap with {} of {} jobs complete",
            report.completed,
            multi.dagmans().iter().map(|d| d.dag().len()).sum::<usize>()
        ));
    }
    let stats = per_dagman_stats(&report);
    record_phase_spans(obs, &report, multi.dagmans());
    let metrics_docs = multi
        .dagmans()
        .iter()
        .map(|dm| {
            let s = stats
                .iter()
                .find(|s| s.owner == dm.owner())
                .ok_or_else(|| format!("no stats for owner {}", dm.owner().0))?;
            Ok(dag_metrics(dm, s, 0, report.defense, report.federation).render())
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(FdwOutcome {
        report,
        stats,
        dag_metrics: metrics_docs,
    })
}

/// Emit one `phase`-category span per (owner, phase) covering the window
/// from that phase's first user-log event to its last. Phase names are
/// the node-name prefixes (`matrix`, `rupture`, `gf`, `waveform`), so the
/// exported trace shows the A→B→C pipeline shape per DAGMan. Shared with
/// the chaos harness, which passes a single resumed DAGMan per round.
pub(crate) fn record_phase_spans(
    obs: &Obs,
    report: &RunReport,
    dagmans: &[dagman::driver::Dagman],
) {
    if !obs.is_enabled() {
        return;
    }
    let mut windows: BTreeMap<(u32, String), (u64, u64)> = BTreeMap::new();
    for ev in report.log.events() {
        let Some(dm) = dagmans.iter().find(|d| d.owner() == ev.owner) else {
            continue;
        };
        let Some(name) = dm.node_name(ev.job) else {
            continue;
        };
        let phase = name.split('.').next().unwrap_or(name);
        let t = ev.time.as_secs();
        let w = windows
            .entry((ev.owner.0, phase.to_string()))
            .or_insert((t, t));
        w.0 = w.0.min(t);
        w.1 = w.1.max(t);
    }
    for ((owner, phase), (start, end)) in &windows {
        obs.span("phase", phase, *owner as u64, *start, *end);
        obs.observe(&format!("fdw.phase.{phase}_s"), (*end - *start) as f64);
    }
}

/// Aggregates over replicated runs of the same configuration (the paper
/// repeats everything three times and reports mean ± SD).
#[derive(Debug, Clone, Copy)]
pub struct ReplicatedStats {
    /// Runtime (hours): eq. (1) mean plus spread.
    pub runtime_h: MeanSd,
    /// Total throughput (jobs/minute): eq. (2) mean plus spread.
    pub throughput_jpm: MeanSd,
}

/// Run `cfg` once per seed and aggregate with eqs. (1)–(4). For
/// multi-DAGMan runs the aggregation is over every DAGMan of every
/// replication, exactly like the paper's eq. (3)/(4).
pub fn replicate_fdw(
    cfg: &FdwConfig,
    n_dagmans: usize,
    total_waveforms: u64,
    cluster_cfg: &ClusterConfig,
    seeds: &[u64],
) -> Result<ReplicatedStats, String> {
    replicate_fdw_with_obs(
        cfg,
        n_dagmans,
        total_waveforms,
        cluster_cfg,
        seeds,
        "rep",
        &Obs::metrics_only(),
    )
}

/// [`replicate_fdw`] recording per-DAGMan samples into the registry as
/// histograms `fdw.{scope}.runtime_h` and `fdw.{scope}.throughput_jpm`
/// (plus a `fdw.{scope}.replications` counter). When the handle is
/// enabled, the returned spreads are derived from those histograms'
/// exact moments, so quantities a bench binary reads back out of the
/// registry agree with what this function returns. Use one `scope` per
/// aggregated configuration — samples recorded under the same scope on
/// the same sink pool together.
#[allow(clippy::too_many_arguments)]
pub fn replicate_fdw_with_obs(
    cfg: &FdwConfig,
    n_dagmans: usize,
    total_waveforms: u64,
    cluster_cfg: &ClusterConfig,
    seeds: &[u64],
    scope: &str,
    obs: &Obs,
) -> Result<ReplicatedStats, String> {
    let rt_name = format!("fdw.{scope}.runtime_h");
    let tp_name = format!("fdw.{scope}.throughput_jpm");
    // Seeds are independent replications, so with no telemetry sink
    // attached they fan out across threads. With a sink they stay
    // sequential: parallel recording would make the floating-point
    // accumulation (and trace) order seed-interleaved, breaking the
    // byte-identical-telemetry guarantee.
    let outcomes: Vec<Result<FdwOutcome, String>> = if obs.is_enabled() {
        seeds
            .iter()
            .map(|&seed| {
                run_concurrent_fdw_with_obs(
                    cfg,
                    n_dagmans,
                    total_waveforms,
                    cluster_cfg.clone(),
                    seed,
                    obs,
                )
            })
            .collect()
    } else {
        fakequakes::par::map_indexed(seeds.len(), 1, |i| {
            run_concurrent_fdw_with_obs(
                cfg,
                n_dagmans,
                total_waveforms,
                cluster_cfg.clone(),
                seeds[i],
                obs,
            )
        })
    };
    let mut runtimes = Vec::new();
    let mut through_inputs = Vec::new();
    for out in outcomes {
        let out = out?;
        obs.inc(&format!("fdw.{scope}.replications"), 1);
        for h in out.runtimes_hours() {
            obs.observe(&rt_name, h);
            runtimes.push(h);
        }
        for (j, r) in out.throughput_inputs() {
            obs.observe(&tp_name, if r > 0.0 { j as f64 / r } else { 0.0 });
            through_inputs.push((j, r));
        }
    }
    let throughputs: Vec<f64> = through_inputs
        .iter()
        .map(|(j, r)| if *r > 0.0 { *j as f64 / r } else { 0.0 })
        .collect();
    let from_hist = |s: fdw_obs::metrics::HistStats| MeanSd {
        mean: s.mean,
        sd: s.sd,
        min: s.min,
        max: s.max,
    };
    let mut runtime_h = match obs.histogram_stats(&rt_name) {
        Some(s) => from_hist(s),
        None => mean_sd(&runtimes),
    };
    runtime_h.mean = stats::concurrent_avg_runtime(&runtimes);
    let mut throughput_jpm = match obs.histogram_stats(&tp_name) {
        Some(s) => from_hist(s),
        None => mean_sd(&throughputs),
    };
    throughput_jpm.mean = stats::concurrent_avg_throughput(&through_inputs);
    Ok(ReplicatedStats {
        runtime_h,
        throughput_jpm,
    })
}

/// Run the single-machine AWS baseline for a configuration: the same job
/// list executed on one 4-CPU instance at the §3.1-measured per-job times
/// (rupture 287 s, waveform 144 s).
pub fn aws_baseline(cfg: &FdwConfig, seed: u64) -> SingleRunReport {
    let mut specs: Vec<JobSpec> = Vec::new();
    if !cfg.recycle_npy {
        let mut s = JobSpec::fixed("matrix.0", 600.0);
        s.exec = calibration::matrix_job_exec();
        specs.push(s);
    }
    for i in 0..cfg.n_rupture_jobs() {
        specs.push(JobSpec::fixed(
            format!("rupture.{i}"),
            calibration::VDC_RUPTURE_SECS as f64,
        ));
    }
    specs.push(JobSpec::fixed(
        "gf.0",
        calibration::gf_job_exec(cfg.station_input.station_count()).median_s(),
    ));
    for i in 0..cfg.n_waveform_jobs() {
        specs.push(JobSpec::fixed(
            format!("waveform.{i}"),
            calibration::VDC_WAVEFORM_SECS as f64,
        ));
    }
    SingleMachine {
        slots: calibration::AWS_BASELINE_SLOTS,
        speed: 1.0,
    }
    .run(&specs, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StationInput;
    use fakequakes::stations::ChileanInput;

    /// A small, fast cluster for unit tests (the full OSG config is
    /// exercised by the bench harness and integration tests).
    fn tiny_cluster() -> ClusterConfig {
        ClusterConfig {
            pool: PoolConfig {
                target_slots: 64,
                glidein_slots: 8,
                avail_mean: 0.9,
                avail_sigma: 0.05,
                glidein_lifetime_s: 1e9,
                ..Default::default()
            },
            ..ClusterConfig::with_cache()
        }
    }

    fn small_cfg(n: u64) -> FdwConfig {
        FdwConfig {
            n_waveforms: n,
            station_input: StationInput::Chilean(ChileanInput::Small),
            ..Default::default()
        }
    }

    #[test]
    fn single_fdw_completes_all_jobs() {
        let cfg = small_cfg(64);
        let out = run_fdw(&cfg, tiny_cluster(), 1).unwrap();
        assert_eq!(out.stats.len(), 1);
        assert_eq!(out.stats[0].completed as u64, cfg.total_jobs());
        assert!(out.runtimes_hours()[0] > 0.0);
    }

    #[test]
    fn concurrent_fdw_splits_work() {
        let cfg = small_cfg(64);
        let out = run_concurrent_fdw(&cfg, 2, 64, tiny_cluster(), 2).unwrap();
        assert_eq!(out.stats.len(), 2);
        let total: usize = out.stats.iter().map(|s| s.completed).sum();
        // 2 DAGMans × (2 rupture + 16 waveform + gf + matrix) = 2 × 20.
        assert_eq!(
            total as u64,
            FdwConfig {
                n_waveforms: 32,
                ..cfg
            }
            .total_jobs()
                * 2
        );
    }

    #[test]
    fn zero_dagmans_rejected() {
        assert!(run_concurrent_fdw(&small_cfg(8), 0, 8, tiny_cluster(), 1).is_err());
    }

    #[test]
    fn replication_aggregates_all_runs() {
        let cfg = small_cfg(32);
        let reps = replicate_fdw(&cfg, 1, 32, &tiny_cluster(), &[1, 2, 3]).unwrap();
        assert!(reps.runtime_h.mean > 0.0);
        assert!(reps.throughput_jpm.mean > 0.0);
        assert!(reps.runtime_h.min <= reps.runtime_h.mean);
        assert!(reps.runtime_h.max >= reps.runtime_h.mean);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = small_cfg(32);
        let a = run_fdw(&cfg, tiny_cluster(), 7).unwrap();
        let b = run_fdw(&cfg, tiny_cluster(), 7).unwrap();
        assert_eq!(a.report.makespan, b.report.makespan);
        let c = run_fdw(&cfg, tiny_cluster(), 8).unwrap();
        assert_ne!(a.report.makespan, c.report.makespan);
    }

    #[test]
    fn aws_baseline_runtime_shape() {
        // 1,024 full-input waveforms: 64 rupture + 512 waveform jobs + gf
        // + matrix on 4 slots.
        let cfg = FdwConfig {
            n_waveforms: 1024,
            ..Default::default()
        };
        let r = aws_baseline(&cfg, 1);
        assert_eq!(r.jobs as u64, cfg.total_jobs());
        let expected = (600.0 + 64.0 * 287.0 + (90.0 + 85.0 * 121.0) + 512.0 * 144.0) / 4.0;
        let got = r.makespan.as_secs() as f64;
        // List scheduling won't be perfectly balanced but must be close.
        assert!(
            (got / expected - 1.0).abs() < 0.25,
            "baseline {got} vs ideal {expected}"
        );
        // ~7 hours, the regime the 56.8% claim implies.
        assert!(got > 5.0 * 3600.0 && got < 9.5 * 3600.0, "baseline {got}");
    }

    #[test]
    fn phase_spans_and_dag_metrics_cover_the_pipeline() {
        let cfg = small_cfg(32);
        let obs = Obs::enabled();
        let out = run_concurrent_fdw_with_obs(&cfg, 2, 32, tiny_cluster(), 4, &obs).unwrap();
        assert_eq!(out.dag_metrics.len(), 2);
        for (doc, s) in out.dag_metrics.iter().zip(&out.stats) {
            assert!(fdw_obs::json::validate(doc).is_ok(), "{doc}");
            assert!(doc.contains(&format!("\"jobs_succeeded\":{}", s.completed)));
        }
        let trace = obs.chrome_trace();
        assert!(fdw_obs::json::validate(&trace).is_ok());
        let cats = fdw_obs::chrome::categories(&trace);
        assert!(cats.contains(&"phase".to_string()), "{cats:?}");
        assert!(cats.contains(&"pool".to_string()), "{cats:?}");
        assert!(cats.contains(&"dagman".to_string()), "{cats:?}");
        for phase in ["matrix", "rupture", "gf", "waveform"] {
            assert!(trace.contains(&format!("\"name\":\"{phase}\"")), "{phase}");
            assert!(obs
                .histogram_stats(&format!("fdw.phase.{phase}_s"))
                .is_some());
        }
        // Registry totals agree with the per-DAGMan statistics.
        let completed: usize = out.stats.iter().map(|s| s.completed).sum();
        assert_eq!(obs.counter("dagman.nodes_done"), completed as u64);
        assert_eq!(obs.counter("pool.completions"), completed as u64);
    }

    #[test]
    fn replicated_stats_come_from_the_registry() {
        let cfg = small_cfg(32);
        let obs = Obs::metrics_only();
        let reps =
            replicate_fdw_with_obs(&cfg, 1, 32, &tiny_cluster(), &[1, 2, 3], "t", &obs).unwrap();
        let plain = replicate_fdw(&cfg, 1, 32, &tiny_cluster(), &[1, 2, 3]).unwrap();
        assert_eq!(reps.runtime_h.mean, plain.runtime_h.mean);
        assert_eq!(reps.runtime_h.sd, plain.runtime_h.sd);
        assert_eq!(reps.throughput_jpm.mean, plain.throughput_jpm.mean);
        let h = obs.histogram_stats("fdw.t.runtime_h").unwrap();
        assert_eq!(h.count, 3, "one sample per seed per DAGMan");
        assert_eq!(h.min, reps.runtime_h.min);
        assert_eq!(h.max, reps.runtime_h.max);
        assert_eq!(obs.counter("fdw.t.replications"), 3);
    }

    #[test]
    fn gf_bundle_is_cache_hit_heavy_in_c_phase() {
        let cfg = small_cfg(64);
        let out = run_fdw(&cfg, tiny_cluster(), 3).unwrap();
        assert!(
            out.report.cache_hit_rate > 0.3,
            "hit rate {}",
            out.report.cache_hit_rate
        );
    }
}
