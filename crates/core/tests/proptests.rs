//! Property-based tests of fdw-core: configuration roundtrips, DAG
//! structure invariants, work partitioning, and the evaluation formulas.

use proptest::prelude::*;

use fakequakes::stations::ChileanInput;
use fakequakes::stf::StfKind;
use fdw_core::config::{FdwConfig, Region, StationInput};
use fdw_core::phases::{build_fdw_dag, split_waveforms};
use fdw_core::stats::{avg_total_runtime, avg_total_throughput};

fn arb_config() -> impl Strategy<Value = FdwConfig> {
    (
        1usize..40,
        1usize..16,
        prop_oneof![
            Just(StationInput::Chilean(ChileanInput::Full)),
            Just(StationInput::Chilean(ChileanInput::Small)),
            (1u32..200).prop_map(StationInput::Count),
        ],
        1u64..5_000,
        1u32..64,
        1u32..16,
        (0u8..3).prop_map(|k| [StfKind::Dreger, StfKind::Cosine, StfKind::Triangle][k as usize]),
        any::<bool>(),
        0usize..2_000,
        0usize..2_000,
        any::<u64>(),
        any::<bool>(),
        (0u32..8, 0u64..600, 0u64..20_000),
        (any::<u64>(), 0u8..=4, 0u8..=4),
    )
        .prop_map(
            |(
                nx,
                nd,
                station_input,
                n,
                rpj,
                wpj,
                stf,
                recycle,
                mi,
                mj,
                seed,
                casc,
                (retries, defer, timeout),
                (fseed, ftransient, fhold),
            )| {
                let fault = htcsim::fault::FaultConfig {
                    seed: fseed,
                    transient_exit_prob: f64::from(ftransient) / 16.0,
                    hold_prob: f64::from(fhold) / 16.0,
                    ..Default::default()
                };
                FdwConfig {
                    region: if casc {
                        Region::Cascadia
                    } else {
                        Region::Chile
                    },
                    fault_nx: nx,
                    fault_nd: nd,
                    station_input,
                    n_waveforms: n,
                    ruptures_per_job: rpj,
                    waveforms_per_job: wpj,
                    mw_range: (7.5, 9.0),
                    stf,
                    recycle_npy: recycle,
                    max_idle: mi,
                    max_jobs: mj,
                    seed,
                    retries,
                    retry_defer_s: defer,
                    job_timeout_s: timeout,
                    fault,
                    defense: Default::default(),
                    speculation: Default::default(),
                    federation: Default::default(),
                    service: Default::default(),
                    des_shards: 0,
                }
            },
        )
}

proptest! {
    #[test]
    fn config_file_roundtrip_any_config(cfg in arb_config()) {
        let parsed = FdwConfig::parse(&cfg.to_config_file()).unwrap();
        prop_assert_eq!(parsed, cfg);
    }

    #[test]
    fn job_counts_cover_the_workload(cfg in arb_config()) {
        // Enough jobs to cover every scenario, without a whole spare job.
        let rj = cfg.n_rupture_jobs();
        prop_assert!(rj * (cfg.ruptures_per_job as u64) >= cfg.n_waveforms);
        prop_assert!((rj - 1) * (cfg.ruptures_per_job as u64) < cfg.n_waveforms);
        let wj = cfg.n_waveform_jobs();
        prop_assert!(wj * (cfg.waveforms_per_job as u64) >= cfg.n_waveforms);
        prop_assert!((wj - 1) * (cfg.waveforms_per_job as u64) < cfg.n_waveforms);
        let expected = rj + wj + 1 + u64::from(!cfg.recycle_npy);
        prop_assert_eq!(cfg.total_jobs(), expected);
    }

    #[test]
    fn dag_structure_invariants(cfg in arb_config()) {
        let dag = build_fdw_dag(&cfg).unwrap();
        prop_assert_eq!(dag.len() as u64, cfg.total_jobs());
        dag.topological_order().unwrap();
        // Exactly one GF node; it gates every waveform node.
        let gf = dag.id_of("gf.0").unwrap();
        prop_assert_eq!(dag.node(gf).children.len() as u64, cfg.n_waveform_jobs());
        prop_assert_eq!(dag.node(gf).parents.len() as u64, cfg.n_rupture_jobs());
        // Matrix node present iff not recycling.
        prop_assert_eq!(dag.id_of("matrix.0").is_some(), !cfg.recycle_npy);
        // Throttles propagate.
        prop_assert_eq!(dag.throttles.max_idle, cfg.max_idle);
        prop_assert_eq!(dag.throttles.max_jobs, cfg.max_jobs);
    }

    #[test]
    fn split_conserves_and_balances(total in 1u64..1_000_000, n in 1usize..64) {
        let parts = split_waveforms(total, n);
        prop_assert_eq!(parts.len(), n);
        prop_assert_eq!(parts.iter().sum::<u64>(), total);
        let min = *parts.iter().min().unwrap();
        let max = *parts.iter().max().unwrap();
        prop_assert!(max - min <= 1, "parts must differ by at most 1");
        // Earlier parts get the remainder.
        prop_assert!(parts.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn eq1_is_mean_and_eq2_bounded_by_extremes(
        runs in proptest::collection::vec((1u64..10_000, 1.0..10_000.0f64), 1..10)
    ) {
        let runtimes: Vec<f64> = runs.iter().map(|(_, r)| *r).collect();
        let alpha = avg_total_runtime(&runtimes);
        let min = runtimes.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = runtimes.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(alpha >= min - 1e-9 && alpha <= max + 1e-9);

        let beta = avg_total_throughput(&runs);
        let per: Vec<f64> = runs.iter().map(|(j, r)| *j as f64 / r).collect();
        let pmin = per.iter().cloned().fold(f64::INFINITY, f64::min);
        let pmax = per.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(beta >= pmin - 1e-9 && beta <= pmax + 1e-9);
    }

    #[test]
    fn calibration_models_scale_sanely(stations in 1u32..300, wpj in 1u32..16) {
        use fdw_core::calibration::*;
        // GF and waveform jobs must cost strictly more with more stations.
        prop_assert!(
            gf_job_exec(stations + 1).median_s() > gf_job_exec(stations).median_s()
        );
        prop_assert!(
            waveform_job_exec(stations + 1, wpj).median_s()
                > waveform_job_exec(stations, wpj).median_s()
        );
        prop_assert!(
            waveform_job_exec(stations, wpj + 1).median_s()
                > waveform_job_exec(stations, wpj).median_s()
        );
        // GF bundle grows with the station list.
        prop_assert!(gf_mseed(stations + 1).size_mb > gf_mseed(stations).size_mb);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The self-healing defenses change scheduling, never science: for
    /// any seeded black-hole + corruption campaign, the product digest
    /// with every defense on is byte-identical to the digest with all of
    /// them off, and both match the fault-free baseline.
    #[test]
    fn defenses_never_change_science_products(
        seed in 1u64..500,
        fseed in any::<u64>(),
        bh in 0u8..4,
        cp in 0u8..5,
    ) {
        use fdw_core::chaos::{
            baseline_digest, chaos_cluster_config, run_chaos_campaign, FaultClass,
        };

        let mut cfg = FdwConfig {
            fault_nx: 10,
            fault_nd: 5,
            station_input: StationInput::Chilean(ChileanInput::Small),
            n_waveforms: 4,
            ruptures_per_job: 2,
            waveforms_per_job: 2,
            retries: 3,
            retry_defer_s: 30,
            seed,
            ..Default::default()
        };
        cfg.fault.seed = fseed;
        cfg.fault.corrupt_prob = f64::from(cp) / 8.0;
        // Every slot big: an unlucky pool seed must not starve the 16 GB
        // matrix/GF requests — this test is about defenses, not matching.
        let mut cluster = chaos_cluster_config();
        cluster.pool.big_slot_fraction = 1.0;
        let baseline = baseline_digest(&cfg).unwrap();

        let off = run_chaos_campaign(
            FaultClass::BlackHole,
            f64::from(bh) / 10.0,
            &cfg,
            &cluster,
            6,
        )
        .unwrap();
        prop_assert_eq!(off.digest, baseline);

        let mut defended = cfg.clone();
        defended.defense.scoreboard_enabled = true;
        defended.defense.checksum_enabled = true;
        defended.speculation.enabled = true;
        let on = run_chaos_campaign(
            FaultClass::BlackHole,
            f64::from(bh) / 10.0,
            &defended,
            &cluster,
            6,
        )
        .unwrap();
        prop_assert_eq!(on.digest, baseline, "defenses must never alter products");
        prop_assert_eq!(on.digest, off.digest);
    }
}

/// A tiny federated campaign under cloud spot preemption and a mid-run
/// outage of the dedicated pool, for the checkpoint/restart properties.
fn federated_faulty_cfg(seed: u64, fseed: u64, preempt: f64) -> FdwConfig {
    use htcsim::fault::PoolFaultConfig;
    use htcsim::federation::FederationConfig;
    let mut cfg = FdwConfig {
        fault_nx: 10,
        fault_nd: 5,
        station_input: StationInput::Chilean(ChileanInput::Small),
        n_waveforms: 8,
        ruptures_per_job: 2,
        waveforms_per_job: 2,
        retries: 3,
        retry_defer_s: 30,
        seed,
        federation: FederationConfig {
            enabled: true,
            burst_idle_threshold: 0,
            checkpoint_enabled: true,
            checkpoint_interval_s: 5.0,
            cloud_spinup_s: 60.0,
            ..Default::default()
        },
        ..Default::default()
    };
    cfg.fault.seed = fseed;
    cfg.fault.pool = PoolFaultConfig {
        outage_pool: 1,
        outage_start_s: 500.0,
        outage_duration_s: 1500.0,
        partition_pool: 0,
        partition_start_s: 0.0,
        partition_duration_s: 0.0,
        preempt_prob: preempt,
    };
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Checkpoint/restart moves work, never changes it: for any seeded
    /// spot-preemption + pool-outage campaign, resuming preempted jobs
    /// from their checkpoints yields science products byte-identical to
    /// the uninterrupted fault-free run — and to the no-failover arm that
    /// re-runs every preempted job from scratch.
    #[test]
    fn checkpoint_resume_is_byte_identical_to_uninterrupted(
        seed in 1u64..400,
        fseed in any::<u64>(),
        preempt in 5u8..10,
    ) {
        use fdw_core::chaos::baseline_digest;
        use fdw_core::failover::{federated_cluster_config, run_failover_campaign};

        let cfg = federated_faulty_cfg(seed, fseed, f64::from(preempt) / 10.0);
        let baseline = baseline_digest(&cfg).unwrap();
        let cluster = federated_cluster_config();
        let on = run_failover_campaign(&cfg, &cluster, true).unwrap();
        prop_assert_eq!(on.digest, baseline, "resume must not alter products");
        let off = run_failover_campaign(&cfg, &cluster, false).unwrap();
        prop_assert_eq!(off.digest, baseline, "re-run must not alter products");
    }

    /// A migrated (preempted, checkpointed, resumed elsewhere) job is
    /// counted exactly once in goodput: the monitor's goodput total must
    /// equal an independent tally of one final-attempt interval per
    /// completed job from the user log — never the earlier, displaced
    /// attempts.
    #[test]
    fn migrated_jobs_count_exactly_once_in_goodput(
        seed in 1u64..400,
        fseed in any::<u64>(),
    ) {
        use std::collections::HashMap;
        use fdw_core::failover::federated_cluster_config;
        use fdw_core::workflow::run_fdw;
        use htcsim::job::{JobEventKind, JobId};

        let cfg = federated_faulty_cfg(seed, fseed, 0.8);
        let out = run_fdw(&cfg, federated_cluster_config(), seed).unwrap();
        let stats = &out.stats[0];
        prop_assert_eq!(stats.completed as u64, cfg.total_jobs());

        // Independent goodput tally: the last execute-start before each
        // job's completion opens its one goodput interval.
        let mut open: HashMap<JobId, u64> = HashMap::new();
        let mut expected = 0u64;
        let mut completions = 0u64;
        for e in out.report.log.events() {
            match e.kind {
                JobEventKind::ExecuteStarted => {
                    open.insert(e.job, e.time.as_secs());
                }
                JobEventKind::Completed => {
                    completions += 1;
                    if let Some(s) = open.remove(&e.job) {
                        expected += e.time.as_secs() - s;
                    }
                }
                _ => {}
            }
        }
        prop_assert_eq!(completions, cfg.total_jobs(), "one completion per job");
        prop_assert_eq!(stats.goodput_secs, expected,
            "goodput must count exactly one final attempt per job");
    }
}
