//! Property test of the service layer's headline science invariant:
//! cross-tenant artifact dedupe through one shared, byte-budgeted
//! factor cache never changes a completed campaign's rupture draws
//! relative to fully isolated per-campaign recompute. The front-end may
//! reorder, shed, degrade, quarantine and dedupe freely — the slip
//! fields of whatever completes must fold to the same digest bit for
//! bit in either sharing arm.
//!
//! Cases are few and the workloads small (real Cholesky/KL
//! factorisations run inside), but the policy space swept is real:
//! random seeds, overload levels, failure/corruption rates and both
//! policy arms.

use fakequakes::stochastic::FactorCache;
use fdw_core::service::science_digest;
use fdw_service::config::ServiceConfig;
use fdw_service::engine::run_service;
use fdw_service::request::WorkloadConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn shared_store_never_changes_the_science_digest(
        seed in 0u64..200,
        overload_permille in 1_500u64..6_000,
        fail_permille in 0u32..250,
        corrupt_permille in 0u32..400,
        defended in any::<bool>(),
        budget_kb in prop_oneof![Just(0usize), 1usize..64],
    ) {
        let cfg = if defended {
            ServiceConfig::defended(3)
        } else {
            ServiceConfig::undefended(3)
        };
        let wl = WorkloadConfig {
            seed,
            campaigns: 18,
            classes: 2,
            overload_x: overload_permille as f64 / 1_000.0,
            fail_permille,
            corrupt_permille,
            replicas: 2,
            deadline_slack: 3.0,
        };
        let report = run_service(&cfg, &wl, 2, 60, 2);
        prop_assert_eq!(report.unaccounted, 0);
        // Shared arm: one fleet-wide cache, optionally byte-budgeted so
        // eviction-and-recompute cycles are in play too. Isolated arm:
        // every campaign refactorises privately.
        let shared_cache = FactorCache::with_byte_budget(budget_kb * 1024);
        let shared = science_digest(&report.outcomes, wl.seed, Some(&shared_cache))
            .expect("shared science pass");
        let isolated =
            science_digest(&report.outcomes, wl.seed, None).expect("isolated science pass");
        prop_assert_eq!(shared.digest, isolated.digest,
            "cross-tenant dedupe changed the science");
        prop_assert_eq!(shared.ruptures, isolated.ruptures);
        prop_assert_eq!(shared.campaigns, isolated.campaigns);
    }
}
