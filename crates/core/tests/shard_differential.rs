//! End-to-end shard-invariance of the FDW pipeline: `des_shards` is a
//! performance knob on the simulator's event queue, and the determinism
//! contract says no value of it may change the science digest, the
//! `.dag.metrics` document, or any campaign statistic. This is the
//! fdw-core complement of `htcsim/tests/des_differential.rs`, driving
//! the full federated failover campaign — DAGMan, matchmaker, pool
//! faults, checkpoint/restart — instead of bare cluster scenarios.

use fakequakes::stations::ChileanInput;
use fdw_core::prelude::*;
use htcsim::fault::PoolFaultConfig;
use htcsim::federation::FederationConfig;

/// The failover unit tests' tiny federated campaign, shrunk further:
/// enough jobs to displace work across pools, small enough for tier-1.
fn campaign_cfg(des_shards: usize) -> FdwConfig {
    let mut cfg = FdwConfig {
        fault_nx: 10,
        fault_nd: 5,
        station_input: StationInput::Chilean(ChileanInput::Small),
        n_waveforms: 8,
        ruptures_per_job: 2,
        waveforms_per_job: 2,
        retries: 3,
        retry_defer_s: 30,
        seed: 11,
        des_shards,
        federation: FederationConfig {
            enabled: true,
            burst_idle_threshold: 0,
            checkpoint_enabled: true,
            checkpoint_interval_s: 5.0,
            cloud_spinup_s: 60.0,
            ..Default::default()
        },
        ..Default::default()
    };
    cfg.fault.pool = PoolFaultConfig {
        outage_pool: 1,
        outage_start_s: 500.0,
        outage_duration_s: 2000.0,
        partition_pool: 0,
        partition_start_s: 0.0,
        partition_duration_s: 0.0,
        preempt_prob: 0.9,
    };
    cfg
}

#[test]
fn failover_campaign_is_invariant_to_des_shards() {
    let cluster = federated_cluster_config();
    let baseline = run_failover_campaign(&campaign_cfg(0), &cluster, true)
        .expect("baseline campaign (des_shards = 0)");
    // The campaign must actually cross lanes, or invariance is vacuous.
    assert!(baseline.federation.migrations > 0, "no cross-pool traffic");
    assert!(baseline.federation.preemptions > 0, "no spot reclamation");
    for shards in [1usize, 4, 16] {
        let got = run_failover_campaign(&campaign_cfg(shards), &cluster, true)
            .unwrap_or_else(|e| panic!("campaign at des_shards={shards}: {e}"));
        assert_eq!(
            got.digest, baseline.digest,
            "science digest changed at des_shards={shards}"
        );
        assert_eq!(
            got.dag_metrics, baseline.dag_metrics,
            ".dag.metrics changed at des_shards={shards}"
        );
        assert_eq!(got.makespan_s, baseline.makespan_s, "des_shards={shards}");
        assert_eq!(got.goodput_s, baseline.goodput_s, "des_shards={shards}");
        assert_eq!(got.badput_s, baseline.badput_s, "des_shards={shards}");
        assert_eq!(
            got.federation, baseline.federation,
            "federation counters changed at des_shards={shards}"
        );
        assert_eq!(got.evictions, baseline.evictions, "des_shards={shards}");
    }
}

#[test]
fn des_shards_round_trips_through_config_text() {
    let mut cfg = FdwConfig {
        des_shards: 16,
        ..Default::default()
    };
    let text = cfg.to_config_file();
    assert!(
        text.contains("des_shards = 16"),
        "config file must emit the knob:\n{text}"
    );
    let parsed = FdwConfig::parse(&text).expect("rendered config must parse");
    assert_eq!(parsed.des_shards, 16);
    assert_eq!(
        parsed.to_config_file(),
        text,
        "render/parse must be a fixpoint"
    );
    // The validation guard rejects absurd values but accepts the cap.
    cfg.des_shards = 4096;
    assert!(cfg.validate().is_ok());
    cfg.des_shards = 4097;
    assert!(cfg.validate().is_err(), "shard cap must be enforced");
}
