//! DAG definition and the HTCondor DAGMan input-file dialect.
//!
//! A DAG is a set of named nodes, each carrying a job specification, plus
//! parent→child edges. The text format accepted by [`Dag::parse`] is the
//! subset of the DAGMan language the FDW generates:
//!
//! ```text
//! JOB <name> <submit-file>
//! PARENT <p1> [p2 ...] CHILD <c1> [c2 ...]
//! RETRY <name> <max-retries> [DEFER <seconds>]
//! ABORT-DAG-ON <name> <exit-code>
//! MAXJOBS <n>        # extension: per-DAG running-job throttle
//! MAXIDLE <n>        # extension: per-DAG idle-job throttle
//! ```
//!
//! `RETRY ... DEFER` is the base of an exponential backoff: attempt *k*
//! waits `defer * 2^(k-1)` seconds (plus deterministic jitter) before the
//! node re-enters the ready set. `ABORT-DAG-ON` stops the whole DAG when
//! the named node exits with the given code.

use std::collections::{HashMap, HashSet, VecDeque};

use htcsim::job::JobSpec;

/// Index of a node within its DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// One DAG node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Node name (unique within the DAG).
    pub name: String,
    /// The job this node runs.
    pub spec: JobSpec,
    /// Maximum retries after removal/failure.
    pub retries: u32,
    /// Base backoff delay in seconds between retries (DAGMan's
    /// `RETRY ... DEFER`); 0 retries immediately. Attempt *k* waits
    /// `retry_defer_s * 2^(k-1)` seconds plus deterministic jitter.
    pub retry_defer_s: u64,
    /// Abort the whole DAG if this node exits with this code
    /// (`ABORT-DAG-ON`).
    pub abort_dag_on: Option<i32>,
    /// Submission priority (higher submits first among ready nodes),
    /// mirroring DAGMan's `PRIORITY` keyword.
    pub priority: i32,
    /// Parent node ids.
    pub parents: Vec<NodeId>,
    /// Child node ids.
    pub children: Vec<NodeId>,
}

/// Throttling limits, mirroring `condor_submit_dag -maxjobs/-maxidle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Throttles {
    /// Maximum nodes simultaneously submitted-and-unfinished (0 = unlimited).
    pub max_jobs: usize,
    /// Maximum nodes sitting idle in the queue (0 = unlimited).
    pub max_idle: usize,
}

impl Default for Throttles {
    fn default() -> Self {
        // OSG guidance: keep ~1000 idle jobs per submitter.
        Self {
            max_jobs: 0,
            max_idle: 1000,
        }
    }
}

/// A directed acyclic graph of jobs.
#[derive(Debug, Clone, Default)]
pub struct Dag {
    nodes: Vec<Node>,
    by_name: HashMap<String, NodeId>,
    /// Throttles for this DAG.
    pub throttles: Throttles,
}

impl Dag {
    /// Create an empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node; errors on duplicate names.
    pub fn add_node(&mut self, spec: JobSpec) -> Result<NodeId, String> {
        let name = spec.name.clone();
        if self.by_name.contains_key(&name) {
            return Err(format!("duplicate node name '{name}'"));
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.clone(),
            spec,
            retries: 0,
            retry_defer_s: 0,
            abort_dag_on: None,
            priority: 0,
            parents: Vec::new(),
            children: Vec::new(),
        });
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// Add a dependency edge `parent → child`; errors on unknown ids,
    /// self-edges or duplicates.
    pub fn add_edge(&mut self, parent: NodeId, child: NodeId) -> Result<(), String> {
        if parent == child {
            return Err(format!("self-edge on node {}", self.nodes[parent.0].name));
        }
        if parent.0 >= self.nodes.len() || child.0 >= self.nodes.len() {
            return Err("edge references unknown node".into());
        }
        if self.nodes[parent.0].children.contains(&child) {
            return Ok(()); // idempotent, like DAGMan
        }
        self.nodes[parent.0].children.push(child);
        self.nodes[child.0].parents.push(parent);
        Ok(())
    }

    /// Set the retry budget of a node.
    pub fn set_retries(&mut self, node: NodeId, retries: u32) {
        self.nodes[node.0].retries = retries;
    }

    /// Set the base retry backoff of a node (`RETRY ... DEFER`).
    pub fn set_retry_defer(&mut self, node: NodeId, defer_s: u64) {
        self.nodes[node.0].retry_defer_s = defer_s;
    }

    /// Abort the whole DAG when `node` exits with `code` (`ABORT-DAG-ON`).
    pub fn set_abort_dag_on(&mut self, node: NodeId, code: i32) {
        self.nodes[node.0].abort_dag_on = Some(code);
    }

    /// Set the submission priority of a node (DAGMan `PRIORITY`).
    pub fn set_priority(&mut self, node: NodeId, priority: i32) {
        self.nodes[node.0].priority = priority;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Look up a node id by name.
    pub fn id_of(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Nodes with no parents (the initial ready set).
    pub fn roots(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .map(NodeId)
            .filter(|id| self.nodes[id.0].parents.is_empty())
            .collect()
    }

    /// Validate acyclicity via Kahn's algorithm; returns a topological
    /// order or an error naming a node on a cycle.
    pub fn topological_order(&self) -> Result<Vec<NodeId>, String> {
        let mut indeg: Vec<usize> = self.nodes.iter().map(|n| n.parents.len()).collect();
        let mut queue: VecDeque<NodeId> = (0..self.nodes.len())
            .map(NodeId)
            .filter(|id| indeg[id.0] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for &c in &self.nodes[id.0].children {
                indeg[c.0] -= 1;
                if indeg[c.0] == 0 {
                    queue.push_back(c);
                }
            }
        }
        if order.len() != self.nodes.len() {
            let stuck = (0..self.nodes.len())
                .find(|i| indeg[*i] > 0)
                .map(|i| self.nodes[i].name.clone())
                .unwrap_or_default();
            return Err(format!("cycle detected involving node '{stuck}'"));
        }
        Ok(order)
    }

    /// Serialise to the DAGMan input dialect. Node specs are referenced by
    /// `<name>.sub` since submit files live outside the DAG file.
    pub fn to_dag_file(&self) -> String {
        let mut out = String::new();
        for n in &self.nodes {
            out.push_str(&format!("JOB {} {}.sub\n", n.name, n.name));
        }
        for n in &self.nodes {
            if !n.children.is_empty() {
                let children: Vec<&str> = n
                    .children
                    .iter()
                    .map(|c| self.nodes[c.0].name.as_str())
                    .collect();
                out.push_str(&format!("PARENT {} CHILD {}\n", n.name, children.join(" ")));
            }
        }
        for n in &self.nodes {
            if n.retries > 0 {
                if n.retry_defer_s > 0 {
                    out.push_str(&format!(
                        "RETRY {} {} DEFER {}\n",
                        n.name, n.retries, n.retry_defer_s
                    ));
                } else {
                    out.push_str(&format!("RETRY {} {}\n", n.name, n.retries));
                }
            }
        }
        for n in &self.nodes {
            if let Some(code) = n.abort_dag_on {
                out.push_str(&format!("ABORT-DAG-ON {} {}\n", n.name, code));
            }
        }
        for n in &self.nodes {
            if n.priority != 0 {
                out.push_str(&format!("PRIORITY {} {}\n", n.name, n.priority));
            }
        }
        if self.throttles.max_jobs > 0 {
            out.push_str(&format!("MAXJOBS {}\n", self.throttles.max_jobs));
        }
        if self.throttles.max_idle > 0 {
            out.push_str(&format!("MAXIDLE {}\n", self.throttles.max_idle));
        }
        out
    }

    /// Parse the DAGMan dialect. `spec_of` supplies the job spec for each
    /// node name (standing in for reading the `.sub` file).
    pub fn parse(text: &str, mut spec_of: impl FnMut(&str) -> JobSpec) -> Result<Self, String> {
        let mut dag = Dag::new();
        let mut edges: Vec<(Vec<String>, Vec<String>)> = Vec::new();
        let mut retries: Vec<(String, u32, u64)> = Vec::new();
        let mut aborts: Vec<(String, i32)> = Vec::new();
        let mut priorities: Vec<(String, i32)> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut toks = line.split_whitespace();
            let keyword = toks.next().unwrap().to_ascii_uppercase();
            match keyword.as_str() {
                "JOB" => {
                    let name = toks
                        .next()
                        .ok_or_else(|| format!("line {}: JOB needs a name", lineno + 1))?;
                    // The submit-file token is accepted and ignored.
                    let _submit = toks.next();
                    dag.add_node(spec_of(name))
                        .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                }
                "PARENT" => {
                    let rest: Vec<String> = toks.map(str::to_string).collect();
                    let split = rest
                        .iter()
                        .position(|t| t.eq_ignore_ascii_case("CHILD"))
                        .ok_or_else(|| format!("line {}: PARENT without CHILD", lineno + 1))?;
                    let parents = rest[..split].to_vec();
                    let children = rest[split + 1..].to_vec();
                    if parents.is_empty() || children.is_empty() {
                        return Err(format!(
                            "line {}: PARENT/CHILD lists cannot be empty",
                            lineno + 1
                        ));
                    }
                    edges.push((parents, children));
                }
                "RETRY" => {
                    let name = toks
                        .next()
                        .ok_or_else(|| format!("line {}: RETRY needs a name", lineno + 1))?;
                    let n: u32 = toks
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| format!("line {}: RETRY needs a count", lineno + 1))?;
                    let defer = match toks.next() {
                        None => 0,
                        Some(t) if t.eq_ignore_ascii_case("DEFER") => toks
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| format!("line {}: DEFER needs seconds", lineno + 1))?,
                        Some(other) => {
                            return Err(format!(
                                "line {}: unexpected RETRY token '{other}'",
                                lineno + 1
                            ))
                        }
                    };
                    retries.push((name.to_string(), n, defer));
                }
                "ABORT-DAG-ON" => {
                    let name = toks
                        .next()
                        .ok_or_else(|| format!("line {}: ABORT-DAG-ON needs a name", lineno + 1))?;
                    let code: i32 = toks.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                        format!("line {}: ABORT-DAG-ON needs an exit code", lineno + 1)
                    })?;
                    aborts.push((name.to_string(), code));
                }
                "PRIORITY" => {
                    let name = toks
                        .next()
                        .ok_or_else(|| format!("line {}: PRIORITY needs a name", lineno + 1))?;
                    let p: i32 = toks
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| format!("line {}: PRIORITY needs a value", lineno + 1))?;
                    priorities.push((name.to_string(), p));
                }
                "MAXJOBS" => {
                    dag.throttles.max_jobs = toks
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| format!("line {}: MAXJOBS needs a count", lineno + 1))?;
                }
                "MAXIDLE" => {
                    dag.throttles.max_idle = toks
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| format!("line {}: MAXIDLE needs a count", lineno + 1))?;
                }
                other => return Err(format!("line {}: unknown keyword '{other}'", lineno + 1)),
            }
        }
        for (parents, children) in edges {
            for p in &parents {
                let pid = dag
                    .id_of(p)
                    .ok_or_else(|| format!("PARENT references unknown node '{p}'"))?;
                for c in &children {
                    let cid = dag
                        .id_of(c)
                        .ok_or_else(|| format!("CHILD references unknown node '{c}'"))?;
                    dag.add_edge(pid, cid)?;
                }
            }
        }
        for (name, n, defer) in retries {
            let id = dag
                .id_of(&name)
                .ok_or_else(|| format!("RETRY references unknown node '{name}'"))?;
            dag.set_retries(id, n);
            dag.set_retry_defer(id, defer);
        }
        for (name, code) in aborts {
            let id = dag
                .id_of(&name)
                .ok_or_else(|| format!("ABORT-DAG-ON references unknown node '{name}'"))?;
            dag.set_abort_dag_on(id, code);
        }
        for (name, p) in priorities {
            let id = dag
                .id_of(&name)
                .ok_or_else(|| format!("PRIORITY references unknown node '{name}'"))?;
            dag.set_priority(id, p);
        }
        // Reject cyclic inputs at parse time, like condor_submit_dag does.
        dag.topological_order()?;
        Ok(dag)
    }

    /// The set of node names reachable from `from` (descendants).
    pub fn descendants(&self, from: NodeId) -> HashSet<NodeId> {
        let mut seen = HashSet::new();
        let mut stack = vec![from];
        while let Some(id) = stack.pop() {
            for &c in &self.nodes[id.0].children {
                if seen.insert(c) {
                    stack.push(c);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str) -> JobSpec {
        JobSpec::fixed(name, 60.0)
    }

    fn diamond() -> Dag {
        let mut d = Dag::new();
        let a = d.add_node(spec("A")).unwrap();
        let b = d.add_node(spec("B")).unwrap();
        let c = d.add_node(spec("C")).unwrap();
        let e = d.add_node(spec("D")).unwrap();
        d.add_edge(a, b).unwrap();
        d.add_edge(a, c).unwrap();
        d.add_edge(b, e).unwrap();
        d.add_edge(c, e).unwrap();
        d
    }

    #[test]
    fn build_and_query() {
        let d = diamond();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.roots(), vec![NodeId(0)]);
        assert_eq!(d.id_of("C"), Some(NodeId(2)));
        assert_eq!(d.node(NodeId(3)).parents.len(), 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut d = Dag::new();
        d.add_node(spec("A")).unwrap();
        assert!(d.add_node(spec("A")).is_err());
    }

    #[test]
    fn self_edge_rejected_and_duplicate_edges_idempotent() {
        let mut d = Dag::new();
        let a = d.add_node(spec("A")).unwrap();
        let b = d.add_node(spec("B")).unwrap();
        assert!(d.add_edge(a, a).is_err());
        d.add_edge(a, b).unwrap();
        d.add_edge(a, b).unwrap();
        assert_eq!(d.node(a).children.len(), 1);
        assert_eq!(d.node(b).parents.len(), 1);
    }

    #[test]
    fn topological_order_respects_edges() {
        let d = diamond();
        let order = d.topological_order().unwrap();
        let pos: HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        for n in 0..d.len() {
            for &c in &d.node(NodeId(n)).children {
                assert!(pos[&NodeId(n)] < pos[&c]);
            }
        }
    }

    #[test]
    fn cycle_detected() {
        let mut d = Dag::new();
        let a = d.add_node(spec("A")).unwrap();
        let b = d.add_node(spec("B")).unwrap();
        d.add_edge(a, b).unwrap();
        d.add_edge(b, a).unwrap();
        let err = d.topological_order().unwrap_err();
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn dag_file_roundtrip() {
        let mut d = diamond();
        d.set_retries(NodeId(3), 2);
        d.set_retries(NodeId(1), 3);
        d.set_retry_defer(NodeId(1), 120);
        d.set_abort_dag_on(NodeId(0), 2);
        d.throttles = Throttles {
            max_jobs: 100,
            max_idle: 500,
        };
        let text = d.to_dag_file();
        assert!(text.contains("JOB A A.sub"));
        assert!(text.contains("PARENT A CHILD B C"));
        assert!(text.contains("RETRY D 2"));
        assert!(text.contains("RETRY B 3 DEFER 120"));
        assert!(text.contains("ABORT-DAG-ON A 2"));
        let parsed = Dag::parse(&text, spec).unwrap();
        assert_eq!(parsed.len(), 4);
        assert_eq!(parsed.node(parsed.id_of("D").unwrap()).retries, 2);
        assert_eq!(parsed.node(parsed.id_of("D").unwrap()).retry_defer_s, 0);
        assert_eq!(parsed.node(parsed.id_of("B").unwrap()).retries, 3);
        assert_eq!(parsed.node(parsed.id_of("B").unwrap()).retry_defer_s, 120);
        assert_eq!(
            parsed.node(parsed.id_of("A").unwrap()).abort_dag_on,
            Some(2)
        );
        assert_eq!(parsed.throttles.max_jobs, 100);
        assert_eq!(parsed.throttles.max_idle, 500);
        assert_eq!(parsed.node(parsed.id_of("D").unwrap()).parents.len(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(Dag::parse("JOB", spec).is_err());
        assert!(Dag::parse("PARENT A B", spec).is_err()); // no CHILD
        assert!(Dag::parse("FROB A", spec).is_err());
        assert!(Dag::parse("JOB A a.sub\nRETRY A x", spec).is_err());
        assert!(Dag::parse("JOB A a.sub\nRETRY A 2 DEFER", spec).is_err());
        assert!(Dag::parse("JOB A a.sub\nRETRY A 2 BOGUS 5", spec).is_err());
        assert!(Dag::parse("JOB A a.sub\nABORT-DAG-ON A", spec).is_err());
        assert!(Dag::parse("ABORT-DAG-ON Z 2", spec).is_err());
        assert!(Dag::parse("JOB A a.sub\nPARENT A CHILD Z", spec).is_err());
        assert!(Dag::parse("PARENT CHILD", spec).is_err());
        // Cyclic input rejected at parse.
        let cyclic = "JOB A a\nJOB B b\nPARENT A CHILD B\nPARENT B CHILD A\n";
        assert!(Dag::parse(cyclic, spec).is_err());
    }

    #[test]
    fn parse_skips_comments_and_case() {
        let text = "# header\njob A a.sub # trailing\nJOB B b.sub\nparent A child B\n";
        let d = Dag::parse(text, spec).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.node(d.id_of("A").unwrap()).children.len(), 1);
    }

    #[test]
    fn descendants_of_root_is_everything_else() {
        let d = diamond();
        let desc = d.descendants(NodeId(0));
        assert_eq!(desc.len(), 3);
        assert!(!desc.contains(&NodeId(0)));
        assert!(d.descendants(NodeId(3)).is_empty());
    }

    #[test]
    fn default_throttles_match_osg_guidance() {
        let t = Throttles::default();
        assert_eq!(t.max_idle, 1000);
        assert_eq!(t.max_jobs, 0);
    }
}
