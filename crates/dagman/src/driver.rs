//! The DAGMan scheduler: a [`WorkloadDriver`] that walks a [`Dag`] on the
//! cluster, submitting nodes whose parents have finished, subject to
//! `maxjobs`/`maxidle` throttles, with per-node retries, exponential
//! retry backoff (`RETRY ... DEFER`), hold/release accounting,
//! `ABORT-DAG-ON` exit-code handling, and optional straggler speculation
//! (a duplicate submission for nodes running far past their phase's
//! expected cost; first finisher wins, the loser is condor_rm'd).

use std::collections::{BTreeMap, HashMap, HashSet};

use fdw_obs::Obs;
use htcsim::cluster::WorkloadDriver;
use htcsim::job::{JobEvent, JobEventKind, JobId, OwnerId, SubmitRequest};
use htcsim::time::SimTime;

use crate::dag::{Dag, NodeId};

/// Retry backoff never exceeds this many seconds, whatever the attempt.
const MAX_BACKOFF_S: u64 = 3600;

/// Straggler-speculation knobs. Off by default: existing runs are
/// bit-identical until `enabled` is set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculationConfig {
    /// Master switch for speculative re-execution.
    pub enabled: bool,
    /// A started node becomes a straggler when its runtime exceeds
    /// `multiplier` times the phase's expected cost.
    pub multiplier: f64,
    /// Quantile of the phase's completed execution times used as the
    /// expected cost (0.5 = median).
    pub quantile: f64,
    /// Completed samples a phase needs before speculation can trigger.
    pub min_samples: usize,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            multiplier: 2.0,
            quantile: 0.75,
            min_samples: 3,
        }
    }
}

impl SpeculationConfig {
    /// Reject meaningless knob settings.
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        if self.multiplier < 1.0 || self.multiplier.is_nan() {
            return Err("speculation multiplier must be >= 1".into());
        }
        if !(self.quantile > 0.0 && self.quantile <= 1.0) {
            return Err("speculation quantile must be in (0, 1]".into());
        }
        if self.min_samples == 0 {
            return Err("speculation min_samples must be positive".into());
        }
        Ok(())
    }
}

/// A permanently failed node, as reported by [`Dagman::failed_nodes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedNode {
    /// Node name.
    pub name: String,
    /// Exit code of the final attempt (`None` when the job was removed
    /// rather than exiting, e.g. a walltime removal).
    pub exit_code: Option<i32>,
    /// How many times the node was submitted.
    pub attempts: u32,
}

/// Deterministic jitter for retry backoff, keyed on node name and
/// attempt number so concurrent retries de-synchronise without
/// consulting a stateful RNG.
fn backoff_jitter(name: &str, attempt: u32) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^= attempt as u64;
    h = h.wrapping_mul(0x100000001b3);
    h
}

/// Per-node scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Parents not yet done.
    Waiting,
    /// Eligible for submission.
    Ready,
    /// Submitted, queued idle.
    Queued,
    /// Executing (or staging) on the pool.
    Started,
    /// Finished successfully.
    Done,
    /// Removed/failed with retries exhausted.
    Failed,
}

/// A running DAGMan instance.
pub struct Dagman {
    dag: Dag,
    owner: OwnerId,
    state: Vec<NodeState>,
    remaining_retries: Vec<u32>,
    unfinished_parents: Vec<usize>,
    ready: Vec<NodeId>,
    job_to_node: HashMap<JobId, NodeId>,
    /// Nodes submitted and not yet terminal.
    in_flight: usize,
    /// Nodes submitted and not yet started (idle in the queue).
    idle: usize,
    done: usize,
    failed: usize,
    /// Pending submissions awaiting id assignment, in order; the flag
    /// marks speculative duplicates.
    awaiting_assign: std::collections::VecDeque<(NodeId, bool)>,
    /// Whether any node carries a non-zero priority (enables the
    /// priority-aware ready-set scan).
    has_priorities: bool,
    /// Retries waiting out their backoff: (due time, node).
    deferred: Vec<(SimTime, NodeId)>,
    /// Submission count per node.
    attempts: Vec<u32>,
    /// Exit code of each node's most recent terminal event.
    last_exit: Vec<Option<i32>>,
    /// Simulation time of the latest poll.
    now: SimTime,
    /// Hold events observed across all nodes.
    holds: u64,
    /// Retries actually performed.
    retries_done: u64,
    /// Set when an `ABORT-DAG-ON` node exited with its trigger code.
    aborted: bool,
    /// Nodes that can never run because an ancestor failed permanently.
    futile: Vec<bool>,
    /// Count of futile nodes (they settle the DAG without running).
    futile_count: usize,
    /// Release events observed across all nodes.
    releases: u64,
    /// When each node's current attempt was submitted (span bookkeeping).
    submit_at: Vec<SimTime>,
    /// Telemetry handle (disabled by default).
    obs: Obs,
    /// Straggler-speculation knobs (defense layer; off by default).
    spec_cfg: SpeculationConfig,
    /// Execution start time of each live attempt, by job id.
    exec_started: HashMap<JobId, SimTime>,
    /// The current primary attempt's job id per node.
    primary_job: Vec<Option<JobId>>,
    /// Outstanding speculative duplicate per node.
    spec_job: Vec<Option<JobId>>,
    /// Whether the node's current attempt already spawned a duplicate.
    speculated: Vec<bool>,
    /// Completed execution seconds per workflow phase (node-name prefix),
    /// feeding the straggler threshold. Kept separate from telemetry so
    /// observability can never perturb scheduling.
    phase_durations: BTreeMap<String, Vec<f64>>,
    /// Losers awaiting condor_rm, drained by `cancellations`.
    pending_cancel: Vec<JobId>,
    /// Jobs this DAGMan removed itself: their terminal events are
    /// bookkeeping, not node outcomes.
    cancelled: HashSet<JobId>,
    speculations: u64,
    spec_wins: u64,
    spec_losses: u64,
    wasted_spec_s: f64,
}

impl Dagman {
    /// Create a DAGMan for `dag`, submitting as `owner`.
    pub fn new(dag: Dag, owner: OwnerId) -> Self {
        let n = dag.len();
        let unfinished_parents: Vec<usize> =
            dag.nodes().iter().map(|nd| nd.parents.len()).collect();
        let mut state = vec![NodeState::Waiting; n];
        let mut ready = Vec::new();
        for id in dag.roots() {
            state[id.0] = NodeState::Ready;
            ready.push(id);
        }
        let remaining_retries = dag.nodes().iter().map(|nd| nd.retries).collect();
        let has_priorities = dag.nodes().iter().any(|nd| nd.priority != 0);
        Self {
            dag,
            owner,
            state,
            remaining_retries,
            unfinished_parents,
            ready,
            job_to_node: HashMap::new(),
            in_flight: 0,
            idle: 0,
            done: 0,
            failed: 0,
            awaiting_assign: std::collections::VecDeque::new(),
            has_priorities,
            deferred: Vec::new(),
            attempts: vec![0; n],
            last_exit: vec![None; n],
            now: SimTime(0),
            holds: 0,
            retries_done: 0,
            aborted: false,
            futile: vec![false; n],
            futile_count: 0,
            releases: 0,
            submit_at: vec![SimTime(0); n],
            obs: Obs::disabled(),
            spec_cfg: SpeculationConfig::default(),
            exec_started: HashMap::new(),
            primary_job: vec![None; n],
            spec_job: vec![None; n],
            speculated: vec![false; n],
            phase_durations: BTreeMap::new(),
            pending_cancel: Vec::new(),
            cancelled: HashSet::new(),
            speculations: 0,
            spec_wins: 0,
            spec_losses: 0,
            wasted_spec_s: 0.0,
        }
    }

    /// Enable/configure straggler speculation.
    pub fn with_speculation(mut self, cfg: SpeculationConfig) -> Self {
        self.spec_cfg = cfg;
        self
    }

    /// Attach a telemetry handle. Node spans land in category `dagman`,
    /// metrics under `dagman.*`.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The owner id this DAGMan submits under.
    pub fn owner(&self) -> OwnerId {
        self.owner
    }

    /// Borrow the underlying DAG.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Nodes completed so far.
    pub fn completed(&self) -> usize {
        self.done
    }

    /// Nodes failed permanently.
    pub fn failed(&self) -> usize {
        self.failed
    }

    /// Current state of a node.
    pub fn node_state(&self, id: NodeId) -> NodeState {
        self.state[id.0]
    }

    /// Permanently failed nodes with their final exit code and attempt
    /// count (for rescue DAG generation and post-mortem reporting).
    pub fn failed_nodes(&self) -> Vec<FailedNode> {
        (0..self.dag.len())
            .filter(|i| self.state[*i] == NodeState::Failed)
            .map(|i| FailedNode {
                name: self.dag.node(NodeId(i)).name.clone(),
                exit_code: self.last_exit[i],
                attempts: self.attempts[i],
            })
            .collect()
    }

    /// Hold events observed across all nodes.
    pub fn holds(&self) -> u64 {
        self.holds
    }

    /// Retries performed so far (resubmissions after failure/removal).
    pub fn retries(&self) -> u64 {
        self.retries_done
    }

    /// Release events observed across all nodes.
    pub fn releases(&self) -> u64 {
        self.releases
    }

    /// Nodes stranded by a permanently failed ancestor.
    pub fn futile(&self) -> usize {
        self.futile_count
    }

    /// Total job submission attempts across every node.
    pub fn total_attempts(&self) -> u64 {
        self.attempts.iter().map(|&a| a as u64).sum()
    }

    /// True when an `ABORT-DAG-ON` trigger stopped the DAG.
    pub fn aborted(&self) -> bool {
        self.aborted
    }

    /// Speculative duplicates launched.
    pub fn speculations(&self) -> u64 {
        self.speculations
    }

    /// Speculated nodes where the duplicate finished first.
    pub fn spec_wins(&self) -> u64 {
        self.spec_wins
    }

    /// Speculated nodes where the original attempt finished first.
    pub fn spec_losses(&self) -> u64 {
        self.spec_losses
    }

    /// Execution seconds burned by cancelled speculative losers.
    pub fn wasted_speculative_seconds(&self) -> f64 {
        self.wasted_spec_s
    }

    /// How many times `node` was submitted.
    pub fn node_attempts(&self, node: NodeId) -> u32 {
        self.attempts[node.0]
    }

    /// Name of the node a cluster job id was submitted under, if this
    /// DAGMan submitted it (telemetry uses this to group user-log events
    /// by workflow phase).
    pub fn node_name(&self, job: JobId) -> Option<&str> {
        self.job_to_node
            .get(&job)
            .map(|n| self.dag.node(*n).name.as_str())
    }

    /// Names of completed nodes (for rescue DAG generation).
    pub fn done_nodes(&self) -> Vec<&str> {
        (0..self.dag.len())
            .filter(|i| self.state[*i] == NodeState::Done)
            .map(|i| self.dag.node(NodeId(i)).name.as_str())
            .collect()
    }

    /// Rescue-DAG resume path: complete a node that was never submitted.
    pub(crate) fn force_done_inner(&mut self, node: NodeId) {
        self.state[node.0] = NodeState::Done;
        self.done += 1;
        self.ready.retain(|&r| r != node);
        let children = self.dag.node(node).children.clone();
        for c in children {
            self.unfinished_parents[c.0] -= 1;
            if self.unfinished_parents[c.0] == 0 && self.state[c.0] == NodeState::Waiting {
                self.state[c.0] = NodeState::Ready;
                self.ready.push(c);
            }
        }
    }

    /// Trace lane for a node: owner-disambiguated so concurrent DAGMans
    /// stay on separate tracks in one export.
    fn node_tid(&self, node: NodeId) -> u64 {
        self.owner.0 as u64 * 1_000_000 + node.0 as u64
    }

    fn mark_done(&mut self, node: NodeId) {
        if self.state[node.0] == NodeState::Done {
            return;
        }
        self.state[node.0] = NodeState::Done;
        self.done += 1;
        self.in_flight -= 1;
        self.obs.inc("dagman.nodes_done", 1);
        self.obs.span(
            "dagman",
            &format!("node:{}", self.dag.node(node).name),
            self.node_tid(node),
            self.submit_at[node.0].as_secs(),
            self.now.as_secs(),
        );
        let children = self.dag.node(node).children.clone();
        for c in children {
            self.unfinished_parents[c.0] -= 1;
            if self.unfinished_parents[c.0] == 0 && self.state[c.0] == NodeState::Waiting {
                self.state[c.0] = NodeState::Ready;
                self.ready.push(c);
            }
        }
    }

    /// Terminal-but-retryable path: consume a retry with exponential
    /// backoff, or fail the node for good when the budget is spent.
    fn mark_removed(&mut self, node: NodeId) {
        self.in_flight -= 1;
        if !self.aborted && self.remaining_retries[node.0] > 0 {
            self.remaining_retries[node.0] -= 1;
            self.retries_done += 1;
            self.obs.inc("dagman.retries", 1);
            let nd = self.dag.node(node);
            let base = nd.retry_defer_s;
            if base == 0 {
                self.obs.observe("dagman.backoff_wait_s", 0.0);
                self.state[node.0] = NodeState::Ready;
                self.ready.push(node);
            } else {
                // Attempt k (1-based) waits base * 2^(k-1), capped, plus
                // deterministic jitter of up to a quarter of the delay.
                let k = nd.retries - self.remaining_retries[node.0];
                let delay = base
                    .checked_shl(k.saturating_sub(1).min(6))
                    .unwrap_or(u64::MAX)
                    .min(MAX_BACKOFF_S);
                let jitter = backoff_jitter(&nd.name, k) % (delay / 4 + 1);
                self.obs
                    .observe("dagman.backoff_wait_s", (delay + jitter) as f64);
                self.obs.span(
                    "dagman",
                    &format!("backoff:{}", nd.name),
                    self.node_tid(node),
                    self.now.as_secs(),
                    (self.now + delay + jitter).as_secs(),
                );
                self.state[node.0] = NodeState::Ready;
                self.deferred.push((self.now + delay + jitter, node));
            }
        } else {
            self.state[node.0] = NodeState::Failed;
            self.failed += 1;
            self.obs.inc("dagman.nodes_failed", 1);
            self.obs.span(
                "dagman",
                &format!("node:{}", self.dag.node(node).name),
                self.node_tid(node),
                self.submit_at[node.0].as_secs(),
                self.now.as_secs(),
            );
            self.mark_futile_descendants(node);
        }
    }

    /// A permanently failed node strands every waiting descendant: mark
    /// them futile so the DAG can settle (DAGMan's "futile node" count).
    fn mark_futile_descendants(&mut self, node: NodeId) {
        for d in self.dag.descendants(node) {
            if self.state[d.0] == NodeState::Waiting && !self.futile[d.0] {
                self.futile[d.0] = true;
                self.futile_count += 1;
                self.obs.inc("dagman.nodes_futile", 1);
            }
        }
    }

    /// Move deferred retries whose backoff has expired into the ready set.
    fn drain_deferred(&mut self) {
        let now = self.now;
        let mut i = 0;
        while i < self.deferred.len() {
            if self.deferred[i].0 <= now {
                let (_, node) = self.deferred.swap_remove(i);
                self.ready.push(node);
            } else {
                i += 1;
            }
        }
    }

    fn process(&mut self, events: &[JobEvent]) {
        for ev in events {
            if ev.owner != self.owner {
                continue;
            }
            let Some(&node) = self.job_to_node.get(&ev.job) else {
                continue;
            };
            if self.cancelled.contains(&ev.job) {
                self.settle_cancelled(ev, node);
                continue;
            }
            let is_primary = self.primary_job[node.0] == Some(ev.job);
            match ev.kind {
                JobEventKind::ExecuteStarted => {
                    self.exec_started.insert(ev.job, ev.time);
                    if is_primary && self.state[node.0] == NodeState::Queued {
                        self.state[node.0] = NodeState::Started;
                        self.idle = self.idle.saturating_sub(1);
                    }
                }
                JobEventKind::Evicted | JobEventKind::Preempted | JobEventKind::PoolOutage => {
                    // Cluster re-queues evicted, preempted and
                    // outage-displaced jobs automatically; the node is
                    // idle again for throttle purposes. Pool-level
                    // displacements consume no DAGMan retry.
                    self.exec_started.remove(&ev.job);
                    if is_primary && self.state[node.0] == NodeState::Started {
                        self.state[node.0] = NodeState::Queued;
                        self.idle += 1;
                    }
                }
                JobEventKind::Held => {
                    // The job lost its slot; it counts as idle until the
                    // cluster releases and re-matches it.
                    self.exec_started.remove(&ev.job);
                    self.holds += 1;
                    self.obs.inc("dagman.holds", 1);
                    if is_primary && self.state[node.0] == NodeState::Started {
                        self.state[node.0] = NodeState::Queued;
                        self.idle += 1;
                    }
                }
                JobEventKind::Released => {
                    // Still queued from DAGMan's perspective; only the
                    // release tally moves.
                    self.releases += 1;
                    self.obs.inc("dagman.releases", 1);
                }
                JobEventKind::Completed => self.complete(ev, node),
                JobEventKind::Failed => {
                    self.exec_started.remove(&ev.job);
                    if self.spec_job[node.0] == Some(ev.job) {
                        // The duplicate died on its own; the original
                        // attempt is unaffected.
                        self.spec_job[node.0] = None;
                        continue;
                    }
                    if !is_primary {
                        continue;
                    }
                    self.last_exit[node.0] = ev.exit_code;
                    let trigger = self.dag.node(node).abort_dag_on;
                    if trigger.is_some() && trigger == ev.exit_code {
                        // ABORT-DAG-ON: the node fails for good and the
                        // whole DAG stops submitting.
                        if self.state[node.0] == NodeState::Queued {
                            self.idle = self.idle.saturating_sub(1);
                        }
                        if let Some(dup) = self.spec_job[node.0].take() {
                            self.cancel(dup);
                        }
                        self.aborted = true;
                        self.in_flight -= 1;
                        self.state[node.0] = NodeState::Failed;
                        self.failed += 1;
                        self.obs.inc("dagman.aborts", 1);
                        self.obs.inc("dagman.nodes_failed", 1);
                        self.mark_futile_descendants(node);
                    } else if self.promote_duplicate(node) {
                        // The duplicate carries on; no retry consumed.
                    } else {
                        if self.state[node.0] == NodeState::Queued {
                            self.idle = self.idle.saturating_sub(1);
                        }
                        self.mark_removed(node);
                    }
                }
                JobEventKind::Removed => {
                    self.exec_started.remove(&ev.job);
                    if self.spec_job[node.0] == Some(ev.job) {
                        self.spec_job[node.0] = None;
                        continue;
                    }
                    if !is_primary {
                        continue;
                    }
                    self.last_exit[node.0] = None;
                    if self.promote_duplicate(node) {
                        continue;
                    }
                    if self.state[node.0] == NodeState::Queued {
                        self.idle = self.idle.saturating_sub(1);
                    }
                    self.mark_removed(node);
                }
                // Service-layer events (admission/shedding/artifact
                // store) are emitted by the campaign front-end, never by
                // the cluster a DAGMan drives; nothing to do here.
                JobEventKind::Submitted
                | JobEventKind::Matched
                | JobEventKind::PartitionStalled
                | JobEventKind::Migrated
                | JobEventKind::ServiceAdmitted
                | JobEventKind::ServiceRejected
                | JobEventKind::ServiceShed
                | JobEventKind::ServiceDegraded
                | JobEventKind::ArtifactHit
                | JobEventKind::ArtifactQuarantined => {}
            }
        }
    }

    /// First finisher wins a speculated node: settle the node, record the
    /// phase sample, and condor_rm the losing copy.
    fn complete(&mut self, ev: &JobEvent, node: NodeId) {
        if self.state[node.0] == NodeState::Done {
            // The slower copy finished before its condor_rm landed; the
            // winner already settled the node.
            return;
        }
        if let Some(start) = self.exec_started.remove(&ev.job) {
            let phase = phase_of(&self.dag.node(node).name).to_string();
            self.phase_durations
                .entry(phase)
                .or_default()
                .push(ev.time.since(start) as f64);
        }
        let dup = self.spec_job[node.0].take();
        let primary = self.primary_job[node.0].take();
        if dup == Some(ev.job) {
            self.spec_wins += 1;
            self.obs.inc("dagman.spec_wins", 1);
            if let Some(loser) = primary {
                self.cancel(loser);
            }
        } else if let Some(loser) = dup {
            self.spec_losses += 1;
            self.obs.inc("dagman.spec_losses", 1);
            self.cancel(loser);
        }
        if self.state[node.0] == NodeState::Queued {
            self.idle = self.idle.saturating_sub(1);
        }
        self.last_exit[node.0] = ev.exit_code.or(Some(0));
        self.mark_done(node);
    }

    /// Queue a condor_rm for the losing copy of a speculated node.
    fn cancel(&mut self, job: JobId) {
        self.cancelled.insert(job);
        self.pending_cancel.push(job);
    }

    /// Terminal event of a job this DAGMan removed itself: account the
    /// wasted execution and drop the tracking state. Not a node outcome.
    fn settle_cancelled(&mut self, ev: &JobEvent, node: NodeId) {
        match ev.kind {
            JobEventKind::Removed | JobEventKind::Failed | JobEventKind::Completed => {
                self.cancelled.remove(&ev.job);
                if let Some(start) = self.exec_started.remove(&ev.job) {
                    let wasted = ev.time.since(start) as f64;
                    self.wasted_spec_s += wasted;
                    self.obs.observe("dagman.spec_wasted_s", wasted);
                }
                if self.spec_job[node.0] == Some(ev.job) {
                    self.spec_job[node.0] = None;
                }
                if self.primary_job[node.0] == Some(ev.job) {
                    self.primary_job[node.0] = None;
                }
            }
            _ => {}
        }
    }

    /// Primary attempt died with a speculative duplicate still in the
    /// queue: the duplicate becomes the primary and the node keeps its
    /// in-flight status without consuming a retry.
    fn promote_duplicate(&mut self, node: NodeId) -> bool {
        let Some(dup) = self.spec_job[node.0].take() else {
            return false;
        };
        self.primary_job[node.0] = Some(dup);
        let running = self.exec_started.contains_key(&dup);
        match (self.state[node.0], running) {
            (NodeState::Started, false) => {
                self.state[node.0] = NodeState::Queued;
                self.idle += 1;
            }
            (NodeState::Queued, true) => {
                self.state[node.0] = NodeState::Started;
                self.idle = self.idle.saturating_sub(1);
            }
            _ => {}
        }
        true
    }

    /// Expected cost of a phase: the configured quantile over completed
    /// execution times, once enough samples exist.
    fn phase_expected(&self, phase: &str) -> Option<f64> {
        let samples = self.phase_durations.get(phase)?;
        if samples.len() < self.spec_cfg.min_samples {
            return None;
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((sorted.len() - 1) as f64 * self.spec_cfg.quantile).round() as usize;
        Some(sorted[idx.min(sorted.len() - 1)])
    }

    /// Straggler scan: launch one speculative duplicate for any started
    /// node whose attempt has run well past its phase's expected cost.
    fn speculation_submissions(&mut self) -> Vec<SubmitRequest> {
        if !self.spec_cfg.enabled {
            return Vec::new();
        }
        let mut out = Vec::new();
        for i in 0..self.dag.len() {
            if self.state[i] != NodeState::Started
                || self.speculated[i]
                || self.spec_job[i].is_some()
            {
                continue;
            }
            let Some(pj) = self.primary_job[i] else {
                continue;
            };
            let Some(&start) = self.exec_started.get(&pj) else {
                continue;
            };
            let Some(expected) = self.phase_expected(phase_of(&self.dag.node(NodeId(i)).name))
            else {
                continue;
            };
            if (self.now.since(start) as f64) <= expected * self.spec_cfg.multiplier {
                continue;
            }
            self.speculated[i] = true;
            self.speculations += 1;
            self.attempts[i] += 1;
            self.obs.inc("dagman.speculations", 1);
            self.obs.instant(
                "dagman",
                "speculate",
                self.node_tid(NodeId(i)),
                self.now.as_secs(),
            );
            self.awaiting_assign.push_back((NodeId(i), true));
            out.push(SubmitRequest {
                owner: self.owner,
                spec: self.dag.node(NodeId(i)).spec.clone(),
            });
        }
        out
    }

    /// Index in `ready` of the next node to submit: highest priority
    /// first (DAGMan `PRIORITY`), FIFO among equals. DAGs without
    /// priorities (the common FDW case) take an O(1) fast path.
    fn next_ready_index(&self) -> Option<usize> {
        if self.ready.is_empty() {
            return None;
        }
        if !self.has_priorities {
            return Some(self.ready.len() - 1);
        }
        let mut best: Option<(usize, i32)> = None;
        for (idx, node) in self.ready.iter().enumerate() {
            let p = self.dag.node(*node).priority;
            match best {
                Some((_, bp)) if bp >= p => {}
                _ => best = Some((idx, p)),
            }
        }
        best.map(|(idx, _)| idx)
    }

    fn submissions(&mut self) -> Vec<SubmitRequest> {
        let t = self.dag.throttles;
        let mut out = Vec::new();
        while let Some(idx) = self.next_ready_index() {
            let node = self.ready[idx];
            if t.max_idle > 0 && self.idle >= t.max_idle {
                break;
            }
            if t.max_jobs > 0 && self.in_flight >= t.max_jobs {
                break;
            }
            self.ready.remove(idx);
            self.state[node.0] = NodeState::Queued;
            self.attempts[node.0] += 1;
            self.submit_at[node.0] = self.now;
            self.obs.inc("dagman.submissions", 1);
            self.in_flight += 1;
            self.idle += 1;
            // A fresh attempt gets a fresh speculation budget.
            self.speculated[node.0] = false;
            self.primary_job[node.0] = None;
            self.spec_job[node.0] = None;
            self.awaiting_assign.push_back((node, false));
            out.push(SubmitRequest {
                owner: self.owner,
                spec: self.dag.node(node).spec.clone(),
            });
        }
        out
    }
}

/// Workflow phase of a node: the name prefix before the first `.`
/// (`rupt.3` → `rupt`), matching the telemetry grouping.
fn phase_of(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

impl WorkloadDriver for Dagman {
    fn poll(&mut self, now: SimTime, events: &[JobEvent]) -> Vec<SubmitRequest> {
        self.now = now;
        self.process(events);
        self.drain_deferred();
        if self.aborted {
            return Vec::new();
        }
        let mut subs = self.submissions();
        subs.extend(self.speculation_submissions());
        subs
    }

    fn on_assigned(&mut self, job: JobId, _name: &str) {
        let (node, is_spec) = self
            .awaiting_assign
            .pop_front()
            .expect("assignment without pending submission");
        self.job_to_node.insert(job, node);
        if is_spec {
            self.spec_job[node.0] = Some(job);
        } else {
            self.primary_job[node.0] = Some(job);
        }
    }

    fn cancellations(&mut self) -> Vec<JobId> {
        std::mem::take(&mut self.pending_cancel)
    }

    fn is_done(&self) -> bool {
        (self.aborted && self.in_flight == 0)
            || self.done + self.failed + self.futile_count == self.dag.len()
    }
}

/// Several DAGMans submitting concurrently to the same schedd — the
/// paper's §4.2 experiment. Each DAGMan keeps its own owner id so the
/// pool's fair-share treats them as separate submitters.
pub struct MultiDagman {
    dagmans: Vec<Dagman>,
    /// Which dagman is waiting for the next id assignment, FIFO.
    assign_queue: std::collections::VecDeque<usize>,
}

impl MultiDagman {
    /// Create from a list of DAGs; owner ids are assigned 0..n.
    pub fn new(dags: Vec<Dag>) -> Self {
        let dagmans = dags
            .into_iter()
            .enumerate()
            .map(|(i, d)| Dagman::new(d, OwnerId(i as u32)))
            .collect();
        Self {
            dagmans,
            assign_queue: std::collections::VecDeque::new(),
        }
    }

    /// Attach one telemetry handle to every inner DAGMan (they share the
    /// sink; owner-disambiguated trace lanes keep them apart).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        for dm in &mut self.dagmans {
            dm.obs = obs.clone();
        }
        self
    }

    /// Apply one speculation config to every inner DAGMan.
    pub fn with_speculation(mut self, cfg: SpeculationConfig) -> Self {
        for dm in &mut self.dagmans {
            dm.spec_cfg = cfg;
        }
        self
    }

    /// Borrow the inner DAGMans.
    pub fn dagmans(&self) -> &[Dagman] {
        &self.dagmans
    }

    /// Number of DAGMans.
    pub fn len(&self) -> usize {
        self.dagmans.len()
    }

    /// True when holding no DAGMans.
    pub fn is_empty(&self) -> bool {
        self.dagmans.is_empty()
    }
}

impl WorkloadDriver for MultiDagman {
    fn poll(&mut self, now: SimTime, events: &[JobEvent]) -> Vec<SubmitRequest> {
        let mut out = Vec::new();
        for (i, dm) in self.dagmans.iter_mut().enumerate() {
            let subs = dm.poll(now, events);
            for s in subs {
                self.assign_queue.push_back(i);
                out.push(s);
            }
        }
        out
    }

    fn on_assigned(&mut self, job: JobId, name: &str) {
        let i = self
            .assign_queue
            .pop_front()
            .expect("assignment without pending submission");
        self.dagmans[i].on_assigned(job, name);
    }

    fn cancellations(&mut self) -> Vec<JobId> {
        let mut out = Vec::new();
        for dm in &mut self.dagmans {
            out.extend(dm.cancellations());
        }
        out
    }

    fn is_done(&self) -> bool {
        self.dagmans.iter().all(|d| d.is_done())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htcsim::cluster::{Cluster, ClusterConfig};
    use htcsim::job::JobSpec;
    use htcsim::pool::PoolConfig;

    fn quick_cluster(seed: u64) -> Cluster {
        Cluster::new(
            ClusterConfig {
                pool: PoolConfig {
                    target_slots: 32,
                    glidein_slots: 8,
                    avail_mean: 0.95,
                    avail_sigma: 0.02,
                    glidein_lifetime_s: 1e9,
                    ..Default::default()
                },
                ..ClusterConfig::with_cache()
            },
            seed,
        )
    }

    fn chain_dag(n: usize) -> Dag {
        let mut d = Dag::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| d.add_node(JobSpec::fixed(format!("n{i}"), 60.0)).unwrap())
            .collect();
        for w in ids.windows(2) {
            d.add_edge(w[0], w[1]).unwrap();
        }
        d
    }

    fn fan_dag(width: usize) -> Dag {
        let mut d = Dag::new();
        let root = d.add_node(JobSpec::fixed("root", 30.0)).unwrap();
        let sink = d.add_node(JobSpec::fixed("sink", 30.0)).unwrap();
        for i in 0..width {
            let mid = d
                .add_node(JobSpec::fixed(format!("mid{i}"), 120.0))
                .unwrap();
            d.add_edge(root, mid).unwrap();
            d.add_edge(mid, sink).unwrap();
        }
        d
    }

    #[test]
    fn chain_executes_in_order() {
        let mut dm = Dagman::new(chain_dag(5), OwnerId(0));
        let report = quick_cluster(1).run(&mut dm);
        assert!(dm.is_done());
        assert_eq!(dm.completed(), 5);
        assert_eq!(dm.failed(), 0);
        // Completion order in the log must match chain order.
        let completions: Vec<String> = report
            .log
            .events()
            .iter()
            .filter(|e| e.kind == JobEventKind::Completed)
            .map(|e| report.job_names[&e.job].clone())
            .collect();
        assert_eq!(completions, vec!["n0", "n1", "n2", "n3", "n4"]);
        // A chain of five 60 s jobs takes at least 300 s.
        assert!(report.makespan.as_secs() >= 300);
    }

    #[test]
    fn fan_out_runs_in_parallel() {
        let mut dm = Dagman::new(fan_dag(24), OwnerId(0));
        let report = quick_cluster(2).run(&mut dm);
        assert_eq!(dm.completed(), 26);
        // 24 parallel 120 s jobs on 32 slots: far less than serial (2880 s
        // of work) plus root+sink.
        assert!(
            report.makespan.as_secs() < 1500,
            "makespan {} suggests no parallelism",
            report.makespan
        );
        // Sink must be last.
        let last = report
            .log
            .events()
            .iter()
            .rev()
            .find(|e| e.kind == JobEventKind::Completed)
            .unwrap();
        assert_eq!(report.job_names[&last.job], "sink");
    }

    #[test]
    fn maxjobs_throttle_limits_in_flight() {
        let mut dag = fan_dag(16);
        dag.throttles.max_jobs = 2;
        let mut dm = Dagman::new(dag, OwnerId(0));
        let report = quick_cluster(3).run(&mut dm);
        assert_eq!(dm.completed(), 18);
        // With at most 2 in flight, the running series never exceeds 2.
        let peak = report.log.running_series().into_iter().max().unwrap_or(0);
        assert!(peak <= 2, "peak running {peak} exceeds maxjobs");
    }

    #[test]
    fn maxidle_throttle_still_completes() {
        let mut dag = fan_dag(16);
        dag.throttles.max_idle = 1;
        let mut dm = Dagman::new(dag, OwnerId(0));
        let report = quick_cluster(4).run(&mut dm);
        assert_eq!(dm.completed(), 18);
        assert!(!report.timed_out);
    }

    #[test]
    fn node_states_progress() {
        let dag = chain_dag(2);
        let dm = Dagman::new(dag, OwnerId(0));
        assert_eq!(dm.node_state(NodeId(0)), NodeState::Ready);
        assert_eq!(dm.node_state(NodeId(1)), NodeState::Waiting);
    }

    #[test]
    fn priority_orders_submissions() {
        // A fan of independent nodes with distinct priorities on a
        // single-slot pool: completion order must follow priority.
        let mut dag = Dag::new();
        for (name, prio) in [("low", -5), ("mid", 0), ("high", 7), ("top", 9)] {
            let id = dag.add_node(JobSpec::fixed(name, 60.0)).unwrap();
            dag.set_priority(id, prio);
        }
        dag.throttles.max_jobs = 1; // serialise through the DAGMan itself
        let mut dm = Dagman::new(dag, OwnerId(0));
        let report = quick_cluster(12).run(&mut dm);
        let order: Vec<String> = report
            .log
            .events()
            .iter()
            .filter(|e| e.kind == JobEventKind::Completed)
            .map(|e| report.job_names[&e.job].clone())
            .collect();
        assert_eq!(order, vec!["top", "high", "mid", "low"]);
    }

    #[test]
    fn priority_file_roundtrip() {
        let mut dag = Dag::new();
        let a = dag.add_node(JobSpec::fixed("A", 1.0)).unwrap();
        dag.add_node(JobSpec::fixed("B", 1.0)).unwrap();
        dag.set_priority(a, 42);
        let text = dag.to_dag_file();
        assert!(text.contains("PRIORITY A 42"));
        let parsed = Dag::parse(&text, |n| JobSpec::fixed(n, 1.0)).unwrap();
        assert_eq!(parsed.node(parsed.id_of("A").unwrap()).priority, 42);
        assert_eq!(parsed.node(parsed.id_of("B").unwrap()).priority, 0);
        assert!(Dag::parse("PRIORITY X 1\n", |n| JobSpec::fixed(n, 1.0)).is_err());
        assert!(Dag::parse("JOB A a\nPRIORITY A x\n", |n| JobSpec::fixed(n, 1.0)).is_err());
    }

    #[test]
    fn multi_dagman_completes_all() {
        let dags: Vec<Dag> = (0..3).map(|_| fan_dag(8)).collect();
        let mut multi = MultiDagman::new(dags);
        assert_eq!(multi.len(), 3);
        assert!(!multi.is_empty());
        let report = quick_cluster(5).run(&mut multi);
        assert!(multi.is_done());
        for dm in multi.dagmans() {
            assert_eq!(dm.completed(), 10);
        }
        assert_eq!(report.completed, 30);
    }

    #[test]
    fn multi_dagman_owners_are_distinct() {
        let dags: Vec<Dag> = (0..2).map(|_| chain_dag(2)).collect();
        let mut multi = MultiDagman::new(dags);
        let report = quick_cluster(6).run(&mut multi);
        let mut owners: Vec<u32> = report.log.events().iter().map(|e| e.owner.0).collect();
        owners.sort_unstable();
        owners.dedup();
        assert_eq!(owners, vec![0, 1]);
    }

    #[test]
    fn removed_jobs_are_retried_and_exhaust_to_failed() {
        use htcsim::cluster::ClusterConfig;
        // Violent churn + a one-eviction removal policy: long jobs get
        // removed repeatedly; nodes with retries resubmit, nodes without
        // eventually fail — exercising the full RETRY path.
        let cfg = ClusterConfig {
            pool: PoolConfig {
                target_slots: 16,
                glidein_slots: 4,
                glidein_lifetime_s: 240.0, // 4-minute glideins
                avail_mean: 1.0,
                avail_sigma: 0.0,
                max_sim_time_s: 48 * 3600,
                ..Default::default()
            },
            max_evictions_per_job: 1,
            ..ClusterConfig::with_cache()
        };
        let mut dag = Dag::new();
        for i in 0..12 {
            let id = dag
                .add_node(JobSpec::fixed(format!("long.{i}"), 600.0))
                .unwrap();
            dag.set_retries(id, 400);
        }
        let mut dm = Dagman::new(dag, OwnerId(0));
        let report = Cluster::new(cfg.clone(), 5).run(&mut dm);
        let removed = report
            .log
            .events()
            .iter()
            .filter(|e| e.kind == JobEventKind::Removed)
            .count();
        assert!(removed > 0, "the churny pool must remove some jobs");
        assert_eq!(dm.completed(), 12, "generous retries recover everything");
        assert_eq!(dm.failed(), 0);

        // Same storm without retries: at least one node fails for good.
        let mut dag = Dag::new();
        for i in 0..12 {
            dag.add_node(JobSpec::fixed(format!("long.{i}"), 600.0))
                .unwrap();
        }
        let mut dm = Dagman::new(dag, OwnerId(0));
        let _ = Cluster::new(cfg, 5).run(&mut dm);
        assert!(dm.failed() > 0, "without retries, removals become failures");
        assert!(dm.is_done());
        assert_eq!(dm.failed_nodes().len(), dm.failed());
    }

    #[test]
    fn done_and_failed_node_lists() {
        let mut dm = Dagman::new(chain_dag(3), OwnerId(0));
        let _ = quick_cluster(7).run(&mut dm);
        assert_eq!(dm.done_nodes().len(), 3);
        assert!(dm.failed_nodes().is_empty());
    }

    use htcsim::fault::{FaultConfig, EXIT_PERMANENT};

    fn faulty_cluster(seed: u64, faults: FaultConfig) -> Cluster {
        Cluster::new(
            ClusterConfig {
                pool: PoolConfig {
                    target_slots: 16,
                    glidein_slots: 4,
                    avail_mean: 1.0,
                    avail_sigma: 0.0,
                    glidein_lifetime_s: 1e9,
                    ..Default::default()
                },
                faults,
                ..ClusterConfig::with_cache()
            },
            seed,
        )
    }

    #[test]
    fn transient_failures_retry_with_backoff() {
        let mut dag = Dag::new();
        for i in 0..10 {
            let id = dag.add_node(JobSpec::fixed(format!("t{i}"), 60.0)).unwrap();
            dag.set_retries(id, 20);
            dag.set_retry_defer(id, 30);
        }
        let faults = FaultConfig {
            seed: 11,
            transient_exit_prob: 0.5,
            ..Default::default()
        };
        let mut dm = Dagman::new(dag, OwnerId(0));
        let report = faulty_cluster(8, faults).run(&mut dm);
        assert!(!report.timed_out);
        assert_eq!(dm.completed(), 10);
        assert!(dm.retries() > 0, "p=0.5 over 10 nodes must fail somewhere");
        assert!(dm.failed_nodes().is_empty());
        // Every resubmission respects the 30 s base backoff: for each job
        // name, a Submitted following a Failed comes at least 30 s later.
        let mut last_failed: HashMap<String, u64> = HashMap::new();
        for ev in report.log.events() {
            let name = report.job_names[&ev.job].clone();
            match ev.kind {
                JobEventKind::Failed => {
                    last_failed.insert(name, ev.time.as_secs());
                }
                JobEventKind::Submitted => {
                    if let Some(&t) = last_failed.get(&name) {
                        assert!(
                            ev.time.as_secs() >= t + 30,
                            "{name} resubmitted {} s after failure",
                            ev.time.as_secs() - t
                        );
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn abort_dag_on_stops_the_dag() {
        let mut dag = Dag::new();
        let a = dag.add_node(JobSpec::fixed("A", 60.0)).unwrap();
        let b = dag.add_node(JobSpec::fixed("B", 60.0)).unwrap();
        dag.add_edge(a, b).unwrap();
        dag.set_retries(a, 5);
        dag.set_abort_dag_on(a, EXIT_PERMANENT);
        let faults = FaultConfig {
            seed: 3,
            permanent_job_fraction: 1.0,
            ..Default::default()
        };
        let mut dm = Dagman::new(dag, OwnerId(0));
        let _ = faulty_cluster(9, faults).run(&mut dm);
        assert!(dm.aborted());
        assert!(dm.is_done());
        assert_eq!(dm.node_state(NodeId(1)), NodeState::Waiting);
        let failed = dm.failed_nodes();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].name, "A");
        assert_eq!(failed[0].exit_code, Some(EXIT_PERMANENT));
        assert_eq!(
            failed[0].attempts, 1,
            "abort fires before retries are spent"
        );
    }

    #[test]
    fn exhausted_retries_report_exit_and_attempts() {
        let mut dag = Dag::new();
        let id = dag.add_node(JobSpec::fixed("perm", 60.0)).unwrap();
        dag.set_retries(id, 2);
        let faults = FaultConfig {
            seed: 5,
            permanent_job_fraction: 1.0,
            ..Default::default()
        };
        let mut dm = Dagman::new(dag, OwnerId(0));
        let _ = faulty_cluster(10, faults).run(&mut dm);
        let failed = dm.failed_nodes();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].attempts, 3, "initial try plus two retries");
        assert_eq!(failed[0].exit_code, Some(EXIT_PERMANENT));
        assert_eq!(dm.retries(), 2);
    }

    #[test]
    fn holds_are_counted_and_recovered() {
        let mut dag = Dag::new();
        for i in 0..8 {
            dag.add_node(JobSpec::fixed(format!("h{i}"), 60.0)).unwrap();
        }
        let faults = FaultConfig {
            seed: 2,
            hold_prob: 0.4,
            hold_release_s: 120.0,
            ..Default::default()
        };
        let mut dm = Dagman::new(dag, OwnerId(0));
        let report = faulty_cluster(11, faults).run(&mut dm);
        assert_eq!(dm.completed(), 8, "held jobs are released and finish");
        assert!(dm.holds() > 0);
        assert_eq!(dm.holds(), report.holds);
    }

    #[test]
    fn speculation_duplicates_stragglers_first_finisher_wins() {
        use htcsim::job::ExecModel;
        // Heavy-tailed runtimes: the lognormal tail plus machine speed
        // spread guarantees stragglers well past 2x the median quantile.
        let mut dag = Dag::new();
        for i in 0..40 {
            let mut spec = JobSpec::fixed(format!("w.{i}"), 120.0);
            spec.exec = ExecModel::LogNormalMedian {
                median_s: 120.0,
                sigma: 1.2,
            };
            dag.add_node(spec).unwrap();
        }
        let mut dm = Dagman::new(dag, OwnerId(0)).with_speculation(SpeculationConfig {
            enabled: true,
            multiplier: 2.0,
            quantile: 0.5,
            min_samples: 3,
        });
        let report = quick_cluster(21).run(&mut dm);
        assert!(dm.is_done());
        assert_eq!(dm.completed(), 40);
        assert_eq!(dm.failed(), 0);
        assert!(
            dm.speculations() > 0,
            "heavy-tailed runtimes must trigger speculative duplicates"
        );
        // Every speculated node settles as exactly one win or one loss.
        assert_eq!(dm.spec_wins() + dm.spec_losses(), dm.speculations());
        assert_eq!(dm.retries(), 0, "speculation must not consume retries");
        // Losing copies are condor_rm'd: Removed events in the user log.
        let removed = report
            .log
            .events()
            .iter()
            .filter(|e| e.kind == JobEventKind::Removed)
            .count() as u64;
        assert_eq!(removed, dm.speculations(), "one condor_rm per race loser");
    }

    #[test]
    fn speculation_disabled_never_duplicates() {
        use htcsim::job::ExecModel;
        let mut dag = Dag::new();
        for i in 0..12 {
            let mut spec = JobSpec::fixed(format!("w.{i}"), 120.0);
            spec.exec = ExecModel::LogNormalMedian {
                median_s: 120.0,
                sigma: 1.2,
            };
            dag.add_node(spec).unwrap();
        }
        let mut dm = Dagman::new(dag, OwnerId(0));
        let report = quick_cluster(21).run(&mut dm);
        assert_eq!(dm.completed(), 12);
        assert_eq!(dm.speculations(), 0);
        assert_eq!(dm.spec_wins() + dm.spec_losses(), 0);
        assert!(report
            .log
            .events()
            .iter()
            .all(|e| e.kind != JobEventKind::Removed));
    }

    #[test]
    fn walltime_removal_consumes_retries() {
        let mut dag = Dag::new();
        let mut spec = JobSpec::fixed("slow", 500.0);
        spec.timeout_s = 60.0;
        let id = dag.add_node(spec).unwrap();
        dag.set_retries(id, 1);
        let mut dm = Dagman::new(dag, OwnerId(0));
        let _ = faulty_cluster(12, Default::default()).run(&mut dm);
        assert!(dm.is_done());
        let failed = dm.failed_nodes();
        assert_eq!(failed.len(), 1);
        assert_eq!(
            failed[0].exit_code, None,
            "walltime removal has no exit code"
        );
        assert_eq!(failed[0].attempts, 2);
        assert_eq!(dm.holds(), 2, "each timed-out attempt is held first");
    }
}
