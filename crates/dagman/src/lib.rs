//! # dagman — a DAG workflow engine on `htcsim`
//!
//! Substitute for HTCondor's DAGMan, at the fidelity the FDW paper
//! exercises: named job nodes with parent/child dependencies ([`dag`]),
//! a ready-set scheduler with `maxjobs`/`maxidle` throttles and retries
//! implemented as an [`htcsim::cluster::WorkloadDriver`] ([`driver`]),
//! concurrent multi-DAGMan submission for the paper's §4.2 experiment,
//! rescue-DAG generation and resumption ([`rescue`]), and the monitoring
//! statistics the paper derives from HTCondor logs ([`monitor`]).
//!
//! ```
//! use dagman::prelude::*;
//! use htcsim::prelude::*;
//!
//! // A two-node chain: rupture then waveform.
//! let mut dag = Dag::new();
//! let a = dag.add_node(JobSpec::fixed("rupture.0", 150.0)).unwrap();
//! let b = dag.add_node(JobSpec::fixed("waveform.0", 900.0)).unwrap();
//! dag.add_edge(a, b).unwrap();
//!
//! let mut dm = Dagman::new(dag, OwnerId(0));
//! let report = Cluster::new(ClusterConfig::with_cache(), 7).run(&mut dm);
//! assert_eq!(report.completed, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dag;
pub mod driver;
pub mod monitor;
pub mod rescue;

/// Glob import of the most-used types.
pub mod prelude {
    pub use crate::dag::{Dag, Node, NodeId, Throttles};
    pub use crate::driver::{Dagman, FailedNode, MultiDagman, NodeState, SpeculationConfig};
    pub use crate::monitor::{
        instant_throughput_for, mean_sd, per_dagman_stats, running_for, DagmanStats, MeanSd,
    };
    pub use crate::rescue::{parse_rescue, rescue_file, resume, write_rescue_atomic};
}
