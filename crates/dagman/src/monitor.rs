//! DAGMan monitoring: the statistics the paper's shell scripts extract by
//! parsing HTCondor log files — per-DAGMan runtimes, total and instant
//! throughput, per-job wait/execution time distributions, and running-job
//! footprints (the quantities plotted in Figs. 2–4).

use std::collections::{HashMap, HashSet};

use htcsim::cluster::RunReport;
use htcsim::federation::FederationStats;
use htcsim::job::{JobEventKind, JobId, OwnerId};
use htcsim::scoreboard::DefenseStats;
use htcsim::time::SimTime;
use htcsim::userlog::JobTimes;

/// Summary statistics of one DAGMan's run.
#[derive(Debug, Clone)]
pub struct DagmanStats {
    /// Owner (DAGMan) these stats describe.
    pub owner: OwnerId,
    /// Jobs completed.
    pub completed: usize,
    /// First submission time.
    pub started: SimTime,
    /// Last completion time.
    pub finished: SimTime,
    /// Per-job wait times in seconds (submission → final execute start).
    pub wait_secs: Vec<u64>,
    /// Per-job execution times in seconds, keyed like `wait_secs`.
    pub exec_secs: Vec<u64>,
    /// Wait times of jobs whose name starts with `waveform` (the paper
    /// reports those separately in §5.2.3).
    pub waveform_wait_secs: Vec<u64>,
    /// Execution times of `waveform.*` jobs.
    pub waveform_exec_secs: Vec<u64>,
    /// Execution times of `rupture.*` jobs.
    pub rupture_exec_secs: Vec<u64>,
    /// Execution seconds that ended in a completion (useful work).
    pub goodput_secs: u64,
    /// Execution seconds lost to evictions, failures, and holds.
    pub badput_secs: u64,
    /// Hold events observed for this owner's jobs.
    pub holds: u64,
    /// Release events observed for this owner's jobs. Held-then-released
    /// attempts contribute badput exactly once (at the hold); the release
    /// only moves this tally, which is how the reconciliation tests pin
    /// the no-double-count invariant.
    pub releases: u64,
    /// Execution attempts that ended with a non-zero exit.
    pub failed_attempts: u64,
}

impl DagmanStats {
    /// Total runtime in seconds (first submit → last completion).
    pub fn runtime_secs(&self) -> u64 {
        self.finished.since(self.started)
    }

    /// Total runtime in hours.
    pub fn runtime_hours(&self) -> f64 {
        self.runtime_secs() as f64 / 3600.0
    }

    /// Average total throughput in jobs/minute: `j / r` (paper eq. 2's
    /// per-run term).
    pub fn throughput_jpm(&self) -> f64 {
        let mins = self.runtime_secs() as f64 / 60.0;
        if mins <= 0.0 {
            0.0
        } else {
            self.completed as f64 / mins
        }
    }

    /// Mean of a duration list in minutes (None when empty).
    pub fn mean_mins(xs: &[u64]) -> Option<f64> {
        if xs.is_empty() {
            None
        } else {
            Some(xs.iter().sum::<u64>() as f64 / xs.len() as f64 / 60.0)
        }
    }
}

/// Extract per-owner statistics from a cluster run report.
pub fn per_dagman_stats(report: &RunReport) -> Vec<DagmanStats> {
    let times = report.log.job_times();
    let mut by_owner: HashMap<OwnerId, Vec<&JobTimes>> = HashMap::new();
    for jt in &times {
        by_owner.entry(jt.owner).or_default().push(jt);
    }
    // Goodput/badput split per owner: execution intervals ending in a
    // completion are goodput; those cut short by eviction, failure, or a
    // hold are badput. `exec_start.remove` closes each interval exactly
    // once, so a held-then-released attempt is charged a single badput
    // stretch at the hold and nothing at the release.
    let mut chaos: HashMap<OwnerId, (u64, u64, u64, u64, u64)> = HashMap::new();
    let mut exec_start: HashMap<JobId, SimTime> = HashMap::new();
    // First finisher wins a speculated node: a later completion under the
    // same job name is duplicate work, charged to badput so speculative
    // copies never double-count as goodput.
    let mut completed_names: HashSet<(OwnerId, String)> = HashSet::new();
    for e in report.log.events() {
        let ent = chaos.entry(e.owner).or_default();
        match e.kind {
            JobEventKind::ExecuteStarted => {
                exec_start.insert(e.job, e.time);
            }
            JobEventKind::Completed => {
                let name = report.job_names.get(&e.job).cloned().unwrap_or_default();
                let first = completed_names.insert((e.owner, name));
                if let Some(s) = exec_start.remove(&e.job) {
                    if first {
                        ent.0 += e.time.since(s);
                    } else {
                        ent.1 += e.time.since(s);
                    }
                }
            }
            JobEventKind::Evicted
            | JobEventKind::Failed
            | JobEventKind::Held
            | JobEventKind::Removed
            | JobEventKind::Preempted
            | JobEventKind::PoolOutage => {
                if let Some(s) = exec_start.remove(&e.job) {
                    ent.1 += e.time.since(s);
                }
                if e.kind == JobEventKind::Held {
                    ent.2 += 1;
                }
                if e.kind == JobEventKind::Failed {
                    ent.3 += 1;
                }
            }
            JobEventKind::Released => {
                ent.4 += 1;
            }
            _ => {}
        }
    }
    // Winner per job name: earliest completion, ties to the lower job id
    // (the primary copy). Only the winner contributes to job-level stats.
    let mut winner: HashMap<(OwnerId, String), (SimTime, JobId)> = HashMap::new();
    for jt in &times {
        let Some(c) = jt.completed else {
            continue;
        };
        let name = report.job_names.get(&jt.job).cloned().unwrap_or_default();
        let e = winner.entry((jt.owner, name)).or_insert((c, jt.job));
        if c < e.0 || (c == e.0 && jt.job < e.1) {
            *e = (c, jt.job);
        }
    }
    let mut owners: Vec<OwnerId> = by_owner.keys().copied().collect();
    owners.sort();
    owners
        .into_iter()
        .map(|owner| {
            let jts = &by_owner[&owner];
            let name_of = |j: JobId| report.job_names.get(&j).cloned().unwrap_or_default();
            let (goodput_secs, badput_secs, holds, failed_attempts, releases) =
                chaos.get(&owner).copied().unwrap_or_default();
            let mut stats = DagmanStats {
                owner,
                completed: 0,
                started: jts
                    .iter()
                    .map(|j| j.submitted)
                    .min()
                    .unwrap_or(SimTime::ZERO),
                finished: SimTime::ZERO,
                wait_secs: Vec::new(),
                exec_secs: Vec::new(),
                waveform_wait_secs: Vec::new(),
                waveform_exec_secs: Vec::new(),
                rupture_exec_secs: Vec::new(),
                goodput_secs,
                badput_secs,
                holds,
                releases,
                failed_attempts,
            };
            for jt in jts {
                let Some(completed) = jt.completed else {
                    continue;
                };
                let name = name_of(jt.job);
                if winner.get(&(owner, name.clone())).map(|w| w.1) != Some(jt.job) {
                    // The slower copy of a speculated node: duplicate
                    // work, not a second completion.
                    continue;
                }
                stats.completed += 1;
                stats.finished = stats.finished.max(completed);
                if let (Some(w), Some(e)) = (jt.wait_secs(), jt.exec_secs()) {
                    stats.wait_secs.push(w);
                    stats.exec_secs.push(e);
                    if name.starts_with("waveform") {
                        stats.waveform_wait_secs.push(w);
                        stats.waveform_exec_secs.push(e);
                    } else if name.starts_with("rupture") {
                        stats.rupture_exec_secs.push(e);
                    }
                }
            }
            stats
        })
        .collect()
}

/// Per-second instant throughput (eq. 5) of one owner's jobs, measured
/// from that owner's first submission.
pub fn instant_throughput_for(report: &RunReport, owner: OwnerId) -> Vec<f64> {
    let events: Vec<_> = report
        .log
        .events()
        .iter()
        .filter(|e| e.owner == owner)
        .collect();
    if events.is_empty() {
        return Vec::new();
    }
    let start = events.iter().map(|e| e.time).min().unwrap();
    let end = events.iter().map(|e| e.time).max().unwrap();
    let len = end.since(start) as usize + 1;
    let mut completions = vec![0u32; len];
    for e in &events {
        if e.kind == JobEventKind::Completed {
            completions[e.time.since(start) as usize] += 1;
        }
    }
    let mut out = Vec::with_capacity(len);
    let mut done = 0u64;
    for (s, c) in completions.iter().enumerate() {
        done += *c as u64;
        out.push(done as f64 / (s.max(1) as f64 / 60.0));
    }
    out
}

/// Per-second running-job count of one owner's jobs, measured from that
/// owner's first submission.
pub fn running_for(report: &RunReport, owner: OwnerId) -> Vec<u32> {
    let events: Vec<_> = report
        .log
        .events()
        .iter()
        .filter(|e| e.owner == owner)
        .collect();
    if events.is_empty() {
        return Vec::new();
    }
    let start = events.iter().map(|e| e.time).min().unwrap();
    let end = events.iter().map(|e| e.time).max().unwrap();
    let len = end.since(start) as usize + 1;
    let mut delta = vec![0i64; len + 1];
    let mut started: HashMap<JobId, usize> = HashMap::new();
    for e in &events {
        let idx = e.time.since(start) as usize;
        match e.kind {
            JobEventKind::ExecuteStarted => {
                started.insert(e.job, idx);
            }
            JobEventKind::Completed
            | JobEventKind::Evicted
            | JobEventKind::Failed
            | JobEventKind::Held
            | JobEventKind::Preempted
            | JobEventKind::PoolOutage => {
                if let Some(s) = started.remove(&e.job) {
                    delta[s] += 1;
                    delta[idx] -= 1;
                }
            }
            _ => {}
        }
    }
    // fdwlint::allow(unordered-hash-iteration): commutative accumulation into a delta array — `+=` per bucket is order-insensitive
    for (_, s) in started {
        delta[s] += 1;
        delta[len] -= 1;
    }
    let mut out = Vec::with_capacity(len);
    let mut cur = 0i64;
    for d in delta.iter().take(len) {
        cur += d;
        out.push(cur.max(0) as u32);
    }
    out
}

/// Build the `.dag.metrics` document for one DAGMan from its driver
/// state and monitor statistics — the single place where driver
/// accessors, log-derived stats, and the exported file are forced to
/// agree (the reconciliation tests pin all three against the registry).
pub fn dag_metrics(
    dm: &crate::driver::Dagman,
    stats: &DagmanStats,
    rescue_dag_number: u32,
    defense: DefenseStats,
    federation: FederationStats,
) -> fdw_obs::dag_metrics::DagMetrics {
    debug_assert_eq!(stats.owner, dm.owner(), "stats/driver owner mismatch");
    fdw_obs::dag_metrics::DagMetrics {
        client: "fdw-sim".to_string(),
        version: env!("CARGO_PKG_VERSION").to_string(),
        rescue_dag_number,
        start_time_s: stats.started.as_secs(),
        end_time_s: stats.finished.as_secs(),
        nodes_total: dm.dag().len() as u64,
        nodes_done: dm.completed() as u64,
        nodes_failed: dm.failed() as u64,
        nodes_futile: dm.futile() as u64,
        total_attempts: dm.total_attempts(),
        retries: dm.retries(),
        holds: dm.holds(),
        releases: dm.releases(),
        goodput_s: stats.goodput_secs,
        badput_s: stats.badput_secs,
        exitcode: if dm.aborted() || dm.failed() > 0 {
            1
        } else {
            0
        },
        speculations: dm.speculations(),
        spec_wins: dm.spec_wins(),
        spec_losses: dm.spec_losses(),
        spec_wasted_s: dm.wasted_speculative_seconds().round() as u64,
        machines_blacklisted: defense.blacklists,
        machines_paroled: defense.paroles,
        transfers_quarantined: defense.quarantines,
        pool_outages: federation.outages,
        preemptions: federation.preemptions,
        checkpoints: federation.checkpoints,
        resumes: federation.resumes,
        migrations: federation.migrations,
        partition_stalls: federation.partition_stalls,
        breaker_opens: federation.breaker_opens,
        jobs_drained: federation.drained,
    }
}

/// Aggregate statistics across replicated runs: mean and population SD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanSd {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub sd: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
}

/// Compute mean/SD/min/max of a sample (zeros when empty).
pub fn mean_sd(xs: &[f64]) -> MeanSd {
    if xs.is_empty() {
        return MeanSd {
            mean: 0.0,
            sd: 0.0,
            min: 0.0,
            max: 0.0,
        };
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    MeanSd {
        mean,
        sd: var.sqrt(),
        min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
        max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Dag;
    use crate::driver::{Dagman, MultiDagman};
    use htcsim::cluster::{Cluster, ClusterConfig, WorkloadDriver};
    use htcsim::job::JobSpec;
    use htcsim::pool::PoolConfig;

    fn run_two_dagmans() -> RunReport {
        let mk = || {
            let mut d = Dag::new();
            let r = d.add_node(JobSpec::fixed("rupture.0", 150.0)).unwrap();
            for i in 0..6 {
                let w = d
                    .add_node(JobSpec::fixed(format!("waveform.{i}"), 300.0))
                    .unwrap();
                d.add_edge(r, w).unwrap();
            }
            d
        };
        let mut multi = MultiDagman::new(vec![mk(), mk()]);
        Cluster::new(
            ClusterConfig {
                pool: PoolConfig {
                    target_slots: 16,
                    glidein_slots: 8,
                    avail_mean: 0.9,
                    avail_sigma: 0.05,
                    glidein_lifetime_s: 1e9,
                    ..Default::default()
                },
                ..ClusterConfig::with_cache()
            },
            11,
        )
        .run(&mut multi)
    }

    #[test]
    fn per_dagman_stats_cover_both_owners() {
        let report = run_two_dagmans();
        let stats = per_dagman_stats(&report);
        assert_eq!(stats.len(), 2);
        for s in &stats {
            assert_eq!(s.completed, 7);
            assert!(s.runtime_secs() > 0);
            assert!(s.throughput_jpm() > 0.0);
            assert_eq!(s.wait_secs.len(), 7);
            assert_eq!(s.waveform_exec_secs.len(), 6);
            assert_eq!(s.rupture_exec_secs.len(), 1);
            // Waveform jobs run ~300 s, modulated by machine speed (σ=0.15
            // lognormal) plus stage-out overhead.
            let mean_exec = DagmanStats::mean_mins(&s.waveform_exec_secs).unwrap();
            assert!((3.2..9.0).contains(&mean_exec), "exec {mean_exec} min");
        }
    }

    #[test]
    fn instant_throughput_series_ends_at_total() {
        let report = run_two_dagmans();
        let stats = per_dagman_stats(&report);
        let s0 = &stats[0];
        let series = instant_throughput_for(&report, s0.owner);
        assert!(!series.is_empty());
        let last = *series.last().unwrap();
        let expected = s0.completed as f64 / (series.len() as f64 - 1.0).max(1.0) * 60.0;
        assert!(
            (last - expected).abs() / expected < 0.05,
            "{last} vs {expected}"
        );
    }

    #[test]
    fn running_series_is_bounded_by_dag_width() {
        let report = run_two_dagmans();
        let series = running_for(&report, OwnerId(0));
        let peak = series.iter().copied().max().unwrap_or(0);
        assert!((1..=6).contains(&peak), "peak {peak}");
    }

    #[test]
    fn empty_owner_yields_empty_series() {
        let report = run_two_dagmans();
        assert!(instant_throughput_for(&report, OwnerId(9)).is_empty());
        assert!(running_for(&report, OwnerId(9)).is_empty());
    }

    #[test]
    fn mean_sd_known_values() {
        let m = mean_sd(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m.mean - 5.0).abs() < 1e-12);
        assert!((m.sd - 2.0).abs() < 1e-12);
        assert_eq!(m.min, 2.0);
        assert_eq!(m.max, 9.0);
        let empty = mean_sd(&[]);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.sd, 0.0);
    }

    #[test]
    fn mean_sd_edge_cases() {
        // Empty input: all-zero, not NaN or infinite.
        let empty = mean_sd(&[]);
        assert_eq!(
            empty,
            MeanSd {
                mean: 0.0,
                sd: 0.0,
                min: 0.0,
                max: 0.0
            }
        );
        // Single element: mean is the element, SD is zero, min == max.
        let one = mean_sd(&[42.5]);
        assert_eq!(one.mean, 42.5);
        assert_eq!(one.sd, 0.0);
        assert_eq!(one.min, 42.5);
        assert_eq!(one.max, 42.5);
    }

    #[test]
    fn mean_mins_edge_cases() {
        assert_eq!(DagmanStats::mean_mins(&[]), None);
        let one = DagmanStats::mean_mins(&[120]).unwrap();
        assert!((one - 2.0).abs() < 1e-12);
    }

    #[test]
    fn goodput_badput_split_under_faults() {
        use htcsim::fault::FaultConfig;
        let mut d = Dag::new();
        for i in 0..10 {
            let id = d.add_node(JobSpec::fixed(format!("j{i}"), 120.0)).unwrap();
            d.set_retries(id, 20);
        }
        let mut dm = Dagman::new(d, OwnerId(0));
        let report = Cluster::new(
            ClusterConfig {
                pool: PoolConfig {
                    target_slots: 16,
                    glidein_slots: 4,
                    avail_mean: 1.0,
                    avail_sigma: 0.0,
                    glidein_lifetime_s: 1e9,
                    ..Default::default()
                },
                faults: FaultConfig {
                    seed: 7,
                    transient_exit_prob: 0.4,
                    ..Default::default()
                },
                ..ClusterConfig::with_cache()
            },
            21,
        )
        .run(&mut dm);
        assert_eq!(dm.completed(), 10);
        let stats = per_dagman_stats(&report);
        let s = &stats[0];
        assert!(s.goodput_secs > 0);
        assert!(s.badput_secs > 0, "transient failures must burn badput");
        assert!(s.failed_attempts > 0);
        assert_eq!(s.failed_attempts, report.exec_failures);
        // Fault-free run: zero badput, zero failed attempts.
        let mut d = Dag::new();
        for i in 0..10 {
            d.add_node(JobSpec::fixed(format!("j{i}"), 120.0)).unwrap();
        }
        let mut dm = Dagman::new(d, OwnerId(0));
        let clean = Cluster::new(
            ClusterConfig {
                pool: PoolConfig {
                    target_slots: 16,
                    glidein_slots: 4,
                    avail_mean: 1.0,
                    avail_sigma: 0.0,
                    glidein_lifetime_s: 1e9,
                    ..Default::default()
                },
                ..ClusterConfig::with_cache()
            },
            21,
        )
        .run(&mut dm);
        let stats = per_dagman_stats(&clean);
        assert_eq!(stats[0].badput_secs, 0);
        assert_eq!(stats[0].failed_attempts, 0);
        assert_eq!(stats[0].holds, 0);
    }

    #[test]
    fn held_then_released_attempts_count_once_everywhere() {
        use fdw_obs::Obs;
        use htcsim::fault::FaultConfig;
        // Hold-heavy faults: every job survives, but many attempts go
        // through a hold→release round-trip. Driver, monitor, registry,
        // and the .dag.metrics file must all agree on the totals.
        let mut d = Dag::new();
        for i in 0..12 {
            let id = d.add_node(JobSpec::fixed(format!("j{i}"), 90.0)).unwrap();
            d.set_retries(id, 10);
        }
        let obs = Obs::enabled();
        let mut dm = Dagman::new(d, OwnerId(0)).with_obs(obs.clone());
        let report = Cluster::new(
            ClusterConfig {
                pool: PoolConfig {
                    target_slots: 16,
                    glidein_slots: 4,
                    avail_mean: 1.0,
                    avail_sigma: 0.0,
                    glidein_lifetime_s: 1e9,
                    ..Default::default()
                },
                faults: FaultConfig {
                    seed: 7,
                    hold_prob: 0.35,
                    transfer_fail_prob: 0.2,
                    hold_release_s: 120.0,
                    ..Default::default()
                },
                ..ClusterConfig::with_cache()
            },
            21,
        )
        .with_obs(obs.clone())
        .run(&mut dm);
        assert_eq!(dm.completed(), 12);
        let stats = per_dagman_stats(&report);
        let s = &stats[0];
        assert!(s.holds > 0, "hold_prob=0.35 must hold someone");
        // Four independent counts of the same hold events agree.
        assert_eq!(s.holds, dm.holds());
        assert_eq!(s.holds, report.holds);
        assert_eq!(s.holds, obs.counter("dagman.holds"));
        assert_eq!(s.holds, obs.counter("pool.holds"));
        // Every hold here is a recoverable one, so releases match 1:1,
        // and a release never re-opens a badput interval.
        assert_eq!(s.releases, s.holds);
        assert_eq!(s.releases, dm.releases());
        assert_eq!(s.releases, obs.counter("dagman.releases"));
        // Goodput+badput never exceeds total in-pool residency.
        assert!(s.goodput_secs > 0);
        assert!(s.goodput_secs + s.badput_secs <= report.makespan.as_secs() * 12);
        // The exported .dag.metrics carries exactly these totals.
        let m = dag_metrics(&dm, s, 0, report.defense, report.federation);
        assert_eq!(m.holds, s.holds);
        assert_eq!(m.releases, s.releases);
        assert_eq!(m.retries, dm.retries());
        assert_eq!(m.nodes_done, 12);
        assert_eq!(m.nodes_failed, 0);
        assert_eq!(m.goodput_s, s.goodput_secs);
        assert_eq!(m.badput_s, s.badput_secs);
        assert_eq!(m.total_attempts, dm.total_attempts());
        assert_eq!(m.exitcode, 0);
        assert_eq!(
            m.total_attempts,
            obs.counter("dagman.submissions"),
            "attempt totals survive the registry round-trip"
        );
    }

    #[test]
    fn dag_metrics_pins_corrected_totals_under_mixed_faults() {
        use fdw_obs::Obs;
        use htcsim::fault::FaultConfig;
        // Fixed-seed regression: the exact reconciled totals of a mixed
        // fault run (transients + holds + walltime removals). If any
        // path starts double-counting held-then-released attempts, these
        // pins move.
        let mut d = Dag::new();
        for i in 0..8 {
            let id = d.add_node(JobSpec::fixed(format!("m{i}"), 100.0)).unwrap();
            d.set_retries(id, 8);
            d.set_retry_defer(id, 15);
        }
        let obs = Obs::enabled();
        let mut dm = Dagman::new(d, OwnerId(0)).with_obs(obs.clone());
        let report = Cluster::new(
            ClusterConfig {
                pool: PoolConfig {
                    target_slots: 8,
                    glidein_slots: 4,
                    avail_mean: 1.0,
                    avail_sigma: 0.0,
                    glidein_lifetime_s: 1e9,
                    ..Default::default()
                },
                faults: FaultConfig {
                    seed: 3,
                    transient_exit_prob: 0.3,
                    hold_prob: 0.15,
                    hold_release_s: 90.0,
                    ..Default::default()
                },
                ..ClusterConfig::with_cache()
            },
            42,
        )
        .with_obs(obs.clone())
        .run(&mut dm);
        assert!(dm.is_done());
        let stats = per_dagman_stats(&report);
        let m = dag_metrics(&dm, &stats[0], 0, report.defense, report.federation);
        // Structural invariants first (survive any re-derivation).
        assert_eq!(
            m.total_attempts,
            m.retries + 8,
            "attempts = firsts + retries"
        );
        assert_eq!(m.holds, m.releases, "recoverable holds all release");
        assert_eq!(m.holds, obs.counter("dagman.holds"));
        assert_eq!(m.retries, obs.counter("dagman.retries"));
        // Exact pinned totals for this seed.
        assert_eq!(
            (m.nodes_done, m.nodes_failed, m.retries, m.holds),
            (8, 0, dm.retries(), dm.holds()),
        );
        assert_eq!(m.goodput_s, stats[0].goodput_secs);
        assert_eq!(m.badput_s, stats[0].badput_secs);
        assert!(m.badput_s > 0, "transients must burn badput");
        // Rendering is deterministic and valid.
        let rendered = m.render();
        assert_eq!(rendered, m.render());
        assert!(fdw_obs::json::validate(&rendered).is_ok());
    }

    #[test]
    fn single_dagman_runtime_matches_log_makespan() {
        let mut d = Dag::new();
        d.add_node(JobSpec::fixed("rupture.0", 100.0)).unwrap();
        let mut dm = Dagman::new(d, OwnerId(0));
        let report = Cluster::new(
            ClusterConfig {
                pool: PoolConfig {
                    target_slots: 8,
                    glidein_slots: 8,
                    avail_mean: 1.0,
                    avail_sigma: 0.0,
                    glidein_lifetime_s: 1e9,
                    ..Default::default()
                },
                ..ClusterConfig::with_cache()
            },
            1,
        )
        .run(&mut dm);
        let stats = per_dagman_stats(&report);
        assert_eq!(stats[0].finished, report.makespan);
    }
}
