//! Rescue DAGs: when a DAGMan run ends with failed nodes, DAGMan writes a
//! rescue file marking completed nodes `DONE` so a re-submission skips
//! them. This module generates and applies that file.

use std::collections::BTreeSet;

#[cfg(test)]
use htcsim::cluster::WorkloadDriver;

use crate::dag::Dag;
use crate::driver::{Dagman, NodeState};

/// Serialise a rescue file: one `DONE <node>` line per completed node,
/// plus a `# FAILED <node> exit=<code|none> attempts=<n>` comment per
/// permanently failed node so the post-mortem survives in the artifact.
/// The last line is always a `# END <n> done` trailer; [`parse_rescue`]
/// refuses any file without it, so a truncated write can never silently
/// resume with completed work forgotten.
pub fn rescue_file(dagman: &Dagman) -> String {
    let mut out = String::from("# Rescue DAG\n");
    for f in dagman.failed_nodes() {
        let exit = match f.exit_code {
            Some(c) => c.to_string(),
            None => "none".to_string(),
        };
        out.push_str(&format!(
            "# FAILED {} exit={exit} attempts={}\n",
            f.name, f.attempts
        ));
    }
    let mut count = 0usize;
    for name in dagman.done_nodes() {
        out.push_str(&format!("DONE {name}\n"));
        count += 1;
    }
    out.push_str(&format!("# END {count} done\n"));
    out
}

/// Write a rescue file crash-atomically: the bytes land in `<path>.tmp`,
/// are flushed to disk, and renamed into place. A crash mid-write leaves
/// at worst a stale `.tmp` next to the previous intact generation —
/// never a torn file at the final path.
pub fn write_rescue_atomic(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp_name);
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Parse a rescue file into the set of done node names. Rejects files
/// without the `# END <n> done` trailer as the final newline-terminated
/// line, and files whose `DONE` count disagrees with the trailer — both
/// are the signature of a truncated or torn write.
pub fn parse_rescue(text: &str) -> Result<BTreeSet<String>, String> {
    if !text.ends_with('\n') {
        return Err("truncated rescue file: missing final newline".to_string());
    }
    let trailer = text
        .lines()
        .next_back()
        .ok_or_else(|| "truncated rescue file: empty".to_string())?;
    let expected: usize = trailer
        .strip_prefix("# END ")
        .and_then(|rest| rest.strip_suffix(" done"))
        .ok_or_else(|| "truncated rescue file: missing '# END <n> done' trailer".to_string())?
        .parse()
        .map_err(|_| format!("torn rescue file: bad trailer '{trailer}'"))?;
    let mut done = BTreeSet::new();
    let body_lines = text.lines().count() - 1;
    for (lineno, line) in text.lines().take(body_lines).enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        match toks.next().map(|t| t.to_ascii_uppercase()).as_deref() {
            Some("DONE") => {
                let name = toks
                    .next()
                    .ok_or_else(|| format!("line {}: DONE needs a node", lineno + 1))?;
                done.insert(name.to_string());
            }
            Some(other) => return Err(format!("line {}: unknown keyword '{other}'", lineno + 1)),
            None => {}
        }
    }
    if done.len() != expected {
        return Err(format!(
            "torn rescue file: trailer says {expected} done, found {}",
            done.len()
        ));
    }
    Ok(done)
}

/// Build a resumed DAGMan for `dag`, pre-marking the rescue file's done
/// nodes as complete. Errors if the rescue file names unknown nodes.
pub fn resume(
    dag: Dag,
    done: &BTreeSet<String>,
    owner: htcsim::job::OwnerId,
) -> Result<Dagman, String> {
    for name in done {
        if dag.id_of(name).is_none() {
            return Err(format!("rescue file names unknown node '{name}'"));
        }
    }
    let mut dm = Dagman::new(dag, owner);
    // Mark in topological order so readiness propagates correctly.
    let order = dm.dag().topological_order()?;
    for id in order {
        let name = dm.dag().node(id).name.clone();
        if done.contains(&name) {
            dm.force_done(id);
        }
    }
    Ok(dm)
}

impl Dagman {
    /// Mark a node complete without running it (rescue-DAG resume).
    /// Panics if the node is not currently Waiting/Ready.
    pub fn force_done(&mut self, id: crate::dag::NodeId) {
        let st = self.node_state(id);
        assert!(
            matches!(st, NodeState::Waiting | NodeState::Ready),
            "force_done on node in state {st:?}"
        );
        self.force_done_inner(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::NodeId;
    use htcsim::job::{JobSpec, OwnerId};

    fn chain() -> Dag {
        let mut d = Dag::new();
        let a = d.add_node(JobSpec::fixed("A", 10.0)).unwrap();
        let b = d.add_node(JobSpec::fixed("B", 10.0)).unwrap();
        let c = d.add_node(JobSpec::fixed("C", 10.0)).unwrap();
        d.add_edge(a, b).unwrap();
        d.add_edge(b, c).unwrap();
        d
    }

    #[test]
    fn rescue_roundtrip() {
        let text = "# Rescue DAG\nDONE A\nDONE B\n# END 2 done\n";
        let done = parse_rescue(text).unwrap();
        assert_eq!(done.len(), 2);
        assert!(done.contains("A") && done.contains("B"));
    }

    #[test]
    fn parse_rescue_errors() {
        assert!(parse_rescue("FROB A\n# END 0 done\n").is_err());
        assert!(parse_rescue("DONE\n# END 0 done\n").is_err());
        assert!(parse_rescue("# only comments\n# END 0 done\n")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn parse_rescue_rejects_truncated_and_torn_files() {
        // No trailer at all: the write died before the end.
        assert!(parse_rescue("# Rescue DAG\nDONE A\n").is_err());
        // Trailer line cut mid-write: no final newline.
        assert!(parse_rescue("DONE A\n# END 1 done").is_err());
        // Torn file: trailer count disagrees with the DONE lines.
        let err = parse_rescue("DONE A\n# END 2 done\n").unwrap_err();
        assert!(err.contains("torn"), "{err}");
        // Garbage where the count should be.
        assert!(parse_rescue("# END x done\n").is_err());
        assert!(parse_rescue("").is_err());
    }

    #[test]
    fn any_mid_line_truncation_is_rejected() {
        // Regression: every proper prefix of a valid rescue file must
        // fail to parse — a crash can cut the file at any byte.
        let done: BTreeSet<String> = ["A".to_string(), "B".to_string()].into();
        let dm = resume(chain(), &done, OwnerId(0)).unwrap();
        let text = rescue_file(&dm);
        assert!(parse_rescue(&text).is_ok());
        for cut in 0..text.len() {
            assert!(
                parse_rescue(&text[..cut]).is_err(),
                "prefix of {cut} bytes parsed: {:?}",
                &text[..cut]
            );
        }
    }

    #[test]
    fn atomic_write_lands_bytes_and_cleans_tmp() {
        let dir = std::env::temp_dir().join(format!("fdw-rescue-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("workflow.rescue001");
        let done: BTreeSet<String> = ["A".to_string()].into();
        let dm = resume(chain(), &done, OwnerId(0)).unwrap();
        let text = rescue_file(&dm);
        write_rescue_atomic(&path, &text).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        assert!(
            !dir.join("workflow.rescue001.tmp").exists(),
            "tmp file must be renamed away"
        );
        // Overwriting a previous generation is also atomic.
        let done2: BTreeSet<String> = ["A".to_string(), "B".to_string()].into();
        let dm2 = resume(chain(), &done2, OwnerId(0)).unwrap();
        let text2 = rescue_file(&dm2);
        write_rescue_atomic(&path, &text2).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_skips_done_nodes() {
        let done: BTreeSet<String> = ["A".to_string(), "B".to_string()].into();
        let dm = resume(chain(), &done, OwnerId(0)).unwrap();
        assert_eq!(dm.completed(), 2);
        assert_eq!(dm.node_state(NodeId(0)), NodeState::Done);
        assert_eq!(dm.node_state(NodeId(1)), NodeState::Done);
        // C became ready because both ancestors are done.
        assert_eq!(dm.node_state(NodeId(2)), NodeState::Ready);
        assert!(!dm.is_done());
    }

    #[test]
    fn resume_with_all_done_is_complete() {
        let done: BTreeSet<String> = ["A".to_string(), "B".to_string(), "C".to_string()].into();
        let dm = resume(chain(), &done, OwnerId(0)).unwrap();
        assert!(dm.is_done());
    }

    #[test]
    fn resume_rejects_unknown_nodes() {
        let done: BTreeSet<String> = ["ZZZ".to_string()].into();
        assert!(resume(chain(), &done, OwnerId(0)).is_err());
    }

    #[test]
    fn rescue_file_from_dagman() {
        let done: BTreeSet<String> = ["A".to_string()].into();
        let dm = resume(chain(), &done, OwnerId(0)).unwrap();
        let text = rescue_file(&dm);
        assert!(text.contains("DONE A"));
        assert!(!text.contains("DONE B"));
        let parsed = parse_rescue(&text).unwrap();
        assert_eq!(parsed.len(), 1);
    }

    #[test]
    fn rescue_file_records_failures() {
        use htcsim::cluster::{Cluster, ClusterConfig};
        use htcsim::fault::FaultConfig;
        use htcsim::pool::PoolConfig;
        let mut d = Dag::new();
        let a = d.add_node(JobSpec::fixed("A", 10.0)).unwrap();
        d.add_node(JobSpec::fixed("B", 10.0)).unwrap();
        d.set_retries(a, 1);
        let mut dm = Dagman::new(d, OwnerId(0));
        let cfg = ClusterConfig {
            pool: PoolConfig {
                target_slots: 4,
                glidein_slots: 2,
                avail_mean: 1.0,
                avail_sigma: 0.0,
                glidein_lifetime_s: 1e9,
                ..Default::default()
            },
            faults: FaultConfig {
                seed: 1,
                permanent_job_fraction: 1.0,
                ..Default::default()
            },
            ..ClusterConfig::with_cache()
        };
        let _ = Cluster::new(cfg, 1).run(&mut dm);
        assert!(dm.is_done());
        let text = rescue_file(&dm);
        assert!(text.contains("# FAILED A exit=2 attempts=2"), "{text}");
        assert!(text.contains("# FAILED B exit=2"), "{text}");
        // Annotations are comments: parse_rescue only sees DONE lines.
        assert!(parse_rescue(&text).unwrap().is_empty());
    }

    #[test]
    fn rescue_bytes_stable_across_roundtrip() {
        // Byte-identity for the BTreeSet rewrite: serialising, parsing,
        // resuming, and re-serialising must reproduce the exact bytes,
        // and the parsed set must iterate in sorted order regardless of
        // line order — the property a HashSet could not guarantee.
        let mut d = Dag::new();
        for name in ["delta", "alpha", "charlie", "bravo"] {
            d.add_node(JobSpec::fixed(name, 10.0)).unwrap();
        }
        let done = parse_rescue("DONE delta\nDONE alpha\nDONE bravo\n# END 3 done\n").unwrap();
        let in_order: Vec<&String> = done.iter().collect();
        assert_eq!(in_order, ["alpha", "bravo", "delta"]);
        let first = rescue_file(&resume(d.clone(), &done, OwnerId(0)).unwrap());
        // DONE lines follow node-id order, pinned here byte-for-byte.
        assert_eq!(
            first,
            "# Rescue DAG\nDONE delta\nDONE alpha\nDONE bravo\n# END 3 done\n"
        );
        let second = rescue_file(&resume(d, &parse_rescue(&first).unwrap(), OwnerId(0)).unwrap());
        assert_eq!(first, second, "rescue roundtrip is not byte-stable");
    }

    #[test]
    #[should_panic(expected = "force_done")]
    fn force_done_twice_panics() {
        let done: BTreeSet<String> = BTreeSet::new();
        let mut dm = resume(chain(), &done, OwnerId(0)).unwrap();
        dm.force_done(NodeId(0));
        dm.force_done(NodeId(0));
    }
}
