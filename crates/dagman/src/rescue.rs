//! Rescue DAGs: when a DAGMan run ends with failed nodes, DAGMan writes a
//! rescue file marking completed nodes `DONE` so a re-submission skips
//! them. This module generates and applies that file.

use std::collections::BTreeSet;

#[cfg(test)]
use htcsim::cluster::WorkloadDriver;

use crate::dag::Dag;
use crate::driver::{Dagman, NodeState};

/// Serialise a rescue file: one `DONE <node>` line per completed node,
/// plus a `# FAILED <node> exit=<code|none> attempts=<n>` comment per
/// permanently failed node so the post-mortem survives in the artifact.
pub fn rescue_file(dagman: &Dagman) -> String {
    let mut out = String::from("# Rescue DAG\n");
    for f in dagman.failed_nodes() {
        let exit = match f.exit_code {
            Some(c) => c.to_string(),
            None => "none".to_string(),
        };
        out.push_str(&format!(
            "# FAILED {} exit={exit} attempts={}\n",
            f.name, f.attempts
        ));
    }
    for name in dagman.done_nodes() {
        out.push_str(&format!("DONE {name}\n"));
    }
    out
}

/// Parse a rescue file into the set of done node names.
pub fn parse_rescue(text: &str) -> Result<BTreeSet<String>, String> {
    let mut done = BTreeSet::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        match toks.next().map(|t| t.to_ascii_uppercase()).as_deref() {
            Some("DONE") => {
                let name = toks
                    .next()
                    .ok_or_else(|| format!("line {}: DONE needs a node", lineno + 1))?;
                done.insert(name.to_string());
            }
            Some(other) => return Err(format!("line {}: unknown keyword '{other}'", lineno + 1)),
            None => {}
        }
    }
    Ok(done)
}

/// Build a resumed DAGMan for `dag`, pre-marking the rescue file's done
/// nodes as complete. Errors if the rescue file names unknown nodes.
pub fn resume(
    dag: Dag,
    done: &BTreeSet<String>,
    owner: htcsim::job::OwnerId,
) -> Result<Dagman, String> {
    for name in done {
        if dag.id_of(name).is_none() {
            return Err(format!("rescue file names unknown node '{name}'"));
        }
    }
    let mut dm = Dagman::new(dag, owner);
    // Mark in topological order so readiness propagates correctly.
    let order = dm.dag().topological_order()?;
    for id in order {
        let name = dm.dag().node(id).name.clone();
        if done.contains(&name) {
            dm.force_done(id);
        }
    }
    Ok(dm)
}

impl Dagman {
    /// Mark a node complete without running it (rescue-DAG resume).
    /// Panics if the node is not currently Waiting/Ready.
    pub fn force_done(&mut self, id: crate::dag::NodeId) {
        let st = self.node_state(id);
        assert!(
            matches!(st, NodeState::Waiting | NodeState::Ready),
            "force_done on node in state {st:?}"
        );
        self.force_done_inner(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::NodeId;
    use htcsim::job::{JobSpec, OwnerId};

    fn chain() -> Dag {
        let mut d = Dag::new();
        let a = d.add_node(JobSpec::fixed("A", 10.0)).unwrap();
        let b = d.add_node(JobSpec::fixed("B", 10.0)).unwrap();
        let c = d.add_node(JobSpec::fixed("C", 10.0)).unwrap();
        d.add_edge(a, b).unwrap();
        d.add_edge(b, c).unwrap();
        d
    }

    #[test]
    fn rescue_roundtrip() {
        let text = "# Rescue DAG\nDONE A\nDONE B\n";
        let done = parse_rescue(text).unwrap();
        assert_eq!(done.len(), 2);
        assert!(done.contains("A") && done.contains("B"));
    }

    #[test]
    fn parse_rescue_errors() {
        assert!(parse_rescue("FROB A\n").is_err());
        assert!(parse_rescue("DONE\n").is_err());
        assert!(parse_rescue("# only comments\n").unwrap().is_empty());
    }

    #[test]
    fn resume_skips_done_nodes() {
        let done: BTreeSet<String> = ["A".to_string(), "B".to_string()].into();
        let dm = resume(chain(), &done, OwnerId(0)).unwrap();
        assert_eq!(dm.completed(), 2);
        assert_eq!(dm.node_state(NodeId(0)), NodeState::Done);
        assert_eq!(dm.node_state(NodeId(1)), NodeState::Done);
        // C became ready because both ancestors are done.
        assert_eq!(dm.node_state(NodeId(2)), NodeState::Ready);
        assert!(!dm.is_done());
    }

    #[test]
    fn resume_with_all_done_is_complete() {
        let done: BTreeSet<String> = ["A".to_string(), "B".to_string(), "C".to_string()].into();
        let dm = resume(chain(), &done, OwnerId(0)).unwrap();
        assert!(dm.is_done());
    }

    #[test]
    fn resume_rejects_unknown_nodes() {
        let done: BTreeSet<String> = ["ZZZ".to_string()].into();
        assert!(resume(chain(), &done, OwnerId(0)).is_err());
    }

    #[test]
    fn rescue_file_from_dagman() {
        let done: BTreeSet<String> = ["A".to_string()].into();
        let dm = resume(chain(), &done, OwnerId(0)).unwrap();
        let text = rescue_file(&dm);
        assert!(text.contains("DONE A"));
        assert!(!text.contains("DONE B"));
        let parsed = parse_rescue(&text).unwrap();
        assert_eq!(parsed.len(), 1);
    }

    #[test]
    fn rescue_file_records_failures() {
        use htcsim::cluster::{Cluster, ClusterConfig};
        use htcsim::fault::FaultConfig;
        use htcsim::pool::PoolConfig;
        let mut d = Dag::new();
        let a = d.add_node(JobSpec::fixed("A", 10.0)).unwrap();
        d.add_node(JobSpec::fixed("B", 10.0)).unwrap();
        d.set_retries(a, 1);
        let mut dm = Dagman::new(d, OwnerId(0));
        let cfg = ClusterConfig {
            pool: PoolConfig {
                target_slots: 4,
                glidein_slots: 2,
                avail_mean: 1.0,
                avail_sigma: 0.0,
                glidein_lifetime_s: 1e9,
                ..Default::default()
            },
            faults: FaultConfig {
                seed: 1,
                permanent_job_fraction: 1.0,
                ..Default::default()
            },
            ..ClusterConfig::with_cache()
        };
        let _ = Cluster::new(cfg, 1).run(&mut dm);
        assert!(dm.is_done());
        let text = rescue_file(&dm);
        assert!(text.contains("# FAILED A exit=2 attempts=2"), "{text}");
        assert!(text.contains("# FAILED B exit=2"), "{text}");
        // Annotations are comments: parse_rescue only sees DONE lines.
        assert!(parse_rescue(&text).unwrap().is_empty());
    }

    #[test]
    fn rescue_bytes_stable_across_roundtrip() {
        // Byte-identity for the BTreeSet rewrite: serialising, parsing,
        // resuming, and re-serialising must reproduce the exact bytes,
        // and the parsed set must iterate in sorted order regardless of
        // line order — the property a HashSet could not guarantee.
        let mut d = Dag::new();
        for name in ["delta", "alpha", "charlie", "bravo"] {
            d.add_node(JobSpec::fixed(name, 10.0)).unwrap();
        }
        let done = parse_rescue("DONE delta\nDONE alpha\nDONE bravo\n").unwrap();
        let in_order: Vec<&String> = done.iter().collect();
        assert_eq!(in_order, ["alpha", "bravo", "delta"]);
        let first = rescue_file(&resume(d.clone(), &done, OwnerId(0)).unwrap());
        // DONE lines follow node-id order, pinned here byte-for-byte.
        assert_eq!(first, "# Rescue DAG\nDONE delta\nDONE alpha\nDONE bravo\n");
        let second = rescue_file(&resume(d, &parse_rescue(&first).unwrap(), OwnerId(0)).unwrap());
        assert_eq!(first, second, "rescue roundtrip is not byte-stable");
    }

    #[test]
    #[should_panic(expected = "force_done")]
    fn force_done_twice_panics() {
        let done: BTreeSet<String> = BTreeSet::new();
        let mut dm = resume(chain(), &done, OwnerId(0)).unwrap();
        dm.force_done(NodeId(0));
        dm.force_done(NodeId(0));
    }
}
