//! Property-based tests of the dagman crate: random DAG construction,
//! format roundtrips, and scheduler liveness.

use proptest::prelude::*;

use dagman::dag::{Dag, NodeId, Throttles};
use dagman::driver::Dagman;
use dagman::monitor::per_dagman_stats;
use dagman::rescue::{parse_rescue, rescue_file, resume};
use htcsim::cluster::{Cluster, ClusterConfig};
use htcsim::job::{JobSpec, OwnerId};
use htcsim::pool::PoolConfig;
use std::collections::{BTreeSet, HashSet};

/// Build a random DAG from (n, forward edges) — edges always point from a
/// lower to a higher index, so the graph is acyclic by construction.
fn random_dag(n: usize, edges: &[(usize, usize)]) -> Dag {
    let mut dag = Dag::new();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| dag.add_node(JobSpec::fixed(format!("n{i}"), 30.0)).unwrap())
        .collect();
    for (a, b) in edges {
        let (a, b) = (a % n, b % n);
        if a < b {
            dag.add_edge(ids[a], ids[b]).unwrap();
        } else if b < a {
            dag.add_edge(ids[b], ids[a]).unwrap();
        }
    }
    dag
}

fn fast_cluster(seed: u64) -> Cluster {
    Cluster::new(
        ClusterConfig {
            pool: PoolConfig {
                target_slots: 32,
                glidein_slots: 8,
                avail_mean: 0.95,
                avail_sigma: 0.02,
                glidein_lifetime_s: 1e9,
                ..Default::default()
            },
            transfer: Default::default(),
            cache_enabled: true,
            max_evictions_per_job: 0,
            faults: Default::default(),
            defense: Default::default(),
            federation: Default::default(),
            shards: 1,
        },
        seed,
    )
}

proptest! {
    #[test]
    fn topological_order_is_valid_for_random_dags(
        n in 1usize..30,
        edges in proptest::collection::vec((0usize..30, 0usize..30), 0..60),
    ) {
        let dag = random_dag(n, &edges);
        let order = dag.topological_order().unwrap();
        prop_assert_eq!(order.len(), n);
        let pos: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        for k in 0..n {
            for &c in &dag.node(NodeId(k)).children {
                prop_assert!(pos[&NodeId(k)] < pos[&c]);
            }
        }
    }

    #[test]
    fn dag_file_roundtrip_random(
        n in 1usize..20,
        edges in proptest::collection::vec((0usize..20, 0usize..20), 0..40),
        max_jobs in 0usize..500,
        max_idle in 0usize..500,
    ) {
        let mut dag = random_dag(n, &edges);
        dag.throttles = Throttles { max_jobs, max_idle };
        let text = dag.to_dag_file();
        let parsed = Dag::parse(&text, |name| JobSpec::fixed(name, 30.0)).unwrap();
        prop_assert_eq!(parsed.len(), dag.len());
        prop_assert_eq!(parsed.throttles.max_jobs, max_jobs);
        for k in 0..n {
            let a = dag.node(NodeId(k));
            let b = parsed.node(parsed.id_of(&a.name).unwrap());
            let mut ca: Vec<&str> =
                a.children.iter().map(|c| dag.node(*c).name.as_str()).collect();
            let mut cb: Vec<&str> =
                b.children.iter().map(|c| parsed.node(*c).name.as_str()).collect();
            ca.sort_unstable();
            cb.sort_unstable();
            prop_assert_eq!(ca, cb);
        }
    }

    #[test]
    fn rescue_file_roundtrip(names in proptest::collection::hash_set("[a-z][a-z0-9]{0,8}", 0..20)) {
        let mut dag = Dag::new();
        for name in &names {
            dag.add_node(JobSpec::fixed(name.clone(), 10.0)).unwrap();
        }
        let done: BTreeSet<String> = names.iter().take(names.len() / 2).cloned().collect();
        let dm = resume(dag, &done, OwnerId(0)).unwrap();
        let parsed = parse_rescue(&rescue_file(&dm)).unwrap();
        prop_assert_eq!(parsed, done);
    }

    /// Full rescue round-trip over randomized DAGs: run a random DAG to
    /// completion on a real cluster where a random subset of nodes fails
    /// permanently, write the rescue file, and resume into a fresh DAGMan.
    /// The resumed DAGMan must pre-complete exactly the done set, never
    /// resubmit a DONE node, and reject unknown node names.
    #[test]
    fn rescue_resume_roundtrip_random_dags(
        n in 1usize..14,
        edges in proptest::collection::vec((0usize..14, 0usize..14), 0..20),
        failing in proptest::collection::hash_set(0usize..14, 0..5),
        seed in any::<u64>(),
    ) {
        use htcsim::fault::EXIT_PERMANENT;

        let mut dag = random_dag(n, &edges);
        let failing: HashSet<usize> = failing.into_iter().map(|i| i % n).collect();
        // A node fails only if none of its ancestors fail first (a failed
        // parent leaves descendants unsubmitted, not failed). Compute the
        // expected reachable-done set: nodes with no failing ancestor and
        // not failing themselves.
        for &i in &failing {
            dag.set_retries(NodeId(i), 2);
        }
        let dag_copy = dag.clone();
        let mut dm = Dagman::new(dag, OwnerId(0));

        // Drive the DAGMan by hand: a deterministic "cluster" that starts
        // and finishes every submitted job instantly, failing the chosen
        // subset with EXIT_PERMANENT.
        use htcsim::cluster::WorkloadDriver;
        use htcsim::job::{JobEvent, JobEventKind, JobId};
        use htcsim::time::SimTime;
        let mut next_id = 0u64;
        let mut t = 0u64;
        let mut pending: Vec<JobEvent> = Vec::new();
        loop {
            let evs = std::mem::take(&mut pending);
            let subs = dm.poll(SimTime(t), &evs);
            if subs.is_empty() && pending.is_empty() && dm.is_done() {
                break;
            }
            if subs.is_empty() && evs.is_empty() {
                // Nothing happened this tick: advance time (drains any
                // retry backoff) and bail out if the DAG cannot progress.
                t += 3600;
                if t > 10_000_000 {
                    break;
                }
                continue;
            }
            for s in subs {
                let id = JobId(next_id);
                next_id += 1;
                dm.on_assigned(id, &s.spec.name);
                let idx = dag_copy.id_of(&s.spec.name).unwrap().0;
                let fails = failing.contains(&idx);
                pending.push(JobEvent::new(
                    SimTime(t + 1), id, OwnerId(0), JobEventKind::ExecuteStarted,
                ));
                if fails {
                    pending.push(
                        JobEvent::new(
                            SimTime(t + 2), id, OwnerId(0), JobEventKind::Failed,
                        )
                        .with_exit(EXIT_PERMANENT),
                    );
                } else {
                    pending.push(
                        JobEvent::new(
                            SimTime(t + 2), id, OwnerId(0), JobEventKind::Completed,
                        )
                        .with_exit(0),
                    );
                }
            }
            t += 2;
        }
        prop_assert!(dm.is_done(), "hand-driven DAG must settle");

        // The done set is exactly the nodes with no failing ancestor that
        // are not failing themselves.
        let mut expected_done: BTreeSet<String> = BTreeSet::new();
        for k in 0..n {
            if failing.contains(&k) {
                continue;
            }
            let mut blocked = false;
            for &f in &failing {
                if f < n && dag_copy.descendants(NodeId(f)).contains(&NodeId(k)) {
                    blocked = true;
                    break;
                }
            }
            if !blocked {
                expected_done.insert(dag_copy.node(NodeId(k)).name.clone());
            }
        }
        let done_now: BTreeSet<String> =
            dm.done_nodes().iter().map(|s| s.to_string()).collect();
        prop_assert_eq!(&done_now, &expected_done);

        // Failed nodes carry the injected exit code and full attempt count.
        for f in dm.failed_nodes() {
            prop_assert_eq!(f.exit_code, Some(EXIT_PERMANENT));
            prop_assert_eq!(f.attempts, 3, "2 retries = 3 attempts");
        }

        // rescue_file -> parse_rescue reproduces the done set exactly.
        let text = rescue_file(&dm);
        let parsed = parse_rescue(&text).unwrap();
        prop_assert_eq!(&parsed, &expected_done);

        // Resume pre-completes exactly the done set and never re-runs it.
        let resumed = resume(dag_copy.clone(), &parsed, OwnerId(0)).unwrap();
        prop_assert_eq!(resumed.completed(), expected_done.len());
        for name in &expected_done {
            let id = dag_copy.id_of(name).unwrap();
            prop_assert_eq!(resumed.node_state(id), dagman::driver::NodeState::Done);
        }
        // Unknown node names are rejected.
        let mut bad = parsed.clone();
        bad.insert("zzz-not-a-node".to_string());
        prop_assert!(resume(dag_copy.clone(), &bad, OwnerId(0)).is_err());
        let _ = seed; // DAG shape is the randomness; the run is deterministic.
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any random DAG runs to completion on the cluster, in an order that
    /// never violates dependencies, regardless of throttles.
    #[test]
    fn scheduler_liveness_and_dependency_safety(
        n in 1usize..20,
        edges in proptest::collection::vec((0usize..20, 0usize..20), 0..30),
        max_idle in prop_oneof![Just(0usize), 1usize..8],
        max_jobs in prop_oneof![Just(0usize), 1usize..8],
        seed in any::<u64>(),
    ) {
        let mut dag = random_dag(n, &edges);
        dag.throttles = Throttles { max_jobs, max_idle };
        let dag_copy = dag.clone();
        let mut dm = Dagman::new(dag, OwnerId(0));
        let report = fast_cluster(seed).run(&mut dm);
        prop_assert!(!report.timed_out);
        prop_assert_eq!(report.completed, n);
        prop_assert_eq!(dm.completed(), n);
        // Completion order respects every edge.
        let completions: Vec<String> = report
            .log
            .events()
            .iter()
            .filter(|e| e.kind == htcsim::job::JobEventKind::Completed)
            .map(|e| report.job_names[&e.job].clone())
            .collect();
        let pos: std::collections::HashMap<&str, usize> = completions
            .iter()
            .enumerate()
            .map(|(i, s)| (s.as_str(), i))
            .collect();
        for k in 0..n {
            let parent = &dag_copy.node(NodeId(k)).name;
            for &c in &dag_copy.node(NodeId(k)).children {
                let child = &dag_copy.node(c).name;
                prop_assert!(
                    pos[parent.as_str()] < pos[child.as_str()],
                    "{parent} completed after child {child}"
                );
            }
        }
        // Monitor stats agree with the report.
        let stats = per_dagman_stats(&report);
        prop_assert_eq!(stats[0].completed, n);
    }

    /// Speculative duplicates never double-count as goodput: for any fan
    /// of heavy-tailed nodes with speculation on, the monitor reports
    /// exactly one completion and one goodput interval per node, every
    /// speculated node settles as exactly one win or loss, and any
    /// duplicate completion in the log is charged to badput.
    #[test]
    fn speculation_never_double_counts_goodput(
        n in 4usize..24,
        seed in any::<u64>(),
    ) {
        use dagman::driver::SpeculationConfig;
        use htcsim::job::{ExecModel, JobEventKind};

        let mut dag = Dag::new();
        for i in 0..n {
            let mut spec = JobSpec::fixed(format!("w.{i}"), 120.0);
            spec.exec = ExecModel::LogNormalMedian { median_s: 120.0, sigma: 1.2 };
            dag.add_node(spec).unwrap();
        }
        let mut dm = Dagman::new(dag, OwnerId(0)).with_speculation(SpeculationConfig {
            enabled: true,
            multiplier: 1.5,
            quantile: 0.5,
            min_samples: 3,
        });
        let report = fast_cluster(seed).run(&mut dm);
        prop_assert!(!report.timed_out);
        prop_assert_eq!(dm.completed(), n);
        prop_assert_eq!(dm.spec_wins() + dm.spec_losses(), dm.speculations());
        let stats = per_dagman_stats(&report);
        prop_assert_eq!(stats[0].completed, n, "duplicates must not inflate completions");
        prop_assert_eq!(stats[0].exec_secs.len(), n, "one goodput interval per node");
        prop_assert_eq!(
            stats[0].goodput_secs,
            stats[0].exec_secs.iter().sum::<u64>(),
            "goodput is exactly the winners' execution seconds"
        );
        let completions = report
            .log
            .events()
            .iter()
            .filter(|e| e.kind == JobEventKind::Completed)
            .count();
        prop_assert!(completions >= n);
        if completions > n {
            prop_assert!(
                stats[0].badput_secs > 0,
                "a losing copy that ran to completion is badput"
            );
        }
    }
}
