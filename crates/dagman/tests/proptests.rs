//! Property-based tests of the dagman crate: random DAG construction,
//! format roundtrips, and scheduler liveness.

use proptest::prelude::*;

use dagman::dag::{Dag, NodeId, Throttles};
use dagman::driver::Dagman;
use dagman::monitor::per_dagman_stats;
use dagman::rescue::{parse_rescue, rescue_file, resume};
use htcsim::cluster::{Cluster, ClusterConfig};
use htcsim::job::{JobSpec, OwnerId};
use htcsim::pool::PoolConfig;
use std::collections::HashSet;

/// Build a random DAG from (n, forward edges) — edges always point from a
/// lower to a higher index, so the graph is acyclic by construction.
fn random_dag(n: usize, edges: &[(usize, usize)]) -> Dag {
    let mut dag = Dag::new();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| dag.add_node(JobSpec::fixed(format!("n{i}"), 30.0)).unwrap())
        .collect();
    for (a, b) in edges {
        let (a, b) = (a % n, b % n);
        if a < b {
            dag.add_edge(ids[a], ids[b]).unwrap();
        } else if b < a {
            dag.add_edge(ids[b], ids[a]).unwrap();
        }
    }
    dag
}

fn fast_cluster(seed: u64) -> Cluster {
    Cluster::new(
        ClusterConfig {
            pool: PoolConfig {
                target_slots: 32,
                glidein_slots: 8,
                avail_mean: 0.95,
                avail_sigma: 0.02,
                glidein_lifetime_s: 1e9,
                ..Default::default()
            },
            transfer: Default::default(),
            cache_enabled: true,
            max_evictions_per_job: 0,
        },
        seed,
    )
}

proptest! {
    #[test]
    fn topological_order_is_valid_for_random_dags(
        n in 1usize..30,
        edges in proptest::collection::vec((0usize..30, 0usize..30), 0..60),
    ) {
        let dag = random_dag(n, &edges);
        let order = dag.topological_order().unwrap();
        prop_assert_eq!(order.len(), n);
        let pos: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        for k in 0..n {
            for &c in &dag.node(NodeId(k)).children {
                prop_assert!(pos[&NodeId(k)] < pos[&c]);
            }
        }
    }

    #[test]
    fn dag_file_roundtrip_random(
        n in 1usize..20,
        edges in proptest::collection::vec((0usize..20, 0usize..20), 0..40),
        max_jobs in 0usize..500,
        max_idle in 0usize..500,
    ) {
        let mut dag = random_dag(n, &edges);
        dag.throttles = Throttles { max_jobs, max_idle };
        let text = dag.to_dag_file();
        let parsed = Dag::parse(&text, |name| JobSpec::fixed(name, 30.0)).unwrap();
        prop_assert_eq!(parsed.len(), dag.len());
        prop_assert_eq!(parsed.throttles.max_jobs, max_jobs);
        for k in 0..n {
            let a = dag.node(NodeId(k));
            let b = parsed.node(parsed.id_of(&a.name).unwrap());
            let mut ca: Vec<&str> =
                a.children.iter().map(|c| dag.node(*c).name.as_str()).collect();
            let mut cb: Vec<&str> =
                b.children.iter().map(|c| parsed.node(*c).name.as_str()).collect();
            ca.sort_unstable();
            cb.sort_unstable();
            prop_assert_eq!(ca, cb);
        }
    }

    #[test]
    fn rescue_file_roundtrip(names in proptest::collection::hash_set("[a-z][a-z0-9]{0,8}", 0..20)) {
        let mut dag = Dag::new();
        for name in &names {
            dag.add_node(JobSpec::fixed(name.clone(), 10.0)).unwrap();
        }
        let done: HashSet<String> = names.iter().take(names.len() / 2).cloned().collect();
        let dm = resume(dag, &done, OwnerId(0)).unwrap();
        let parsed = parse_rescue(&rescue_file(&dm)).unwrap();
        prop_assert_eq!(parsed, done);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any random DAG runs to completion on the cluster, in an order that
    /// never violates dependencies, regardless of throttles.
    #[test]
    fn scheduler_liveness_and_dependency_safety(
        n in 1usize..20,
        edges in proptest::collection::vec((0usize..20, 0usize..20), 0..30),
        max_idle in prop_oneof![Just(0usize), 1usize..8],
        max_jobs in prop_oneof![Just(0usize), 1usize..8],
        seed in any::<u64>(),
    ) {
        let mut dag = random_dag(n, &edges);
        dag.throttles = Throttles { max_jobs, max_idle };
        let dag_copy = dag.clone();
        let mut dm = Dagman::new(dag, OwnerId(0));
        let report = fast_cluster(seed).run(&mut dm);
        prop_assert!(!report.timed_out);
        prop_assert_eq!(report.completed, n);
        prop_assert_eq!(dm.completed(), n);
        // Completion order respects every edge.
        let completions: Vec<String> = report
            .log
            .events()
            .iter()
            .filter(|e| e.kind == htcsim::job::JobEventKind::Completed)
            .map(|e| report.job_names[&e.job].clone())
            .collect();
        let pos: std::collections::HashMap<&str, usize> = completions
            .iter()
            .enumerate()
            .map(|(i, s)| (s.as_str(), i))
            .collect();
        for k in 0..n {
            let parent = &dag_copy.node(NodeId(k)).name;
            for &c in &dag_copy.node(NodeId(k)).children {
                let child = &dag_copy.node(c).name;
                prop_assert!(
                    pos[parent.as_str()] < pos[child.as_str()],
                    "{parent} completed after child {child}"
                );
            }
        }
        // Monitor stats agree with the report.
        let stats = per_dagman_stats(&report);
        prop_assert_eq!(stats[0].completed, n);
    }
}
