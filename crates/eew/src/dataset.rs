//! Dataset assembly: turn an FDW catalog (rupture scenarios + per-station
//! waveforms) into PGD training observations — the "AI-ready data
//! products" of the paper's Fig. 7.

use fakequakes::catalog::Catalog;
use fakequakes::geometry::FaultModel;
use fakequakes::stations::StationNetwork;

use crate::pgd::PgdObservation;

/// Extract one observation per (scenario, station) pair from a catalog.
///
/// Distance is hypocentral: station to the scenario's hypocentral
/// subfault. Stations whose PGD fell below `min_pgd_m` are dropped
/// (sub-noise observations carry no magnitude information — the same
/// screening real PGD pipelines apply).
pub fn observations_from_catalog(
    catalog: &Catalog,
    fault: &FaultModel,
    network: &StationNetwork,
    min_pgd_m: f64,
) -> Vec<PgdObservation> {
    let mut out = Vec::new();
    for (scenario, waveforms) in catalog.scenarios.iter().zip(&catalog.waveforms) {
        let hypo = fault.subfault(scenario.hypocenter_idx).center;
        for w in waveforms {
            let station = network
                .stations()
                .iter()
                .find(|s| s.code == w.station_code)
                .expect("waveform station must exist in the network");
            let pgd = w.pgd_m();
            if pgd < min_pgd_m {
                continue;
            }
            out.push(PgdObservation {
                mw: scenario.mw,
                pgd_m: pgd,
                distance_km: station.location.distance_3d_km(&hypo).max(1.0),
            });
        }
    }
    out
}

/// Deterministic train/test split by observation index parity groups:
/// every `k`-th observation (k = `test_every`) goes to the test set.
/// Index-based rather than random so results are reproducible without
/// threading a RNG through evaluation code.
pub fn split(
    observations: &[PgdObservation],
    test_every: usize,
) -> (Vec<PgdObservation>, Vec<PgdObservation>) {
    assert!(test_every >= 2, "test_every must be >= 2");
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (i, o) in observations.iter().enumerate() {
        if i % test_every == 0 {
            test.push(*o);
        } else {
            train.push(*o);
        }
    }
    (train, test)
}

/// Evaluation of magnitude estimates: mean absolute error and bias.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MagnitudeErrors {
    /// Mean absolute error in magnitude units.
    pub mae: f64,
    /// Mean signed error (positive = overestimates).
    pub bias: f64,
    /// Number of events evaluated.
    pub n: usize,
}

/// Score per-event magnitude estimates against truth.
pub fn score(estimates: &[(f64, f64)]) -> MagnitudeErrors {
    if estimates.is_empty() {
        return MagnitudeErrors {
            mae: 0.0,
            bias: 0.0,
            n: 0,
        };
    }
    let n = estimates.len() as f64;
    let mae = estimates.iter().map(|(e, t)| (e - t).abs()).sum::<f64>() / n;
    let bias = estimates.iter().map(|(e, t)| e - t).sum::<f64>() / n;
    MagnitudeErrors {
        mae,
        bias,
        n: estimates.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakequakes::catalog::generate_catalog;
    use fakequakes::noise::NoiseModel;
    use fakequakes::rupture::RuptureConfig;
    use fakequakes::waveform::WaveformConfig;

    fn fixture() -> (FaultModel, StationNetwork, Catalog) {
        let fault = FaultModel::chilean_subduction(14, 7).unwrap();
        let net = StationNetwork::chilean(10, 1).unwrap();
        let catalog = generate_catalog(
            &fault,
            &net,
            None,
            None,
            RuptureConfig {
                mw_range: (7.8, 8.8),
                ..Default::default()
            },
            WaveformConfig {
                duration_s: 256.0,
                noise: NoiseModel::none(),
                ..Default::default()
            },
            6,
            4,
        )
        .unwrap();
        (fault, net, catalog)
    }

    #[test]
    fn observations_cover_catalog() {
        let (fault, net, catalog) = fixture();
        let obs = observations_from_catalog(&catalog, &fault, &net, 0.0);
        assert_eq!(obs.len(), 6 * 10);
        for o in &obs {
            assert!(o.pgd_m >= 0.0);
            assert!(o.distance_km >= 1.0);
            assert!((7.8..=8.8).contains(&o.mw));
        }
    }

    #[test]
    fn pgd_threshold_screens_far_stations() {
        let (fault, net, catalog) = fixture();
        let all = observations_from_catalog(&catalog, &fault, &net, 0.0);
        let screened = observations_from_catalog(&catalog, &fault, &net, 0.05);
        assert!(screened.len() < all.len());
        assert!(screened.iter().all(|o| o.pgd_m >= 0.05));
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let (fault, net, catalog) = fixture();
        let obs = observations_from_catalog(&catalog, &fault, &net, 0.0);
        let (train, test) = split(&obs, 5);
        assert_eq!(train.len() + test.len(), obs.len());
        assert_eq!(test.len(), obs.len().div_ceil(5));
    }

    #[test]
    #[should_panic(expected = "test_every")]
    fn split_rejects_degenerate_ratio() {
        split(&[], 1);
    }

    #[test]
    fn score_known_values() {
        let s = score(&[(8.0, 8.2), (8.4, 8.2)]);
        assert!((s.mae - 0.2).abs() < 1e-12);
        assert!(s.bias.abs() < 1e-12);
        assert_eq!(s.n, 2);
        assert_eq!(score(&[]).n, 0);
    }
}
