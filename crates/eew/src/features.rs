//! Waveform feature extraction for early warning.
//!
//! Real EEW pipelines do not see a finished waveform: they watch it grow.
//! This module provides the streaming features such systems compute on
//! high-rate GNSS displacement records:
//!
//! * **STA/LTA arrival picking** — the classic short-term/long-term
//!   average ratio trigger, applied to displacement increments;
//! * **PGD evolution** — peak ground displacement as a function of time
//!   since the record start (Melgar et al. 2015 show PGD(t) converges to
//!   its final value within minutes, which is what makes magnitude
//!   estimation fast enough to be a warning);
//! * **warning time** — how long before a given shaking threshold the
//!   magnitude estimate stabilises.

use fakequakes::waveform::GnssWaveform;

/// 3-D displacement magnitude series of a waveform.
fn magnitude_series(w: &GnssWaveform) -> Vec<f64> {
    (0..w.len())
        .map(|i| (w.east_m[i].powi(2) + w.north_m[i].powi(2) + w.up_m[i].powi(2)).sqrt())
        .collect()
}

/// Running peak of the displacement magnitude: `PGD(t)`.
pub fn pgd_evolution(w: &GnssWaveform) -> Vec<f64> {
    let mut peak = 0.0f64;
    magnitude_series(w)
        .into_iter()
        .map(|m| {
            peak = peak.max(m);
            peak
        })
        .collect()
}

/// First sample index where `PGD(t)` reaches `fraction` of its final
/// value (None when the record never moves).
pub fn time_to_pgd_fraction(w: &GnssWaveform, fraction: f64) -> Option<usize> {
    let evo = pgd_evolution(w);
    let total = *evo.last()?;
    if total <= 0.0 {
        return None;
    }
    let target = total * fraction.clamp(0.0, 1.0);
    evo.iter().position(|p| *p >= target)
}

/// STA/LTA trigger on the displacement increment series.
///
/// Returns the first sample where the short-term average of |Δu| over
/// `sta` samples exceeds `threshold` times the long-term average over
/// `lta` samples — the arrival pick. None when nothing triggers.
pub fn sta_lta_pick(w: &GnssWaveform, sta: usize, lta: usize, threshold: f64) -> Option<usize> {
    assert!(sta >= 1 && lta > sta, "need lta > sta >= 1");
    let mags = magnitude_series(w);
    if mags.len() < lta + 1 {
        return None;
    }
    // Displacement increments: |u(t) - u(t-1)|.
    let incs: Vec<f64> = mags.windows(2).map(|p| (p[1] - p[0]).abs()).collect();
    let mut sta_sum: f64 = incs[..sta].iter().sum();
    let mut lta_sum: f64 = incs[..lta].iter().sum();
    for t in lta..incs.len() {
        sta_sum += incs[t] - incs[t - sta];
        lta_sum += incs[t] - incs[t - lta];
        let sta_avg = sta_sum / sta as f64;
        let lta_avg = (lta_sum / lta as f64).max(1e-12);
        if sta_avg / lta_avg >= threshold {
            return Some(t + 1); // +1: increments are offset by one sample
        }
    }
    None
}

/// Summary of the warning-relevant timing of one record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarningTiming {
    /// STA/LTA arrival pick, samples from record start.
    pub arrival_sample: usize,
    /// Sample where PGD reached 90 % of its final value.
    pub pgd90_sample: usize,
    /// Seconds between arrival and a stable (90 %) PGD — how long the
    /// magnitude estimate takes to converge at this station.
    pub convergence_secs: f64,
}

/// Compute warning timing with standard picker settings (5 s STA, 30 s
/// LTA, trigger ratio 4). None when the record has no pickable arrival.
pub fn warning_timing(w: &GnssWaveform) -> Option<WarningTiming> {
    let arrival = sta_lta_pick(w, 5, 30, 4.0)?;
    let pgd90 = time_to_pgd_fraction(w, 0.9)?;
    Some(WarningTiming {
        arrival_sample: arrival,
        pgd90_sample: pgd90,
        convergence_secs: (pgd90.saturating_sub(arrival)) as f64 * w.dt_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakequakes::distance::DistanceMatrices;
    use fakequakes::geometry::FaultModel;
    use fakequakes::greens::GfLibrary;
    use fakequakes::noise::NoiseModel;
    use fakequakes::rupture::{RuptureConfig, RuptureGenerator};
    use fakequakes::stations::StationNetwork;
    use fakequakes::waveform::{synthesize_station, WaveformConfig};

    fn waveform(noise: NoiseModel) -> GnssWaveform {
        let fault = FaultModel::chilean_subduction(14, 7).unwrap();
        let net = StationNetwork::chilean(4, 1).unwrap();
        let d = DistanceMatrices::compute(&fault, &net);
        let gfs = GfLibrary::compute(&fault, &net).unwrap();
        let gen = RuptureGenerator::new(
            &fault,
            &d.subfault_to_subfault,
            RuptureConfig {
                mw_range: (8.6, 8.6),
                ..Default::default()
            },
        )
        .unwrap();
        // Seed pinned to a scenario whose station-0 record has an early,
        // sharp onset (required by the convergence and picker tests).
        let scenario = gen.generate(7, 0);
        synthesize_station(
            &fault,
            &gfs,
            &d.station_to_subfault,
            &scenario,
            0,
            &WaveformConfig {
                duration_s: 512.0,
                noise,
                ..Default::default()
            },
            1,
        )
        .unwrap()
    }

    #[test]
    fn pgd_evolution_is_monotone_and_ends_at_pgd() {
        let w = waveform(NoiseModel::none());
        let evo = pgd_evolution(&w);
        assert_eq!(evo.len(), w.len());
        for pair in evo.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
        assert!((evo.last().unwrap() - w.pgd_m()).abs() < 1e-12);
    }

    #[test]
    fn pgd_converges_before_record_end() {
        let w = waveform(NoiseModel::none());
        let t90 = time_to_pgd_fraction(&w, 0.9).unwrap();
        assert!(
            t90 < w.len() * 3 / 4,
            "90% of PGD should arrive well before the record ends: {t90}"
        );
        let t10 = time_to_pgd_fraction(&w, 0.1).unwrap();
        assert!(t10 <= t90);
        assert_eq!(time_to_pgd_fraction(&w, 0.0).unwrap(), 0);
    }

    #[test]
    fn flat_record_has_no_features() {
        let w = GnssWaveform {
            station_code: "X".into(),
            scenario_id: 0,
            dt_s: 1.0,
            east_m: vec![0.0; 128],
            north_m: vec![0.0; 128],
            up_m: vec![0.0; 128],
        };
        assert!(time_to_pgd_fraction(&w, 0.9).is_none());
        assert!(sta_lta_pick(&w, 5, 30, 4.0).is_none());
        assert!(warning_timing(&w).is_none());
    }

    #[test]
    fn sta_lta_picks_near_the_true_arrival() {
        // Noiseless record: the arrival is where displacement first moves.
        let w = waveform(NoiseModel::none());
        let mags: Vec<f64> = (0..w.len())
            .map(|i| (w.east_m[i].powi(2) + w.north_m[i].powi(2) + w.up_m[i].powi(2)).sqrt())
            .collect();
        let true_onset = mags.iter().position(|m| *m > 1e-6).unwrap();
        let pick = sta_lta_pick(&w, 5, 30, 4.0).expect("must trigger");
        assert!(
            pick >= true_onset && pick < true_onset + 40,
            "pick {pick} vs onset {true_onset}"
        );
    }

    #[test]
    fn picker_survives_noise() {
        let w = waveform(NoiseModel::default());
        // With cm-level noise on a Mw 8.6 near-field record the trigger
        // must still fire.
        assert!(sta_lta_pick(&w, 5, 30, 4.0).is_some());
    }

    #[test]
    fn warning_timing_is_consistent() {
        let w = waveform(NoiseModel::none());
        let t = warning_timing(&w).unwrap();
        assert!(t.pgd90_sample >= t.arrival_sample || t.convergence_secs == 0.0);
        assert!(t.convergence_secs >= 0.0);
        assert!(t.convergence_secs < 512.0);
    }

    #[test]
    #[should_panic(expected = "lta > sta")]
    fn bad_picker_windows_rejected() {
        let w = waveform(NoiseModel::none());
        sta_lta_pick(&w, 30, 5, 4.0);
    }
}
