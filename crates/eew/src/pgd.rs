//! Peak-ground-displacement (PGD) magnitude scaling — the EEW model class
//! the FDW's synthetic data trains.
//!
//! High-rate GNSS EEW (Ruhl et al. 2017; Melgar et al. 2015) estimates the
//! magnitude of an ongoing large earthquake from the regression
//!
//! ```text
//! log10(PGD_cm) = A + B·Mw + C·Mw·log10(R_km)
//! ```
//!
//! with R the hypocentral distance. Training the coefficients requires
//! many large-event records — rare in nature, which is exactly why the
//! paper generates synthetic catalogs. This module fits (A, B, C) by
//! ordinary least squares on FDW products and inverts the relation to
//! estimate Mw from observed PGDs.

use fakequakes::error::{FqError, FqResult};
use fakequakes::linalg::Matrix;

/// One training/evaluation observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PgdObservation {
    /// True (catalog) moment magnitude.
    pub mw: f64,
    /// Peak ground displacement, metres.
    pub pgd_m: f64,
    /// Hypocentral distance, km.
    pub distance_km: f64,
}

impl PgdObservation {
    fn log_pgd_cm(&self) -> f64 {
        (self.pgd_m * 100.0).max(1e-6).log10()
    }
}

/// A fitted PGD scaling law.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PgdScalingModel {
    /// Intercept A.
    pub a: f64,
    /// Magnitude slope B.
    pub b: f64,
    /// Distance-attenuation coefficient C (negative: PGD decays with R).
    pub c: f64,
}

impl PgdScalingModel {
    /// The published coefficients of Melgar et al. (2015), handy as a
    /// reference point and test oracle.
    pub const MELGAR_2015: PgdScalingModel = PgdScalingModel {
        a: -4.434,
        b: 1.047,
        c: -0.138,
    };

    /// Fit (A, B, C) by ordinary least squares over the observations.
    /// Needs at least 3 observations spanning more than one magnitude and
    /// distance.
    pub fn fit(observations: &[PgdObservation]) -> FqResult<Self> {
        if observations.len() < 3 {
            return Err(FqError::Config(format!(
                "need >= 3 observations to fit, got {}",
                observations.len()
            )));
        }
        // Design matrix rows: [1, Mw, Mw·log10(R)]; solve the normal
        // equations X^T X β = X^T y by Cholesky.
        let mut xtx = Matrix::zeros(3, 3);
        let mut xty = [0.0f64; 3];
        for o in observations {
            if o.pgd_m <= 0.0 || o.distance_km <= 0.0 {
                return Err(FqError::Config(
                    "observations need positive PGD and distance".into(),
                ));
            }
            let row = [1.0, o.mw, o.mw * o.distance_km.log10()];
            let y = o.log_pgd_cm();
            for i in 0..3 {
                for j in 0..3 {
                    xtx[(i, j)] += row[i] * row[j];
                }
                xty[i] += row[i] * y;
            }
        }
        let beta = xtx.solve_spd(&xty).map_err(|e| {
            FqError::Linalg(format!("normal equations singular (degenerate data): {e}"))
        })?;
        Ok(Self {
            a: beta[0],
            b: beta[1],
            c: beta[2],
        })
    }

    /// Predicted log10(PGD_cm) for a magnitude/distance pair.
    pub fn predict_log_pgd_cm(&self, mw: f64, distance_km: f64) -> f64 {
        self.a + self.b * mw + self.c * mw * distance_km.log10()
    }

    /// Predicted PGD in metres.
    pub fn predict_pgd_m(&self, mw: f64, distance_km: f64) -> f64 {
        10f64.powf(self.predict_log_pgd_cm(mw, distance_km)) / 100.0
    }

    /// Invert the scaling for one station: the Mw that explains an
    /// observed PGD at distance R. Returns None when the denominator
    /// degenerates (station at a distance where B + C·log10 R ≈ 0).
    pub fn estimate_mw_single(&self, pgd_m: f64, distance_km: f64) -> Option<f64> {
        if pgd_m <= 0.0 || distance_km <= 0.0 {
            return None;
        }
        let denom = self.b + self.c * distance_km.log10();
        if denom.abs() < 1e-6 {
            return None;
        }
        let log_pgd = (pgd_m * 100.0).log10();
        Some((log_pgd - self.a) / denom)
    }

    /// Network magnitude estimate: the median of per-station estimates
    /// (median beats mean against the lognormal scatter of PGD).
    pub fn estimate_mw(&self, stations: &[(f64, f64)]) -> Option<f64> {
        let mut estimates: Vec<f64> = stations
            .iter()
            .filter_map(|(pgd, r)| self.estimate_mw_single(*pgd, *r))
            .collect();
        if estimates.is_empty() {
            return None;
        }
        estimates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Some(estimates[estimates.len() / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Observations generated exactly from a known model (no noise).
    fn synthetic_obs(model: &PgdScalingModel, n: usize, seed: u64) -> Vec<PgdObservation> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mw = 7.0 + rng.gen::<f64>() * 2.0;
                let r = 30.0 + rng.gen::<f64>() * 500.0;
                let pgd_m = model.predict_pgd_m(mw, r);
                PgdObservation {
                    mw,
                    pgd_m,
                    distance_km: r,
                }
            })
            .collect()
    }

    #[test]
    fn fit_recovers_exact_coefficients() {
        let truth = PgdScalingModel::MELGAR_2015;
        let obs = synthetic_obs(&truth, 200, 1);
        let fitted = PgdScalingModel::fit(&obs).unwrap();
        assert!((fitted.a - truth.a).abs() < 1e-6, "A {}", fitted.a);
        assert!((fitted.b - truth.b).abs() < 1e-6, "B {}", fitted.b);
        assert!((fitted.c - truth.c).abs() < 1e-6, "C {}", fitted.c);
    }

    #[test]
    fn fit_tolerates_noise() {
        let truth = PgdScalingModel::MELGAR_2015;
        let mut rng = StdRng::seed_from_u64(2);
        let obs: Vec<PgdObservation> = synthetic_obs(&truth, 500, 3)
            .into_iter()
            .map(|mut o| {
                // 20% multiplicative scatter.
                o.pgd_m *= (0.2 * (rng.gen::<f64>() - 0.5)).exp();
                o
            })
            .collect();
        let fitted = PgdScalingModel::fit(&obs).unwrap();
        assert!((fitted.b - truth.b).abs() < 0.1, "B {}", fitted.b);
        assert!((fitted.c - truth.c).abs() < 0.05, "C {}", fitted.c);
    }

    #[test]
    fn inversion_roundtrips() {
        let m = PgdScalingModel::MELGAR_2015;
        for mw in [7.2, 8.0, 8.8] {
            for r in [50.0, 150.0, 400.0] {
                let pgd = m.predict_pgd_m(mw, r);
                let est = m.estimate_mw_single(pgd, r).unwrap();
                assert!((est - mw).abs() < 1e-9, "Mw {mw} at {r} km -> {est}");
            }
        }
    }

    #[test]
    fn network_median_is_robust_to_one_outlier() {
        let m = PgdScalingModel::MELGAR_2015;
        let mw = 8.2;
        let mut obs: Vec<(f64, f64)> = [60.0, 120.0, 200.0, 320.0]
            .iter()
            .map(|r| (m.predict_pgd_m(mw, *r), *r))
            .collect();
        obs.push((5.0, 100.0)); // wildly wrong station
        let est = m.estimate_mw(&obs).unwrap();
        assert!((est - mw).abs() < 0.05, "network estimate {est}");
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(PgdScalingModel::fit(&[]).is_err());
        let one = PgdObservation {
            mw: 8.0,
            pgd_m: 0.1,
            distance_km: 100.0,
        };
        assert!(PgdScalingModel::fit(&[one, one]).is_err());
        // Identical rows make X^T X singular even with n >= 3; the solver's
        // jitter fallback may still produce a (meaningless) fit, so only
        // check it does not panic.
        let _ = PgdScalingModel::fit(&[one, one, one]);
        let m = PgdScalingModel::MELGAR_2015;
        assert!(m.estimate_mw_single(-1.0, 100.0).is_none());
        assert!(m.estimate_mw_single(0.1, 0.0).is_none());
        assert!(m.estimate_mw(&[]).is_none());
        assert!(PgdScalingModel::fit(
            &[PgdObservation {
                mw: 8.0,
                pgd_m: -0.1,
                distance_km: 100.0
            }; 3]
        )
        .is_err());
    }

    #[test]
    fn pgd_grows_with_magnitude_and_decays_with_distance() {
        let m = PgdScalingModel::MELGAR_2015;
        assert!(m.predict_pgd_m(8.5, 100.0) > m.predict_pgd_m(7.5, 100.0));
        assert!(m.predict_pgd_m(8.0, 50.0) > m.predict_pgd_m(8.0, 500.0));
        // Mw 8 at 100 km is on the order of decimetres.
        let pgd = m.predict_pgd_m(8.0, 100.0);
        assert!(pgd > 0.03 && pgd < 3.0, "pgd {pgd} m");
    }
}
