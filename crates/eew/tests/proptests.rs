//! Property-based tests of the EEW magnitude model.

use proptest::prelude::*;

use eew::dataset::{score, split};
use eew::pgd::{PgdObservation, PgdScalingModel};

proptest! {
    /// Fitting on noiseless synthetic data from any reasonable model
    /// recovers the generating coefficients.
    #[test]
    fn fit_recovers_any_generating_model(
        a in -6.0..-2.0f64,
        b in 0.5..1.5f64,
        c in -0.3..-0.05f64,
        mw_lo in 6.5..8.0f64,
        mw_span in 0.5..1.5f64,
        r_lo in 20.0..200.0f64,
        r_span in 100.0..600.0f64,
        k_m in 3usize..8,
        k_r in 3usize..8,
    ) {
        // A full factorial magnitude × distance grid: always a
        // well-conditioned design (real regressions screen for this too).
        let truth = PgdScalingModel { a, b, c };
        let mut obs = Vec::new();
        for i in 0..k_m {
            let mw = mw_lo + mw_span * i as f64 / (k_m - 1) as f64;
            for j in 0..k_r {
                let r = r_lo + r_span * j as f64 / (k_r - 1) as f64;
                let pgd_m = truth.predict_pgd_m(mw, r);
                // Screen sub-micrometre PGDs: below the observation
                // floor the log transform clamps and the point carries
                // no information (real pipelines screen at ~1 cm).
                if pgd_m >= 1e-6 {
                    obs.push(PgdObservation { mw, pgd_m, distance_km: r });
                }
            }
        }
        // The grid must retain spread in both dimensions after screening.
        let distinct = |xs: Vec<i64>| {
            let mut v = xs;
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        prop_assume!(obs.len() >= 9);
        prop_assume!(distinct(obs.iter().map(|o| (o.mw * 1e6) as i64).collect()) >= 3);
        prop_assume!(
            distinct(obs.iter().map(|o| (o.distance_km * 1e6) as i64).collect()) >= 3
        );
        let fitted = PgdScalingModel::fit(&obs).unwrap();
        prop_assert!((fitted.a - a).abs() < 1e-4, "A {} vs {}", fitted.a, a);
        prop_assert!((fitted.b - b).abs() < 1e-4, "B {} vs {}", fitted.b, b);
        prop_assert!((fitted.c - c).abs() < 1e-4, "C {} vs {}", fitted.c, c);
    }

    /// Prediction→inversion is the identity wherever the inversion is
    /// defined.
    #[test]
    fn inversion_is_left_inverse_of_prediction(
        mw in 6.5..9.2f64,
        r in 20.0..800.0f64,
    ) {
        let m = PgdScalingModel::MELGAR_2015;
        let pgd = m.predict_pgd_m(mw, r);
        let est = m.estimate_mw_single(pgd, r);
        prop_assert!(est.is_some());
        prop_assert!((est.unwrap() - mw).abs() < 1e-8);
    }

    /// The network median lies within the span of per-station estimates.
    #[test]
    fn network_estimate_within_station_range(
        readings in proptest::collection::vec((0.001..5.0f64, 20.0..800.0f64), 1..20),
    ) {
        let m = PgdScalingModel::MELGAR_2015;
        let singles: Vec<f64> = readings
            .iter()
            .filter_map(|(p, r)| m.estimate_mw_single(*p, *r))
            .collect();
        prop_assume!(!singles.is_empty());
        let est = m.estimate_mw(&readings).unwrap();
        let lo = singles.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = singles.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9);
    }

    /// Train/test split partitions without loss or duplication.
    #[test]
    fn split_partitions(
        n in 0usize..200,
        k in 2usize..10,
    ) {
        let obs: Vec<PgdObservation> = (0..n)
            .map(|i| PgdObservation {
                mw: 7.0 + (i % 10) as f64 * 0.1,
                pgd_m: 0.1,
                distance_km: 100.0 + i as f64,
            })
            .collect();
        let (train, test) = split(&obs, k);
        prop_assert_eq!(train.len() + test.len(), n);
        prop_assert_eq!(test.len(), n.div_ceil(k));
    }

    /// Scoring bounds: MAE >= |bias|, both zero on perfect estimates.
    #[test]
    fn score_bounds(pairs in proptest::collection::vec((6.0..9.5f64, -1.0..1.0f64), 0..50)) {
        let est: Vec<(f64, f64)> = pairs.iter().map(|(t, e)| (t + e, *t)).collect();
        let s = score(&est);
        prop_assert!(s.mae >= s.bias.abs() - 1e-12);
        let perfect: Vec<(f64, f64)> = pairs.iter().map(|(t, _)| (*t, *t)).collect();
        let p = score(&perfect);
        prop_assert!(p.mae.abs() < 1e-12);
        prop_assert!(p.bias.abs() < 1e-12);
    }
}
