//! Artifact serialisation: bridging the in-memory products to the on-disk
//! formats the FDW ships through the Stash cache.
//!
//! * [`DistanceMatrices`] ⇄ a pair of `.npy` files,
//! * [`GfLibrary`] ⇄ one `.mseed` file (3 channels per station),
//! * [`GnssWaveform`] ⇄ `.mseed` channels `CODE.LXE/LXN/LXZ`.

use crate::distance::DistanceMatrices;
use crate::error::{FqError, FqResult};
use crate::greens::{GfLibrary, StaticResponse, StationGf};
use crate::mseed::MseedFile;
use crate::npy;
use crate::waveform::GnssWaveform;

/// Encode the distance matrices as two NPY byte buffers
/// `(subfault_to_subfault, station_to_subfault)`.
pub fn distance_matrices_to_npy(d: &DistanceMatrices) -> (Vec<u8>, Vec<u8>) {
    (
        npy::to_npy_bytes(&d.subfault_to_subfault),
        npy::to_npy_bytes(&d.station_to_subfault),
    )
}

/// Decode distance matrices from the two NPY buffers produced by
/// [`distance_matrices_to_npy`]. Names are supplied by the caller since
/// NPY carries no metadata (matching MudPy, which encodes them in file
/// names).
pub fn distance_matrices_from_npy(
    fault_name: &str,
    network_name: &str,
    subfault_bytes: &[u8],
    station_bytes: &[u8],
) -> FqResult<DistanceMatrices> {
    let ss = npy::from_npy_bytes(subfault_bytes)?;
    let sta = npy::from_npy_bytes(station_bytes)?;
    if ss.rows() != ss.cols() {
        return Err(FqError::Format(
            "subfault distance matrix must be square".into(),
        ));
    }
    if sta.cols() != ss.cols() {
        return Err(FqError::Format(format!(
            "station matrix has {} columns but fault has {} subfaults",
            sta.cols(),
            ss.cols()
        )));
    }
    Ok(DistanceMatrices::from_parts(
        fault_name.to_string(),
        network_name.to_string(),
        ss,
        sta,
    ))
}

/// Encode a GF library as one `.mseed` container: per station, three
/// channels `CODE.GFE/GFN/GFZ` holding the per-subfault response
/// components.
pub fn gf_library_to_mseed(g: &GfLibrary) -> MseedFile {
    let mut f = MseedFile::new();
    for st in g.stations() {
        let e: Vec<f64> = st.responses.iter().map(|r| r.e).collect();
        let n: Vec<f64> = st.responses.iter().map(|r| r.n).collect();
        let u: Vec<f64> = st.responses.iter().map(|r| r.u).collect();
        f.push(format!("{}.GFE", st.station_code), 0.0, e);
        f.push(format!("{}.GFN", st.station_code), 0.0, n);
        f.push(format!("{}.GFZ", st.station_code), 0.0, u);
    }
    f
}

/// Decode a GF library from the `.mseed` container produced by
/// [`gf_library_to_mseed`].
pub fn gf_library_from_mseed(
    fault_name: &str,
    network_name: &str,
    f: &MseedFile,
) -> FqResult<GfLibrary> {
    if !f.records.len().is_multiple_of(3) {
        return Err(FqError::Format(format!(
            "GF mseed must hold 3 channels per station, got {} records",
            f.records.len()
        )));
    }
    let mut stations = Vec::with_capacity(f.records.len() / 3);
    let mut n_subfaults = 0usize;
    for chunk in f.records.chunks_exact(3) {
        let code = chunk[0]
            .code
            .strip_suffix(".GFE")
            .ok_or_else(|| FqError::Format(format!("unexpected channel '{}'", chunk[0].code)))?
            .to_string();
        for (rec, suffix) in chunk.iter().zip([".GFE", ".GFN", ".GFZ"]) {
            if !rec.code.ends_with(suffix) || !rec.code.starts_with(&code) {
                return Err(FqError::Format(format!(
                    "channel '{}' out of order (expected {code}{suffix})",
                    rec.code
                )));
            }
        }
        let ne = chunk[0].samples.len();
        if chunk[1].samples.len() != ne || chunk[2].samples.len() != ne {
            return Err(FqError::Format(format!(
                "GF channel length mismatch for station {code}"
            )));
        }
        if n_subfaults == 0 {
            n_subfaults = ne;
        } else if ne != n_subfaults {
            return Err(FqError::Format(format!(
                "station {code} covers {ne} subfaults, expected {n_subfaults}"
            )));
        }
        let responses: Vec<StaticResponse> = (0..ne)
            .map(|i| StaticResponse {
                e: chunk[0].samples[i],
                n: chunk[1].samples[i],
                u: chunk[2].samples[i],
            })
            .collect();
        stations.push(StationGf {
            station_code: code,
            responses,
        });
    }
    Ok(GfLibrary::from_parts(
        fault_name.to_string(),
        network_name.to_string(),
        stations,
        n_subfaults,
    ))
}

/// Append a waveform's three components to an `.mseed` container as
/// channels `CODE.LXE/LXN/LXZ` (the FDSN channel naming for 1 Hz GNSS
/// displacement).
pub fn waveform_to_mseed(f: &mut MseedFile, w: &GnssWaveform) {
    f.push(format!("{}.LXE", w.station_code), w.dt_s, w.east_m.clone());
    f.push(format!("{}.LXN", w.station_code), w.dt_s, w.north_m.clone());
    f.push(format!("{}.LXZ", w.station_code), w.dt_s, w.up_m.clone());
}

/// Extract the waveform for `station_code` from an `.mseed` container.
pub fn waveform_from_mseed(
    f: &MseedFile,
    station_code: &str,
    scenario_id: u64,
) -> FqResult<GnssWaveform> {
    let get = |suffix: &str| {
        f.record(&format!("{station_code}.{suffix}"))
            .ok_or_else(|| FqError::Format(format!("missing channel {station_code}.{suffix}")))
    };
    let e = get("LXE")?;
    let n = get("LXN")?;
    let z = get("LXZ")?;
    if e.samples.len() != n.samples.len() || e.samples.len() != z.samples.len() {
        return Err(FqError::Format(format!(
            "component length mismatch for {station_code}"
        )));
    }
    Ok(GnssWaveform {
        station_code: station_code.to_string(),
        scenario_id,
        dt_s: e.dt_s,
        east_m: e.samples.clone(),
        north_m: n.samples.clone(),
        up_m: z.samples.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FaultModel;
    use crate::stations::{ChileanInput, StationNetwork};

    fn fixture() -> (FaultModel, StationNetwork) {
        (
            FaultModel::chilean_subduction(6, 3).unwrap(),
            StationNetwork::chilean_input(ChileanInput::Small, 1),
        )
    }

    #[test]
    fn distance_matrix_npy_roundtrip() {
        let (f, n) = fixture();
        let d = DistanceMatrices::compute(&f, &n);
        let (sb, tb) = distance_matrices_to_npy(&d);
        let back = distance_matrices_from_npy(f.name(), n.name(), &sb, &tb).unwrap();
        assert_eq!(back.subfault_to_subfault, d.subfault_to_subfault);
        assert_eq!(back.station_to_subfault, d.station_to_subfault);
        assert_eq!(back.fault_name(), f.name());
    }

    #[test]
    fn distance_matrix_shape_validation() {
        let (f, n) = fixture();
        let d = DistanceMatrices::compute(&f, &n);
        let (sb, tb) = distance_matrices_to_npy(&d);
        // Swap the buffers: station matrix is rectangular, so it fails the
        // square check.
        assert!(distance_matrices_from_npy("f", "n", &tb, &sb).is_err());
    }

    #[test]
    fn gf_library_mseed_roundtrip() {
        let (f, n) = fixture();
        let g = GfLibrary::compute(&f, &n).unwrap();
        let ms = gf_library_to_mseed(&g);
        assert_eq!(ms.records.len(), 2 * 3);
        let back = gf_library_from_mseed(f.name(), n.name(), &ms).unwrap();
        assert_eq!(back.n_stations(), g.n_stations());
        assert_eq!(back.n_subfaults(), g.n_subfaults());
        for (a, b) in g.stations().iter().zip(back.stations()) {
            assert_eq!(a.station_code, b.station_code);
            assert_eq!(a.responses, b.responses);
        }
    }

    #[test]
    fn gf_mseed_rejects_wrong_record_count() {
        let mut ms = MseedFile::new();
        ms.push("X.GFE", 0.0, vec![1.0]);
        ms.push("X.GFN", 0.0, vec![1.0]);
        assert!(gf_library_from_mseed("f", "n", &ms).is_err());
    }

    #[test]
    fn gf_mseed_rejects_length_mismatch() {
        let mut ms = MseedFile::new();
        ms.push("X.GFE", 0.0, vec![1.0, 2.0]);
        ms.push("X.GFN", 0.0, vec![1.0]);
        ms.push("X.GFZ", 0.0, vec![1.0, 2.0]);
        assert!(gf_library_from_mseed("f", "n", &ms).is_err());
    }

    #[test]
    fn waveform_mseed_roundtrip() {
        let w = GnssWaveform {
            station_code: "CH007".into(),
            scenario_id: 42,
            dt_s: 1.0,
            east_m: vec![0.0, 0.1, 0.2],
            north_m: vec![0.0, -0.1, -0.2],
            up_m: vec![0.0, 0.05, 0.06],
        };
        let mut ms = MseedFile::new();
        waveform_to_mseed(&mut ms, &w);
        let back = waveform_from_mseed(&ms, "CH007", 42).unwrap();
        assert_eq!(back.east_m, w.east_m);
        assert_eq!(back.north_m, w.north_m);
        assert_eq!(back.up_m, w.up_m);
        assert_eq!(back.scenario_id, 42);
        assert!(waveform_from_mseed(&ms, "CH999", 0).is_err());
    }
}
