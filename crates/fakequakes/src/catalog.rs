//! Batch ("catalog") generation: run the full FakeQuakes pipeline for many
//! scenarios on one machine, in parallel with Rayon.
//!
//! This is the *live compute* path: what a single FDW job executes on an
//! OSG node, and what the single-machine AWS baseline in §3.1 of the paper
//! runs end-to-end. The grid experiments in `htcsim` model these costs in
//! simulated time; this module is the ground truth the cost model is
//! calibrated against.

use rayon::prelude::*;

use crate::distance::DistanceMatrices;
use crate::error::FqResult;
use crate::geometry::FaultModel;
use crate::greens::GfLibrary;
use crate::rupture::{RuptureConfig, RuptureGenerator, RuptureScenario};
use crate::stations::StationNetwork;
use crate::stochastic::{field_stats, FactorCache};
use crate::waveform::{synthesize_all_stations, GnssWaveform, WaveformConfig};

/// Everything one batch produces: scenarios plus their waveforms.
#[derive(Debug)]
pub struct Catalog {
    /// Generated rupture scenarios.
    pub scenarios: Vec<RuptureScenario>,
    /// `waveforms[i]` holds the per-station records of `scenarios[i]`.
    pub waveforms: Vec<Vec<GnssWaveform>>,
}

/// Per-scenario summary row (the paper's Fig. 1 visualises these
/// products; the quickstart example prints them).
#[derive(Debug, Clone)]
pub struct ScenarioSummary {
    /// Scenario id.
    pub id: u64,
    /// Moment magnitude.
    pub mw: f64,
    /// Number of slipping subfaults.
    pub active_subfaults: usize,
    /// Peak slip, metres.
    pub peak_slip_m: f64,
    /// Mean slip over active subfaults, metres.
    pub mean_slip_m: f64,
    /// Rupture duration, seconds.
    pub duration_s: f64,
    /// Maximum peak ground displacement over stations, metres.
    pub max_pgd_m: f64,
}

impl Catalog {
    /// Number of scenarios in the catalog.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when the catalog holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Build per-scenario summary rows.
    pub fn summaries(&self) -> Vec<ScenarioSummary> {
        self.scenarios
            .iter()
            .zip(&self.waveforms)
            .map(|(sc, wfs)| {
                let active: Vec<f64> = sc.slip_m.iter().cloned().filter(|s| *s > 0.0).collect();
                let st = field_stats(&active);
                ScenarioSummary {
                    id: sc.id,
                    mw: sc.mw,
                    active_subfaults: active.len(),
                    peak_slip_m: sc.peak_slip_m(),
                    mean_slip_m: st.mean,
                    duration_s: sc.duration_s(),
                    max_pgd_m: wfs.iter().map(|w| w.pgd_m()).fold(0.0, f64::max),
                }
            })
            .collect()
    }
}

/// End-to-end generation of `n_scenarios` scenarios and their waveforms.
///
/// Reuses precomputed [`DistanceMatrices`] and [`GfLibrary`] when supplied
/// (the FDW recycling path); computes them otherwise (the cold-start path a
/// lone A-Phase matrix job performs).
#[allow(clippy::too_many_arguments)]
pub fn generate_catalog(
    fault: &FaultModel,
    network: &StationNetwork,
    distances: Option<DistanceMatrices>,
    gfs: Option<GfLibrary>,
    rupture_config: RuptureConfig,
    waveform_config: WaveformConfig,
    n_scenarios: u64,
    seed: u64,
) -> FqResult<Catalog> {
    let distances = distances.unwrap_or_else(|| DistanceMatrices::compute(fault, network));
    distances.check_compatible(fault, network)?;
    let gfs = match gfs {
        Some(g) => g,
        None => GfLibrary::compute(fault, network)?,
    };
    // Recycle the correlated-field factorisation across calls: batches on
    // the same mesh with the same correlation parameters skip the O(n³)
    // eigendecomposition/Cholesky entirely after the first build.
    let generator = RuptureGenerator::new_cached(
        fault,
        &distances.subfault_to_subfault,
        rupture_config,
        FactorCache::global(),
    )?;

    // Scenario generation is embarrassingly parallel — the property the
    // whole paper builds on.
    let scenarios: Vec<RuptureScenario> = (0..n_scenarios)
        // fdwlint::allow(raw-parallelism): ordered indexed map — each scenario is a pure function of its index and collect preserves order, so parallel == sequential bitwise
        .into_par_iter()
        .map(|id| generator.generate(seed, id))
        .collect();

    let waveforms: Vec<Vec<GnssWaveform>> = scenarios
        // fdwlint::allow(raw-parallelism): ordered indexed map over an already-ordered Vec; collect preserves order, so parallel == sequential bitwise
        .par_iter()
        .map(|sc| {
            synthesize_all_stations(
                fault,
                &gfs,
                &distances.station_to_subfault,
                sc,
                &waveform_config,
                seed,
            )
        })
        .collect::<FqResult<_>>()?;

    Ok(Catalog {
        scenarios,
        waveforms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;
    use crate::stations::ChileanInput;

    fn quick_catalog(n: u64) -> Catalog {
        let fault = FaultModel::chilean_subduction(10, 5).unwrap();
        let net = StationNetwork::chilean_input(ChileanInput::Small, 1);
        generate_catalog(
            &fault,
            &net,
            None,
            None,
            RuptureConfig {
                mw_range: (7.8, 8.6),
                ..Default::default()
            },
            WaveformConfig {
                duration_s: 128.0,
                noise: NoiseModel::none(),
                ..Default::default()
            },
            n,
            77,
        )
        .unwrap()
    }

    #[test]
    fn catalog_has_requested_size() {
        let c = quick_catalog(4);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert_eq!(c.waveforms.len(), 4);
        for wfs in &c.waveforms {
            assert_eq!(wfs.len(), 2); // two stations in the small input
        }
    }

    #[test]
    fn empty_catalog() {
        let c = quick_catalog(0);
        assert!(c.is_empty());
        assert!(c.summaries().is_empty());
    }

    #[test]
    fn summaries_are_physical() {
        let c = quick_catalog(3);
        for s in c.summaries() {
            assert!((7.8..=8.6).contains(&s.mw), "Mw {}", s.mw);
            assert!(s.active_subfaults > 0);
            assert!(s.peak_slip_m > 0.0);
            assert!(s.mean_slip_m > 0.0 && s.mean_slip_m <= s.peak_slip_m);
            assert!(s.duration_s > 0.0);
            assert!(s.max_pgd_m >= 0.0);
        }
    }

    #[test]
    fn recycled_artifacts_give_identical_results() {
        let fault = FaultModel::chilean_subduction(8, 4).unwrap();
        let net = StationNetwork::chilean_input(ChileanInput::Small, 2);
        let d = DistanceMatrices::compute(&fault, &net);
        let g = GfLibrary::compute(&fault, &net).unwrap();
        let cfg = RuptureConfig::default();
        let wcfg = WaveformConfig {
            duration_s: 64.0,
            noise: NoiseModel::none(),
            ..Default::default()
        };
        let cold = generate_catalog(&fault, &net, None, None, cfg.clone(), wcfg, 2, 5).unwrap();
        let warm = generate_catalog(&fault, &net, Some(d), Some(g), cfg, wcfg, 2, 5).unwrap();
        for (a, b) in cold.scenarios.iter().zip(&warm.scenarios) {
            assert_eq!(a.slip_m, b.slip_m);
        }
        for (a, b) in cold.waveforms.iter().zip(&warm.waveforms) {
            for (wa, wb) in a.iter().zip(b) {
                assert_eq!(wa.east_m, wb.east_m);
            }
        }
    }

    #[test]
    fn incompatible_recycled_artifacts_rejected() {
        let fault = FaultModel::chilean_subduction(8, 4).unwrap();
        let other = FaultModel::chilean_subduction(6, 4).unwrap();
        let net = StationNetwork::chilean_input(ChileanInput::Small, 2);
        let stale = DistanceMatrices::compute(&other, &net);
        let r = generate_catalog(
            &fault,
            &net,
            Some(stale),
            None,
            RuptureConfig::default(),
            WaveformConfig::default(),
            1,
            5,
        );
        assert!(r.is_err());
    }
}
