//! Recyclable distance matrices — the `.npy` artifacts of the A Phase.
//!
//! MudPy precomputes two large distance matrices and recycles them across
//! every rupture in a batch because regenerating them is time-consuming:
//!
//! * the **subfault–subfault** 3-D distance matrix, used by the von Kármán
//!   slip correlation, and
//! * the **station–subfault** distance matrix, used by the Green's function
//!   and waveform stages.
//!
//! [`DistanceMatrices::compute`] builds both; they serialise to the NPY
//! format via [`crate::npy`], mirroring the `.npy` files the FDW ships
//! through the Stash cache.

use crate::error::{FqError, FqResult};
use crate::geo::UnitEcef;
use crate::geometry::FaultModel;
use crate::linalg::Matrix;
use crate::par;
use crate::stations::StationNetwork;

/// The pair of recyclable distance matrices.
#[derive(Debug, Clone)]
pub struct DistanceMatrices {
    fault_name: String,
    network_name: String,
    /// `n_subfault × n_subfault` 3-D separations in km.
    pub subfault_to_subfault: Matrix,
    /// `n_station × n_subfault` 3-D separations in km.
    pub station_to_subfault: Matrix,
}

impl DistanceMatrices {
    /// Compute both matrices from a fault model and a station network.
    ///
    /// Cost is O(n_sub² + n_sta·n_sub); for the full Chilean mesh this is
    /// the dominant startup cost, which is exactly why the FDW recycles
    /// the result. The upper-triangle rows of the subfault matrix and the
    /// station rows fan out across threads; each element is a pure
    /// distance, so the result is byte-identical to
    /// [`DistanceMatrices::compute_seq`].
    pub fn compute(fault: &FaultModel, network: &StationNetwork) -> Self {
        let subs = fault.subfaults();
        let n = subs.len();
        // Hoist the per-point trig (3 calls each) out of the O(n²) pair
        // loops; the pair kernel is then dot + asin + 2 sqrt. Both this
        // path and `compute_seq` call the same UnitEcef kernel, so they
        // stay bitwise identical.
        let usubs: Vec<UnitEcef> = subs.iter().map(|s| s.center.unit_ecef()).collect();
        let mut ss = Matrix::zeros(n, n);
        if n > 0 {
            let data = ss.as_mut_slice();
            par::for_each_chunk(data, par::chunk_for(n, 8) * n, |start, rows_chunk| {
                let first_row = start / n;
                for (r, row) in rows_chunk.chunks_mut(n).enumerate() {
                    let i = first_row + r;
                    let ui = &usubs[i];
                    for (slot, uj) in row.iter_mut().zip(&usubs).skip(i + 1) {
                        *slot = ui.distance_3d_km(uj);
                    }
                }
            });
            // Mirror the upper half (cheap copies, sequential).
            for i in 1..n {
                for j in 0..i {
                    data[i * n + j] = data[j * n + i];
                }
            }
        }
        let stations = network.stations();
        let m = stations.len();
        let mut sta = Matrix::zeros(m, n);
        if m > 0 && n > 0 {
            let ustas: Vec<UnitEcef> = stations.iter().map(|s| s.location.unit_ecef()).collect();
            let data = sta.as_mut_slice();
            par::for_each_chunk(data, par::chunk_for(m, 2) * n, |start, rows_chunk| {
                let first_row = start / n;
                for (r, row) in rows_chunk.chunks_mut(n).enumerate() {
                    let ust = &ustas[first_row + r];
                    for (slot, uj) in row.iter_mut().zip(&usubs) {
                        *slot = ust.distance_3d_km(uj);
                    }
                }
            });
        }
        Self {
            fault_name: fault.name().to_string(),
            network_name: network.name().to_string(),
            subfault_to_subfault: ss,
            station_to_subfault: sta,
        }
    }

    /// The original sequential loops (pre-optimisation), kept as the
    /// determinism oracle and `bench_snapshot` baseline.
    pub fn compute_seq(fault: &FaultModel, network: &StationNetwork) -> Self {
        let subs = fault.subfaults();
        let n = subs.len();
        let usubs: Vec<UnitEcef> = subs.iter().map(|s| s.center.unit_ecef()).collect();
        let mut ss = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = usubs[i].distance_3d_km(&usubs[j]);
                ss[(i, j)] = d;
                ss[(j, i)] = d;
            }
        }
        let stations = network.stations();
        let m = stations.len();
        let mut sta = Matrix::zeros(m, n);
        for (k, st) in stations.iter().enumerate() {
            let ust = st.location.unit_ecef();
            for (j, uj) in usubs.iter().enumerate() {
                sta[(k, j)] = ust.distance_3d_km(uj);
            }
        }
        Self {
            fault_name: fault.name().to_string(),
            network_name: network.name().to_string(),
            subfault_to_subfault: ss,
            station_to_subfault: sta,
        }
    }

    /// The pre-optimisation per-pair path, frozen as a timing baseline:
    /// full haversine trig (2 sin, 2 cos, 1 asin) for every pair, no
    /// per-point hoisting. [`DistanceMatrices::compute_seq`] shares the
    /// hoisted `UnitEcef` kernel (it must stay bitwise equal to the
    /// parallel path), so this is the arm `bench_snapshot` measures the
    /// trig-hoist win against — same role as
    /// `assemble_covariance_reference_libm` for the covariance kernel.
    /// Agrees with [`DistanceMatrices::compute`] to rounding (~1e-9
    /// relative), not bitwise.
    pub fn compute_reference_trig(fault: &FaultModel, network: &StationNetwork) -> Self {
        let subs = fault.subfaults();
        let n = subs.len();
        let mut ss = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = subs[i].center.distance_3d_km(&subs[j].center);
                ss[(i, j)] = d;
                ss[(j, i)] = d;
            }
        }
        let stations = network.stations();
        let m = stations.len();
        let mut sta = Matrix::zeros(m, n);
        for (k, st) in stations.iter().enumerate() {
            for (j, sf) in subs.iter().enumerate() {
                sta[(k, j)] = st.location.distance_3d_km(&sf.center);
            }
        }
        Self {
            fault_name: fault.name().to_string(),
            network_name: network.name().to_string(),
            subfault_to_subfault: ss,
            station_to_subfault: sta,
        }
    }

    /// Reassemble from deserialised parts (used by [`crate::artifacts`]).
    #[doc(hidden)]
    pub fn from_parts(
        fault_name: String,
        network_name: String,
        subfault_to_subfault: Matrix,
        station_to_subfault: Matrix,
    ) -> Self {
        Self {
            fault_name,
            network_name,
            subfault_to_subfault,
            station_to_subfault,
        }
    }

    /// Name of the fault model these matrices were computed for.
    pub fn fault_name(&self) -> &str {
        &self.fault_name
    }

    /// Name of the station network these matrices were computed for.
    pub fn network_name(&self) -> &str {
        &self.network_name
    }

    /// Number of subfaults covered.
    pub fn n_subfaults(&self) -> usize {
        self.subfault_to_subfault.rows()
    }

    /// Number of stations covered.
    pub fn n_stations(&self) -> usize {
        self.station_to_subfault.rows()
    }

    /// Validate compatibility with a fault/network pair before recycling.
    /// The FDW performs this check when a user supplies pre-existing
    /// `.npy` files so stale artifacts are rejected instead of silently
    /// producing wrong waveforms.
    pub fn check_compatible(&self, fault: &FaultModel, network: &StationNetwork) -> FqResult<()> {
        if self.n_subfaults() != fault.len() {
            return Err(FqError::Config(format!(
                "recycled distance matrix covers {} subfaults but fault model '{}' has {}",
                self.n_subfaults(),
                fault.name(),
                fault.len()
            )));
        }
        if self.n_stations() != network.len() {
            return Err(FqError::Config(format!(
                "recycled distance matrix covers {} stations but network '{}' has {}",
                self.n_stations(),
                network.name(),
                network.len()
            )));
        }
        Ok(())
    }

    /// Approximate in-memory size in bytes (what the FDW reports when
    /// estimating transfer sizes for the Stash cache).
    pub fn nbytes(&self) -> usize {
        8 * (self.subfault_to_subfault.as_slice().len() + self.station_to_subfault.as_slice().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stations::ChileanInput;

    fn small_setup() -> (FaultModel, StationNetwork) {
        (
            FaultModel::chilean_subduction(6, 4).unwrap(),
            StationNetwork::chilean_input(ChileanInput::Small, 1),
        )
    }

    #[test]
    fn shapes_match_inputs() {
        let (f, n) = small_setup();
        let d = DistanceMatrices::compute(&f, &n);
        assert_eq!(d.n_subfaults(), 24);
        assert_eq!(d.n_stations(), 2);
        assert_eq!(d.subfault_to_subfault.cols(), 24);
        assert_eq!(d.station_to_subfault.cols(), 24);
    }

    #[test]
    fn subfault_matrix_symmetric_with_zero_diagonal() {
        let (f, n) = small_setup();
        let d = DistanceMatrices::compute(&f, &n);
        let m = &d.subfault_to_subfault;
        for i in 0..m.rows() {
            assert_eq!(m[(i, i)], 0.0);
            for j in 0..m.cols() {
                assert_eq!(m[(i, j)], m[(j, i)]);
                assert!(m[(i, j)] >= 0.0);
            }
        }
    }

    #[test]
    fn distances_are_positive_off_diagonal() {
        let (f, n) = small_setup();
        let d = DistanceMatrices::compute(&f, &n);
        let m = &d.subfault_to_subfault;
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                if i != j {
                    assert!(
                        m[(i, j)] > 0.0,
                        "({i},{j}) zero distance between distinct patches"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_compute_matches_sequential_bytewise() {
        let (f, n) = small_setup();
        let par = DistanceMatrices::compute(&f, &n);
        let seq = DistanceMatrices::compute_seq(&f, &n);
        assert_eq!(
            par.subfault_to_subfault.as_slice(),
            seq.subfault_to_subfault.as_slice()
        );
        assert_eq!(
            par.station_to_subfault.as_slice(),
            seq.station_to_subfault.as_slice()
        );
    }

    #[test]
    fn trig_reference_agrees_with_hoisted_kernel_closely() {
        let (f, n) = small_setup();
        let fast = DistanceMatrices::compute(&f, &n);
        let trig = DistanceMatrices::compute_reference_trig(&f, &n);
        for (a, b) in [
            (&fast.subfault_to_subfault, &trig.subfault_to_subfault),
            (&fast.station_to_subfault, &trig.station_to_subfault),
        ] {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert!(
                    (x - y).abs() <= 1e-6 * y.abs().max(1.0),
                    "hoisted {x} vs trig {y}"
                );
            }
        }
    }

    #[test]
    fn compatibility_check() {
        let (f, n) = small_setup();
        let d = DistanceMatrices::compute(&f, &n);
        assert!(d.check_compatible(&f, &n).is_ok());
        let other_fault = FaultModel::chilean_subduction(5, 4).unwrap();
        assert!(d.check_compatible(&other_fault, &n).is_err());
        let other_net = StationNetwork::chilean_input(ChileanInput::Full, 1);
        assert!(d.check_compatible(&f, &other_net).is_err());
    }

    #[test]
    fn nbytes_counts_both_matrices() {
        let (f, n) = small_setup();
        let d = DistanceMatrices::compute(&f, &n);
        assert_eq!(d.nbytes(), 8 * (24 * 24 + 2 * 24));
    }

    #[test]
    fn station_distances_exceed_depth() {
        // Every station is at the surface, every subfault at >=5 km depth,
        // so no station-subfault distance can be below 5 km.
        let (f, n) = small_setup();
        let d = DistanceMatrices::compute(&f, &n);
        for k in 0..d.n_stations() {
            for j in 0..d.n_subfaults() {
                assert!(d.station_to_subfault[(k, j)] >= 5.0);
            }
        }
    }
}
