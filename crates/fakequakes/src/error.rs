//! Error types for the `fakequakes` crate.

use std::fmt;

/// Errors produced by the FakeQuakes engine.
#[derive(Debug, Clone, PartialEq)]
pub enum FqError {
    /// A geometry constraint was violated (e.g. zero-size fault mesh).
    Geometry(String),
    /// A linear-algebra routine failed (e.g. non-positive-definite matrix).
    Linalg(String),
    /// Invalid configuration parameter.
    Config(String),
    /// An I/O or format error while reading/writing artifacts.
    Format(String),
    /// Requested magnitude is outside the supported range of the scaling laws.
    Magnitude(f64),
}

impl fmt::Display for FqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FqError::Geometry(m) => write!(f, "geometry error: {m}"),
            FqError::Linalg(m) => write!(f, "linear algebra error: {m}"),
            FqError::Config(m) => write!(f, "configuration error: {m}"),
            FqError::Format(m) => write!(f, "format error: {m}"),
            FqError::Magnitude(mw) => {
                write!(f, "magnitude Mw {mw:.2} outside supported range [6.0, 9.5]")
            }
        }
    }
}

impl std::error::Error for FqError {}

/// Convenience result alias used throughout the crate.
pub type FqResult<T> = Result<T, FqError>;

impl From<std::io::Error> for FqError {
    fn from(e: std::io::Error) -> Self {
        FqError::Format(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        assert!(FqError::Geometry("empty mesh".into())
            .to_string()
            .contains("empty mesh"));
        assert!(FqError::Magnitude(5.0).to_string().contains("5.00"));
        assert!(FqError::Linalg("not PD".into())
            .to_string()
            .contains("not PD"));
        assert!(FqError::Config("bad".into()).to_string().contains("bad"));
        assert!(FqError::Format("eof".into()).to_string().contains("eof"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof!");
        let fq: FqError = io.into();
        assert!(matches!(fq, FqError::Format(_)));
    }
}
