//! Geographic primitives: geodetic points, great-circle distances and a
//! local East-North-Up (ENU) projection.
//!
//! MudPy works in geographic coordinates (lon/lat/depth) and converts to
//! local Cartesian frames when evaluating Green's functions. We follow the
//! same pattern with a spherical-Earth approximation, which is accurate to
//! well under 1 % over the few-hundred-kilometre apertures of a subduction
//! zone rupture.

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A geodetic point: longitude/latitude in degrees, depth in km (positive down).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Longitude in degrees East.
    pub lon: f64,
    /// Latitude in degrees North.
    pub lat: f64,
    /// Depth below the surface in kilometres (positive downwards; stations use 0).
    pub depth_km: f64,
}

impl GeoPoint {
    /// Create a new geodetic point.
    pub fn new(lon: f64, lat: f64, depth_km: f64) -> Self {
        Self { lon, lat, depth_km }
    }

    /// Surface (epicentral) great-circle distance to `other`, in km,
    /// ignoring depth. Uses the haversine formula, which is numerically
    /// stable for small separations.
    pub fn surface_distance_km(&self, other: &GeoPoint) -> f64 {
        let (lat1, lat2) = (self.lat.to_radians(), other.lat.to_radians());
        let dlat = (other.lat - self.lat).to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().min(1.0).asin()
    }

    /// Full 3-D (hypocentral) distance to `other` in km: the surface
    /// separation combined with the depth difference in a flat-Earth sense.
    /// This is what MudPy's recyclable "distance matrices" store.
    pub fn distance_3d_km(&self, other: &GeoPoint) -> f64 {
        let s = self.surface_distance_km(other);
        let dz = self.depth_km - other.depth_km;
        (s * s + dz * dz).sqrt()
    }

    /// Precompute the unit Earth-centred direction vector (plus depth) for
    /// the pairwise-distance kernel in [`UnitEcef::distance_3d_km`].
    pub fn unit_ecef(&self) -> UnitEcef {
        let lat_r = self.lat.to_radians();
        let lon_r = self.lon.to_radians();
        let clat = lat_r.cos();
        UnitEcef {
            x: clat * lon_r.cos(),
            y: clat * lon_r.sin(),
            z: lat_r.sin(),
            depth_km: self.depth_km,
        }
    }
}

/// A geodetic point in precomputed form: unit Earth-centred direction
/// vector plus depth. Building one costs three trig calls; every pairwise
/// distance after that needs only a dot product, one `asin` and two square
/// roots, versus two `sin` and two `cos` per pair for raw haversine. The
/// distance-matrix builders precompute one `UnitEcef` per point and share
/// this kernel between the parallel path and its sequential oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitEcef {
    /// Unit-vector component through (lon=0, lat=0).
    pub x: f64,
    /// Unit-vector component through (lon=90°E, lat=0).
    pub y: f64,
    /// Unit-vector component through the north pole.
    pub z: f64,
    /// Depth below the surface in km (positive downwards).
    pub depth_km: f64,
}

impl UnitEcef {
    /// 3-D hypocentral distance in km. Uses the half-versine identity
    /// `sin²(θ/2) = (1 − cos θ)/2` with `cos θ` from the unit-vector dot
    /// product — mathematically the haversine central angle, but with all
    /// per-point trig hoisted out of the pair loop. Symmetric by
    /// construction (the dot product commutes term-by-term).
    #[inline]
    pub fn distance_3d_km(&self, other: &UnitEcef) -> f64 {
        let dot = self.x * other.x + self.y * other.y + self.z * other.z;
        let half_versine = (0.5 * (1.0 - dot)).max(0.0);
        let s = 2.0 * EARTH_RADIUS_KM * half_versine.sqrt().min(1.0).asin();
        let dz = self.depth_km - other.depth_km;
        (s * s + dz * dz).sqrt()
    }
}

/// A point in a local East-North-Up Cartesian frame (km). Up is negative
/// depth, so a point at 10 km depth has `u = -10.0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnuPoint {
    /// East offset from the frame origin, km.
    pub e: f64,
    /// North offset from the frame origin, km.
    pub n: f64,
    /// Up offset from the frame origin, km (negative below the surface).
    pub u: f64,
}

impl EnuPoint {
    /// Euclidean norm of the ENU vector, km.
    pub fn norm(&self) -> f64 {
        (self.e * self.e + self.n * self.n + self.u * self.u).sqrt()
    }

    /// Horizontal (epicentral) norm of the ENU vector, km.
    pub fn horizontal_norm(&self) -> f64 {
        (self.e * self.e + self.n * self.n).sqrt()
    }
}

/// A local tangent-plane projection centred on a reference geodetic point.
///
/// Longitude/latitude offsets are mapped to East/North kilometres with the
/// cosine-latitude correction; depth maps to negative Up. Suitable for
/// apertures of a few hundred km.
#[derive(Debug, Clone, Copy)]
pub struct LocalFrame {
    origin: GeoPoint,
    cos_lat: f64,
}

impl LocalFrame {
    /// Create a projection centred on `origin` (its depth is ignored; the
    /// frame surface sits at depth 0).
    pub fn new(origin: GeoPoint) -> Self {
        Self {
            origin,
            cos_lat: origin.lat.to_radians().cos(),
        }
    }

    /// The reference origin of this frame.
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Project a geodetic point into this frame.
    pub fn project(&self, p: &GeoPoint) -> EnuPoint {
        let deg_km = EARTH_RADIUS_KM * std::f64::consts::PI / 180.0;
        EnuPoint {
            e: (p.lon - self.origin.lon) * deg_km * self.cos_lat,
            n: (p.lat - self.origin.lat) * deg_km,
            u: -p.depth_km,
        }
    }

    /// Inverse projection: ENU coordinates back to a geodetic point.
    pub fn unproject(&self, p: &EnuPoint) -> GeoPoint {
        let deg_km = EARTH_RADIUS_KM * std::f64::consts::PI / 180.0;
        GeoPoint {
            lon: self.origin.lon + p.e / (deg_km * self.cos_lat),
            lat: self.origin.lat + p.n / deg_km,
            depth_km: -p.u,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn zero_distance_to_self() {
        let p = GeoPoint::new(-71.5, -30.0, 25.0);
        assert_eq!(p.surface_distance_km(&p), 0.0);
        assert_eq!(p.distance_3d_km(&p), 0.0);
    }

    #[test]
    fn one_degree_latitude_is_about_111km() {
        let a = GeoPoint::new(-71.0, -30.0, 0.0);
        let b = GeoPoint::new(-71.0, -31.0, 0.0);
        let d = a.surface_distance_km(&b);
        assert!(close(d, 111.19, 0.2), "got {d}");
    }

    #[test]
    fn longitude_distance_shrinks_with_latitude() {
        let eq_a = GeoPoint::new(0.0, 0.0, 0.0);
        let eq_b = GeoPoint::new(1.0, 0.0, 0.0);
        let hi_a = GeoPoint::new(0.0, 60.0, 0.0);
        let hi_b = GeoPoint::new(1.0, 60.0, 0.0);
        let d_eq = eq_a.surface_distance_km(&eq_b);
        let d_hi = hi_a.surface_distance_km(&hi_b);
        assert!(close(d_hi, d_eq * 0.5, 0.5), "eq={d_eq} hi={d_hi}");
    }

    #[test]
    fn depth_enters_3d_distance_pythagoras() {
        let a = GeoPoint::new(-71.0, -30.0, 0.0);
        let b = GeoPoint::new(-71.0, -30.0, 30.0);
        assert!(close(a.distance_3d_km(&b), 30.0, 1e-9));
        let c = GeoPoint::new(-71.0, -30.36, 40.0); // ~40km north, 40km deep
        let s = a.surface_distance_km(&c);
        assert!(close(a.distance_3d_km(&c), (s * s + 1600.0).sqrt(), 1e-9));
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(-70.2, -33.0, 12.0);
        let b = GeoPoint::new(-72.9, -19.5, 44.0);
        assert!(close(a.distance_3d_km(&b), b.distance_3d_km(&a), 1e-9));
    }

    #[test]
    fn project_unproject_roundtrip() {
        let frame = LocalFrame::new(GeoPoint::new(-71.5, -30.0, 0.0));
        let p = GeoPoint::new(-70.8, -29.2, 35.0);
        let enu = frame.project(&p);
        let back = frame.unproject(&enu);
        assert!(close(back.lon, p.lon, 1e-9));
        assert!(close(back.lat, p.lat, 1e-9));
        assert!(close(back.depth_km, p.depth_km, 1e-9));
    }

    #[test]
    fn projection_matches_haversine_for_small_offsets() {
        let origin = GeoPoint::new(-71.5, -30.0, 0.0);
        let frame = LocalFrame::new(origin);
        let p = GeoPoint::new(-71.3, -29.9, 0.0);
        let enu = frame.project(&p);
        let hav = origin.surface_distance_km(&p);
        assert!(
            (enu.horizontal_norm() - hav).abs() / hav < 0.01,
            "enu={} hav={hav}",
            enu.horizontal_norm()
        );
    }

    #[test]
    fn unit_ecef_distance_matches_haversine_closely() {
        // The chord/dot formulation is the same mathematical quantity as
        // haversine; floating-point round-off is the only difference.
        let pts = [
            GeoPoint::new(-71.5, -30.0, 25.0),
            GeoPoint::new(-70.2, -33.0, 12.0),
            GeoPoint::new(-72.9, -19.5, 44.0),
            GeoPoint::new(-71.5, -30.0, 0.0),
        ];
        for a in &pts {
            for b in &pts {
                let hav = a.distance_3d_km(b);
                let ecef = a.unit_ecef().distance_3d_km(&b.unit_ecef());
                assert!(
                    (hav - ecef).abs() <= 1e-6 * hav.max(1.0),
                    "hav={hav} ecef={ecef}"
                );
            }
        }
    }

    #[test]
    fn unit_ecef_distance_is_bitwise_symmetric_and_zero_on_self() {
        let a = GeoPoint::new(-70.2, -33.0, 12.0).unit_ecef();
        let b = GeoPoint::new(-72.9, -19.5, 44.0).unit_ecef();
        assert_eq!(
            a.distance_3d_km(&b).to_bits(),
            b.distance_3d_km(&a).to_bits()
        );
        assert_eq!(a.distance_3d_km(&a), 0.0);
        // Coincident surface positions at different depths: the dot
        // product can land a hair above 1.0; the max(0.0) clamp keeps the
        // surface leg at exactly zero instead of NaN.
        let top = GeoPoint::new(-71.5, -30.0, 0.0).unit_ecef();
        let deep = GeoPoint::new(-71.5, -30.0, 30.0).unit_ecef();
        let d = top.distance_3d_km(&deep);
        assert!((d - 30.0).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn enu_norms() {
        let p = EnuPoint {
            e: 3.0,
            n: 4.0,
            u: -12.0,
        };
        assert!(close(p.horizontal_norm(), 5.0, 1e-12));
        assert!(close(p.norm(), 13.0, 1e-12));
    }
}
