//! Fault geometry: subfault meshes on a Slab2-like subduction interface and
//! earthquake scaling laws.
//!
//! The paper's experiments run on the Chilean subduction zone using
//! geometry from the USGS Slab2 project (Hayes et al. 2018). Slab2 data is
//! not redistributable here, so [`FaultModel::chilean_subduction`] builds a
//! *procedural* Slab2-like interface: a trench trace following the Chilean
//! coast, dip increasing with down-dip distance (shallow ~10° near the
//! trench steepening to ~30° at depth), which reproduces the geometric
//! properties the workflow actually exercises (mesh size, depth range,
//! inter-subfault distances).

use crate::error::{FqError, FqResult};
use crate::geo::GeoPoint;

/// One rectangular subfault patch on the fault interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Subfault {
    /// Index along strike (0 = southern end).
    pub along_strike: usize,
    /// Index down dip (0 = at the trench).
    pub down_dip: usize,
    /// Patch centre.
    pub center: GeoPoint,
    /// Local strike in degrees clockwise from North.
    pub strike_deg: f64,
    /// Local dip in degrees from horizontal.
    pub dip_deg: f64,
    /// Patch length along strike, km.
    pub length_km: f64,
    /// Patch width down dip, km.
    pub width_km: f64,
}

impl Subfault {
    /// Patch area in km².
    pub fn area_km2(&self) -> f64 {
        self.length_km * self.width_km
    }
}

/// A gridded fault model: `n_strike × n_dip` subfaults on a curved
/// subduction interface.
#[derive(Debug, Clone)]
pub struct FaultModel {
    name: String,
    n_strike: usize,
    n_dip: usize,
    subfaults: Vec<Subfault>,
    /// Shear modulus (rigidity) in Pa, used for moment computations.
    pub rigidity_pa: f64,
}

impl FaultModel {
    /// Build a procedural Slab2-like model of the Chilean subduction zone.
    ///
    /// * `n_strike` patches span ~18°S to ~38°S along a coast-parallel
    ///   trench (~2,200 km).
    /// * `n_dip` patches span the seismogenic interface from ~5 km to
    ///   ~55 km depth, with dip steepening down-dip.
    pub fn chilean_subduction(n_strike: usize, n_dip: usize) -> FqResult<Self> {
        if n_strike == 0 || n_dip == 0 {
            return Err(FqError::Geometry(
                "fault mesh must have at least one patch in each direction".into(),
            ));
        }
        let lat_south = -38.0;
        let lat_north = -18.0;
        let total_length_km = GeoPoint::new(-73.0, lat_south, 0.0)
            .surface_distance_km(&GeoPoint::new(-71.0, lat_north, 0.0));
        let patch_len = total_length_km / n_strike as f64;

        // Down-dip: seismogenic zone ~150 km wide on the interface.
        let total_width_km = 150.0;
        let patch_wid = total_width_km / n_dip as f64;

        let mut subfaults = Vec::with_capacity(n_strike * n_dip);
        for is in 0..n_strike {
            let f = (is as f64 + 0.5) / n_strike as f64;
            let lat = lat_south + f * (lat_north - lat_south);
            // Trench longitude follows the Chilean coastline: bows westward
            // in the centre of the margin.
            let trench_lon = -72.0 - 1.5 * (std::f64::consts::PI * f).sin();
            // Local strike from the lat/lon gradient of the trench trace;
            // approximately coast-parallel (~N10–20E в Chile ≈ strike ~5–20°).
            let strike = 10.0 + 8.0 * (2.0 * std::f64::consts::PI * f).cos();
            for id in 0..n_dip {
                let s_downdip = (id as f64 + 0.5) * patch_wid; // km along the interface
                                                               // Dip steepens with down-dip distance: 10° at the trench up
                                                               // to ~30° at the deep end.
                let dip = 10.0 + 20.0 * (s_downdip / total_width_km).min(1.0);
                // Integrate depth: approximate with average dip to this point.
                let avg_dip = 10.0 + 10.0 * (s_downdip / total_width_km).min(1.0);
                let depth = 5.0 + s_downdip * avg_dip.to_radians().sin();
                let horiz = s_downdip * avg_dip.to_radians().cos();
                // Down-dip direction points east (landward) for a
                // west-dipping trench; offset longitude accordingly.
                let deg_per_km_lon = 1.0 / (111.19 * lat.to_radians().cos().abs().max(1e-6));
                let lon = trench_lon + horiz * deg_per_km_lon;
                subfaults.push(Subfault {
                    along_strike: is,
                    down_dip: id,
                    center: GeoPoint::new(lon, lat, depth),
                    strike_deg: strike,
                    dip_deg: dip,
                    length_km: patch_len,
                    width_km: patch_wid,
                });
            }
        }
        Ok(Self {
            name: "chile_slab2like".to_string(),
            n_strike,
            n_dip,
            subfaults,
            rigidity_pa: 3.0e10,
        })
    }

    /// Build a procedural Slab2-like model of the Cascadia subduction zone
    /// (the paper's §7 "regions beyond Chile"; Melgar et al. 2016 apply
    /// FakeQuakes to exactly this margin).
    ///
    /// * `n_strike` patches span ~40°N to ~49°N (~1,000 km of margin);
    /// * `n_dip` patches span a shallower, flatter interface than Chile
    ///   (~5–30 km depth over ~120 km), reflecting Cascadia's young,
    ///   buoyant slab.
    pub fn cascadia_subduction(n_strike: usize, n_dip: usize) -> FqResult<Self> {
        if n_strike == 0 || n_dip == 0 {
            return Err(FqError::Geometry(
                "fault mesh must have at least one patch in each direction".into(),
            ));
        }
        let lat_south = 40.0;
        let lat_north = 49.0;
        let total_length_km = GeoPoint::new(-125.0, lat_south, 0.0)
            .surface_distance_km(&GeoPoint::new(-126.5, lat_north, 0.0));
        let patch_len = total_length_km / n_strike as f64;
        let total_width_km = 120.0;
        let patch_wid = total_width_km / n_dip as f64;

        let mut subfaults = Vec::with_capacity(n_strike * n_dip);
        for is in 0..n_strike {
            let f = (is as f64 + 0.5) / n_strike as f64;
            let lat = lat_south + f * (lat_north - lat_south);
            // Deformation front bows gently westward off Washington.
            let trench_lon = -125.0 - 1.5 * f - 0.6 * (std::f64::consts::PI * f).sin();
            // Margin-parallel strike ~N-S to NNW.
            let strike = 350.0 + 12.0 * f;
            for id in 0..n_dip {
                let s_downdip = (id as f64 + 0.5) * patch_wid;
                // Cascadia dips shallowly: ~6° near the trench to ~18° deep.
                let dip = 6.0 + 12.0 * (s_downdip / total_width_km).min(1.0);
                let avg_dip = 6.0 + 6.0 * (s_downdip / total_width_km).min(1.0);
                let depth = 5.0 + s_downdip * avg_dip.to_radians().sin();
                let horiz = s_downdip * avg_dip.to_radians().cos();
                let deg_per_km_lon = 1.0 / (111.19 * lat.to_radians().cos().abs().max(1e-6));
                // The slab dips landward (eastward) under North America.
                let lon = trench_lon + horiz * deg_per_km_lon;
                subfaults.push(Subfault {
                    along_strike: is,
                    down_dip: id,
                    center: GeoPoint::new(lon, lat, depth),
                    strike_deg: strike,
                    dip_deg: dip,
                    length_km: patch_len,
                    width_km: patch_wid,
                });
            }
        }
        Ok(Self {
            name: "cascadia_slab2like".to_string(),
            n_strike,
            n_dip,
            subfaults,
            rigidity_pa: 3.0e10,
        })
    }

    /// Model name (used to label artifacts).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of patches along strike.
    pub fn n_strike(&self) -> usize {
        self.n_strike
    }

    /// Number of patches down dip.
    pub fn n_dip(&self) -> usize {
        self.n_dip
    }

    /// Total number of subfaults.
    pub fn len(&self) -> usize {
        self.subfaults.len()
    }

    /// True when the mesh has no subfaults (cannot happen for constructed models).
    pub fn is_empty(&self) -> bool {
        self.subfaults.is_empty()
    }

    /// All subfaults in `strike-major` order (`index = is * n_dip + id`).
    pub fn subfaults(&self) -> &[Subfault] {
        &self.subfaults
    }

    /// Subfault by linear index.
    pub fn subfault(&self, idx: usize) -> &Subfault {
        &self.subfaults[idx]
    }

    /// Linear index of the patch at `(along_strike, down_dip)`.
    pub fn index_of(&self, along_strike: usize, down_dip: usize) -> usize {
        along_strike * self.n_dip + down_dip
    }

    /// Total fault area in km².
    pub fn total_area_km2(&self) -> f64 {
        self.subfaults.iter().map(|s| s.area_km2()).sum()
    }
}

/// Earthquake scaling laws relating moment magnitude to rupture dimensions,
/// after the interface-event regressions used by FakeQuakes (Blaser et al.
/// 2010 style: log10 L = -2.37 + 0.57 Mw, log10 W = -1.86 + 0.46 Mw).
#[derive(Debug, Clone, Copy)]
pub struct ScalingLaw {
    /// Intercept/slope of log10(length-km) vs Mw.
    pub length_a: f64,
    /// Slope of log10(length-km) vs Mw.
    pub length_b: f64,
    /// Intercept of log10(width-km) vs Mw.
    pub width_a: f64,
    /// Slope of log10(width-km) vs Mw.
    pub width_b: f64,
}

impl Default for ScalingLaw {
    fn default() -> Self {
        Self {
            length_a: -2.37,
            length_b: 0.57,
            width_a: -1.86,
            width_b: 0.46,
        }
    }
}

impl ScalingLaw {
    /// Expected rupture length (km) for a given moment magnitude.
    pub fn length_km(&self, mw: f64) -> f64 {
        10f64.powf(self.length_a + self.length_b * mw)
    }

    /// Expected rupture width (km) for a given moment magnitude.
    pub fn width_km(&self, mw: f64) -> f64 {
        10f64.powf(self.width_a + self.width_b * mw)
    }

    /// Expected rupture area (km²).
    pub fn area_km2(&self, mw: f64) -> f64 {
        self.length_km(mw) * self.width_km(mw)
    }
}

/// Seismic moment (N·m) from moment magnitude (Hanks & Kanamori 1979).
pub fn moment_from_mw(mw: f64) -> f64 {
    10f64.powf(1.5 * mw + 9.1)
}

/// Moment magnitude from seismic moment (N·m).
pub fn mw_from_moment(m0: f64) -> f64 {
    (m0.log10() - 9.1) / 1.5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mesh_rejected() {
        assert!(FaultModel::chilean_subduction(0, 10).is_err());
        assert!(FaultModel::chilean_subduction(10, 0).is_err());
    }

    #[test]
    fn mesh_has_expected_count_and_order() {
        let m = FaultModel::chilean_subduction(20, 8).unwrap();
        assert_eq!(m.len(), 160);
        assert!(!m.is_empty());
        for (k, sf) in m.subfaults().iter().enumerate() {
            assert_eq!(m.index_of(sf.along_strike, sf.down_dip), k);
        }
    }

    #[test]
    fn depth_increases_down_dip() {
        let m = FaultModel::chilean_subduction(10, 12).unwrap();
        for is in 0..10 {
            for id in 1..12 {
                let shallower = m.subfault(m.index_of(is, id - 1));
                let deeper = m.subfault(m.index_of(is, id));
                assert!(
                    deeper.center.depth_km > shallower.center.depth_km,
                    "dip column {is} not monotone at {id}"
                );
            }
        }
    }

    #[test]
    fn depths_within_seismogenic_range() {
        let m = FaultModel::chilean_subduction(30, 15).unwrap();
        for sf in m.subfaults() {
            assert!(
                sf.center.depth_km >= 5.0 && sf.center.depth_km <= 60.0,
                "depth {} out of range",
                sf.center.depth_km
            );
            assert!(sf.dip_deg >= 10.0 && sf.dip_deg <= 30.0 + 1e-9);
        }
    }

    #[test]
    fn latitudes_span_chile() {
        let m = FaultModel::chilean_subduction(40, 10).unwrap();
        let lats: Vec<f64> = m.subfaults().iter().map(|s| s.center.lat).collect();
        let min = lats.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = lats.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min > -38.0 && min < -37.0);
        assert!(max < -18.0 && max > -19.0);
    }

    #[test]
    fn total_area_matches_patch_sum() {
        let m = FaultModel::chilean_subduction(8, 4).unwrap();
        let per = m.subfault(0).area_km2();
        assert!((m.total_area_km2() - per * 32.0).abs() < 1e-6);
    }

    #[test]
    fn cascadia_mesh_properties() {
        let m = FaultModel::cascadia_subduction(20, 8).unwrap();
        assert_eq!(m.len(), 160);
        assert_eq!(m.name(), "cascadia_slab2like");
        for sf in m.subfaults() {
            assert!(sf.center.lat >= 40.0 && sf.center.lat <= 49.0);
            assert!(
                sf.center.lon >= -128.5 && sf.center.lon <= -121.0,
                "lon {}",
                sf.center.lon
            );
            // Cascadia dips shallower than Chile everywhere.
            assert!(sf.dip_deg >= 6.0 && sf.dip_deg <= 18.0 + 1e-9);
            assert!(sf.center.depth_km >= 5.0 && sf.center.depth_km <= 35.0);
        }
        // Depth still increases down dip.
        for is in 0..20 {
            for id in 1..8 {
                assert!(
                    m.subfault(m.index_of(is, id)).center.depth_km
                        > m.subfault(m.index_of(is, id - 1)).center.depth_km
                );
            }
        }
        assert!(FaultModel::cascadia_subduction(0, 1).is_err());
    }

    #[test]
    fn cascadia_differs_from_chile() {
        let casc = FaultModel::cascadia_subduction(10, 5).unwrap();
        let chile = FaultModel::chilean_subduction(10, 5).unwrap();
        // Different hemispheres, shallower dips.
        assert!(casc.subfault(0).center.lat > 0.0);
        assert!(chile.subfault(0).center.lat < 0.0);
        let mean_dip =
            |m: &FaultModel| m.subfaults().iter().map(|s| s.dip_deg).sum::<f64>() / m.len() as f64;
        assert!(mean_dip(&casc) < mean_dip(&chile));
    }

    #[test]
    fn scaling_law_monotone_in_magnitude() {
        let s = ScalingLaw::default();
        assert!(s.length_km(8.0) > s.length_km(7.0));
        assert!(s.width_km(8.0) > s.width_km(7.0));
        assert!(s.area_km2(8.0) > s.area_km2(7.0));
    }

    #[test]
    fn scaling_law_sane_magnitude8_dimensions() {
        let s = ScalingLaw::default();
        let l = s.length_km(8.0);
        let w = s.width_km(8.0);
        // Mw 8 interface events rupture on the order of 150–250 km length.
        assert!(l > 100.0 && l < 350.0, "length {l}");
        assert!(w > 40.0 && w < 150.0, "width {w}");
    }

    #[test]
    fn moment_magnitude_roundtrip() {
        for mw in [6.0, 7.5, 8.1, 9.0] {
            let m0 = moment_from_mw(mw);
            assert!((mw_from_moment(m0) - mw).abs() < 1e-12);
        }
        // Mw 8.0 is ~1.26e21 N·m
        assert!((moment_from_mw(8.0) / 1.26e21 - 1.0).abs() < 0.01);
    }
}
