//! Green's functions — the B Phase's science payload.
//!
//! MudPy computes full elastic half-space Green's functions per
//! station–subfault pair with fk-integration, producing the large `.mseed`
//! matrices the paper says take "multiple hours" for the 121-station input.
//! Full fk synthesis is out of scope; two static half-space responses are
//! provided instead ([`GfMethod`]):
//!
//! * a fast *point double-couple* far-field response — amplitude
//!   ∝ `area/(4π R²)` per unit slip with the strike/dip/rake radiation
//!   pattern (Aki & Richards ch. 4) and ×2 free-surface amplification;
//! * the full *Okada (1985) rectangular dislocation* ([`crate::okada`]),
//!   the analytic solution MudPy itself uses for statics.
//!
//! The substitution preserves everything the workflow measures: GF
//! computation cost scales as `n_station × n_subfault`, produces
//! per-station matrices of realistic size, and yields waveforms whose
//! static offsets decay correctly with distance.

use crate::error::{FqError, FqResult};
use crate::geo::LocalFrame;
use crate::geometry::FaultModel;
use crate::stations::StationNetwork;

/// Static displacement response (metres per metre of slip) of one station
/// to unit slip on one subfault, in East/North/Up components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StaticResponse {
    /// East component, m per m slip.
    pub e: f64,
    /// North component, m per m slip.
    pub n: f64,
    /// Up component, m per m slip.
    pub u: f64,
}

impl StaticResponse {
    /// Euclidean magnitude of the 3-component response.
    pub fn magnitude(&self) -> f64 {
        (self.e * self.e + self.n * self.n + self.u * self.u).sqrt()
    }
}

/// A station's Green's function matrix: one [`StaticResponse`] per
/// subfault. The collection over all stations is the `.mseed` artifact of
/// the B Phase.
#[derive(Debug, Clone)]
pub struct StationGf {
    /// Station code this matrix belongs to.
    pub station_code: String,
    /// Per-subfault responses, indexed like `FaultModel::subfaults()`.
    pub responses: Vec<StaticResponse>,
}

/// The full Green's function library for a (fault, network) pair.
#[derive(Debug, Clone)]
pub struct GfLibrary {
    fault_name: String,
    network_name: String,
    stations: Vec<StationGf>,
    n_subfaults: usize,
}

/// Fixed rake (degrees) used for interface thrust events; FakeQuakes'
/// Chilean setup uses pure thrust (rake 90°).
pub const THRUST_RAKE_DEG: f64 = 90.0;

/// How static responses are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GfMethod {
    /// Far-field point double-couple (fast; the default).
    #[default]
    PointSource,
    /// Okada (1985) rectangular dislocation — the analytic half-space
    /// solution MudPy uses for statics. ~3× slower per pair.
    OkadaRectangular,
}

impl GfLibrary {
    /// Compute the library for every station in `network` over every
    /// subfault in `fault` with the default (point-source) method. Cost
    /// is O(n_station × n_subfault) — this is what makes the 121-station
    /// B Phase expensive and the 2-station one cheap.
    pub fn compute(fault: &FaultModel, network: &StationNetwork) -> FqResult<Self> {
        Self::compute_with_method(fault, network, GfMethod::PointSource)
    }

    /// Compute the library with an explicit Green's-function method.
    ///
    /// Stations fan out across threads — each station's response vector
    /// is an independent pure function of the geometry, so the result is
    /// identical to the sequential loop.
    pub fn compute_with_method(
        fault: &FaultModel,
        network: &StationNetwork,
        method: GfMethod,
    ) -> FqResult<Self> {
        if fault.is_empty() {
            return Err(FqError::Geometry(
                "cannot compute GFs for empty fault".into(),
            ));
        }
        let all = network.stations();
        // Everything that depends only on the subfault — local frame,
        // moment tensor, Okada corner geometry — is computed once here and
        // shared across all stations, instead of once per (station,
        // subfault) pair. The per-pair kernels run the same expressions on
        // the same inputs, so responses are bit-identical to the unhoisted
        // loop.
        let geoms: Vec<PairGeom> = fault
            .subfaults()
            .iter()
            .map(|sf| match method {
                GfMethod::PointSource => PairGeom::Point(PointSourceGeom::new(
                    sf.strike_deg,
                    sf.dip_deg,
                    THRUST_RAKE_DEG,
                    sf.area_km2(),
                    &sf.center,
                )),
                GfMethod::OkadaRectangular => PairGeom::Okada(OkadaGeom::new(sf)),
            })
            .collect();
        let stations = crate::par::map_indexed(all.len(), 1, |si| {
            let st = &all[si];
            let responses: Vec<StaticResponse> =
                geoms.iter().map(|g| g.eval(&st.location)).collect();
            StationGf {
                station_code: st.code.clone(),
                responses,
            }
        });
        Ok(Self {
            fault_name: fault.name().to_string(),
            network_name: network.name().to_string(),
            stations,
            n_subfaults: fault.len(),
        })
    }

    /// The original per-pair loop: sequential, rebuilding the per-subfault
    /// geometry (frame, moment tensor, Okada corner) for every
    /// (station, subfault) pair through the public kernels. Retained as
    /// the `bench_snapshot` baseline and the bitwise oracle for the
    /// hoisted [`GfLibrary::compute_with_method`] path.
    pub fn compute_reference(
        fault: &FaultModel,
        network: &StationNetwork,
        method: GfMethod,
    ) -> FqResult<Self> {
        if fault.is_empty() {
            return Err(FqError::Geometry(
                "cannot compute GFs for empty fault".into(),
            ));
        }
        let stations = network
            .stations()
            .iter()
            .map(|st| {
                let responses: Vec<StaticResponse> = fault
                    .subfaults()
                    .iter()
                    .map(|sf| match method {
                        GfMethod::PointSource => point_source_static(
                            fault,
                            sf.strike_deg,
                            sf.dip_deg,
                            THRUST_RAKE_DEG,
                            sf.area_km2(),
                            &st.location,
                            &sf.center,
                        ),
                        GfMethod::OkadaRectangular => okada_static(sf, &st.location),
                    })
                    .collect();
                StationGf {
                    station_code: st.code.clone(),
                    responses,
                }
            })
            .collect();
        Ok(Self {
            fault_name: fault.name().to_string(),
            network_name: network.name().to_string(),
            stations,
            n_subfaults: fault.len(),
        })
    }

    /// Reassemble from deserialised parts (used by [`crate::artifacts`]).
    #[doc(hidden)]
    pub fn from_parts(
        fault_name: String,
        network_name: String,
        stations: Vec<StationGf>,
        n_subfaults: usize,
    ) -> Self {
        Self {
            fault_name,
            network_name,
            stations,
            n_subfaults,
        }
    }

    /// Fault model name this library was computed for.
    pub fn fault_name(&self) -> &str {
        &self.fault_name
    }

    /// Network name this library was computed for.
    pub fn network_name(&self) -> &str {
        &self.network_name
    }

    /// Number of stations covered.
    pub fn n_stations(&self) -> usize {
        self.stations.len()
    }

    /// Number of subfaults covered.
    pub fn n_subfaults(&self) -> usize {
        self.n_subfaults
    }

    /// Per-station GF matrices.
    pub fn stations(&self) -> &[StationGf] {
        &self.stations
    }

    /// Look up one station's matrix by code.
    pub fn station(&self, code: &str) -> Option<&StationGf> {
        self.stations.iter().find(|s| s.station_code == code)
    }

    /// Approximate serialised size in bytes (3 f64 per subfault per
    /// station) — what the FDW reports when staging `.mseed` files through
    /// the Stash cache.
    pub fn nbytes(&self) -> usize {
        self.stations.len() * self.n_subfaults * 3 * 8
    }
}

/// Per-subfault precomputed state for one of the two static kernels; the
/// station loop in [`GfLibrary::compute_with_method`] evaluates these.
enum PairGeom {
    Point(PointSourceGeom),
    Okada(OkadaGeom),
}

impl PairGeom {
    fn eval(&self, station: &crate::geo::GeoPoint) -> StaticResponse {
        match self {
            PairGeom::Point(g) => g.eval(station),
            PairGeom::Okada(g) => g.eval(station),
        }
    }
}

/// Station-independent part of [`point_source_static`]: local frame,
/// source depth, potency and the double-couple moment tensor.
struct PointSourceGeom {
    frame: LocalFrame,
    depth_m: f64,
    potency: f64,
    m: (f64, f64, f64, f64, f64, f64),
}

impl PointSourceGeom {
    fn new(
        strike_deg: f64,
        dip_deg: f64,
        rake_deg: f64,
        area_km2: f64,
        source: &crate::geo::GeoPoint,
    ) -> Self {
        Self {
            frame: LocalFrame::new(*source),
            depth_m: source.depth_km * 1e3,
            potency: area_km2 * 1e6, // m² per metre of slip
            m: moment_tensor_enu(strike_deg, dip_deg, rake_deg),
        }
    }

    fn eval(&self, station: &crate::geo::GeoPoint) -> StaticResponse {
        let enu = self.frame.project(station);
        // Source is below the frame origin at the subfault depth.
        let dx = enu.e * 1e3; // metres East
        let dy = enu.n * 1e3; // metres North
        let dz = self.depth_m; // station is above source by this much
        let r = (dx * dx + dy * dy + dz * dz).sqrt().max(1.0);

        // Unit direction source → station.
        let gx = dx / r;
        let gy = dy / r;
        let gz = dz / r; // points up

        let (mee, mnn, muu, men, meu, mnu) = self.m;

        // Far-field static term: u_i ∝ M_ij γ_j γ_i γ — we use the standard
        // radial far-field pattern u_i = A · γ_i (γ·M·γ) plus a transverse
        // term, scaled by potency/(4π R²).
        let gmg = gx * (mee * gx + men * gy + meu * gz)
            + gy * (men * gx + mnn * gy + mnu * gz)
            + gz * (meu * gx + mnu * gy + muu * gz);
        let amp = self.potency / (4.0 * std::f64::consts::PI * r * r);
        // Free-surface amplification.
        let fs = 2.0;
        // Radial (P-like static) + transverse (S-like static) parts.
        let radial = 1.5 * gmg;
        let te = mee * gx + men * gy + meu * gz - gmg * gx;
        let tn = men * gx + mnn * gy + mnu * gz - gmg * gy;
        let tu = meu * gx + mnu * gy + muu * gz - gmg * gz;
        StaticResponse {
            e: fs * amp * (radial * gx + 0.5 * te),
            n: fs * amp * (radial * gy + 0.5 * tn),
            u: fs * amp * (radial * gz + 0.5 * tu),
        }
    }
}

/// Static displacement at `station` from unit slip on a point double-couple
/// at `source` with the given mechanism, in a homogeneous half-space.
pub fn point_source_static(
    fault: &FaultModel,
    strike_deg: f64,
    dip_deg: f64,
    rake_deg: f64,
    area_km2: f64,
    station: &crate::geo::GeoPoint,
    source: &crate::geo::GeoPoint,
) -> StaticResponse {
    let _ = fault; // rigidity cancels for displacement per unit slip
    PointSourceGeom::new(strike_deg, dip_deg, rake_deg, area_km2, source).eval(station)
}

/// Station-independent part of [`okada_static`]: strike/dip unit vectors,
/// the up-dip Okada corner and the local frame.
struct OkadaGeom {
    frame: LocalFrame,
    strike_e: f64,
    strike_n: f64,
    dipdir_e: f64,
    dipdir_n: f64,
    corner_e: f64,
    corner_n: f64,
    edge_depth: f64,
    length_km: f64,
    width_km: f64,
    strike_deg: f64,
    dip_deg: f64,
}

impl OkadaGeom {
    fn new(sf: &crate::geometry::Subfault) -> Self {
        let dip = sf.dip_deg.to_radians();
        // Upper edge of the rectangle: the subfault centre shifted half a
        // width up-dip. Okada coordinates originate at the up-dip corner
        // with x along strike.
        let edge_depth = (sf.center.depth_km - (sf.width_km / 2.0) * dip.sin()).max(0.05);
        let strike = sf.strike_deg.to_radians();
        // Unit vectors (E, N): along strike and horizontal down-dip
        // (hanging-wall side = strike + 90°).
        let strike_e = strike.sin();
        let strike_n = strike.cos();
        let dipdir_e = (strike + std::f64::consts::FRAC_PI_2).sin();
        let dipdir_n = (strike + std::f64::consts::FRAC_PI_2).cos();
        // Horizontal offset of the upper-edge midpoint from the centre:
        // half a width up-dip (opposite the dip direction).
        let updip = (sf.width_km / 2.0) * dip.cos();
        let edge_mid_e = -updip * dipdir_e;
        let edge_mid_n = -updip * dipdir_n;
        Self {
            frame: crate::geo::LocalFrame::new(sf.center),
            strike_e,
            strike_n,
            dipdir_e,
            dipdir_n,
            corner_e: edge_mid_e - (sf.length_km / 2.0) * strike_e,
            corner_n: edge_mid_n - (sf.length_km / 2.0) * strike_n,
            edge_depth,
            length_km: sf.length_km,
            width_km: sf.width_km,
            strike_deg: sf.strike_deg,
            dip_deg: sf.dip_deg,
        }
    }

    fn eval(&self, station: &crate::geo::GeoPoint) -> StaticResponse {
        use crate::okada::{rectangular_dislocation, to_enu, Dislocation, POISSON_ALPHA};
        let enu = self.frame.project(station);
        // Station offset from the Okada origin (up-dip corner at x = 0).
        let rel_e = enu.e - self.corner_e;
        let rel_n = enu.n - self.corner_n;
        let x = rel_e * self.strike_e + rel_n * self.strike_n;
        let y = rel_e * self.dipdir_e + rel_n * self.dipdir_n;

        let u = rectangular_dislocation(
            x,
            y,
            self.edge_depth,
            self.length_km,
            self.width_km,
            self.dip_deg,
            &Dislocation {
                dip_slip: 1.0,
                ..Default::default()
            },
            POISSON_ALPHA,
        );
        let (e, n, z) = to_enu(self.strike_deg, &u);
        StaticResponse { e, n, u: z }
    }
}

/// Okada rectangular-dislocation static response of `station` to unit
/// thrust slip on `sf`, in East/North/Up metres per metre of slip.
pub fn okada_static(
    sf: &crate::geometry::Subfault,
    station: &crate::geo::GeoPoint,
) -> StaticResponse {
    OkadaGeom::new(sf).eval(station)
}

/// Unit double-couple moment tensor components in an East-North-Up basis.
/// Returns `(Mee, Mnn, Muu, Men, Meu, Mnu)`.
fn moment_tensor_enu(
    strike_deg: f64,
    dip_deg: f64,
    rake_deg: f64,
) -> (f64, f64, f64, f64, f64, f64) {
    let phi = strike_deg.to_radians();
    let delta = dip_deg.to_radians();
    let lam = rake_deg.to_radians();
    // Aki & Richards (box 4.4) in North-East-Down:
    let mnn = -((delta.sin()) * (lam.cos()) * (2.0 * phi).sin()
        + (2.0 * delta).sin() * (lam.sin()) * (phi.sin()).powi(2));
    let mee = (delta.sin()) * (lam.cos()) * (2.0 * phi).sin()
        - (2.0 * delta).sin() * (lam.sin()) * (phi.cos()).powi(2);
    let mdd = -(mnn + mee); // trace-free
    let mne = (delta.sin()) * (lam.cos()) * (2.0 * phi).cos()
        + 0.5 * (2.0 * delta).sin() * (lam.sin()) * (2.0 * phi).sin();
    let mnd = -((delta.cos()) * (lam.cos()) * (phi.cos())
        + (2.0 * delta).cos() * (lam.sin()) * (phi.sin()));
    let med = -((delta.cos()) * (lam.cos()) * (phi.sin())
        - (2.0 * delta).cos() * (lam.sin()) * (phi.cos()));
    // NED -> ENU: E=e, N=n, U=-d.
    let muu = mdd;
    let men = mne;
    let meu = -med;
    let mnu = -mnd;
    (mee, mnn, muu, men, meu, mnu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;
    use crate::stations::ChileanInput;

    fn fixture() -> (FaultModel, StationNetwork) {
        (
            FaultModel::chilean_subduction(8, 4).unwrap(),
            StationNetwork::chilean_input(ChileanInput::Small, 1),
        )
    }

    #[test]
    fn library_shape_matches_inputs() {
        let (f, n) = fixture();
        let g = GfLibrary::compute(&f, &n).unwrap();
        assert_eq!(g.n_stations(), 2);
        assert_eq!(g.n_subfaults(), 32);
        for s in g.stations() {
            assert_eq!(s.responses.len(), 32);
        }
        assert_eq!(g.nbytes(), 2 * 32 * 24);
    }

    #[test]
    fn station_lookup() {
        let (f, n) = fixture();
        let g = GfLibrary::compute(&f, &n).unwrap();
        assert!(g.station("CH000").is_some());
        assert!(g.station("NOPE").is_none());
    }

    #[test]
    fn responses_decay_with_distance() {
        let f = FaultModel::chilean_subduction(8, 4).unwrap();
        let sf = f.subfault(f.index_of(4, 1));
        let near = GeoPoint::new(sf.center.lon + 0.3, sf.center.lat, 0.0);
        let far = GeoPoint::new(sf.center.lon + 3.0, sf.center.lat, 0.0);
        let rn = point_source_static(
            &f,
            sf.strike_deg,
            sf.dip_deg,
            THRUST_RAKE_DEG,
            sf.area_km2(),
            &near,
            &sf.center,
        );
        let rf = point_source_static(
            &f,
            sf.strike_deg,
            sf.dip_deg,
            THRUST_RAKE_DEG,
            sf.area_km2(),
            &far,
            &sf.center,
        );
        assert!(
            rn.magnitude() > rf.magnitude() * 5.0,
            "near {} vs far {}",
            rn.magnitude(),
            rf.magnitude()
        );
    }

    #[test]
    fn response_scales_with_area() {
        let f = FaultModel::chilean_subduction(8, 4).unwrap();
        let sf = f.subfault(0);
        let st = GeoPoint::new(sf.center.lon + 0.5, sf.center.lat, 0.0);
        let r1 = point_source_static(&f, sf.strike_deg, sf.dip_deg, 90.0, 100.0, &st, &sf.center);
        let r2 = point_source_static(&f, sf.strike_deg, sf.dip_deg, 90.0, 200.0, &st, &sf.center);
        assert!((r2.magnitude() / r1.magnitude() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn moment_tensor_is_trace_free_and_unit_scale() {
        for (s, d, r) in [(0.0, 30.0, 90.0), (10.0, 18.0, 90.0), (45.0, 60.0, 0.0)] {
            let (mee, mnn, muu, men, meu, mnu) = moment_tensor_enu(s, d, r);
            assert!((mee + mnn + muu).abs() < 1e-12, "trace for ({s},{d},{r})");
            // Frobenius norm of a unit double couple is sqrt(2).
            let frob =
                (mee * mee + mnn * mnn + muu * muu + 2.0 * (men * men + meu * meu + mnu * mnu))
                    .sqrt();
            assert!(
                (frob - 2f64.sqrt()).abs() < 1e-9,
                "frob {frob} for ({s},{d},{r})"
            );
        }
    }

    #[test]
    fn realistic_offset_for_unit_slip_nearby() {
        // 1 m slip on a ~30x35 km patch ~60 km away should move the ground
        // at the cm-to-dm level — the regime GNSS actually observes.
        let f = FaultModel::chilean_subduction(20, 8).unwrap();
        let sf = f.subfault(f.index_of(10, 2));
        let st = GeoPoint::new(sf.center.lon + 0.5, sf.center.lat + 0.1, 0.0);
        let r = point_source_static(
            &f,
            sf.strike_deg,
            sf.dip_deg,
            90.0,
            sf.area_km2(),
            &st,
            &sf.center,
        );
        let mag = r.magnitude();
        assert!(mag > 1e-3 && mag < 2.0, "offset {mag} m");
    }

    #[test]
    fn minimum_distance_clamp_prevents_singularity() {
        let f = FaultModel::chilean_subduction(4, 4).unwrap();
        let sf = f.subfault(0);
        // Station exactly above a zero-depth source would be singular; our
        // sources are >=5 km deep but the clamp also guards r→0.
        let st = GeoPoint::new(sf.center.lon, sf.center.lat, sf.center.depth_km);
        let r = point_source_static(
            &f,
            sf.strike_deg,
            sf.dip_deg,
            90.0,
            sf.area_km2(),
            &st,
            &sf.center,
        );
        assert!(r.magnitude().is_finite());
    }

    #[test]
    fn okada_method_produces_comparable_physics() {
        let f = FaultModel::chilean_subduction(12, 6).unwrap();
        let n = StationNetwork::chilean_input(ChileanInput::Small, 1);
        let point = GfLibrary::compute_with_method(&f, &n, GfMethod::PointSource).unwrap();
        let okada = GfLibrary::compute_with_method(&f, &n, GfMethod::OkadaRectangular).unwrap();
        assert_eq!(okada.n_subfaults(), point.n_subfaults());
        // Same order of magnitude in aggregate (methods differ in detail
        // but describe the same medium).
        let total = |g: &GfLibrary| -> f64 {
            g.stations()
                .iter()
                .flat_map(|s| s.responses.iter())
                .map(|r| r.magnitude())
                .sum()
        };
        let ratio = total(&okada) / total(&point);
        assert!(
            (0.1..10.0).contains(&ratio),
            "okada/point aggregate ratio {ratio}"
        );
        // All finite.
        for s in okada.stations() {
            for r in &s.responses {
                assert!(r.e.is_finite() && r.n.is_finite() && r.u.is_finite());
            }
        }
    }

    #[test]
    fn okada_static_decays_with_distance() {
        use crate::geo::GeoPoint;
        let f = FaultModel::chilean_subduction(12, 6).unwrap();
        let sf = f.subfault(f.index_of(6, 2));
        // 0.2 deg sits above the rupture; 0.4 deg would land on the
        // uplift-subsidence hinge line where the response passes through
        // zero (real thrust physics), so it makes a poor comparison point.
        let near = GeoPoint::new(sf.center.lon + 0.2, sf.center.lat, 0.0);
        let far = GeoPoint::new(sf.center.lon + 4.0, sf.center.lat, 0.0);
        let rn = okada_static(sf, &near);
        let rf = okada_static(sf, &far);
        assert!(rn.magnitude() > rf.magnitude() * 5.0);
        // Thrust slip uplifts the near-field above the shallow fault edge.
        assert!(rn.magnitude() > 1e-4, "near response {}", rn.magnitude());
    }

    #[test]
    fn hoisted_library_matches_per_pair_kernels_bitwise() {
        // The library path precomputes per-subfault geometry once; the
        // public per-pair functions rebuild it per call. Same expressions,
        // same inputs — results must agree to the bit.
        let f = FaultModel::chilean_subduction(8, 4).unwrap();
        let n = StationNetwork::chilean_input(ChileanInput::Small, 1);
        for method in [GfMethod::PointSource, GfMethod::OkadaRectangular] {
            let lib = GfLibrary::compute_with_method(&f, &n, method).unwrap();
            for (st, gf) in n.stations().iter().zip(lib.stations()) {
                for (sf, got) in f.subfaults().iter().zip(&gf.responses) {
                    let want = match method {
                        GfMethod::PointSource => point_source_static(
                            &f,
                            sf.strike_deg,
                            sf.dip_deg,
                            THRUST_RAKE_DEG,
                            sf.area_km2(),
                            &st.location,
                            &sf.center,
                        ),
                        GfMethod::OkadaRectangular => okada_static(sf, &st.location),
                    };
                    assert_eq!(got.e.to_bits(), want.e.to_bits());
                    assert_eq!(got.n.to_bits(), want.n.to_bits());
                    assert_eq!(got.u.to_bits(), want.u.to_bits());
                }
            }
        }
    }

    #[test]
    fn empty_fault_rejected() {
        // FaultModel cannot be empty by construction, so exercise the
        // guard through the public API contract instead.
        let f = FaultModel::chilean_subduction(1, 1).unwrap();
        let n = StationNetwork::chilean_input(ChileanInput::Small, 1);
        assert!(GfLibrary::compute(&f, &n).is_ok());
    }
}
