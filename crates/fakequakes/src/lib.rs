//! # fakequakes — stochastic earthquake rupture & synthetic GNSS waveforms
//!
//! A from-scratch Rust implementation of the science payload of MudPy's
//! *FakeQuakes* module (Melgar et al. 2016), the simulation framework the
//! FakeQuakes DAGMan Workflow (FDW) parallelises in Adair et al., SC-W
//! 2023. It provides everything the three workflow phases compute:
//!
//! * **A Phase** — recyclable distance matrices ([`distance`], serialised
//!   as `.npy` via [`npy`]) and stochastic rupture scenarios
//!   ([`rupture`]): von Kármán-correlated slip ([`vonkarman`],
//!   [`stochastic`]) on a Slab2-like Chilean subduction mesh
//!   ([`geometry`]), moment-rescaled to target magnitudes.
//! * **B Phase** — Green's function libraries ([`greens`], serialised as
//!   `.mseed` via [`mseed`]) for a GNSS station network ([`stations`]).
//! * **C Phase** — kinematic 3-component GNSS displacement waveforms
//!   ([`waveform`]) with realistic colored noise ([`noise`]) and
//!   source-time functions ([`stf`]).
//!
//! [`catalog`] runs the whole pipeline on one machine (Rayon-parallel),
//! which is both what an individual grid job executes and the
//! single-machine baseline the paper compares against.
//!
//! ## Quick example
//!
//! ```
//! use fakequakes::prelude::*;
//!
//! let fault = FaultModel::chilean_subduction(10, 5).unwrap();
//! let net = StationNetwork::chilean_input(ChileanInput::Small, 1);
//! let catalog = generate_catalog(
//!     &fault, &net, None, None,
//!     RuptureConfig::default(),
//!     WaveformConfig { duration_s: 64.0, ..Default::default() },
//!     2, 42,
//! ).unwrap();
//! assert_eq!(catalog.len(), 2);
//! assert!(catalog.summaries()[0].peak_slip_m > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod catalog;
pub mod distance;
pub mod error;
pub mod geo;
pub mod geometry;
pub mod greens;
pub mod linalg;
pub mod mseed;
pub mod noise;
pub mod npy;
pub mod okada;
pub mod par;
pub mod rupture;
pub mod simd;
pub mod spectra;
pub mod stations;
pub mod stf;
pub mod stochastic;
pub mod vonkarman;
pub mod waveform;

/// Convenient glob import of the most-used types.
pub mod prelude {
    pub use crate::catalog::{generate_catalog, Catalog, ScenarioSummary};
    pub use crate::distance::DistanceMatrices;
    pub use crate::error::{FqError, FqResult};
    pub use crate::geo::GeoPoint;
    pub use crate::geometry::{FaultModel, ScalingLaw, Subfault};
    pub use crate::greens::{GfLibrary, GfMethod};
    pub use crate::mseed::MseedFile;
    pub use crate::noise::NoiseModel;
    pub use crate::rupture::{MagnitudeLaw, RuptureConfig, RuptureGenerator, RuptureScenario};
    pub use crate::spectra::{amplitude_spectrum, spectral_summary, SpectralSummary};
    pub use crate::stations::{ChileanInput, Station, StationNetwork};
    pub use crate::stf::StfKind;
    pub use crate::stochastic::{FactorBackend, FactorCache, FactorCacheStats, FieldMethod};
    pub use crate::waveform::{
        synthesize_all_stations, synthesize_station, GnssWaveform, WaveformConfig,
    };
}
