//! Dense linear algebra tuned for the covariance kernels: a row-major
//! `Matrix`, blocked/parallel Cholesky, and an O(n³) symmetric
//! eigensolver (Householder tridiagonalization + implicit-shift QL).
//!
//! The stochastic slip generator needs to factor covariance matrices built
//! from von Kármán correlations. Rather than pulling in a BLAS binding, we
//! implement the factorisations FakeQuakes actually relies on:
//!
//! * **Cholesky** (with diagonal jitter fallback) for sampling correlated
//!   Gaussian fields — column-ordered so the sub-diagonal panel of each
//!   column fans out across threads, with every element accumulating in
//!   the same fixed k-order as the sequential reference, so results are
//!   byte-identical regardless of thread count;
//! * **Householder + QL eigendecomposition** for Karhunen–Loève modes —
//!   `tred2`/`tql2`-style reduction giving true O(n³) behaviour, plus a
//!   truncated top-k path (eigenvalues-only QL + tridiagonal inverse
//!   iteration + Householder back-transform) so KL never pays for modes
//!   it discards;
//! * the original classical-Jacobi solver and naive Cholesky are kept as
//!   [`Matrix::jacobi_eigen_reference`] / [`Matrix::cholesky_reference`]
//!   so tests can pin agreement and `bench_snapshot` can record the
//!   before/after speedup in the same run.
//!
//! Matrices here are at most a few thousand square (one row/column per
//! subfault); see DESIGN.md §8 for the complexity table.

use crate::error::{FqError, FqResult};
use crate::par;
use crate::simd;

/// k-panel height of the blocked GEMM: a `MATMUL_KC x cols` panel of
/// the right-hand matrix is reused across every row of a parallel row
/// chunk before the next panel is touched. Must stay a multiple of
/// [`simd::LANES`] so panel boundaries never split a k-quad (which
/// would change the canonical accumulation order).
const MATMUL_KC: usize = 128;

/// Order-B microkernel: accumulate `arow[k0..k1] * other[k0..k1, :]`
/// into `orow`. Four rows of `other` are streamed per ascending k-quad
/// and folded per output element as `(p0+p1)+(p2+p3)`; a trailing
/// `k1 == kt` remainder (k not a multiple of 4) is added term by term.
fn matmul_panel(arow: &[f64], other: &Matrix, orow: &mut [f64], k0: usize, k1: usize, kt: usize) {
    let kq_end = if k1 == kt { k0 + (k1 - k0) / 4 * 4 } else { k1 };
    let mut k = k0;
    while k < kq_end {
        let a = simd::F64x4::from_slice(&arow[k..k + 4]);
        let b0 = other.row(k);
        let b1 = other.row(k + 1);
        let b2 = other.row(k + 2);
        let b3 = other.row(k + 3);
        for (j, o) in orow.iter_mut().enumerate() {
            *o += (a.0[0] * b0[j] + a.0[1] * b1[j]) + (a.0[2] * b2[j] + a.0[3] * b3[j]);
        }
        k += 4;
    }
    for (kk, &aik) in arow.iter().enumerate().take(k1).skip(kq_end) {
        for (o, &bkj) in orow.iter_mut().zip(other.row(kk)) {
            *o += aik * bkj;
        }
    }
}

/// A dense, row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a zero-filled matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Build from a row-major vector; `data.len()` must equal `rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> FqResult<Self> {
        if data.len() != rows * cols {
            return Err(FqError::Linalg(format!(
                "shape mismatch: {}x{} needs {} elements, got {}",
                rows,
                cols,
                rows * cols,
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the underlying row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow one row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix-vector product `self * v`.
    ///
    /// Rows fan out across threads; each output element is an
    /// independent order-A laned dot product ([`crate::simd::dot`]), so
    /// the result is bitwise identical to [`Matrix::matvec_reference`]
    /// at any thread count.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        par::map_indexed(self.rows, 64, |i| simd::dot(self.row(i), v))
    }

    /// Sequential scalar twin of [`Matrix::matvec`]: the order-A oracle.
    pub fn matvec_reference(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| simd::dot_reference(self.row(i), v))
            .collect()
    }

    /// Matrix-matrix product `self * other`: row-parallel, cache-blocked
    /// over k so a `MATMUL_KC`-row panel of `other` is reused across a
    /// whole row chunk, with a 4-lane (order-B) microkernel inside each
    /// panel. Per output element the accumulation is one quad sum
    /// `(p0+p1)+(p2+p3)` per ascending k-quad then the k remainder
    /// terms individually — independent of blocking and thread count,
    /// so the result is byte-identical to
    /// [`Matrix::matmul_reference`].
    pub fn matmul(&self, other: &Matrix) -> FqResult<Matrix> {
        if self.cols != other.rows {
            return Err(FqError::Linalg(format!(
                "matmul shape mismatch: {}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let (m, p) = (self.rows, other.cols);
        let mut out = Matrix::zeros(m, p);
        if m == 0 || p == 0 {
            return Ok(out);
        }
        let kt = self.cols;
        let row_chunk = par::chunk_for(m, 8);
        par::for_each_chunk(&mut out.data, row_chunk * p, |start, rows_chunk| {
            let first_row = start / p;
            // k-panels ascending; panel boundaries are multiples of
            // LANES so the quad decomposition of each element's k-range
            // is the same with or without blocking.
            let mut k0 = 0;
            while k0 < kt {
                let k1 = (k0 + MATMUL_KC).min(kt);
                for (r, orow) in rows_chunk.chunks_mut(p).enumerate() {
                    let arow = self.row(first_row + r);
                    matmul_panel(arow, other, orow, k0, k1, kt);
                }
                k0 = k1;
            }
        });
        Ok(out)
    }

    /// Scalar ijk reference for [`Matrix::matmul`]: one element at a
    /// time, walking `other` column-wise (deliberately unblocked and
    /// cache-hostile — this is the pre-optimisation shape and the
    /// `bench_snapshot` baseline), with the same order-B quad
    /// accumulation. The bitwise oracle for the blocked kernel.
    pub fn matmul_reference(&self, other: &Matrix) -> FqResult<Matrix> {
        if self.cols != other.rows {
            return Err(FqError::Linalg(format!(
                "matmul shape mismatch: {}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let (m, p, kt) = (self.rows, other.cols, self.cols);
        let kq = kt / 4 * 4;
        let mut out = Matrix::zeros(m, p);
        for i in 0..m {
            let arow = self.row(i);
            for j in 0..p {
                let mut o = 0.0;
                let mut k = 0;
                while k < kq {
                    o += (arow[k] * other.data[k * p + j]
                        + arow[k + 1] * other.data[(k + 1) * p + j])
                        + (arow[k + 2] * other.data[(k + 2) * p + j]
                            + arow[k + 3] * other.data[(k + 3) * p + j]);
                    k += 4;
                }
                for (kk, &aik) in arow.iter().enumerate().take(kt).skip(kq) {
                    o += aik * other.data[kk * p + j];
                }
                out.data[i * p + j] = o;
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Maximum absolute off-diagonal element (square matrices only);
    /// used as the classical-Jacobi convergence criterion.
    fn max_offdiag(&self) -> (usize, usize, f64) {
        let mut best = (0usize, 1usize, 0.0f64);
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let v = self[(i, j)].abs();
                if v > best.2 {
                    best = (i, j, v);
                }
            }
        }
        best
    }

    /// Cholesky factorisation `A = L * L^T`, returning lower-triangular `L`.
    ///
    /// If the matrix is only marginally positive definite (common for dense
    /// correlation matrices with near-duplicate rows), retries with
    /// progressively larger diagonal jitter before giving up. The
    /// factorisation is column-ordered with the sub-diagonal panel of
    /// each column computed in parallel; every element uses the same
    /// fixed accumulation order as [`Matrix::cholesky_reference`], so
    /// the two agree bit-for-bit.
    pub fn cholesky(&self) -> FqResult<Matrix> {
        if self.rows != self.cols {
            return Err(FqError::Linalg("cholesky requires a square matrix".into()));
        }
        let n = self.rows;
        let mut jitter = 0.0;
        for attempt in 0..6 {
            match self.try_cholesky(jitter) {
                Ok(l) => return Ok(l),
                Err(_) if attempt < 5 => {
                    jitter = if jitter == 0.0 { 1e-10 } else { jitter * 100.0 };
                }
                Err(e) => return Err(e),
            }
        }
        Err(FqError::Linalg(format!(
            "matrix of size {n} not positive definite even with jitter"
        )))
    }

    fn try_cholesky(&self, jitter: f64) -> FqResult<Matrix> {
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Pivot: a + jitter minus the order-A laned dot of the
            // pivot row prefix with itself — the same single
            // subtraction the reference performs.
            let pivot_prefix = &l.data[j * n..j * n + j];
            let sum = self.data[j * n + j] + jitter - simd::dot(pivot_prefix, pivot_prefix);
            if sum <= 0.0 {
                return Err(FqError::Linalg(format!(
                    "non-positive pivot {sum:e} at row {j}"
                )));
            }
            let diag = sum.sqrt();
            l.data[j * n + j] = diag;
            // Sub-diagonal panel of column j: rows j+1.. are independent
            // order-A dot products against the pivot row prefix, so they
            // fan out across threads with chunk-aligned (row-aligned)
            // splits.
            let (done, below) = l.data.split_at_mut((j + 1) * n);
            let pivot = &done[j * n..j * n + j];
            if below.is_empty() {
                continue;
            }
            let rows_below = n - j - 1;
            let chunk = par::chunk_for(rows_below, 32) * n;
            par::for_each_chunk(below, chunk, |start, rows_chunk| {
                let first_row = j + 1 + start / n;
                for (r, row) in rows_chunk.chunks_mut(n).enumerate() {
                    let i = first_row + r;
                    let s = self.data[i * n + j] - simd::dot(&row[..j], pivot);
                    row[j] = s / diag;
                }
            });
        }
        Ok(l)
    }

    /// Row-ordered scalar Cholesky, kept as the determinism oracle and
    /// `bench_snapshot` baseline. Each element uses the same order-A
    /// prefix dot ([`simd::dot_reference`]) as the blocked kernel, so
    /// the two agree bit-for-bit; the jitter-retry schedule matches
    /// [`Matrix::cholesky`].
    pub fn cholesky_reference(&self) -> FqResult<Matrix> {
        if self.rows != self.cols {
            return Err(FqError::Linalg("cholesky requires a square matrix".into()));
        }
        let n = self.rows;
        let mut jitter = 0.0;
        for attempt in 0..6 {
            match self.try_cholesky_reference(jitter) {
                Ok(l) => return Ok(l),
                Err(_) if attempt < 5 => {
                    jitter = if jitter == 0.0 { 1e-10 } else { jitter * 100.0 };
                }
                Err(e) => return Err(e),
            }
        }
        Err(FqError::Linalg(format!(
            "matrix of size {n} not positive definite even with jitter"
        )))
    }

    fn try_cholesky_reference(&self, jitter: f64) -> FqResult<Matrix> {
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let lij = simd::dot_reference(&l.data[i * n..i * n + j], &l.data[j * n..j * n + j]);
                let sum = if i == j {
                    self[(i, j)] + jitter - lij
                } else {
                    self[(i, j)] - lij
                };
                if i == j {
                    if sum <= 0.0 {
                        return Err(FqError::Linalg(format!(
                            "non-positive pivot {sum:e} at row {i}"
                        )));
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solve `A x = b` for symmetric positive-definite `A` via Cholesky
    /// (forward/back substitution). Used by the EEW regression's normal
    /// equations.
    pub fn solve_spd(&self, b: &[f64]) -> FqResult<Vec<f64>> {
        if self.rows != self.cols {
            return Err(FqError::Linalg("solve_spd requires a square matrix".into()));
        }
        if b.len() != self.rows {
            return Err(FqError::Linalg(format!(
                "rhs length {} != matrix size {}",
                b.len(),
                self.rows
            )));
        }
        let l = self.cholesky()?;
        let n = self.rows;
        // Forward: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= l[(i, k)] * y[k];
            }
            y[i] = s / l[(i, i)];
        }
        // Back: L^T x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= l[(k, i)] * x[k];
            }
            x[i] = s / l[(i, i)];
        }
        Ok(x)
    }

    /// Eigendecomposition of a symmetric matrix via Householder
    /// tridiagonalization followed by implicit-shift QL — true O(n³),
    /// replacing the classical Jacobi solver (kept as
    /// [`Matrix::jacobi_eigen_reference`]) whose per-rotation
    /// max-off-diagonal scan made it O(n⁴)-ish in practice.
    ///
    /// Returns `(eigenvalues, eigenvectors)` sorted by descending
    /// eigenvalue; eigenvector `k` is column `k` of the returned matrix,
    /// sign-canonicalised so its largest-magnitude component is
    /// positive. `max_sweeps` bounds QL iterations per eigenvalue
    /// (values ≥ 30 are typical; smaller values are clamped up to 30).
    pub fn symmetric_eigen(&self, max_sweeps: usize) -> FqResult<(Vec<f64>, Matrix)> {
        if self.rows != self.cols {
            return Err(FqError::Linalg("eigen requires a square matrix".into()));
        }
        let n = self.rows;
        if n == 0 {
            return Ok((Vec::new(), Matrix::zeros(0, 0)));
        }
        let red = self.tridiagonalize(true);
        let mut d = red.d;
        let mut e = red.e;
        let mut qt = red.basis;
        ql_implicit(&mut d, &mut e, Some(&mut qt), max_sweeps.max(30))?;
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&x, &y| d[y].total_cmp(&d[x]).then(x.cmp(&y)));
        let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
        let mut eigenvectors = Matrix::zeros(n, n);
        let mut col = vec![0.0; n];
        for (k, &src) in order.iter().enumerate() {
            col.copy_from_slice(qt.row(src));
            canonicalize_sign(&mut col);
            for i in 0..n {
                eigenvectors[(i, k)] = col[i];
            }
        }
        Ok((eigenvalues, eigenvectors))
    }

    /// Truncated eigendecomposition: **all** `n` eigenvalues (descending)
    /// but only the top `k` eigenvectors, as the columns of an `n × k`
    /// matrix.
    ///
    /// Cost is O(n³) for the reduction plus O(n²) per eigenvalue sweep
    /// and O(k·n²) for the vectors — QL never accumulates the full
    /// rotation product, so `FieldMethod::KarhunenLoeve { modes }` does
    /// not pay for the `n − k` modes it discards. Vectors come from
    /// tridiagonal inverse iteration with Gram–Schmidt inside
    /// near-degenerate clusters, then Householder back-transform; each
    /// is sign-canonicalised exactly like [`Matrix::symmetric_eigen`],
    /// so the two paths agree (up to roundoff) on well-separated modes.
    pub fn symmetric_eigen_topk(
        &self,
        k: usize,
        max_sweeps: usize,
    ) -> FqResult<(Vec<f64>, Matrix)> {
        if self.rows != self.cols {
            return Err(FqError::Linalg("eigen requires a square matrix".into()));
        }
        let n = self.rows;
        let k = k.min(n);
        if n == 0 {
            return Ok((Vec::new(), Matrix::zeros(0, 0)));
        }
        let red = self.tridiagonalize(false);
        let mut d = red.d.clone();
        let mut e = red.e.clone();
        ql_implicit(&mut d, &mut e, None, max_sweeps.max(30))?;
        d.sort_by(|a, b| b.total_cmp(a));
        let vals = d;

        // Inverse iteration on the tridiagonal (d0, e0) for the top k.
        let d0 = &red.d;
        let e0 = &red.e;
        let mut anorm = 0.0f64;
        for i in 0..n {
            let lo = if i > 0 { e0[i].abs() } else { 0.0 };
            let hi = if i + 1 < n { e0[i + 1].abs() } else { 0.0 };
            anorm = anorm.max(d0[i].abs() + lo + hi);
        }
        let anorm = anorm.max(f64::MIN_POSITIVE);
        let eps3 = f64::EPSILON * anorm;
        let cluster_tol = anorm * 1e-10 + eps3;

        let mut tri_vecs: Vec<Vec<f64>> = Vec::with_capacity(k);
        let mut cluster_start = 0usize;
        let mut prev_shift = f64::INFINITY;
        for j in 0..k {
            if j > 0 && vals[j - 1] - vals[j] > cluster_tol {
                cluster_start = j;
            }
            // Perturb shifts inside a cluster so the factorisations differ.
            let mut shift = vals[j];
            if j > 0 && prev_shift - shift < eps3 {
                shift = prev_shift - eps3;
            }
            prev_shift = shift;
            let lu = TriLu::factor(d0, e0, shift, eps3);
            // j-varied start vector: a uniform start can be exactly
            // orthogonal to later basis vectors of a degenerate cluster.
            let mut x: Vec<f64> = (0..n)
                .map(|i| 1.0 + ((i * 7 + j * 13) % 5) as f64 * 0.25)
                .collect();
            // Fixed iteration count (each round is O(n)): the solve
            // amplifies in-cluster components by ~1/eps per round, so a
            // few rounds swamp any cancellation garbage the Gram–Schmidt
            // step reintroduces.
            for attempt in 0..4usize {
                lu.solve(&mut x);
                for prev in &tri_vecs[cluster_start..j] {
                    let dot = simd::dot(&x, prev);
                    for (xi, pi) in x.iter_mut().zip(prev) {
                        *xi -= dot * pi;
                    }
                }
                let norm = simd::dot(&x, &x).sqrt();
                if norm.is_finite() && norm > eps3 {
                    for xi in &mut x {
                        *xi /= norm;
                    }
                } else {
                    // Deterministic restart: vary the start vector.
                    for (i, xi) in x.iter_mut().enumerate() {
                        *xi = if (i + j + attempt) % 3 == 0 {
                            1.0
                        } else {
                            -0.5
                        };
                    }
                }
            }
            tri_vecs.push(x);
        }

        // Back-transform through the Householder reflectors and pack.
        let mut out = Matrix::zeros(n, k);
        let refl = &red.basis;
        let hs = &red.hs;
        for (j, tv) in tri_vecs.iter().enumerate() {
            let mut x = tv.clone();
            for i in 2..n {
                if hs[i] == 0.0 {
                    continue;
                }
                let u = &refl.row(i)[..i];
                let mut t = 0.0;
                for (uv, xv) in u.iter().zip(&x[..i]) {
                    t += uv * xv;
                }
                t /= hs[i];
                for (uv, xv) in u.iter().zip(&mut x[..i]) {
                    *xv -= t * uv;
                }
            }
            canonicalize_sign(&mut x);
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok((vals, out))
    }

    /// Householder reduction to tridiagonal form (a `tred2` port).
    ///
    /// With `accumulate`, `basis` row `k` holds column `k` of the
    /// orthogonal `Q` with `A = Q T Qᵀ` (transposed storage so QL can
    /// rotate contiguous rows). Without it, `basis` row `i` keeps the
    /// raw scaled Householder vector `u_i` (support `0..i`) and `hs[i]`
    /// the corresponding `h = |u|²/2` (0 where the step was skipped).
    #[allow(clippy::needless_range_loop)]
    fn tridiagonalize(&self, accumulate: bool) -> Tridiag {
        let n = self.rows;
        let mut a = self.clone();
        let mut d = vec![0.0; n];
        let mut e = vec![0.0; n];
        let mut hs = vec![0.0; n];
        if n == 0 {
            return Tridiag { d, e, basis: a, hs };
        }
        for i in (1..n).rev() {
            let l = i - 1;
            let mut h = 0.0;
            if l > 0 {
                let mut scale = 0.0;
                for k in 0..=l {
                    scale += a[(i, k)].abs();
                }
                if scale == 0.0 {
                    e[i] = a[(i, l)];
                } else {
                    for k in 0..=l {
                        let v = a[(i, k)] / scale;
                        a[(i, k)] = v;
                        h += v * v;
                    }
                    let f = a[(i, l)];
                    let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                    e[i] = scale * g;
                    h -= f * g;
                    a[(i, l)] = f - g;
                    let mut fsum = 0.0;
                    for j in 0..=l {
                        if accumulate {
                            a[(j, i)] = a[(i, j)] / h;
                        }
                        let mut g2 = 0.0;
                        for k in 0..=j {
                            g2 += a[(j, k)] * a[(i, k)];
                        }
                        for k in (j + 1)..=l {
                            g2 += a[(k, j)] * a[(i, k)];
                        }
                        e[j] = g2 / h;
                        fsum += e[j] * a[(i, j)];
                    }
                    let hh = fsum / (h + h);
                    for j in 0..=l {
                        let f2 = a[(i, j)];
                        let g2 = e[j] - hh * f2;
                        e[j] = g2;
                        for k in 0..=j {
                            a[(j, k)] -= f2 * e[k] + g2 * a[(i, k)];
                        }
                    }
                }
            } else {
                e[i] = a[(i, l)];
            }
            d[i] = h;
            hs[i] = h;
        }
        e[0] = 0.0;
        hs[0] = 0.0;
        if accumulate {
            d[0] = 0.0;
            for i in 0..n {
                if d[i] != 0.0 {
                    for j in 0..i {
                        let mut g = 0.0;
                        for k in 0..i {
                            g += a[(i, k)] * a[(k, j)];
                        }
                        for k in 0..i {
                            a[(k, j)] -= g * a[(k, i)];
                        }
                    }
                }
                d[i] = a[(i, i)];
                a[(i, i)] = 1.0;
                for j in 0..i {
                    a[(j, i)] = 0.0;
                    a[(i, j)] = 0.0;
                }
            }
            Tridiag {
                d,
                e,
                basis: a.transpose(),
                hs,
            }
        } else {
            for i in 0..n {
                d[i] = a[(i, i)];
            }
            Tridiag { d, e, basis: a, hs }
        }
    }

    /// The original classical-Jacobi eigensolver (pre-optimisation),
    /// kept verbatim as the regression oracle and `bench_snapshot`
    /// baseline. Same contract as the old `symmetric_eigen`:
    /// `(eigenvalues, eigenvectors)` descending, vector `k` in column
    /// `k`, signs arbitrary.
    pub fn jacobi_eigen_reference(&self, max_sweeps: usize) -> FqResult<(Vec<f64>, Matrix)> {
        if self.rows != self.cols {
            return Err(FqError::Linalg("eigen requires a square matrix".into()));
        }
        let n = self.rows;
        if n == 0 {
            return Ok((Vec::new(), Matrix::zeros(0, 0)));
        }
        let mut a = self.clone();
        let mut v = Matrix::identity(n);
        let scale: f64 = self
            .data
            .iter()
            .fold(0.0f64, |m, x| m.max(x.abs()))
            .max(f64::MIN_POSITIVE);
        let tol = 1e-12 * scale;
        for _sweep in 0..max_sweeps * n * n {
            let (p, q, off) = a.max_offdiag();
            if off <= tol {
                break;
            }
            // Classic Jacobi rotation annihilating a[p][q].
            let app = a[(p, p)];
            let aqq = a[(q, q)];
            let apq = a[(p, q)];
            let theta = (aqq - app) / (2.0 * apq);
            let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
            let c = 1.0 / (t * t + 1.0).sqrt();
            let s = t * c;
            for k in 0..n {
                let akp = a[(k, p)];
                let akq = a[(k, q)];
                a[(k, p)] = c * akp - s * akq;
                a[(k, q)] = s * akp + c * akq;
            }
            for k in 0..n {
                let apk = a[(p, k)];
                let aqk = a[(q, k)];
                a[(p, k)] = c * apk - s * aqk;
                a[(q, k)] = s * apk + c * aqk;
            }
            for k in 0..n {
                let vkp = v[(k, p)];
                let vkq = v[(k, q)];
                v[(k, p)] = c * vkp - s * vkq;
                v[(k, q)] = s * vkp + c * vkq;
            }
        }
        let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a[(i, i)], i)).collect();
        pairs.sort_by(|x, y| y.0.total_cmp(&x.0));
        let eigenvalues: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let eigenvectors = Matrix::from_fn(n, n, |i, k| v[(i, pairs[k].1)]);
        Ok((eigenvalues, eigenvectors))
    }
}

/// Output of [`Matrix::tridiagonalize`].
struct Tridiag {
    /// Diagonal of the tridiagonal `T`.
    d: Vec<f64>,
    /// Subdiagonal of `T`: `e[i]` couples `i-1` and `i`; `e[0] = 0`.
    e: Vec<f64>,
    /// `Qᵀ` (accumulate) or raw Householder vectors by row (not).
    basis: Matrix,
    /// Householder `h` values (`|u|²/2`), 0 where the step was skipped.
    hs: Vec<f64>,
}

/// Flip `x` so its largest-magnitude component (first on ties) is
/// positive — the canonical eigenvector sign both solver paths share.
fn canonicalize_sign(x: &mut [f64]) {
    let mut idx = 0usize;
    let mut best = -1.0f64;
    for (i, v) in x.iter().enumerate() {
        if v.abs() > best {
            best = v.abs();
            idx = i;
        }
    }
    if !x.is_empty() && x[idx] < 0.0 {
        for v in x.iter_mut() {
            *v = -*v;
        }
    }
}

/// Implicit-shift QL on a tridiagonal `(d, e)` (a `tql2`/`tql1` port).
///
/// On entry `e[i]` couples rows `i-1` and `i` (`e[0]` ignored); on exit
/// `d` holds the eigenvalues, unsorted. When `zt` is given, its rows
/// are rotated along — pass `Qᵀ` from the reduction and row `k` ends up
/// as the eigenvector of `d[k]` (transposed storage makes each rotation
/// touch two contiguous rows instead of two strided columns).
/// `max_iter` bounds iterations per eigenvalue.
fn ql_implicit(
    d: &mut [f64],
    e: &mut [f64],
    mut zt: Option<&mut Matrix>,
    max_iter: usize,
) -> FqResult<()> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    for l in 0..n {
        let mut iter = 0usize;
        loop {
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            if iter >= max_iter {
                return Err(FqError::Linalg(format!(
                    "QL failed to converge for eigenvalue {l} after {max_iter} iterations"
                )));
            }
            iter += 1;
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let mut s = 1.0f64;
            let mut c = 1.0f64;
            let mut p = 0.0f64;
            let mut underflow = false;
            for iu in (l..m).rev() {
                let f = s * e[iu];
                let b = c * e[iu];
                r = f.hypot(g);
                e[iu + 1] = r;
                if r == 0.0 {
                    d[iu + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[iu + 1] - p;
                r = (d[iu] - g) * s + 2.0 * c * b;
                p = s * r;
                d[iu + 1] = g + p;
                g = c * r - b;
                if let Some(z) = zt.as_deref_mut() {
                    let w = z.cols;
                    let (lo, hi) = z.data.split_at_mut((iu + 1) * w);
                    let row_i = &mut lo[iu * w..];
                    let row_j = &mut hi[..w];
                    for (zi, zj) in row_i.iter_mut().zip(row_j.iter_mut()) {
                        let f2 = *zj;
                        *zj = s * *zi + c * f2;
                        *zi = c * *zi - s * f2;
                    }
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// LU factorisation (with partial pivoting) of a shifted tridiagonal
/// `T − λI`, recording the row operations so repeated inverse-iteration
/// solves can forward-apply them to fresh right-hand sides.
struct TriLu {
    /// Pivot diagonal (zero pivots replaced by `±eps`).
    u: Vec<f64>,
    /// First superdiagonal of the eliminated system.
    v: Vec<f64>,
    /// Second superdiagonal (nonzero only after a row interchange).
    w: Vec<f64>,
    /// Elimination multipliers, per step.
    mult: Vec<f64>,
    /// Whether step `i` interchanged rows `i` and `i+1`.
    swapped: Vec<bool>,
}

impl TriLu {
    /// Eliminate `T − shift·I` where `d`/`e` follow the
    /// [`Matrix::tridiagonalize`] convention (`e[i]` couples `i-1`, `i`).
    fn factor(d: &[f64], e: &[f64], shift: f64, eps: f64) -> Self {
        let n = d.len();
        let mut u = vec![0.0; n];
        let mut v = vec![0.0; n];
        let mut w = vec![0.0; n];
        let mut mult = vec![0.0; n];
        let mut swapped = vec![false; n];
        let mut cd = d[0] - shift;
        let mut cs = if n > 1 { e[1] } else { 0.0 };
        for i in 0..n.saturating_sub(1) {
            let sub = e[i + 1];
            let nd = d[i + 1] - shift;
            let ns = if i + 2 < n { e[i + 2] } else { 0.0 };
            if sub.abs() > cd.abs() {
                swapped[i] = true;
                u[i] = sub;
                v[i] = nd;
                w[i] = ns;
                let m = cd / sub;
                mult[i] = m;
                cd = cs - m * nd;
                cs = -m * ns;
            } else {
                let ui = if cd.abs() < eps {
                    if cd < 0.0 {
                        -eps
                    } else {
                        eps
                    }
                } else {
                    cd
                };
                u[i] = ui;
                v[i] = cs;
                let m = sub / ui;
                mult[i] = m;
                cd = nd - m * cs;
                cs = ns;
            }
        }
        u[n - 1] = if cd.abs() < eps {
            if cd < 0.0 {
                -eps
            } else {
                eps
            }
        } else {
            cd
        };
        Self {
            u,
            v,
            w,
            mult,
            swapped,
        }
    }

    /// Solve `(T − shift·I) x = b` in place: forward-apply the recorded
    /// row operations, then back-substitute through the two
    /// superdiagonals.
    fn solve(&self, b: &mut [f64]) {
        let n = b.len();
        for i in 0..n.saturating_sub(1) {
            if self.swapped[i] {
                b.swap(i, i + 1);
            }
            b[i + 1] -= self.mult[i] * b[i];
        }
        b[n - 1] /= self.u[n - 1];
        if n >= 2 {
            b[n - 2] = (b[n - 2] - self.v[n - 2] * b[n - 1]) / self.u[n - 2];
        }
        for i in (0..n.saturating_sub(2)).rev() {
            b[i] = (b[i] - self.v[i] * b[i + 1] - self.w[i] * b[i + 2]) / self.u[i];
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn from_vec_checks_shape() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn identity_matvec_is_noop() {
        let m = Matrix::identity(4);
        let v = vec![1.0, -2.0, 3.5, 0.25];
        assert_eq!(m.matvec(&v), v);
    }

    #[test]
    fn matvec_known_values() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let out = m.matvec(&[1.0, 1.0, 1.0]);
        assert_eq!(out, vec![6.0, 15.0]);
    }

    #[test]
    fn matmul_matches_naive_triple_loop() {
        // k = 5 exercises one quad plus a remainder lane.
        let a = Matrix::from_fn(7, 5, |i, j| ((i * 3 + j) % 7) as f64 * 0.5 - 1.0);
        let b = Matrix::from_fn(5, 9, |i, j| ((i + 2 * j) % 5) as f64 * 0.25);
        let c = a.matmul(&b).unwrap();
        // Bitwise vs the order-B scalar oracle...
        let r = a.matmul_reference(&b).unwrap();
        assert_eq!(c, r);
        // ...and approximately vs the plain ascending-k triple loop
        // (different association, same value up to rounding).
        for i in 0..7 {
            for j in 0..9 {
                let mut s = 0.0;
                for k in 0..5 {
                    s += a[(i, k)] * b[(k, j)];
                }
                assert!(approx(c[(i, j)], s, 1e-12), "({i},{j})");
            }
        }
        assert!(a.matmul(&Matrix::zeros(4, 4)).is_err());
        assert_eq!(a.matmul(&Matrix::zeros(5, 0)).unwrap().cols(), 0);
    }

    #[test]
    fn matmul_blocked_matches_reference_across_panel_boundary() {
        // k > MATMUL_KC forces multiple k-panels; k % 4 != 0 leaves a
        // remainder lane in the final panel.
        for (m, k, p) in [(3, 130, 5), (2, 256, 3), (5, 131, 7)] {
            let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 7) % 13) as f64 * 0.21 - 1.1);
            let b = Matrix::from_fn(k, p, |i, j| ((i * 5 + j * 11) % 17) as f64 * 0.13 - 0.9);
            assert_eq!(
                a.matmul(&b).unwrap(),
                a.matmul_reference(&b).unwrap(),
                "m={m} k={k} p={p}"
            );
        }
    }

    #[test]
    fn matvec_matches_reference_bitwise_with_remainder() {
        for cols in [1usize, 4, 5, 61, 243] {
            let m = Matrix::from_fn(6, cols, |i, j| ((i * 13 + j * 3) % 11) as f64 * 0.4 - 1.7);
            let v: Vec<f64> = (0..cols).map(|j| (j as f64) * 0.29 - 2.0).collect();
            let fast = m.matvec(&v);
            let oracle = m.matvec_reference(&v);
            for (x, y) in fast.iter().zip(&oracle) {
                assert_eq!(x.to_bits(), y.to_bits(), "cols={cols}");
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn cholesky_of_identity_is_identity() {
        let l = Matrix::identity(5).cholesky().unwrap();
        assert_eq!(l, Matrix::identity(5));
    }

    #[test]
    fn cholesky_reconstructs() {
        // SPD matrix A = B^T B + I
        let b = Matrix::from_fn(4, 4, |i, j| ((i + 2 * j) % 5) as f64 * 0.3);
        let bt = b.transpose();
        let mut a = Matrix::zeros(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                let mut s = if i == j { 1.0 } else { 0.0 };
                for k in 0..4 {
                    s += bt[(i, k)] * b[(k, j)];
                }
                a[(i, j)] = s;
            }
        }
        let l = a.cholesky().unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let mut s = 0.0;
                for k in 0..4 {
                    s += l[(i, k)] * l[(j, k)];
                }
                assert!(
                    approx(s, a[(i, j)], 1e-9),
                    "({i},{j}): {s} vs {}",
                    a[(i, j)]
                );
            }
        }
        // Upper triangle of L must be zero.
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn cholesky_bitwise_matches_reference() {
        // The optimised column-ordered factorisation must agree with the
        // original row-ordered scalar loop bit-for-bit (same op order).
        for n in [1usize, 2, 5, 24, 61] {
            let a = Matrix::from_fn(n, n, |i, j| {
                let base = 1.0 / (1.0 + (i as f64 - j as f64).abs());
                if i == j {
                    base + n as f64 * 0.05
                } else {
                    base
                }
            });
            let fast = a.cholesky().unwrap();
            let slow = a.cholesky_reference().unwrap();
            assert_eq!(fast.as_slice(), slow.as_slice(), "n={n}");
        }
    }

    #[test]
    fn cholesky_rejects_nonsquare() {
        assert!(Matrix::zeros(2, 3).cholesky().is_err());
        assert!(Matrix::zeros(2, 3).cholesky_reference().is_err());
    }

    #[test]
    fn cholesky_negative_definite_fails() {
        let mut m = Matrix::identity(3);
        m[(0, 0)] = -5.0;
        assert!(m.cholesky().is_err());
        assert!(m.cholesky_reference().is_err());
    }

    #[test]
    fn solve_spd_recovers_known_solution() {
        // A = [[4,1],[1,3]], x = [1, 2], b = A x = [6, 7].
        let a = Matrix::from_vec(2, 2, vec![4.0, 1.0, 1.0, 3.0]).unwrap();
        let x = a.solve_spd(&[6.0, 7.0]).unwrap();
        assert!(approx(x[0], 1.0, 1e-10));
        assert!(approx(x[1], 2.0, 1e-10));
    }

    #[test]
    fn solve_spd_residual_is_small_for_random_spd() {
        let n = 6;
        let b = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 7) % 11) as f64 * 0.1);
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = if i == j { n as f64 } else { 0.0 };
                for k in 0..n {
                    s += b[(i, k)] * b[(j, k)];
                }
                a[(i, j)] = s;
            }
        }
        let rhs: Vec<f64> = (0..n).map(|i| i as f64 - 2.5).collect();
        let x = a.solve_spd(&rhs).unwrap();
        let ax = a.matvec(&x);
        for (got, want) in ax.iter().zip(&rhs) {
            assert!(approx(*got, *want, 1e-8), "{got} vs {want}");
        }
    }

    #[test]
    fn solve_spd_rejects_bad_shapes() {
        assert!(Matrix::zeros(2, 3).solve_spd(&[1.0, 2.0]).is_err());
        assert!(Matrix::identity(3).solve_spd(&[1.0]).is_err());
    }

    #[test]
    fn eigen_diagonal_matrix() {
        let mut m = Matrix::zeros(3, 3);
        m[(0, 0)] = 3.0;
        m[(1, 1)] = 1.0;
        m[(2, 2)] = 2.0;
        let (vals, _) = m.symmetric_eigen(30).unwrap();
        assert!(approx(vals[0], 3.0, 1e-10));
        assert!(approx(vals[1], 2.0, 1e-10));
        assert!(approx(vals[2], 1.0, 1e-10));
    }

    #[test]
    fn eigen_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let (vals, vecs) = m.symmetric_eigen(30).unwrap();
        assert!(approx(vals[0], 3.0, 1e-10));
        assert!(approx(vals[1], 1.0, 1e-10));
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let (x, y) = (vecs[(0, 0)], vecs[(1, 0)]);
        assert!(approx(x.abs(), y.abs(), 1e-8));
        assert!(approx(x.hypot(y), 1.0, 1e-8));
    }

    #[test]
    fn eigen_reconstruction() {
        // Symmetric matrix; check A ≈ V diag(λ) V^T.
        let n = 6;
        let m = Matrix::from_fn(n, n, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let (vals, vecs) = m.symmetric_eigen(50).unwrap();
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += vecs[(i, k)] * vals[k] * vecs[(j, k)];
                }
                assert!(approx(s, m[(i, j)], 1e-8), "({i},{j})");
            }
        }
    }

    #[test]
    fn eigen_empty_matrix() {
        let (vals, vecs) = Matrix::zeros(0, 0).symmetric_eigen(10).unwrap();
        assert!(vals.is_empty());
        assert_eq!(vecs.rows(), 0);
        let (vals, vecs) = Matrix::zeros(0, 0).symmetric_eigen_topk(3, 10).unwrap();
        assert!(vals.is_empty());
        assert_eq!(vecs.rows(), 0);
    }

    #[test]
    fn eigenvalue_sum_equals_trace() {
        let n = 8;
        let m = Matrix::from_fn(n, n, |i, j| (-((i as f64 - j as f64).powi(2)) / 4.0).exp());
        let (vals, _) = m.symmetric_eigen(50).unwrap();
        let trace: f64 = (0..n).map(|i| m[(i, i)]).sum();
        let sum: f64 = vals.iter().sum();
        assert!(approx(sum, trace, 1e-8), "sum={sum} trace={trace}");
    }

    #[test]
    fn eigen_8x8_matches_analytic_values() {
        // Second-difference matrix tridiag(-1, 2, -1): the classic case
        // with closed-form eigenpairs λ_k = 2 − 2cos(kπ/(n+1)) and
        // eigenvector components sin(i·kπ/(n+1)). Pins the new solver
        // against analytic values, not just against reconstruction.
        let n = 8usize;
        let h = std::f64::consts::PI / (n as f64 + 1.0);
        let m = Matrix::from_fn(n, n, |i, j| {
            let d = i as f64 - j as f64;
            if d == 0.0 {
                2.0
            } else if d.abs() == 1.0 {
                -1.0
            } else {
                0.0
            }
        });
        let (vals, vecs) = m.symmetric_eigen(50).unwrap();
        // Analytic eigenvalues, descending: k = n, n-1, …, 1.
        for (rank, lam) in vals.iter().enumerate() {
            let k = (n - rank) as f64;
            let analytic = 2.0 - 2.0 * (k * h).cos();
            assert!(
                approx(*lam, analytic, 1e-12),
                "rank {rank}: {lam} vs {analytic}"
            );
            // Matching analytic eigenvector, normalised.
            let mut v: Vec<f64> = (1..=n).map(|i| (i as f64 * k * h).sin()).collect();
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            for x in &mut v {
                *x /= norm;
            }
            let dot: f64 = (0..n).map(|i| vecs[(i, rank)] * v[i]).sum();
            assert!(approx(dot.abs(), 1.0, 1e-10), "rank {rank}: |dot|={dot}");
        }
    }

    #[test]
    fn eigen_matches_jacobi_reference_eigenvalues() {
        let n = 12;
        let m = Matrix::from_fn(n, n, |i, j| {
            (-((i as f64 - j as f64).powi(2)) / 9.0).exp() + if i == j { 0.5 } else { 0.0 }
        });
        let (new_vals, _) = m.symmetric_eigen(50).unwrap();
        let (ref_vals, _) = m.jacobi_eigen_reference(50).unwrap();
        for (a, b) in new_vals.iter().zip(&ref_vals) {
            assert!(approx(*a, *b, 1e-9), "{a} vs {b}");
        }
    }

    #[test]
    fn topk_matches_full_eigen() {
        // Von-Kármán-like correlation matrix from a slightly irregular
        // 1-D layout (no exact degeneracies): top-k vectors from inverse
        // iteration must match the full QL path, which shares the same
        // sign canonicalisation.
        let n = 20usize;
        let pos: Vec<f64> = (0..n)
            .map(|i| i as f64 + 0.13 * ((i * i) % 7) as f64)
            .collect();
        let m = Matrix::from_fn(n, n, |i, j| {
            let r = (pos[i] - pos[j]).abs() / 5.0;
            (-r).exp()
        });
        let (full_vals, full_vecs) = m.symmetric_eigen(50).unwrap();
        let k = 6;
        let (top_vals, top_vecs) = m.symmetric_eigen_topk(k, 50).unwrap();
        assert_eq!(top_vals.len(), n);
        assert_eq!(top_vecs.cols(), k);
        for j in 0..n {
            assert!(approx(top_vals[j], full_vals[j], 1e-10), "λ[{j}]");
        }
        for c in 0..k {
            for i in 0..n {
                assert!(
                    approx(top_vecs[(i, c)], full_vecs[(i, c)], 1e-7),
                    "vec {c} comp {i}: {} vs {}",
                    top_vecs[(i, c)],
                    full_vecs[(i, c)]
                );
            }
        }
    }

    #[test]
    fn topk_handles_degenerate_eigenvalues() {
        // diag(2, 2, 1): a degenerate pair; inverse iteration must still
        // return an orthonormal basis for the λ=2 eigenspace.
        let mut m = Matrix::zeros(3, 3);
        m[(0, 0)] = 2.0;
        m[(1, 1)] = 2.0;
        m[(2, 2)] = 1.0;
        let (vals, vecs) = m.symmetric_eigen_topk(2, 30).unwrap();
        assert!(approx(vals[0], 2.0, 1e-12));
        assert!(approx(vals[1], 2.0, 1e-12));
        let dot: f64 = (0..3).map(|i| vecs[(i, 0)] * vecs[(i, 1)]).sum();
        assert!(approx(dot, 0.0, 1e-8), "not orthogonal: {dot}");
        for c in 0..2 {
            let norm: f64 = (0..3)
                .map(|i| vecs[(i, c)] * vecs[(i, c)])
                .sum::<f64>()
                .sqrt();
            assert!(approx(norm, 1.0, 1e-8));
            // Both must lie in the span of e0, e1 (zero third component).
            assert!(approx(vecs[(2, c)], 0.0, 1e-8));
        }
    }

    #[test]
    fn topk_residual_is_small() {
        // ‖A v − λ v‖ must be tiny for every returned eigenpair.
        let n = 15usize;
        let m = Matrix::from_fn(n, n, |i, j| {
            let r = (i as f64 - j as f64).abs() / 3.0;
            (1.0 + r) * (-r).exp()
        });
        let (vals, vecs) = m.symmetric_eigen_topk(5, 50).unwrap();
        for c in 0..5 {
            let v: Vec<f64> = (0..n).map(|i| vecs[(i, c)]).collect();
            let av = m.matvec(&v);
            for i in 0..n {
                assert!(
                    approx(av[i], vals[c] * v[i], 1e-8),
                    "pair {c} comp {i}: {} vs {}",
                    av[i],
                    vals[c] * v[i]
                );
            }
        }
    }
}
