//! Minimal dense linear algebra: a row-major `Matrix`, Cholesky
//! factorisation, and a Jacobi symmetric eigensolver.
//!
//! The stochastic slip generator needs to factor covariance matrices built
//! from von Kármán correlations. Rather than pulling in a BLAS binding, we
//! implement the two factorisations FakeQuakes actually relies on:
//!
//! * **Cholesky** (with diagonal jitter fallback) for sampling correlated
//!   Gaussian fields, and
//! * **Jacobi eigendecomposition** for Karhunen–Loève mode truncation —
//!   the ablation in `DESIGN.md` compares the two.
//!
//! Matrices here are at most a few thousand square (one row/column per
//! subfault), for which the O(n^3) dense routines are perfectly adequate.

use crate::error::{FqError, FqResult};

/// A dense, row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a zero-filled matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Build from a row-major vector; `data.len()` must equal `rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> FqResult<Self> {
        if data.len() != rows * cols {
            return Err(FqError::Linalg(format!(
                "shape mismatch: {}x{} needs {} elements, got {}",
                rows,
                cols,
                rows * cols,
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consume into the underlying row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow one row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v) {
                acc += a * b;
            }
            *o = acc;
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Maximum absolute off-diagonal element (square matrices only);
    /// used as the Jacobi convergence criterion.
    fn max_offdiag(&self) -> (usize, usize, f64) {
        let mut best = (0usize, 1usize, 0.0f64);
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let v = self[(i, j)].abs();
                if v > best.2 {
                    best = (i, j, v);
                }
            }
        }
        best
    }

    /// Cholesky factorisation `A = L * L^T`, returning lower-triangular `L`.
    ///
    /// If the matrix is only marginally positive definite (common for dense
    /// correlation matrices with near-duplicate rows), retries with
    /// progressively larger diagonal jitter before giving up.
    pub fn cholesky(&self) -> FqResult<Matrix> {
        if self.rows != self.cols {
            return Err(FqError::Linalg("cholesky requires a square matrix".into()));
        }
        let n = self.rows;
        let mut jitter = 0.0;
        for attempt in 0..6 {
            match self.try_cholesky(jitter) {
                Ok(l) => return Ok(l),
                Err(_) if attempt < 5 => {
                    jitter = if jitter == 0.0 { 1e-10 } else { jitter * 100.0 };
                }
                Err(e) => return Err(e),
            }
        }
        Err(FqError::Linalg(format!(
            "matrix of size {n} not positive definite even with jitter"
        )))
    }

    fn try_cholesky(&self, jitter: f64) -> FqResult<Matrix> {
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(FqError::Linalg(format!(
                            "non-positive pivot {sum:e} at row {i}"
                        )));
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solve `A x = b` for symmetric positive-definite `A` via Cholesky
    /// (forward/back substitution). Used by the EEW regression's normal
    /// equations.
    pub fn solve_spd(&self, b: &[f64]) -> FqResult<Vec<f64>> {
        if self.rows != self.cols {
            return Err(FqError::Linalg("solve_spd requires a square matrix".into()));
        }
        if b.len() != self.rows {
            return Err(FqError::Linalg(format!(
                "rhs length {} != matrix size {}",
                b.len(),
                self.rows
            )));
        }
        let l = self.cholesky()?;
        let n = self.rows;
        // Forward: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= l[(i, k)] * y[k];
            }
            y[i] = s / l[(i, i)];
        }
        // Back: L^T x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= l[(k, i)] * x[k];
            }
            x[i] = s / l[(i, i)];
        }
        Ok(x)
    }

    /// Jacobi eigendecomposition of a symmetric matrix.
    ///
    /// Returns `(eigenvalues, eigenvectors)` sorted by descending
    /// eigenvalue; eigenvector `k` is column `k` of the returned matrix.
    pub fn symmetric_eigen(&self, max_sweeps: usize) -> FqResult<(Vec<f64>, Matrix)> {
        if self.rows != self.cols {
            return Err(FqError::Linalg("eigen requires a square matrix".into()));
        }
        let n = self.rows;
        if n == 0 {
            return Ok((Vec::new(), Matrix::zeros(0, 0)));
        }
        let mut a = self.clone();
        let mut v = Matrix::identity(n);
        let scale: f64 = self
            .data
            .iter()
            .fold(0.0f64, |m, x| m.max(x.abs()))
            .max(f64::MIN_POSITIVE);
        let tol = 1e-12 * scale;
        for _sweep in 0..max_sweeps * n * n {
            let (p, q, off) = a.max_offdiag();
            if off <= tol {
                break;
            }
            // Classic Jacobi rotation annihilating a[p][q].
            let app = a[(p, p)];
            let aqq = a[(q, q)];
            let apq = a[(p, q)];
            let theta = (aqq - app) / (2.0 * apq);
            let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
            let c = 1.0 / (t * t + 1.0).sqrt();
            let s = t * c;
            for k in 0..n {
                let akp = a[(k, p)];
                let akq = a[(k, q)];
                a[(k, p)] = c * akp - s * akq;
                a[(k, q)] = s * akp + c * akq;
            }
            for k in 0..n {
                let apk = a[(p, k)];
                let aqk = a[(q, k)];
                a[(p, k)] = c * apk - s * aqk;
                a[(q, k)] = s * apk + c * aqk;
            }
            for k in 0..n {
                let vkp = v[(k, p)];
                let vkq = v[(k, q)];
                v[(k, p)] = c * vkp - s * vkq;
                v[(k, q)] = s * vkp + c * vkq;
            }
        }
        let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a[(i, i)], i)).collect();
        pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap());
        let eigenvalues: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let eigenvectors = Matrix::from_fn(n, n, |i, k| v[(i, pairs[k].1)]);
        Ok((eigenvalues, eigenvectors))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn from_vec_checks_shape() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn identity_matvec_is_noop() {
        let m = Matrix::identity(4);
        let v = vec![1.0, -2.0, 3.5, 0.25];
        assert_eq!(m.matvec(&v), v);
    }

    #[test]
    fn matvec_known_values() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let out = m.matvec(&[1.0, 1.0, 1.0]);
        assert_eq!(out, vec![6.0, 15.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn cholesky_of_identity_is_identity() {
        let l = Matrix::identity(5).cholesky().unwrap();
        assert_eq!(l, Matrix::identity(5));
    }

    #[test]
    fn cholesky_reconstructs() {
        // SPD matrix A = B^T B + I
        let b = Matrix::from_fn(4, 4, |i, j| ((i + 2 * j) % 5) as f64 * 0.3);
        let bt = b.transpose();
        let mut a = Matrix::zeros(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                let mut s = if i == j { 1.0 } else { 0.0 };
                for k in 0..4 {
                    s += bt[(i, k)] * b[(k, j)];
                }
                a[(i, j)] = s;
            }
        }
        let l = a.cholesky().unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let mut s = 0.0;
                for k in 0..4 {
                    s += l[(i, k)] * l[(j, k)];
                }
                assert!(
                    approx(s, a[(i, j)], 1e-9),
                    "({i},{j}): {s} vs {}",
                    a[(i, j)]
                );
            }
        }
        // Upper triangle of L must be zero.
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn cholesky_rejects_nonsquare() {
        assert!(Matrix::zeros(2, 3).cholesky().is_err());
    }

    #[test]
    fn cholesky_negative_definite_fails() {
        let mut m = Matrix::identity(3);
        m[(0, 0)] = -5.0;
        assert!(m.cholesky().is_err());
    }

    #[test]
    fn solve_spd_recovers_known_solution() {
        // A = [[4,1],[1,3]], x = [1, 2], b = A x = [6, 7].
        let a = Matrix::from_vec(2, 2, vec![4.0, 1.0, 1.0, 3.0]).unwrap();
        let x = a.solve_spd(&[6.0, 7.0]).unwrap();
        assert!(approx(x[0], 1.0, 1e-10));
        assert!(approx(x[1], 2.0, 1e-10));
    }

    #[test]
    fn solve_spd_residual_is_small_for_random_spd() {
        let n = 6;
        let b = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 7) % 11) as f64 * 0.1);
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = if i == j { n as f64 } else { 0.0 };
                for k in 0..n {
                    s += b[(i, k)] * b[(j, k)];
                }
                a[(i, j)] = s;
            }
        }
        let rhs: Vec<f64> = (0..n).map(|i| i as f64 - 2.5).collect();
        let x = a.solve_spd(&rhs).unwrap();
        let ax = a.matvec(&x);
        for (got, want) in ax.iter().zip(&rhs) {
            assert!(approx(*got, *want, 1e-8), "{got} vs {want}");
        }
    }

    #[test]
    fn solve_spd_rejects_bad_shapes() {
        assert!(Matrix::zeros(2, 3).solve_spd(&[1.0, 2.0]).is_err());
        assert!(Matrix::identity(3).solve_spd(&[1.0]).is_err());
    }

    #[test]
    fn jacobi_diagonal_matrix() {
        let mut m = Matrix::zeros(3, 3);
        m[(0, 0)] = 3.0;
        m[(1, 1)] = 1.0;
        m[(2, 2)] = 2.0;
        let (vals, _) = m.symmetric_eigen(30).unwrap();
        assert!(approx(vals[0], 3.0, 1e-10));
        assert!(approx(vals[1], 2.0, 1e-10));
        assert!(approx(vals[2], 1.0, 1e-10));
    }

    #[test]
    fn jacobi_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let (vals, vecs) = m.symmetric_eigen(30).unwrap();
        assert!(approx(vals[0], 3.0, 1e-10));
        assert!(approx(vals[1], 1.0, 1e-10));
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let (x, y) = (vecs[(0, 0)], vecs[(1, 0)]);
        assert!(approx(x.abs(), y.abs(), 1e-8));
        assert!(approx(x.hypot(y), 1.0, 1e-8));
    }

    #[test]
    fn jacobi_reconstruction() {
        // Symmetric matrix; check A ≈ V diag(λ) V^T.
        let n = 6;
        let m = Matrix::from_fn(n, n, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let (vals, vecs) = m.symmetric_eigen(50).unwrap();
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += vecs[(i, k)] * vals[k] * vecs[(j, k)];
                }
                assert!(approx(s, m[(i, j)], 1e-8), "({i},{j})");
            }
        }
    }

    #[test]
    fn jacobi_empty_matrix() {
        let (vals, vecs) = Matrix::zeros(0, 0).symmetric_eigen(10).unwrap();
        assert!(vals.is_empty());
        assert_eq!(vecs.rows(), 0);
    }

    #[test]
    fn eigenvalue_sum_equals_trace() {
        let n = 8;
        let m = Matrix::from_fn(n, n, |i, j| (-((i as f64 - j as f64).powi(2)) / 4.0).exp());
        let (vals, _) = m.symmetric_eigen(50).unwrap();
        let trace: f64 = (0..n).map(|i| m[(i, i)]).sum();
        let sum: f64 = vals.iter().sum();
        assert!(approx(sum, trace, 1e-8), "sum={sum} trace={trace}");
    }
}
