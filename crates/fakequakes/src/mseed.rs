//! A MiniSEED-like record container for Green's function matrices and
//! waveforms — the `.mseed` artifacts of the B and C Phases.
//!
//! Real MiniSEED (FDSN SEED data records) carries channel time series in
//! fixed-size blockettes with Steim compression. We implement a simplified
//! but self-describing binary container (`FQMS` format) with the properties
//! the workflow depends on: multiple named channels per file, f64 payloads,
//! a CRC for transfer integrity (Stash cache validation), and sizes in the
//! hundreds-of-MB-to-GB range for full-input GF libraries.
//!
//! Layout (little-endian):
//! ```text
//! magic "FQMS" | u16 version | u16 n_records
//! per record: u16 code_len | code bytes | f64 dt_s | u32 n_samples
//!             | n_samples * f64 | u32 crc32
//! ```

use crate::error::{FqError, FqResult};

const MAGIC: &[u8; 4] = b"FQMS";
const VERSION: u16 = 1;

/// One named channel of samples (e.g. `CH042.LXE` for the east component).
#[derive(Debug, Clone, PartialEq)]
pub struct MseedRecord {
    /// Channel code, e.g. `CH042.LXE`.
    pub code: String,
    /// Sample interval, seconds.
    pub dt_s: f64,
    /// Sample payload.
    pub samples: Vec<f64>,
}

/// A container of records — one `.mseed` file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MseedFile {
    /// Records in file order.
    pub records: Vec<MseedRecord>,
}

impl MseedFile {
    /// Create an empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record.
    pub fn push(&mut self, code: impl Into<String>, dt_s: f64, samples: Vec<f64>) {
        self.records.push(MseedRecord {
            code: code.into(),
            dt_s,
            samples,
        });
    }

    /// Find a record by channel code.
    pub fn record(&self, code: &str) -> Option<&MseedRecord> {
        self.records.iter().find(|r| r.code == code)
    }

    /// Serialise to bytes.
    pub fn to_bytes(&self) -> FqResult<Vec<u8>> {
        if self.records.len() > u16::MAX as usize {
            return Err(FqError::Format(
                "too many records for one mseed file".into(),
            ));
        }
        let payload: usize = self
            .records
            .iter()
            .map(|r| 2 + r.code.len() + 8 + 4 + r.samples.len() * 8 + 4)
            .sum();
        let mut out = Vec::with_capacity(8 + payload);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u16).to_le_bytes());
        for r in &self.records {
            if r.code.len() > u16::MAX as usize {
                return Err(FqError::Format("channel code too long".into()));
            }
            out.extend_from_slice(&(r.code.len() as u16).to_le_bytes());
            out.extend_from_slice(r.code.as_bytes());
            out.extend_from_slice(&r.dt_s.to_le_bytes());
            out.extend_from_slice(&(r.samples.len() as u32).to_le_bytes());
            let data_start = out.len();
            for s in &r.samples {
                out.extend_from_slice(&s.to_le_bytes());
            }
            let crc = crc32(&out[data_start..]);
            out.extend_from_slice(&crc.to_le_bytes());
        }
        Ok(out)
    }

    /// Parse from bytes, verifying each record's CRC.
    pub fn from_bytes(bytes: &[u8]) -> FqResult<Self> {
        let mut cur = Cursor { bytes, pos: 0 };
        let magic = cur.take(4)?;
        if magic != MAGIC {
            return Err(FqError::Format("not an FQMS mseed file".into()));
        }
        let version = cur.u16()?;
        if version != VERSION {
            return Err(FqError::Format(format!(
                "unsupported FQMS version {version}"
            )));
        }
        let n = cur.u16()? as usize;
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let code_len = cur.u16()? as usize;
            let code = std::str::from_utf8(cur.take(code_len)?)
                .map_err(|_| FqError::Format("channel code not UTF-8".into()))?
                .to_string();
            let dt_s = cur.f64()?;
            let n_samples = cur.u32()? as usize;
            let data = cur.take(n_samples * 8)?;
            let expected = crc32(data);
            let mut samples = Vec::with_capacity(n_samples);
            for chunk in data.chunks_exact(8) {
                samples.push(f64::from_le_bytes(chunk.try_into().unwrap()));
            }
            let stored = cur.u32()?;
            if stored != expected {
                return Err(FqError::Format(format!(
                    "CRC mismatch in record '{code}': stored {stored:#010x}, computed {expected:#010x}"
                )));
            }
            records.push(MseedRecord {
                code,
                dt_s,
                samples,
            });
        }
        Ok(Self { records })
    }

    /// Write to a file on disk.
    pub fn write(&self, path: &std::path::Path) -> FqResult<()> {
        std::fs::write(path, self.to_bytes()?)?;
        Ok(())
    }

    /// Read from a file on disk.
    pub fn read(path: &std::path::Path) -> FqResult<Self> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Total serialised size in bytes without materialising the buffer.
    pub fn nbytes(&self) -> usize {
        8 + self
            .records
            .iter()
            .map(|r| 2 + r.code.len() + 8 + 4 + r.samples.len() * 8 + 4)
            .sum::<usize>()
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> FqResult<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(FqError::Format(format!(
                "truncated FQMS file at offset {}",
                self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> FqResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> FqResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> FqResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-free
/// bitwise implementation — transfer-integrity checks are not hot.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn empty_file_roundtrip() {
        let f = MseedFile::new();
        let back = MseedFile::from_bytes(&f.to_bytes().unwrap()).unwrap();
        assert!(back.records.is_empty());
    }

    #[test]
    fn multi_record_roundtrip() {
        let mut f = MseedFile::new();
        f.push("CH000.LXE", 1.0, vec![0.1, -0.2, 0.3]);
        f.push("CH000.LXN", 1.0, vec![]);
        f.push("CH000.LXZ", 0.5, vec![f64::MAX, f64::MIN, 1e-300]);
        let bytes = f.to_bytes().unwrap();
        let back = MseedFile::from_bytes(&bytes).unwrap();
        assert_eq!(back, f);
        assert_eq!(bytes.len(), f.nbytes());
    }

    #[test]
    fn record_lookup() {
        let mut f = MseedFile::new();
        f.push("A", 1.0, vec![1.0]);
        f.push("B", 1.0, vec![2.0]);
        assert_eq!(f.record("B").unwrap().samples, vec![2.0]);
        assert!(f.record("C").is_none());
    }

    #[test]
    fn corruption_detected_by_crc() {
        let mut f = MseedFile::new();
        f.push("CH000.LXE", 1.0, vec![1.0, 2.0, 3.0, 4.0]);
        let mut bytes = f.to_bytes().unwrap();
        // Flip a bit inside the sample payload (after header+code+dt+len).
        let idx = bytes.len() - 12; // inside the last sample
        bytes[idx] ^= 0x01;
        let err = MseedFile::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("CRC mismatch"), "{err}");
    }

    #[test]
    fn truncation_detected() {
        let mut f = MseedFile::new();
        f.push("CH000.LXE", 1.0, vec![1.0, 2.0]);
        let bytes = f.to_bytes().unwrap();
        for cut in [3, 7, 10, bytes.len() - 1] {
            assert!(
                MseedFile::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(MseedFile::from_bytes(b"XXXX\x01\x00\x00\x00").is_err());
    }

    #[test]
    fn file_io_roundtrip() {
        let dir = std::env::temp_dir().join("fq_mseed_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gf.mseed");
        let mut f = MseedFile::new();
        f.push(
            "CH001.GF",
            1.0,
            (0..1000).map(|i| i as f64 * 0.001).collect(),
        );
        f.write(&path).unwrap();
        assert_eq!(MseedFile::read(&path).unwrap(), f);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nbytes_matches_serialized_length() {
        let mut f = MseedFile::new();
        f.push("LONG.CHANNEL.CODE", 2.0, vec![0.0; 137]);
        f.push("S", 0.1, vec![1.0; 3]);
        assert_eq!(f.to_bytes().unwrap().len(), f.nbytes());
    }
}
