//! GNSS noise model.
//!
//! Real-time high-rate GNSS positions carry centimetre-level noise with a
//! characteristic coloured spectrum (Melgar et al. 2020): white noise plus
//! a random-walk component and occasional multipath-like low-frequency
//! wander. Waveforms synthesised without noise would make downstream EEW
//! training data unrealistically clean, so the C Phase adds this model.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::stochastic::standard_normal;

/// Parameters of the GNSS noise generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// White-noise standard deviation per sample, metres. Horizontal
    /// components of real-time GNSS sit near 5–10 mm.
    pub white_sigma_m: f64,
    /// Random-walk increment standard deviation per sample, metres.
    pub walk_sigma_m: f64,
    /// Amplitude of slow sinusoidal multipath wander, metres.
    pub multipath_amp_m: f64,
    /// Period of the multipath wander, seconds.
    pub multipath_period_s: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self {
            white_sigma_m: 0.007,
            walk_sigma_m: 0.0004,
            multipath_amp_m: 0.004,
            multipath_period_s: 300.0,
        }
    }
}

impl NoiseModel {
    /// A noiseless model (useful for tests and clean benchmarks).
    pub fn none() -> Self {
        Self {
            white_sigma_m: 0.0,
            walk_sigma_m: 0.0,
            multipath_amp_m: 0.0,
            multipath_period_s: 300.0,
        }
    }

    /// Vertical components are noisier; scale a horizontal model up by the
    /// canonical ~3x factor.
    pub fn vertical(&self) -> Self {
        Self {
            white_sigma_m: self.white_sigma_m * 3.0,
            walk_sigma_m: self.walk_sigma_m * 3.0,
            multipath_amp_m: self.multipath_amp_m * 2.0,
            multipath_period_s: self.multipath_period_s,
        }
    }

    /// Generate `n` noise samples at `dt_s` spacing, deterministically from
    /// `seed`.
    pub fn generate(&self, n: usize, dt_s: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x004e_4f49_5345_u64);
        let mut out = Vec::with_capacity(n);
        let mut walk = 0.0;
        let phase = standard_normal(&mut rng) * std::f64::consts::PI;
        for i in 0..n {
            let t = i as f64 * dt_s;
            walk += self.walk_sigma_m * standard_normal(&mut rng);
            let white = self.white_sigma_m * standard_normal(&mut rng);
            let mp = self.multipath_amp_m
                * (2.0 * std::f64::consts::PI * t / self.multipath_period_s + phase).sin();
            out.push(white + walk + mp);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stochastic::field_stats;

    #[test]
    fn none_model_is_silent() {
        let noise = NoiseModel::none().generate(100, 1.0, 1);
        assert!(noise.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let m = NoiseModel::default();
        assert_eq!(m.generate(64, 1.0, 9), m.generate(64, 1.0, 9));
        assert_ne!(m.generate(64, 1.0, 9), m.generate(64, 1.0, 10));
    }

    #[test]
    fn amplitude_near_configured_level() {
        let m = NoiseModel::default();
        let noise = m.generate(4096, 1.0, 3);
        let st = field_stats(&noise);
        // Whole-series std is dominated by white noise plus accumulated
        // walk; must be within an order of magnitude of the white level.
        assert!(st.std > 0.003 && st.std < 0.06, "std {}", st.std);
    }

    #[test]
    fn vertical_noisier_than_horizontal() {
        let h = NoiseModel::default();
        let v = h.vertical();
        assert!(v.white_sigma_m > h.white_sigma_m * 2.5);
        let hs = field_stats(&h.generate(2048, 1.0, 4));
        let vs = field_stats(&v.generate(2048, 1.0, 4));
        assert!(vs.std > hs.std);
    }

    #[test]
    fn random_walk_accumulates() {
        let m = NoiseModel {
            white_sigma_m: 0.0,
            walk_sigma_m: 0.01,
            multipath_amp_m: 0.0,
            multipath_period_s: 300.0,
        };
        let noise = m.generate(10_000, 1.0, 5);
        let early = field_stats(&noise[..100]);
        let late = field_stats(&noise[9000..]);
        // Variance of a random walk grows with time, so the late window
        // wanders farther from zero than the early one.
        assert!(late.mean.abs() + late.std > early.mean.abs() + early.std);
    }

    #[test]
    fn length_matches_request() {
        assert_eq!(NoiseModel::default().generate(0, 1.0, 1).len(), 0);
        assert_eq!(NoiseModel::default().generate(512, 1.0, 1).len(), 512);
    }
}
