//! Minimal NPY v1.0 reader/writer for 2-D `f64` arrays.
//!
//! The FDW ships MudPy's recyclable distance matrices as `.npy` files
//! through the Stash cache; this module produces byte-compatible files
//! (NumPy format spec v1.0, little-endian `<f8`, C order) without a NumPy
//! dependency, so artifacts round-trip between this implementation and the
//! original Python tooling.

use crate::error::{FqError, FqResult};
use crate::linalg::Matrix;

const MAGIC: &[u8; 6] = b"\x93NUMPY";

/// Serialise a matrix to NPY v1.0 bytes.
pub fn to_npy_bytes(m: &Matrix) -> Vec<u8> {
    let header_body = format!(
        "{{'descr': '<f8', 'fortran_order': False, 'shape': ({}, {}), }}",
        m.rows(),
        m.cols()
    );
    // Header (including trailing newline) must pad the total preamble to a
    // multiple of 64 bytes.
    let preamble_len = MAGIC.len() + 2 + 2; // magic + version + u16 header len
    let mut header = header_body.into_bytes();
    let total = preamble_len + header.len() + 1;
    let pad = (64 - total % 64) % 64;
    header.extend(std::iter::repeat_n(b' ', pad));
    header.push(b'\n');

    let mut out = Vec::with_capacity(preamble_len + header.len() + m.as_slice().len() * 8);
    out.extend_from_slice(MAGIC);
    out.push(1); // major version
    out.push(0); // minor version
    out.extend_from_slice(&(header.len() as u16).to_le_bytes());
    out.extend_from_slice(&header);
    for v in m.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Parse NPY v1.0 bytes into a matrix. Only `<f8`, C-order, 2-D arrays are
/// accepted (which is all MudPy's distance matrices ever are).
pub fn from_npy_bytes(bytes: &[u8]) -> FqResult<Matrix> {
    if bytes.len() < 10 || &bytes[..6] != MAGIC {
        return Err(FqError::Format("not an NPY file (bad magic)".into()));
    }
    let (major, _minor) = (bytes[6], bytes[7]);
    if major != 1 {
        return Err(FqError::Format(format!("unsupported NPY version {major}")));
    }
    let hlen = u16::from_le_bytes([bytes[8], bytes[9]]) as usize;
    if bytes.len() < 10 + hlen {
        return Err(FqError::Format("truncated NPY header".into()));
    }
    let header = std::str::from_utf8(&bytes[10..10 + hlen])
        .map_err(|_| FqError::Format("NPY header not UTF-8".into()))?;
    if !header.contains("'<f8'") {
        return Err(FqError::Format("only '<f8' dtype supported".into()));
    }
    if header.contains("'fortran_order': True") {
        return Err(FqError::Format("fortran order not supported".into()));
    }
    let shape = parse_shape(header)?;
    let (rows, cols) = shape;
    let data_start = 10 + hlen;
    let need = rows * cols * 8;
    let data = &bytes[data_start..];
    if data.len() < need {
        return Err(FqError::Format(format!(
            "NPY data truncated: need {need} bytes, have {}",
            data.len()
        )));
    }
    let mut values = Vec::with_capacity(rows * cols);
    for chunk in data[..need].chunks_exact(8) {
        values.push(f64::from_le_bytes(chunk.try_into().unwrap()));
    }
    Matrix::from_vec(rows, cols, values)
}

/// Extract `(rows, cols)` from the header's `'shape': (r, c)` entry.
fn parse_shape(header: &str) -> FqResult<(usize, usize)> {
    let start = header
        .find("'shape':")
        .ok_or_else(|| FqError::Format("NPY header missing shape".into()))?;
    let open = header[start..]
        .find('(')
        .ok_or_else(|| FqError::Format("NPY shape missing '('".into()))?
        + start;
    let close = header[open..]
        .find(')')
        .ok_or_else(|| FqError::Format("NPY shape missing ')'".into()))?
        + open;
    let inner = &header[open + 1..close];
    let dims: Vec<usize> = inner
        .split(',')
        .map(|t| t.trim())
        .filter(|t| !t.is_empty())
        .map(|t| {
            t.parse::<usize>()
                .map_err(|_| FqError::Format(format!("bad NPY dimension '{t}'")))
        })
        .collect::<FqResult<_>>()?;
    match dims.as_slice() {
        [r, c] => Ok((*r, *c)),
        [r] => Ok((*r, 1)),
        _ => Err(FqError::Format(format!(
            "only 1-D/2-D NPY supported, got {} dims",
            dims.len()
        ))),
    }
}

/// Write a matrix to an `.npy` file on disk.
pub fn write_npy(path: &std::path::Path, m: &Matrix) -> FqResult<()> {
    std::fs::write(path, to_npy_bytes(m))?;
    Ok(())
}

/// Read a matrix from an `.npy` file on disk.
pub fn read_npy(path: &std::path::Path) -> FqResult<Matrix> {
    let bytes = std::fs::read(path)?;
    from_npy_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small_matrix() {
        let m = Matrix::from_fn(3, 5, |i, j| i as f64 * 10.0 + j as f64 + 0.25);
        let bytes = to_npy_bytes(&m);
        let back = from_npy_bytes(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn preamble_is_64_byte_aligned() {
        let m = Matrix::zeros(2, 2);
        let bytes = to_npy_bytes(&m);
        let hlen = u16::from_le_bytes([bytes[8], bytes[9]]) as usize;
        assert_eq!((10 + hlen) % 64, 0);
        // Data must start right after the header.
        assert_eq!(bytes.len(), 10 + hlen + 4 * 8);
    }

    #[test]
    fn magic_and_version_bytes() {
        let bytes = to_npy_bytes(&Matrix::zeros(1, 1));
        assert_eq!(&bytes[..6], b"\x93NUMPY");
        assert_eq!(bytes[6], 1);
        assert_eq!(bytes[7], 0);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(from_npy_bytes(b"NOTNPYxxxxxxx").is_err());
        assert!(from_npy_bytes(b"").is_err());
    }

    #[test]
    fn rejects_truncated_data() {
        let m = Matrix::from_fn(4, 4, |i, j| (i + j) as f64);
        let bytes = to_npy_bytes(&m);
        assert!(from_npy_bytes(&bytes[..bytes.len() - 8]).is_err());
    }

    #[test]
    fn rejects_unsupported_dtype() {
        let mut bytes = to_npy_bytes(&Matrix::zeros(1, 1));
        // Corrupt the dtype string in place.
        let pos = bytes.windows(4).position(|w| w == b"<f8'").unwrap();
        bytes[pos..pos + 3].copy_from_slice(b"<i4");
        assert!(from_npy_bytes(&bytes).is_err());
    }

    #[test]
    fn one_dimensional_shape_becomes_column() {
        // Hand-craft a 1-D header.
        let m = Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]).unwrap();
        let mut bytes = to_npy_bytes(&m);
        // Rewrite "(3, 1)" to "(3,)" — same byte count not required since we
        // rebuild the header; easier: parse_shape directly.
        assert_eq!(parse_shape("{'shape': (3,), }").unwrap(), (3, 1));
        assert_eq!(parse_shape("{'shape': (3, 4), }").unwrap(), (3, 4));
        assert!(parse_shape("{'shape': (3, 4, 5), }").is_err());
        assert!(parse_shape("{'noshape': 1}").is_err());
        // And the original 2-D roundtrip still works.
        bytes.truncate(bytes.len());
        assert_eq!(from_npy_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("fq_npy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dist.npy");
        let m = Matrix::from_fn(7, 7, |i, j| ((i * 31 + j) % 13) as f64 / 3.0);
        write_npy(&path, &m).unwrap();
        let back = read_npy(&path).unwrap();
        assert_eq!(back, m);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn special_values_roundtrip() {
        let m = Matrix::from_vec(1, 4, vec![f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0]).unwrap();
        let back = from_npy_bytes(&to_npy_bytes(&m)).unwrap();
        assert_eq!(back.as_slice()[0], f64::INFINITY);
        assert_eq!(back.as_slice()[1], f64::NEG_INFINITY);
    }
}
