//! Okada (1985) surface displacements of a rectangular dislocation in an
//! elastic half-space — the analytic Green's functions MudPy uses for
//! static deformation.
//!
//! Implements equations (25)–(30) of Okada, *Surface deformation due to
//! shear and tensile faults in a half-space*, BSSA 75(4), 1985, for
//! observation points on the free surface (z = 0), in the fault-local
//! coordinate system: x along strike, y horizontal perpendicular to
//! strike (footwall → hanging wall), fault upper edge at depth `d`,
//! extending `length` along strike (0 ≤ ξ ≤ L) and `width` down dip.
//! Verified against the check values in Okada's Table 2.

/// Slip components on the fault plane, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Dislocation {
    /// Strike-slip component U1.
    pub strike_slip: f64,
    /// Dip-slip component U2 (positive = reverse/thrust).
    pub dip_slip: f64,
    /// Tensile opening U3.
    pub tensile: f64,
}

/// Surface displacement in the fault-local frame: `x` along strike, `y`
/// perpendicular, `z` up. Metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SurfaceDisplacement {
    /// Along-strike displacement.
    pub x: f64,
    /// Strike-perpendicular displacement.
    pub y: f64,
    /// Vertical displacement (positive up).
    pub z: f64,
}

/// Medium constant μ/(λ+μ); 0.5 for a Poisson solid (λ = μ), which is
/// what MudPy assumes.
pub const POISSON_ALPHA: f64 = 0.5;

/// Compute the surface displacement at `(x, y)` (fault-local km or any
/// consistent unit) for a rectangular fault of `length × width` with its
/// upper edge at depth `d`, dipping `dip_deg`, carrying `slip`.
///
/// All lengths share one unit; displacements come out in the slip's unit.
#[allow(clippy::too_many_arguments)]
pub fn rectangular_dislocation(
    x: f64,
    y: f64,
    d: f64,
    length: f64,
    width: f64,
    dip_deg: f64,
    slip: &Dislocation,
    alpha: f64,
) -> SurfaceDisplacement {
    assert!(d >= 0.0, "upper edge must be at or below the surface");
    assert!(
        length > 0.0 && width > 0.0,
        "fault must have positive extent"
    );
    let dip = dip_deg.to_radians();
    let (sd, cd) = (dip.sin(), dip.cos());
    let p = y * cd + d * sd;
    let q = y * sd - d * cd;

    // Chinnery double difference f(ξ,η)‖.
    let chinnery = |f: &dyn Fn(f64, f64) -> f64| -> f64 {
        f(x, p) - f(x, p - width) - f(x - length, p) + f(x - length, p - width)
    };

    // Shared sub-expressions per (ξ, η) evaluation.
    struct Terms {
        r: f64,
        ytil: f64,
        dtil: f64,
        atan_term: f64,
        i1: f64,
        i2: f64,
        i3: f64,
        i4: f64,
        i5: f64,
    }
    let eval = |xi: f64, eta: f64| -> Terms {
        let r = (xi * xi + eta * eta + q * q).sqrt();
        let ytil = eta * cd + q * sd;
        let dtil = eta * sd - q * cd;
        let big_x = (xi * xi + q * q).sqrt();
        // atan(ξη/(qR)): zero in the q→0 limit.
        let atan_term = if q.abs() < 1e-14 {
            0.0
        } else {
            (xi * eta / (q * r)).atan()
        };
        // ln(R+η) has a removable singularity when R+η→0 (observation
        // aligned behind the fault edge); use the standard replacement
        // −ln(R−η).
        let ln_r_eta = if (r + eta).abs() < 1e-14 {
            -((r - eta).ln())
        } else {
            (r + eta).ln()
        };
        let (i1, i2, i3, i4, i5);
        if cd.abs() > 1e-10 {
            i5 = if xi.abs() < 1e-14 {
                0.0
            } else {
                alpha * 2.0 / cd
                    * ((eta * (big_x + q * cd) + big_x * (r + big_x) * sd)
                        / (xi * (r + big_x) * cd))
                        .atan()
            };
            i4 = alpha / cd * ((r + dtil).ln() - sd * ln_r_eta);
            i3 = alpha * (ytil / (cd * (r + dtil)) - ln_r_eta) + sd / cd * i4;
            i1 = alpha * (-xi / (cd * (r + dtil))) - sd / cd * i5;
            i2 = alpha * (-ln_r_eta) - i3;
        } else {
            // Vertical fault (cos δ = 0) limits, Okada eq. (29).
            let rd = r + dtil;
            i1 = -alpha / 2.0 * xi * q / (rd * rd);
            i3 = alpha / 2.0 * (eta / rd + ytil * q / (rd * rd) - ln_r_eta);
            i2 = alpha * (-ln_r_eta) - i3;
            i4 = -alpha * q / rd;
            i5 = -alpha * xi * sd / rd;
        }
        let _ = ln_r_eta;
        Terms {
            r,
            ytil,
            dtil,
            atan_term,
            i1,
            i2,
            i3,
            i4,
            i5,
        }
    };

    let mut out = SurfaceDisplacement::default();

    if slip.strike_slip != 0.0 {
        let f_x = |xi: f64, eta: f64| {
            let t = eval(xi, eta);
            xi * q / (t.r * (t.r + eta)) + t.atan_term + t.i1 * sd
        };
        let f_y = |xi: f64, eta: f64| {
            let t = eval(xi, eta);
            t.ytil * q / (t.r * (t.r + eta)) + q * cd / (t.r + eta) + t.i2 * sd
        };
        let f_z = |xi: f64, eta: f64| {
            let t = eval(xi, eta);
            t.dtil * q / (t.r * (t.r + eta)) + q * sd / (t.r + eta) + t.i4 * sd
        };
        let u1 = slip.strike_slip / (2.0 * std::f64::consts::PI);
        out.x -= u1 * chinnery(&f_x);
        out.y -= u1 * chinnery(&f_y);
        out.z -= u1 * chinnery(&f_z);
    }

    if slip.dip_slip != 0.0 {
        let f_x = |xi: f64, eta: f64| {
            let t = eval(xi, eta);
            q / t.r - t.i3 * sd * cd
        };
        let f_y = |xi: f64, eta: f64| {
            let t = eval(xi, eta);
            t.ytil * q / (t.r * (t.r + xi)) + cd * t.atan_term - t.i1 * sd * cd
        };
        let f_z = |xi: f64, eta: f64| {
            let t = eval(xi, eta);
            t.dtil * q / (t.r * (t.r + xi)) + sd * t.atan_term - t.i5 * sd * cd
        };
        let u2 = slip.dip_slip / (2.0 * std::f64::consts::PI);
        out.x -= u2 * chinnery(&f_x);
        out.y -= u2 * chinnery(&f_y);
        out.z -= u2 * chinnery(&f_z);
    }

    if slip.tensile != 0.0 {
        let f_x = |xi: f64, eta: f64| {
            let t = eval(xi, eta);
            q * q / (t.r * (t.r + eta)) - t.i3 * sd * sd
        };
        let f_y = |xi: f64, eta: f64| {
            let t = eval(xi, eta);
            -t.dtil * q / (t.r * (t.r + xi))
                - sd * (xi * q / (t.r * (t.r + eta)) - t.atan_term)
                - t.i1 * sd * sd
        };
        let f_z = |xi: f64, eta: f64| {
            let t = eval(xi, eta);
            t.ytil * q / (t.r * (t.r + xi)) + cd * (xi * q / (t.r * (t.r + eta)) - t.atan_term)
                - t.i5 * sd * sd
        };
        let u3 = slip.tensile / (2.0 * std::f64::consts::PI);
        out.x += u3 * chinnery(&f_x);
        out.y += u3 * chinnery(&f_y);
        out.z += u3 * chinnery(&f_z);
    }

    // Suppress the unused warning when some slip modes are zero.
    let _ = SurfaceDisplacement::default();
    out
}

/// Rotate a fault-local displacement into East/North/Up given the fault
/// strike (degrees clockwise from North). Fault-local x points along
/// strike, y points in the hanging-wall direction (90° clockwise from
/// strike).
pub fn to_enu(strike_deg: f64, u: &SurfaceDisplacement) -> (f64, f64, f64) {
    let s = strike_deg.to_radians();
    let (sin_s, cos_s) = (s.sin(), s.cos());
    // Strike unit vector (E, N) = (sin s, cos s); perpendicular
    // (hanging-wall side) = (cos s, -sin s).
    let e = u.x * sin_s + u.y * cos_s;
    let n = u.x * cos_s - u.y * sin_s;
    (e, n, u.z)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Okada (1985) Table 2, case 2: x=2, y=3, d=4, δ=70°, L=3, W=2.
    /// Published check values for unit slip in each mode.
    const X: f64 = 2.0;
    const Y: f64 = 3.0;
    const D: f64 = 4.0;
    const DIP: f64 = 70.0;
    const L: f64 = 3.0;
    const W: f64 = 2.0;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn okada_table2_strike_slip() {
        let u = rectangular_dislocation(
            X,
            Y,
            D,
            L,
            W,
            DIP,
            &Dislocation {
                strike_slip: 1.0,
                ..Default::default()
            },
            POISSON_ALPHA,
        );
        assert!(close(u.x, -8.689e-3, 1e-6), "ux {}", u.x);
        assert!(close(u.y, -4.298e-3, 1e-6), "uy {}", u.y);
        assert!(close(u.z, -2.747e-3, 1e-6), "uz {}", u.z);
    }

    #[test]
    fn okada_table2_dip_slip() {
        let u = rectangular_dislocation(
            X,
            Y,
            D,
            L,
            W,
            DIP,
            &Dislocation {
                dip_slip: 1.0,
                ..Default::default()
            },
            POISSON_ALPHA,
        );
        assert!(close(u.x, -4.682e-3, 1e-6), "ux {}", u.x);
        assert!(close(u.y, -3.527e-2, 1e-5), "uy {}", u.y);
        assert!(close(u.z, -3.564e-2, 1e-5), "uz {}", u.z);
    }

    #[test]
    fn okada_table2_tensile() {
        let u = rectangular_dislocation(
            X,
            Y,
            D,
            L,
            W,
            DIP,
            &Dislocation {
                tensile: 1.0,
                ..Default::default()
            },
            POISSON_ALPHA,
        );
        assert!(close(u.x, -2.660e-4, 1e-6), "ux {}", u.x);
        assert!(close(u.y, 1.056e-2, 1e-5), "uy {}", u.y);
        assert!(close(u.z, 3.214e-3, 1e-6), "uz {}", u.z);
    }

    #[test]
    fn displacement_decays_with_distance() {
        let slip = Dislocation {
            dip_slip: 1.0,
            ..Default::default()
        };
        let near = rectangular_dislocation(1.5, 5.0, 4.0, 3.0, 2.0, 20.0, &slip, 0.5);
        let far = rectangular_dislocation(1.5, 80.0, 4.0, 3.0, 2.0, 20.0, &slip, 0.5);
        let mag = |u: &SurfaceDisplacement| (u.x * u.x + u.y * u.y + u.z * u.z).sqrt();
        assert!(mag(&near) > mag(&far) * 20.0);
    }

    #[test]
    fn thrust_uplifts_hanging_wall() {
        // A shallow thrust: the surface above/ahead of the fault (positive
        // y, hanging-wall side) goes up.
        let slip = Dislocation {
            dip_slip: 1.0,
            ..Default::default()
        };
        let u = rectangular_dislocation(5.0, 8.0, 2.0, 10.0, 8.0, 20.0, &slip, 0.5);
        assert!(u.z > 0.0, "hanging wall must rise, got {}", u.z);
    }

    #[test]
    fn superposition_of_modes() {
        let both = rectangular_dislocation(
            X,
            Y,
            D,
            L,
            W,
            DIP,
            &Dislocation {
                strike_slip: 0.7,
                dip_slip: 1.3,
                tensile: 0.0,
            },
            POISSON_ALPHA,
        );
        let ss = rectangular_dislocation(
            X,
            Y,
            D,
            L,
            W,
            DIP,
            &Dislocation {
                strike_slip: 0.7,
                ..Default::default()
            },
            POISSON_ALPHA,
        );
        let ds = rectangular_dislocation(
            X,
            Y,
            D,
            L,
            W,
            DIP,
            &Dislocation {
                dip_slip: 1.3,
                ..Default::default()
            },
            POISSON_ALPHA,
        );
        assert!(close(both.x, ss.x + ds.x, 1e-12));
        assert!(close(both.y, ss.y + ds.y, 1e-12));
        assert!(close(both.z, ss.z + ds.z, 1e-12));
    }

    #[test]
    fn linear_in_slip_amplitude() {
        let one = rectangular_dislocation(
            X,
            Y,
            D,
            L,
            W,
            DIP,
            &Dislocation {
                dip_slip: 1.0,
                ..Default::default()
            },
            POISSON_ALPHA,
        );
        let three = rectangular_dislocation(
            X,
            Y,
            D,
            L,
            W,
            DIP,
            &Dislocation {
                dip_slip: 3.0,
                ..Default::default()
            },
            POISSON_ALPHA,
        );
        assert!(close(three.z, 3.0 * one.z, 1e-12));
    }

    #[test]
    fn vertical_fault_branch_is_finite() {
        let slip = Dislocation {
            strike_slip: 1.0,
            dip_slip: 1.0,
            tensile: 0.5,
        };
        let u = rectangular_dislocation(1.0, 2.0, 3.0, 4.0, 2.0, 90.0, &slip, 0.5);
        assert!(u.x.is_finite() && u.y.is_finite() && u.z.is_finite());
        // Must differ from a shallow-dip result.
        let v = rectangular_dislocation(1.0, 2.0, 3.0, 4.0, 2.0, 10.0, &slip, 0.5);
        assert!((u.z - v.z).abs() > 1e-6);
    }

    #[test]
    fn enu_rotation_preserves_norm_and_vertical() {
        let u = SurfaceDisplacement {
            x: 0.3,
            y: -0.4,
            z: 0.12,
        };
        for strike in [0.0, 10.0, 90.0, 215.0] {
            let (e, n, z) = to_enu(strike, &u);
            assert!(close(z, u.z, 1e-15));
            assert!(close(
                (e * e + n * n).sqrt(),
                (u.x * u.x + u.y * u.y).sqrt(),
                1e-12
            ));
        }
        // Strike 0 (due North): local x maps to North.
        let (e, n, _) = to_enu(
            0.0,
            &SurfaceDisplacement {
                x: 1.0,
                y: 0.0,
                z: 0.0,
            },
        );
        assert!(close(n, 1.0, 1e-12) && close(e, 0.0, 1e-12));
        // Strike 90 (due East): local x maps to East.
        let (e, n, _) = to_enu(
            90.0,
            &SurfaceDisplacement {
                x: 1.0,
                y: 0.0,
                z: 0.0,
            },
        );
        assert!(close(e, 1.0, 1e-12) && close(n, 0.0, 1e-12));
    }

    #[test]
    #[should_panic(expected = "positive extent")]
    fn zero_extent_rejected() {
        rectangular_dislocation(0.0, 0.0, 1.0, 0.0, 1.0, 30.0, &Dislocation::default(), 0.5);
    }
}
