//! Deterministic fork-join helpers for the numeric kernels.
//!
//! Every parallel kernel in this crate fans out through these helpers,
//! which split index ranges at **fixed midpoints** (never work-stealing
//! chunks of runtime-dependent size) and hand each leaf a disjoint
//! mutable slice of the output. Because each output element is a pure
//! function of the inputs and no reduction crosses a split point, the
//! parallel result is byte-identical to the sequential one — the
//! property `tests/determinism.rs` pins and DESIGN.md §8 documents.
//!
//! With one available core (or `RAYON_NUM_THREADS=1`) every helper runs
//! the plain sequential loop, so single-slot grid jobs pay no spawn
//! overhead.

/// Minimum number of leaf elements below which fan-out never pays.
const MIN_LEAF: usize = 1;

/// Chunk size that splits `len` items into roughly `4 × threads` leaves,
/// clamped so a leaf never holds fewer than `min_chunk` items.
pub fn chunk_for(len: usize, min_chunk: usize) -> usize {
    let threads = rayon::current_num_threads();
    let target = len.div_ceil((threads * 4).max(1));
    target.max(min_chunk.max(MIN_LEAF))
}

/// Apply `f(first_index, chunk)` over disjoint `chunk`-sized pieces of
/// `out`, in parallel via recursive [`rayon::join`] with deterministic
/// split points. `f` receives the index of the chunk's first element in
/// `out` plus the mutable chunk itself.
pub fn for_each_chunk<T, F>(out: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk = chunk.max(1);
    if rayon::current_num_threads() <= 1 || out.len() <= chunk {
        for (c, piece) in out.chunks_mut(chunk).enumerate() {
            f(c * chunk, piece);
        }
        return;
    }
    recurse(0, out, chunk, &f);
}

fn recurse<T, F>(start: usize, out: &mut [T], chunk: usize, f: &F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if out.len() <= chunk {
        f(start, out);
        return;
    }
    // Split on a chunk boundary at (or just past) the midpoint so leaf
    // extents depend only on (len, chunk), never on thread scheduling.
    let half_chunks = out.len().div_ceil(chunk) / 2;
    let mid = (half_chunks.max(1) * chunk).min(out.len());
    let (lo, hi) = out.split_at_mut(mid);
    rayon::join(
        || recurse(start, lo, chunk, f),
        || recurse(start + mid, hi, chunk, f),
    );
}

/// Parallel ordered map: `(0..n).map(f).collect()` with the work fanned
/// out through [`for_each_chunk`]. Results come back in index order.
pub fn map_indexed<T, F>(n: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if rayon::current_num_threads() <= 1 || n <= min_chunk.max(1) {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for_each_chunk(&mut slots, chunk_for(n, min_chunk), |start, piece| {
        for (k, slot) in piece.iter_mut().enumerate() {
            *slot = Some(f(start + k));
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("map_indexed leaf skipped a slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_every_index_once() {
        for n in [0usize, 1, 7, 64, 1000] {
            for chunk in [1usize, 3, 16, 1024] {
                let mut hits = vec![0u32; n];
                for_each_chunk(&mut hits, chunk, |start, piece| {
                    for (k, h) in piece.iter_mut().enumerate() {
                        *h += (start + k + 1) as u32;
                    }
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(*h, (i + 1) as u32, "n={n} chunk={chunk} i={i}");
                }
            }
        }
    }

    #[test]
    fn map_indexed_is_ordered() {
        let v = map_indexed(257, 8, |i| i * i);
        let s: Vec<usize> = (0..257).map(|i| i * i).collect();
        assert_eq!(v, s);
        assert!(map_indexed(0, 1, |i| i).is_empty());
    }

    #[test]
    fn chunk_for_never_below_min() {
        assert!(chunk_for(1000, 32) >= 32);
        assert!(chunk_for(0, 1) >= 1);
    }
}
