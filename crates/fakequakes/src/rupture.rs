//! Rupture scenario generation — the A Phase's science payload.
//!
//! A `RuptureScenario` is one synthetic earthquake: a target magnitude, a
//! contiguous rupture patch on the fault mesh, a correlated stochastic slip
//! distribution rescaled to the target moment, a hypocentre, kinematic
//! onset times from a constant rupture velocity with stochastic
//! perturbation, and slip-dependent rise times. This mirrors the MudPy
//! `fakequakes` generator (Melgar et al. 2016; Melgar & Hayes 2019).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::sync::Arc;

use crate::error::{FqError, FqResult};
use crate::geometry::{moment_from_mw, mw_from_moment, FaultModel, ScalingLaw};
use crate::linalg::Matrix;
use crate::stochastic::{
    standard_normal, CorrelatedField, FactorBackend, FactorCache, FieldMethod,
};
use crate::vonkarman::VonKarman;

/// How target magnitudes are drawn from `mw_range`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MagnitudeLaw {
    /// Uniform over the range (MudPy's default for scenario suites, so
    /// every magnitude bin gets equal training coverage).
    Uniform,
    /// Truncated Gutenberg–Richter with the given b-value: small events
    /// exponentially more frequent, the natural seismicity distribution.
    GutenbergRichter {
        /// b-value (global average ≈ 1.0).
        b: f64,
    },
}

impl MagnitudeLaw {
    /// Draw a magnitude in `[lo, hi]` from this law.
    pub fn sample(self, lo: f64, hi: f64, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        match self {
            MagnitudeLaw::Uniform => lo + u * (hi - lo),
            MagnitudeLaw::GutenbergRichter { b } => {
                if (hi - lo).abs() < 1e-12 || b.abs() < 1e-9 {
                    return lo + u * (hi - lo);
                }
                // Inverse CDF of the truncated exponential in magnitude.
                let flo = 10f64.powf(-b * lo);
                let fhi = 10f64.powf(-b * hi);
                -(flo - u * (flo - fhi)).log10() / b
            }
        }
    }
}

/// Configuration for the rupture generator; defaults follow the MudPy
/// repository defaults the paper says it uses.
#[derive(Debug, Clone)]
pub struct RuptureConfig {
    /// Inclusive target magnitude range from which each scenario draws.
    pub mw_range: (f64, f64),
    /// Distribution of target magnitudes over the range.
    pub magnitude_law: MagnitudeLaw,
    /// Hurst exponent of the von Kármán slip correlation.
    pub hurst: f64,
    /// Mean rupture velocity in km/s.
    pub rupture_velocity_kms: f64,
    /// Fractional standard deviation applied to per-subfault onset times.
    pub onset_jitter: f64,
    /// Scaling laws mapping magnitude to rupture dimensions.
    pub scaling: ScalingLaw,
    /// Lognormal sigma of the slip field (controls slip roughness).
    pub slip_sigma: f64,
    /// Covariance factorisation method.
    pub method: FieldMethod,
}

impl Default for RuptureConfig {
    fn default() -> Self {
        Self {
            mw_range: (7.5, 9.0),
            magnitude_law: MagnitudeLaw::Uniform,
            hurst: 0.75,
            rupture_velocity_kms: 2.8,
            onset_jitter: 0.1,
            scaling: ScalingLaw::default(),
            slip_sigma: 0.6,
            method: FieldMethod::Cholesky,
        }
    }
}

impl RuptureConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> FqResult<()> {
        let (lo, hi) = self.mw_range;
        if !(6.0..=9.5).contains(&lo) || !(6.0..=9.5).contains(&hi) || lo > hi {
            return Err(FqError::Config(format!(
                "mw_range ({lo}, {hi}) must satisfy 6.0 <= lo <= hi <= 9.5"
            )));
        }
        if self.rupture_velocity_kms <= 0.0 {
            return Err(FqError::Config("rupture velocity must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.hurst) {
            return Err(FqError::Config("hurst must be in (0, 1]".into()));
        }
        Ok(())
    }
}

/// One synthetic earthquake scenario.
#[derive(Debug, Clone)]
pub struct RuptureScenario {
    /// Scenario id within its batch.
    pub id: u64,
    /// Achieved moment magnitude (after slip rescaling; equals the target).
    pub mw: f64,
    /// Linear index of the hypocentral subfault.
    pub hypocenter_idx: usize,
    /// Per-subfault slip in metres; zero outside the rupture patch.
    pub slip_m: Vec<f64>,
    /// Per-subfault rupture onset time in seconds; `f64::INFINITY` outside
    /// the patch.
    pub onset_s: Vec<f64>,
    /// Per-subfault rise time in seconds; zero outside the patch.
    pub rise_time_s: Vec<f64>,
}

impl RuptureScenario {
    /// Seismic moment implied by the slip distribution (N·m). Uses the
    /// same fixed-order lane sum as the generator's rescaling step.
    pub fn moment(&self, fault: &FaultModel) -> f64 {
        let terms: Vec<f64> = fault
            .subfaults()
            .iter()
            .enumerate()
            .map(|(i, sf)| fault.rigidity_pa * sf.area_km2() * 1e6 * self.slip_m[i])
            .collect();
        crate::simd::lane_sum(&terms)
    }

    /// Indices of subfaults with non-zero slip.
    pub fn active_subfaults(&self) -> Vec<usize> {
        self.slip_m
            .iter()
            .enumerate()
            .filter(|(_, s)| **s > 0.0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Peak slip in metres.
    pub fn peak_slip_m(&self) -> f64 {
        self.slip_m.iter().cloned().fold(0.0, f64::max)
    }

    /// Total rupture duration: latest onset plus its rise time.
    pub fn duration_s(&self) -> f64 {
        self.onset_s
            .iter()
            .zip(&self.rise_time_s)
            .filter(|(o, _)| o.is_finite())
            .map(|(o, r)| o + r)
            .fold(0.0, f64::max)
    }
}

/// Generator of stochastic rupture scenarios over a fault model. Holds the
/// factored correlated field so repeated draws amortise the factorisation —
/// the same recycling the FDW does with its `.npy` artifacts.
pub struct RuptureGenerator<'a> {
    fault: &'a FaultModel,
    config: RuptureConfig,
    field: Arc<CorrelatedField>,
    /// Strike/dip grid coordinates (km) of each subfault centre, used for
    /// rectangular patch selection.
    grid_km: Vec<(f64, f64)>,
}

impl<'a> RuptureGenerator<'a> {
    /// Build a generator, factoring the slip covariance once from the
    /// recycled subfault–subfault distance matrix.
    pub fn new(
        fault: &'a FaultModel,
        subfault_distances: &Matrix,
        config: RuptureConfig,
    ) -> FqResult<Self> {
        Self::build(fault, subfault_distances, config, None)
    }

    /// Like [`RuptureGenerator::new`], but the covariance factor is
    /// fetched from (or inserted into) `cache`, so repeated generator
    /// construction over the same mesh/kernel/method — e.g. one per grid
    /// job, or per batch in a replicated campaign — factorises once.
    pub fn new_cached(
        fault: &'a FaultModel,
        subfault_distances: &Matrix,
        config: RuptureConfig,
        cache: &FactorCache,
    ) -> FqResult<Self> {
        Self::build(
            fault,
            subfault_distances,
            config,
            Some(cache as &dyn FactorBackend),
        )
    }

    /// Like [`RuptureGenerator::new_cached`], but over any
    /// [`FactorBackend`] — the seam the service layer's shared
    /// content-addressed artifact store plugs into.
    pub fn new_with_backend(
        fault: &'a FaultModel,
        subfault_distances: &Matrix,
        config: RuptureConfig,
        backend: &dyn FactorBackend,
    ) -> FqResult<Self> {
        Self::build(fault, subfault_distances, config, Some(backend))
    }

    fn build(
        fault: &'a FaultModel,
        subfault_distances: &Matrix,
        config: RuptureConfig,
        cache: Option<&dyn FactorBackend>,
    ) -> FqResult<Self> {
        config.validate()?;
        if subfault_distances.rows() != fault.len() {
            return Err(FqError::Config(format!(
                "distance matrix rows ({}) != fault subfault count ({})",
                subfault_distances.rows(),
                fault.len()
            )));
        }
        // A mid-range magnitude sets the ensemble correlation lengths; per-
        // scenario patch selection then bounds the effective dimensions.
        let mid_mw = (config.mw_range.0 + config.mw_range.1) / 2.0;
        let kernel = VonKarman::for_rupture(
            config.scaling.length_km(mid_mw),
            config.scaling.width_km(mid_mw),
            config.hurst,
        );
        let field = match cache {
            Some(c) => c.fetch(fault.name(), subfault_distances, &kernel, config.method)?,
            None => Arc::new(CorrelatedField::from_distances(
                subfault_distances,
                &kernel,
                config.method,
            )?),
        };
        let grid_km = fault
            .subfaults()
            .iter()
            .map(|sf| {
                (
                    (sf.along_strike as f64 + 0.5) * sf.length_km,
                    (sf.down_dip as f64 + 0.5) * sf.width_km,
                )
            })
            .collect();
        Ok(Self {
            fault,
            config,
            field,
            grid_km,
        })
    }

    /// Borrow the generator configuration.
    pub fn config(&self) -> &RuptureConfig {
        &self.config
    }

    /// Generate one scenario deterministically from `(batch_seed, id)`.
    pub fn generate(&self, batch_seed: u64, id: u64) -> RuptureScenario {
        let mut rng = StdRng::seed_from_u64(batch_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ id);
        let (lo, hi) = self.config.mw_range;
        let mw = self.config.magnitude_law.sample(lo, hi, rng.gen::<f64>());

        // Target rupture dimensions from scaling laws, clipped to the mesh.
        let n = self.fault.len();
        let target_len = self.config.scaling.length_km(mw);
        let target_wid = self.config.scaling.width_km(mw);

        // Hypocentre: uniform over subfaults.
        let hypo = rng.gen_range(0..n);
        let (hx, hy) = self.grid_km[hypo];

        // Rupture patch: rectangle containing the hypocentre (positioned
        // randomly within it, as in FakeQuakes), shifted to stay inside
        // the mesh so edge clipping cannot shrink the area and force
        // unphysical slip amplitudes during moment rescaling.
        let sf0 = self.fault.subfault(0);
        let mesh_len = self.fault.n_strike() as f64 * sf0.length_km;
        let mesh_wid = self.fault.n_dip() as f64 * sf0.width_km;
        let len = target_len.min(mesh_len);
        let wid = target_wid.min(mesh_wid);
        let off_x = rng.gen::<f64>() * len;
        let off_y = rng.gen::<f64>() * wid;
        let x0 = (hx - off_x).clamp(0.0, mesh_len - len);
        let x1 = x0 + len;
        let y0 = (hy - off_y).clamp(0.0, mesh_wid - wid);
        let y1 = y0 + wid;

        let mut mask = vec![false; n];
        let mut any = false;
        for (m, &(x, y)) in mask.iter_mut().zip(&self.grid_km) {
            if x >= x0 && x <= x1 && y >= y0 && y <= y1 {
                *m = true;
                any = true;
            }
        }
        if !any {
            mask[hypo] = true;
        }

        // Correlated lognormal slip on the patch.
        let z = self.field.sample(&mut rng);
        let sigma = self.config.slip_sigma;
        let mut slip: Vec<f64> = (0..n)
            .map(|i| if mask[i] { (sigma * z[i]).exp() } else { 0.0 })
            .collect();

        // Taper slip toward patch edges to avoid unphysical slip cliffs.
        for i in 0..n {
            if !mask[i] {
                continue;
            }
            let (x, y) = self.grid_km[i];
            let tx = edge_taper((x - x0) / (x1 - x0).max(1e-9));
            let ty = edge_taper((y - y0) / (y1 - y0).max(1e-9));
            slip[i] *= tx * ty;
        }

        // Rescale to the exact target moment. Fixed-order lane sum so the
        // achieved moment is independent of how the mesh was produced.
        let m0_target = moment_from_mw(mw);
        let m0_terms: Vec<f64> = self
            .fault
            .subfaults()
            .iter()
            .enumerate()
            .map(|(i, sf)| self.fault.rigidity_pa * sf.area_km2() * 1e6 * slip[i])
            .collect();
        let m0 = crate::simd::lane_sum(&m0_terms);
        let scale = if m0 > 0.0 { m0_target / m0 } else { 0.0 };
        for s in &mut slip {
            *s *= scale;
        }

        // Onset times: distance from hypocentre over rupture velocity with
        // multiplicative jitter.
        let mut onset = vec![f64::INFINITY; n];
        for i in 0..n {
            if slip[i] <= 0.0 {
                continue;
            }
            let (x, y) = self.grid_km[i];
            let d = ((x - hx).powi(2) + (y - hy).powi(2)).sqrt();
            let jitter = 1.0 + self.config.onset_jitter * standard_normal(&mut rng);
            onset[i] = (d / self.config.rupture_velocity_kms * jitter.max(0.2)).max(0.0);
        }

        // Rise times: slip-dependent (t_r ∝ sqrt(slip), Graves & Pitarka).
        let rise: Vec<f64> = slip
            .iter()
            .map(|s| {
                if *s > 0.0 {
                    (2.0 * s.sqrt()).clamp(1.0, 30.0)
                } else {
                    0.0
                }
            })
            .collect();

        RuptureScenario {
            id,
            mw: mw_from_moment(m0_target),
            hypocenter_idx: hypo,
            slip_m: slip,
            onset_s: onset,
            rise_time_s: rise,
        }
    }
}

/// Cosine edge taper on [0,1]: 1 in the interior, smoothly to ~0.2 at edges.
fn edge_taper(f: f64) -> f64 {
    let f = f.clamp(0.0, 1.0);
    let edge = 0.15;
    if f < edge {
        0.2 + 0.8 * (0.5 - 0.5 * (std::f64::consts::PI * f / edge).cos())
    } else if f > 1.0 - edge {
        0.2 + 0.8 * (0.5 - 0.5 * (std::f64::consts::PI * (1.0 - f) / edge).cos())
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistanceMatrices;
    use crate::stations::{ChileanInput, StationNetwork};

    fn generator_fixture(fault: &FaultModel) -> RuptureGenerator<'_> {
        let net = StationNetwork::chilean_input(ChileanInput::Small, 1);
        let d = DistanceMatrices::compute(fault, &net);
        RuptureGenerator::new(fault, &d.subfault_to_subfault, RuptureConfig::default()).unwrap()
    }

    #[test]
    fn config_validation() {
        let mut c = RuptureConfig::default();
        assert!(c.validate().is_ok());
        c.mw_range = (8.0, 7.0);
        assert!(c.validate().is_err());
        c.mw_range = (5.0, 7.0);
        assert!(c.validate().is_err());
        c = RuptureConfig {
            rupture_velocity_kms: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn mismatched_distance_matrix_rejected() {
        let fault = FaultModel::chilean_subduction(6, 4).unwrap();
        let wrong = Matrix::zeros(10, 10);
        assert!(RuptureGenerator::new(&fault, &wrong, RuptureConfig::default()).is_err());
    }

    #[test]
    fn moment_matches_target_magnitude() {
        let fault = FaultModel::chilean_subduction(16, 8).unwrap();
        let g = generator_fixture(&fault);
        for id in 0..5 {
            let r = g.generate(42, id);
            let m0 = r.moment(&fault);
            let mw = mw_from_moment(m0);
            assert!(
                (mw - r.mw).abs() < 1e-6,
                "scenario {id}: implied Mw {mw} vs target {}",
                r.mw
            );
            assert!((7.5..=9.0).contains(&r.mw));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let fault = FaultModel::chilean_subduction(10, 5).unwrap();
        let g = generator_fixture(&fault);
        let a = g.generate(7, 3);
        let b = g.generate(7, 3);
        assert_eq!(a.slip_m, b.slip_m);
        assert_eq!(a.onset_s, b.onset_s);
        let c = g.generate(7, 4);
        assert_ne!(a.slip_m, c.slip_m);
    }

    #[test]
    fn hypocenter_has_zero_onset_and_slip() {
        let fault = FaultModel::chilean_subduction(12, 6).unwrap();
        let g = generator_fixture(&fault);
        let r = g.generate(11, 0);
        assert!(r.slip_m[r.hypocenter_idx] > 0.0);
        assert!(r.onset_s[r.hypocenter_idx].abs() < 1e-9);
    }

    #[test]
    fn slip_nonnegative_and_patch_contiguous_bounds() {
        let fault = FaultModel::chilean_subduction(12, 6).unwrap();
        let g = generator_fixture(&fault);
        let r = g.generate(3, 9);
        for (i, s) in r.slip_m.iter().enumerate() {
            assert!(*s >= 0.0);
            if *s > 0.0 {
                assert!(r.onset_s[i].is_finite());
                assert!(r.rise_time_s[i] >= 1.0 && r.rise_time_s[i] <= 30.0);
            } else {
                assert!(r.onset_s[i].is_infinite());
                assert_eq!(r.rise_time_s[i], 0.0);
            }
        }
    }

    #[test]
    fn onsets_grow_with_distance_from_hypocenter() {
        let fault = FaultModel::chilean_subduction(20, 8).unwrap();
        let g = generator_fixture(&fault);
        let r = g.generate(5, 1);
        // Mean onset of far half must exceed mean onset of near half.
        let active = r.active_subfaults();
        if active.len() >= 8 {
            let hypo_sf = fault.subfault(r.hypocenter_idx);
            let mut with_d: Vec<(f64, f64)> = active
                .iter()
                .map(|&i| {
                    let sf = fault.subfault(i);
                    (sf.center.distance_3d_km(&hypo_sf.center), r.onset_s[i])
                })
                .collect();
            with_d.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let half = with_d.len() / 2;
            let near: f64 = with_d[..half].iter().map(|p| p.1).sum::<f64>() / half as f64;
            let far: f64 =
                with_d[half..].iter().map(|p| p.1).sum::<f64>() / (with_d.len() - half) as f64;
            assert!(far > near, "far {far} <= near {near}");
        }
    }

    #[test]
    fn larger_magnitude_ruptures_bigger_patches() {
        let fault = FaultModel::chilean_subduction(24, 10).unwrap();
        let net = StationNetwork::chilean_input(ChileanInput::Small, 1);
        let d = DistanceMatrices::compute(&fault, &net);
        let small = RuptureGenerator::new(
            &fault,
            &d.subfault_to_subfault,
            RuptureConfig {
                mw_range: (7.5, 7.5),
                ..Default::default()
            },
        )
        .unwrap();
        let big = RuptureGenerator::new(
            &fault,
            &d.subfault_to_subfault,
            RuptureConfig {
                mw_range: (9.0, 9.0),
                ..Default::default()
            },
        )
        .unwrap();
        let avg = |g: &RuptureGenerator<'_>| -> f64 {
            (0..10)
                .map(|i| g.generate(2, i).active_subfaults().len() as f64)
                .sum::<f64>()
                / 10.0
        };
        assert!(avg(&big) > avg(&small) * 1.5);
    }

    #[test]
    fn duration_positive_and_finite() {
        let fault = FaultModel::chilean_subduction(16, 8).unwrap();
        let g = generator_fixture(&fault);
        let r = g.generate(8, 2);
        let d = r.duration_s();
        assert!(d.is_finite() && d > 0.0 && d < 600.0, "duration {d}");
    }

    #[test]
    fn gutenberg_richter_favors_small_magnitudes() {
        let fault = FaultModel::chilean_subduction(10, 5).unwrap();
        let net = StationNetwork::chilean_input(ChileanInput::Small, 1);
        let d = DistanceMatrices::compute(&fault, &net);
        let mk = |law| {
            RuptureGenerator::new(
                &fault,
                &d.subfault_to_subfault,
                RuptureConfig {
                    magnitude_law: law,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let uni = mk(MagnitudeLaw::Uniform);
        let gr = mk(MagnitudeLaw::GutenbergRichter { b: 1.0 });
        let mean =
            |g: &RuptureGenerator<'_>| (0..200).map(|i| g.generate(4, i).mw).sum::<f64>() / 200.0;
        let mu = mean(&uni);
        let mg = mean(&gr);
        assert!(
            mg < mu - 0.2,
            "GR mean {mg} should sit well below uniform mean {mu}"
        );
        // Both stay inside the configured range.
        for i in 0..50 {
            let mw = gr.generate(4, i).mw;
            assert!((7.5..=9.0).contains(&mw), "{mw}");
        }
    }

    #[test]
    fn magnitude_law_sampling_edge_cases() {
        let gr = MagnitudeLaw::GutenbergRichter { b: 1.0 };
        assert!((gr.sample(8.0, 8.0, 0.7) - 8.0).abs() < 1e-12);
        assert!((gr.sample(7.0, 9.0, 0.0) - 7.0).abs() < 1e-9);
        assert!((gr.sample(7.0, 9.0, 1.0) - 9.0).abs() < 1e-9);
        let degenerate = MagnitudeLaw::GutenbergRichter { b: 0.0 };
        assert!((degenerate.sample(7.0, 9.0, 0.5) - 8.0).abs() < 1e-12);
        assert!((MagnitudeLaw::Uniform.sample(7.0, 9.0, 0.5) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn capped_cache_draws_bit_identical_after_eviction() {
        // Satellite regression: a byte-budgeted cache must never change
        // the science. Generators built through a cache small enough to
        // thrash (every factor evicts its predecessor) draw the same
        // bits as generators built with no cache at all.
        let fault = FaultModel::chilean_subduction(8, 4).unwrap();
        let net = StationNetwork::chilean_input(ChileanInput::Small, 1);
        let d = DistanceMatrices::compute(&fault, &net);
        let cache = FactorCache::with_byte_budget(1); // evict-everything budget
        let configs = [
            RuptureConfig::default(),
            RuptureConfig {
                hurst: 0.5,
                ..Default::default()
            },
            RuptureConfig::default(), // back to the first (now evicted) key
        ];
        for cfg in configs {
            let cached = RuptureGenerator::new_with_backend(
                &fault,
                &d.subfault_to_subfault,
                cfg.clone(),
                &cache,
            )
            .unwrap();
            let fresh = RuptureGenerator::new(&fault, &d.subfault_to_subfault, cfg).unwrap();
            for id in 0..3 {
                let a = cached.generate(21, id);
                let b = fresh.generate(21, id);
                assert_eq!(a.slip_m, b.slip_m);
                assert_eq!(a.onset_s, b.onset_s);
                assert_eq!(a.rise_time_s, b.rise_time_s);
            }
        }
        let s = cache.stats();
        assert!(s.evictions >= 1, "budget of 1 byte must evict");
        assert_eq!(s.entries, 1, "thrashing cache holds only the last factor");
    }

    #[test]
    fn edge_taper_shape() {
        assert!((edge_taper(0.5) - 1.0).abs() < 1e-12);
        assert!(edge_taper(0.0) < 0.3);
        assert!(edge_taper(1.0) < 0.3);
        assert!(edge_taper(0.075) < edge_taper(0.15));
    }
}
