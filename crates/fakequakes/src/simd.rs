//! Portable 4-wide f64 lanes and the canonical accumulation orders.
//!
//! The workspace forbids `unsafe`, so there are no intrinsics here: the
//! lane type is a plain `[f64; 4]` wrapper whose element-wise loops are
//! written in the fixed shape LLVM's autovectorizer reliably turns into
//! SIMD on any target. What this module pins down is not the instruction
//! selection but the **accumulation order** — the exact sequence of
//! floating-point additions every laned kernel performs — so that
//! results are bitwise invariant to `FDW_THREADS`, to cache-block sizes
//! and to the target CPU (DESIGN.md §13).
//!
//! Two canonical orders exist, each with a scalar reference twin used as
//! the bitwise oracle in tests and in-binary bench gates:
//!
//! * **Order A** (lane-parallel reduction, [`dot`] / [`lane_sum`]):
//!   independent lane accumulators walk ascending stripes, are folded
//!   pairwise into one quad, trailing full quads join ascending, one
//!   fixed horizontal sum `(s0 + s1) + (s2 + s3)`, then the `len % 4`
//!   remainder is added ascending ([`dot`] uses four accumulators over
//!   16-element stripes, [`lane_sum`] a single quad accumulator). Used
//!   by `matvec` and the `cholesky` prefix dots.
//! * **Order B** (in-place quad update, [`F64x4::horizontal_sum`] per
//!   quad): an output accumulator takes `o += (p0 + p1) + (p2 + p3)` for
//!   each ascending k-quad, remainder terms individually. Used by the
//!   blocked `matmul` microkernel, where every output element carries its
//!   own accumulator across the k loop.
//!
//! The transcendental helpers [`fq_exp`] / [`fq_cosh`] are branch-free
//! polynomial implementations with a fixed evaluation order, so laned
//! quadrature (four abscissae at a time) computes bit-for-bit the same
//! value a one-lane call computes — something libm cannot promise across
//! glibc versions, let alone across lane positions.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// Lane width of the canonical accumulation order.
pub const LANES: usize = 4;

/// A 4-wide f64 vector: plain data, element-wise ops, no intrinsics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct F64x4(pub [f64; LANES]);

impl F64x4 {
    /// All four lanes set to `v`.
    #[inline]
    pub fn splat(v: f64) -> Self {
        Self([v; LANES])
    }

    /// Load the first four elements of `s` (panics if `s.len() < 4`).
    #[inline]
    pub fn from_slice(s: &[f64]) -> Self {
        Self([s[0], s[1], s[2], s[3]])
    }

    /// The lanes as a plain array.
    #[inline]
    pub fn to_array(self) -> [f64; LANES] {
        self.0
    }

    /// The canonical pairwise horizontal sum `(l0 + l1) + (l2 + l3)`.
    ///
    /// This exact association is the one both canonical orders use; it
    /// is *not* the same as `l0 + l1 + l2 + l3` in every rounding case,
    /// so all reductions in the suite must go through this helper.
    #[inline]
    pub fn horizontal_sum(self) -> f64 {
        (self.0[0] + self.0[1]) + (self.0[2] + self.0[3])
    }

    /// Element-wise [`fq_exp`].
    #[inline]
    pub fn exp(self) -> Self {
        let mut out = [0.0; LANES];
        for (o, x) in out.iter_mut().zip(self.0) {
            *o = fq_exp(x);
        }
        Self(out)
    }

    /// Element-wise square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let mut out = self.0;
        for o in &mut out {
            *o = o.sqrt();
        }
        Self(out)
    }
}

macro_rules! elementwise {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for F64x4 {
            type Output = F64x4;
            #[inline]
            #[allow(clippy::assign_op_pattern)] // `$op=` is not a single token here
            fn $method(self, rhs: F64x4) -> F64x4 {
                let mut out = self.0;
                for (o, r) in out.iter_mut().zip(rhs.0) {
                    *o = *o $op r;
                }
                F64x4(out)
            }
        }
    };
}

elementwise!(Add, add, +);
elementwise!(Sub, sub, -);
elementwise!(Mul, mul, *);
elementwise!(Div, div, /);

impl AddAssign for F64x4 {
    #[inline]
    fn add_assign(&mut self, rhs: F64x4) {
        for (o, r) in self.0.iter_mut().zip(rhs.0) {
            *o += r;
        }
    }
}

impl MulAssign for F64x4 {
    #[inline]
    fn mul_assign(&mut self, rhs: F64x4) {
        for (o, r) in self.0.iter_mut().zip(rhs.0) {
            *o *= r;
        }
    }
}

impl Neg for F64x4 {
    type Output = F64x4;
    #[inline]
    fn neg(self) -> F64x4 {
        let mut out = self.0;
        for o in &mut out {
            *o = -*o;
        }
        F64x4(out)
    }
}

/// Elements per dot-product stripe: four independent lane accumulators,
/// so the vector-add latency chain never gates throughput.
pub const STRIPE: usize = 4 * LANES;

/// Order-A dot product: the canonical laned inner product.
///
/// Four independent [`F64x4`] accumulators walk ascending 16-element
/// stripes (one quad each per stripe), are combined pairwise
/// `(acc0 + acc1) + (acc2 + acc3)` into one vector, which then absorbs
/// the remaining full quads ascending; a pairwise horizontal sum and the
/// scalar `len % 4` tail (ascending) finish the reduction. Bitwise equal
/// to [`dot_reference`] by construction, on every target — and four
/// parallel add chains deep, so an out-of-order core sustains close to
/// peak packed-double throughput.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let stripes = n / STRIPE;
    if stripes == 0 {
        // Short-vector path: with no full stripe every accumulator is
        // still 0.0, so the general path's fold yields t = [0.0; 4] and
        // the result reduces to the quad loop + scalar tail below —
        // bitwise identical, minus the barrier spill.
        let mut t = [0.0f64; LANES];
        let mut i = 0;
        while i + LANES <= n {
            for l in 0..LANES {
                t[l] += a[i + l] * b[i + l];
            }
            i += LANES;
        }
        let mut s = (t[0] + t[1]) + (t[2] + t[3]);
        for j in i..n {
            s += a[j] * b[j];
        }
        return s;
    }
    // Flat 16-accumulator array (accumulator v, lane l at [v*4 + l]):
    // the plain indexed loop is the shape LLVM's loop vectorizer turns
    // into four packed-double streams.
    let mut acc = [0.0f64; STRIPE];
    for (qa, qb) in a[..stripes * STRIPE]
        .chunks_exact(STRIPE)
        .zip(b[..stripes * STRIPE].chunks_exact(STRIPE))
    {
        for l in 0..STRIPE {
            acc[l] += qa[l] * qb[l];
        }
    }
    // Opaque barrier between the accumulation loop and the horizontal
    // fold: without it LLVM's SLP vectorizer packs the accumulators in a
    // lane-transposed 128-bit layout to shave shuffles off the (cold)
    // fold, crippling the (hot) loop. black_box is the identity, so the
    // value — and the fixed summation order — is untouched.
    let acc = std::hint::black_box(acc);
    // Pairwise fold of the four accumulators into one quad, per lane.
    let mut t = [0.0f64; LANES];
    for l in 0..LANES {
        t[l] = (acc[l] + acc[LANES + l]) + (acc[2 * LANES + l] + acc[3 * LANES + l]);
    }
    let mut i = stripes * STRIPE;
    while i + LANES <= n {
        for l in 0..LANES {
            t[l] += a[i + l] * b[i + l];
        }
        i += LANES;
    }
    let mut s = (t[0] + t[1]) + (t[2] + t[3]);
    for j in i..n {
        s += a[j] * b[j];
    }
    s
}

/// Scalar reference twin of [`dot`]: the same order-A arithmetic written
/// without the lane type (sixteen scalar accumulators). The bitwise
/// oracle for every order-A kernel.
pub fn dot_reference(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    let striped = n / STRIPE * STRIPE;
    let mut c = [[0.0f64; LANES]; 4];
    let mut i = 0;
    while i < striped {
        for (v, acc) in c.iter_mut().enumerate() {
            for (l, s) in acc.iter_mut().enumerate() {
                let p = i + v * LANES + l;
                *s += a[p] * b[p];
            }
        }
        i += STRIPE;
    }
    let mut t = [0.0f64; LANES];
    for (l, s) in t.iter_mut().enumerate() {
        *s = (c[0][l] + c[1][l]) + (c[2][l] + c[3][l]);
    }
    while i + LANES <= n {
        for (l, s) in t.iter_mut().enumerate() {
            *s += a[i + l] * b[i + l];
        }
        i += LANES;
    }
    let mut s = (t[0] + t[1]) + (t[2] + t[3]);
    for j in i..n {
        s += a[j] * b[j];
    }
    s
}

/// Order-A sum: the canonical laned reduction of a slice.
///
/// The lint rule `naive-float-accum` steers fakequakes hot paths here:
/// a bare `.iter().sum::<f64>()` has an unpinned order the optimizer may
/// or may not reassociate, while this helper's order is part of the
/// suite's determinism contract.
#[inline]
pub fn lane_sum(xs: &[f64]) -> f64 {
    let mut acc = F64x4::splat(0.0);
    let quads = xs.len() / LANES;
    for q in 0..quads {
        let i = q * LANES;
        acc += F64x4::from_slice(&xs[i..i + LANES]);
    }
    let mut s = acc.horizontal_sum();
    for x in &xs[quads * LANES..] {
        s += x;
    }
    s
}

/// Scalar reference twin of [`lane_sum`] (order A, no lane type).
pub fn lane_sum_reference(xs: &[f64]) -> f64 {
    let n4 = xs.len() / LANES * LANES;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut i = 0;
    while i < n4 {
        s0 += xs[i];
        s1 += xs[i + 1];
        s2 += xs[i + 2];
        s3 += xs[i + 3];
        i += LANES;
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for x in &xs[n4..] {
        s += x;
    }
    s
}

// exp(x) = 2^k * exp(r) with r = x - k*ln2 split Cody-Waite style so the
// reduction is exact in the leading bits. LN2_HI carries the top 33 bits
// of ln 2; LN2_LO the remainder.
const LOG2_E: f64 = std::f64::consts::LOG2_E;
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;

/// Inverse factorials 1/0! .. 1/13! for the exp(r) Taylor polynomial.
/// |r| <= ln2/2 ~ 0.3466, so the r^14/14! truncation term is ~4e-18
/// relative — below the ~1e-13 accuracy target with margin.
const EXP_POLY: [f64; 14] = [
    1.0,
    1.0,
    0.5,
    1.0 / 6.0,
    1.0 / 24.0,
    1.0 / 120.0,
    1.0 / 720.0,
    1.0 / 5040.0,
    1.0 / 40320.0,
    1.0 / 362880.0,
    1.0 / 3628800.0,
    1.0 / 39916800.0,
    1.0 / 479001600.0,
    1.0 / 6227020800.0,
];

/// Round-to-nearest shifter: adding then subtracting 1.5 * 2^52 rounds
/// a |v| < 2^51 double to an integer, leaving that integer in the low
/// mantissa bits of the intermediate — the classic branch-free trick
/// that avoids the saturating `f64 as i64` cast (which LLVM will not
/// vectorize).
const SHIFTER: f64 = 6_755_399_441_055_744.0;

/// Branch-free portable `exp` with a fixed evaluation order.
///
/// Matches `f64::exp` to ~1e-13 relative over the finite range; the
/// value it computes is a pure function of the bit pattern of `x` — no
/// libm, no platform dispatch — so laned and scalar call sites agree
/// bitwise. Inputs beyond ±708 are clamped (the clamp range still maps
/// to 0-adjacent subnormal-free results: e^-708 ~ 3e-308); NaN
/// propagates. Every operation (clamp, shifter round, Horner, bit
/// assembly) is straight-line vectorizable code, so a 4-lane caller
/// autovectorizes.
#[inline(always)]
pub fn fq_exp(x: f64) -> f64 {
    let x = x.clamp(-708.0, 708.0);
    let t = x * LOG2_E + SHIFTER;
    let k = t - SHIFTER; // nearest integer to x * log2(e)
    let r = (x - k * LN2_HI) - k * LN2_LO;
    // Estrin evaluation of the degree-13 Taylor polynomial: same terms
    // as Horner but a ~4-level dependency chain instead of 13, which is
    // what the out-of-order core needs to overlap quadrature nodes.
    let c = &EXP_POLY;
    let r2 = r * r;
    let r4 = r2 * r2;
    let r8 = r4 * r4;
    let q0 = (c[0] + c[1] * r) + (c[2] + c[3] * r) * r2;
    let q1 = (c[4] + c[5] * r) + (c[6] + c[7] * r) * r2;
    let q2 = (c[8] + c[9] * r) + (c[10] + c[11] * r) * r2;
    let q3 = c[12] + c[13] * r;
    let p = (q0 + q1 * r4) + (q2 + q3 * r4) * r8;
    // |k| <= round(708 * log2 e) = 1022. The shifter intermediate holds
    // 2^51 + k in its low mantissa bits; 2^51 is 0 mod 2^32, so the low
    // 32 bits are k two's-complement and the biased exponent k + 1023
    // lies in [1, 2045] — always a valid normal scale. NaN inputs have
    // a zero low word (qNaN), scale 2^0, and the NaN polynomial value
    // carries through.
    let k_i = t.to_bits() as u32 as i32;
    let scale = f64::from_bits((((k_i + 1023) as u32) as u64) << 52);
    p * scale
}

/// Portable `cosh` built on [`fq_exp`]: `(e^t + e^-t) / 2` evaluated as
/// `0.5 * (e + 1/e)` with a single exp call.
#[inline]
pub fn fq_cosh(t: f64) -> f64 {
    let e = fq_exp(t);
    0.5 * (e + 1.0 / e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64) * 0.37 - 1.5).collect()
    }

    #[test]
    fn dot_matches_reference_bitwise_all_remainders() {
        for n in [
            0usize, 1, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17, 20, 23, 31, 32, 33, 61, 240, 241, 243,
        ] {
            let a = ramp(n);
            let b: Vec<f64> = a.iter().map(|x| x * 1.7 + 0.3).collect();
            assert_eq!(
                dot(&a, &b).to_bits(),
                dot_reference(&a, &b).to_bits(),
                "n={n}"
            );
        }
    }

    #[test]
    fn lane_sum_matches_reference_bitwise_all_remainders() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 9, 240, 241, 242, 243] {
            let xs = ramp(n);
            assert_eq!(
                lane_sum(&xs).to_bits(),
                lane_sum_reference(&xs).to_bits(),
                "n={n}"
            );
        }
    }

    #[test]
    fn lane_sum_agrees_with_naive_sum_approximately() {
        let xs = ramp(1001);
        let naive: f64 = xs.iter().sum();
        let laned = lane_sum(&xs);
        assert!((laned - naive).abs() <= 1e-9 * naive.abs().max(1.0));
    }

    #[test]
    fn horizontal_sum_is_pairwise() {
        // A case where (a+b)+(c+d) != ((a+b)+c)+d in f64.
        let v = F64x4([1.0, 1e-16, 1e-16, -1.0]);
        let pairwise: f64 = (1.0 + 1e-16) + (1e-16 - 1.0);
        assert_eq!(v.horizontal_sum().to_bits(), pairwise.to_bits());
    }

    #[test]
    fn fq_exp_matches_std_exp() {
        let mut worst = 0.0f64;
        let mut x = -700.0;
        while x <= 700.0 {
            let got = fq_exp(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
            x += 0.618; // irrational-ish step avoids hitting only round k
        }
        assert!(worst < 1e-13, "worst rel err {worst:e}");
    }

    #[test]
    fn fq_exp_edge_cases() {
        assert_eq!(fq_exp(0.0), 1.0);
        assert!(fq_exp(f64::NAN).is_nan());
        assert!(fq_exp(-1e9) > 0.0, "clamped, not zero");
        assert!(fq_exp(-1e9) < 1e-300);
        assert!(fq_exp(1e9).is_finite());
        assert_eq!(fq_exp(f64::NEG_INFINITY), fq_exp(-708.0));
        assert_eq!(fq_exp(f64::INFINITY), fq_exp(708.0));
    }

    #[test]
    fn fq_cosh_matches_std_cosh() {
        let mut t = 0.0;
        while t <= 20.0 {
            let got = fq_cosh(t);
            let want = t.cosh();
            assert!(
                ((got - want) / want).abs() < 1e-13,
                "t={t} got={got} want={want}"
            );
            t += 0.1237;
        }
    }

    #[test]
    fn f64x4_ops_are_elementwise() {
        let a = F64x4([1.0, 2.0, 3.0, 4.0]);
        let b = F64x4([0.5, 0.25, 2.0, -1.0]);
        assert_eq!((a + b).to_array(), [1.5, 2.25, 5.0, 3.0]);
        assert_eq!((a - b).to_array(), [0.5, 1.75, 1.0, 5.0]);
        assert_eq!((a * b).to_array(), [0.5, 0.5, 6.0, -4.0]);
        assert_eq!((a / b).to_array(), [2.0, 8.0, 1.5, -4.0]);
        assert_eq!((-a).to_array(), [-1.0, -2.0, -3.0, -4.0]);
        let mut c = a;
        c += b;
        assert_eq!(c.to_array(), [1.5, 2.25, 5.0, 3.0]);
        let mut d = a;
        d *= b;
        assert_eq!(d.to_array(), [0.5, 0.5, 6.0, -4.0]);
        assert_eq!(F64x4::splat(2.0).sqrt().to_array()[0], 2.0f64.sqrt());
        assert_eq!(
            F64x4::from_slice(&[9.0, 8.0, 7.0, 6.0, 5.0]).to_array()[3],
            6.0
        );
        let e = F64x4::splat(1.5).exp();
        for l in e.to_array() {
            assert_eq!(l.to_bits(), fq_exp(1.5).to_bits());
        }
    }
}
