//! Frequency-domain analysis of synthetic waveforms.
//!
//! Goldberg & Melgar (2020) validated FakeQuakes products against real
//! earthquakes "in both frequency and time domains" (paper §2). This
//! module provides the frequency side: a radix-2 FFT, amplitude spectra,
//! and the spectral comparison metric used to check that synthetic
//! waveforms carry energy where real GNSS records do (low frequencies,
//! with a corner controlled by rise time and rupture duration).

use crate::error::{FqError, FqResult};
use crate::waveform::GnssWaveform;

/// In-place radix-2 decimation-in-time FFT over interleaved complex
/// samples `(re, im)`. Length must be a power of two.
pub fn fft_in_place(data: &mut [(f64, f64)]) -> FqResult<()> {
    let n = data.len();
    if n == 0 {
        return Ok(());
    }
    if !n.is_power_of_two() {
        return Err(FqError::Config(format!(
            "FFT length {n} is not a power of two"
        )));
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ar, ai) = data[start + k];
                let (br, bi) = data[start + k + len / 2];
                let (tr, ti) = (br * cr - bi * ci, br * ci + bi * cr);
                data[start + k] = (ar + tr, ai + ti);
                data[start + k + len / 2] = (ar - tr, ai - ti);
                let (ncr, nci) = (cr * wr - ci * wi, cr * wi + ci * wr);
                cr = ncr;
                ci = nci;
            }
        }
        len *= 2;
    }
    Ok(())
}

/// One-sided amplitude spectrum of a real time series.
///
/// The series is zero-padded to the next power of two; returns
/// `(frequencies_hz, amplitudes)` for bins `0..=n/2`. Amplitudes are
/// normalised by the (padded) length so a unit-amplitude sinusoid shows
/// ~0.5 in its bin.
pub fn amplitude_spectrum(series: &[f64], dt_s: f64) -> FqResult<(Vec<f64>, Vec<f64>)> {
    if series.is_empty() {
        return Err(FqError::Config("cannot transform an empty series".into()));
    }
    if dt_s <= 0.0 {
        return Err(FqError::Config("sample interval must be positive".into()));
    }
    let n = series.len().next_power_of_two();
    let mut buf: Vec<(f64, f64)> = series
        .iter()
        .map(|x| (*x, 0.0))
        .chain(std::iter::repeat((0.0, 0.0)))
        .take(n)
        .collect();
    fft_in_place(&mut buf)?;
    let df = 1.0 / (n as f64 * dt_s);
    let half = n / 2;
    let freqs: Vec<f64> = (0..=half).map(|k| k as f64 * df).collect();
    let amps: Vec<f64> = (0..=half)
        .map(|k| {
            let (re, im) = buf[k];
            (re * re + im * im).sqrt() / n as f64
        })
        .collect();
    Ok((freqs, amps))
}

/// Spectral summary of one waveform component, the quantities the
/// Goldberg & Melgar comparison inspects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralSummary {
    /// Amplitude-weighted mean frequency, Hz.
    pub centroid_hz: f64,
    /// Fraction of spectral energy below 0.05 Hz (the long-period band
    /// where GNSS uniquely outperforms inertial sensors).
    pub low_freq_energy_fraction: f64,
    /// Frequency of the largest non-DC amplitude bin, Hz.
    pub peak_hz: f64,
}

/// Compute the spectral summary of a waveform's east component (the
/// horizontal with the largest interface-thrust signal).
pub fn spectral_summary(w: &GnssWaveform) -> FqResult<SpectralSummary> {
    let (freqs, amps) = amplitude_spectrum(&w.east_m, w.dt_s)?;
    // Skip DC: static offsets dominate bin 0 by construction.
    let total_energy: f64 = amps.iter().skip(1).map(|a| a * a).sum();
    if total_energy <= 0.0 {
        return Ok(SpectralSummary {
            centroid_hz: 0.0,
            low_freq_energy_fraction: 0.0,
            peak_hz: 0.0,
        });
    }
    let weighted: Vec<f64> = freqs
        .iter()
        .zip(&amps)
        .skip(1)
        .map(|(f, a)| f * a * a)
        .collect();
    let centroid = crate::simd::lane_sum(&weighted) / total_energy;
    let low: f64 = freqs
        .iter()
        .zip(&amps)
        .skip(1)
        .filter(|(f, _)| **f <= 0.05)
        .map(|(_, a)| a * a)
        .sum();
    let peak_idx = amps
        .iter()
        .enumerate()
        .skip(1)
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0);
    Ok(SpectralSummary {
        centroid_hz: centroid,
        low_freq_energy_fraction: low / total_energy,
        peak_hz: freqs[peak_idx],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_delta_is_flat() {
        let mut data = vec![(0.0, 0.0); 8];
        data[0] = (1.0, 0.0);
        fft_in_place(&mut data).unwrap();
        for (re, im) in data {
            assert!((re - 1.0).abs() < 1e-12);
            assert!(im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![(0.0, 0.0); 6];
        assert!(fft_in_place(&mut data).is_err());
        assert!(fft_in_place(&mut []).is_ok());
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 64;
        let series: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 * 0.3 - 1.0).collect();
        let mut buf: Vec<(f64, f64)> = series.iter().map(|x| (*x, 0.0)).collect();
        fft_in_place(&mut buf).unwrap();
        let time_energy: f64 = series.iter().map(|x| x * x).sum();
        let freq_energy: f64 = buf.iter().map(|(r, i)| r * r + i * i).sum::<f64>() / n as f64;
        assert!(
            (time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0),
            "{time_energy} vs {freq_energy}"
        );
    }

    #[test]
    fn sinusoid_peaks_in_its_bin() {
        let n = 256;
        let dt = 1.0;
        let cycle_bin = 16; // frequency = 16/(256*1) Hz
        let series: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * cycle_bin as f64 * i as f64 / n as f64).sin())
            .collect();
        let (freqs, amps) = amplitude_spectrum(&series, dt).unwrap();
        let peak = amps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, cycle_bin);
        assert!((freqs[peak] - cycle_bin as f64 / 256.0).abs() < 1e-12);
        assert!((amps[peak] - 0.5).abs() < 1e-9, "amp {}", amps[peak]);
    }

    #[test]
    fn spectrum_errors() {
        assert!(amplitude_spectrum(&[], 1.0).is_err());
        assert!(amplitude_spectrum(&[1.0], 0.0).is_err());
    }

    #[test]
    fn synthetic_waveforms_are_long_period_dominated() {
        // FakeQuakes-style GNSS displacement records concentrate energy at
        // long periods — the property that makes GNSS valuable for large-
        // event EEW (Ruhl et al. 2017).
        use crate::distance::DistanceMatrices;
        use crate::geometry::FaultModel;
        use crate::greens::GfLibrary;
        use crate::noise::NoiseModel;
        use crate::rupture::{RuptureConfig, RuptureGenerator};
        use crate::stations::StationNetwork;
        use crate::waveform::{synthesize_station, WaveformConfig};

        let fault = FaultModel::chilean_subduction(12, 6).unwrap();
        let net = StationNetwork::chilean(3, 1).unwrap();
        let d = DistanceMatrices::compute(&fault, &net);
        let gfs = GfLibrary::compute(&fault, &net).unwrap();
        let gen = RuptureGenerator::new(
            &fault,
            &d.subfault_to_subfault,
            RuptureConfig {
                mw_range: (8.5, 8.5),
                ..Default::default()
            },
        )
        .unwrap();
        let sc = gen.generate(2, 0);
        let w = synthesize_station(
            &fault,
            &gfs,
            &d.station_to_subfault,
            &sc,
            0,
            &WaveformConfig {
                duration_s: 512.0,
                noise: NoiseModel::none(),
                ..Default::default()
            },
            1,
        )
        .unwrap();
        let s = spectral_summary(&w).unwrap();
        assert!(
            s.low_freq_energy_fraction > 0.5,
            "long-period fraction {}",
            s.low_freq_energy_fraction
        );
        assert!(s.centroid_hz < 0.1, "centroid {}", s.centroid_hz);
        assert!(s.peak_hz < 0.05, "peak {}", s.peak_hz);
    }

    #[test]
    fn flat_record_summary_is_zero() {
        let w = GnssWaveform {
            station_code: "X".into(),
            scenario_id: 0,
            dt_s: 1.0,
            east_m: vec![0.0; 64],
            north_m: vec![0.0; 64],
            up_m: vec![0.0; 64],
        };
        let s = spectral_summary(&w).unwrap();
        assert_eq!(s.centroid_hz, 0.0);
        assert_eq!(s.low_freq_energy_fraction, 0.0);
    }
}
