//! GNSS station networks.
//!
//! The paper uses the real Chilean network of 120+ high-rate GNSS stations
//! operating since 2010. We do not have the station catalogue, so
//! [`StationNetwork::chilean`] generates a procedural network with the same
//! spatial statistics: stations scattered along the coast and inland valleys
//! between 18°S and 38°S, densest near the central margin. The experiments
//! only depend on the station *count* (the B/C phase cost scales with it)
//! and on source–receiver distances being realistic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{FqError, FqResult};
use crate::geo::GeoPoint;

/// One GNSS station.
#[derive(Debug, Clone, PartialEq)]
pub struct Station {
    /// Four-character station code, e.g. `CH042`.
    pub code: String,
    /// Station location (depth is always 0).
    pub location: GeoPoint,
    /// Sampling rate of the receiver in Hz (high-rate GNSS is 1 Hz).
    pub sample_rate_hz: f64,
}

/// A list of GNSS stations; the FDW's `station list` input file.
#[derive(Debug, Clone, PartialEq)]
pub struct StationNetwork {
    name: String,
    stations: Vec<Station>,
}

/// The two input sizes exercised in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChileanInput {
    /// Full Chilean input: 121 stations.
    Full,
    /// Small Chilean input: 2 stations.
    Small,
}

impl ChileanInput {
    /// Number of stations for this input size.
    pub fn station_count(self) -> usize {
        match self {
            ChileanInput::Full => 121,
            ChileanInput::Small => 2,
        }
    }

    /// Human-readable label used in reports ("full" / "small").
    pub fn label(self) -> &'static str {
        match self {
            ChileanInput::Full => "full",
            ChileanInput::Small => "small",
        }
    }
}

impl StationNetwork {
    /// Generate a procedural Chilean GNSS network with `n` stations,
    /// deterministically from `seed`.
    pub fn chilean(n: usize, seed: u64) -> FqResult<Self> {
        if n == 0 {
            return Err(FqError::Config("station network cannot be empty".into()));
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5747_4e53_u64);
        let mut stations = Vec::with_capacity(n);
        for i in 0..n {
            // Latitude: triangular-ish density peaking near the central margin (-30°).
            let u: f64 = rng.gen();
            let v: f64 = rng.gen();
            let lat = -38.0 + 20.0 * ((u + v) / 2.0);
            // Longitude: between the coast (~-72.5 at that latitude) and the
            // Andean foothills ~2.5 degrees inland.
            let coast = -72.0 - 1.3 * (std::f64::consts::PI * (lat + 38.0) / 20.0).sin();
            let lon = coast + rng.gen::<f64>() * 2.5;
            stations.push(Station {
                code: format!("CH{i:03}"),
                location: GeoPoint::new(lon, lat, 0.0),
                sample_rate_hz: 1.0,
            });
        }
        Ok(Self {
            name: format!("chile_{n}"),
            stations,
        })
    }

    /// Build the network for one of the paper's two input sizes.
    pub fn chilean_input(input: ChileanInput, seed: u64) -> Self {
        Self::chilean(input.station_count(), seed)
            .expect("station counts are non-zero by construction")
    }

    /// Generate a procedural Pacific-Northwest GNSS network with `n`
    /// stations for the Cascadia margin (the paper's §7 "regions beyond
    /// Chile"), deterministically from `seed`. Mirrors the real PANGA /
    /// PBO station distribution: coastal and valley sites between 40°N
    /// and 49°N.
    pub fn cascadia(n: usize, seed: u64) -> FqResult<Self> {
        if n == 0 {
            return Err(FqError::Config("station network cannot be empty".into()));
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4341_5343_u64);
        let mut stations = Vec::with_capacity(n);
        for i in 0..n {
            let u: f64 = rng.gen();
            let v: f64 = rng.gen();
            let lat = 40.0 + 9.0 * ((u + v) / 2.0);
            // Coastline runs near -124.5 to -123.5; stations reach ~2.5
            // degrees inland (Willamette valley, Puget lowland).
            let coast = -124.6 + 0.8 * (lat - 40.0) / 9.0;
            let lon = coast + rng.gen::<f64>() * 2.5;
            stations.push(Station {
                code: format!("PW{i:03}"),
                location: GeoPoint::new(lon, lat, 0.0),
                sample_rate_hz: 1.0,
            });
        }
        Ok(Self {
            name: format!("cascadia_{n}"),
            stations,
        })
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.stations.len()
    }

    /// True when the network has no stations.
    pub fn is_empty(&self) -> bool {
        self.stations.is_empty()
    }

    /// All stations.
    pub fn stations(&self) -> &[Station] {
        &self.stations
    }

    /// Station by index.
    pub fn station(&self, i: usize) -> &Station {
        &self.stations[i]
    }

    /// Serialise to the FDW station-list text format: one
    /// `CODE lon lat` line per station.
    pub fn to_station_file(&self) -> String {
        let mut out = String::with_capacity(self.stations.len() * 32);
        for s in &self.stations {
            out.push_str(&format!(
                "{} {:.6} {:.6}\n",
                s.code, s.location.lon, s.location.lat
            ));
        }
        out
    }

    /// Parse the FDW station-list text format produced by
    /// [`Self::to_station_file`].
    pub fn from_station_file(name: &str, text: &str) -> FqResult<Self> {
        let mut stations = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let code = parts
                .next()
                .ok_or_else(|| FqError::Format(format!("line {}: missing code", lineno + 1)))?;
            let lon: f64 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| FqError::Format(format!("line {}: bad longitude", lineno + 1)))?;
            let lat: f64 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| FqError::Format(format!("line {}: bad latitude", lineno + 1)))?;
            stations.push(Station {
                code: code.to_string(),
                location: GeoPoint::new(lon, lat, 0.0),
                sample_rate_hz: 1.0,
            });
        }
        if stations.is_empty() {
            return Err(FqError::Format("station file contained no stations".into()));
        }
        Ok(Self {
            name: name.to_string(),
            stations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_network_rejected() {
        assert!(StationNetwork::chilean(0, 1).is_err());
    }

    #[test]
    fn full_input_has_121_stations() {
        let n = StationNetwork::chilean_input(ChileanInput::Full, 7);
        assert_eq!(n.len(), 121);
        assert!(!n.is_empty());
    }

    #[test]
    fn small_input_has_2_stations() {
        let n = StationNetwork::chilean_input(ChileanInput::Small, 7);
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = StationNetwork::chilean(50, 42).unwrap();
        let b = StationNetwork::chilean(50, 42).unwrap();
        assert_eq!(a, b);
        let c = StationNetwork::chilean(50, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn stations_are_on_land_near_chile() {
        let n = StationNetwork::chilean(200, 3).unwrap();
        for s in n.stations() {
            assert!(s.location.lat >= -38.0 && s.location.lat <= -18.0);
            assert!(s.location.lon >= -74.0 && s.location.lon <= -68.0);
            assert_eq!(s.location.depth_km, 0.0);
        }
    }

    #[test]
    fn codes_are_unique() {
        let n = StationNetwork::chilean(121, 9).unwrap();
        let mut codes: Vec<&str> = n.stations().iter().map(|s| s.code.as_str()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 121);
    }

    #[test]
    fn station_file_roundtrip() {
        let n = StationNetwork::chilean(10, 5).unwrap();
        let text = n.to_station_file();
        let parsed = StationNetwork::from_station_file("roundtrip", &text).unwrap();
        assert_eq!(parsed.len(), 10);
        for (a, b) in n.stations().iter().zip(parsed.stations()) {
            assert_eq!(a.code, b.code);
            assert!((a.location.lon - b.location.lon).abs() < 1e-5);
            assert!((a.location.lat - b.location.lat).abs() < 1e-5);
        }
    }

    #[test]
    fn station_file_skips_comments_and_blanks() {
        let text = "# header\n\nAAAA -71.0 -30.0\n# trailing\nBBBB -70.5 -29.0\n";
        let n = StationNetwork::from_station_file("t", text).unwrap();
        assert_eq!(n.len(), 2);
        assert_eq!(n.station(0).code, "AAAA");
    }

    #[test]
    fn station_file_errors() {
        assert!(StationNetwork::from_station_file("t", "").is_err());
        assert!(StationNetwork::from_station_file("t", "AAAA notanumber -30").is_err());
        assert!(StationNetwork::from_station_file("t", "AAAA -71.0").is_err());
    }

    #[test]
    fn cascadia_network_in_pnw() {
        let net = StationNetwork::cascadia(50, 4).unwrap();
        assert_eq!(net.len(), 50);
        for s in net.stations() {
            assert!(s.location.lat >= 40.0 && s.location.lat <= 49.0);
            assert!(s.location.lon >= -125.0 && s.location.lon <= -120.5);
            assert!(s.code.starts_with("PW"));
        }
        assert!(StationNetwork::cascadia(0, 4).is_err());
        // Deterministic and distinct from the Chilean generator.
        assert_eq!(
            StationNetwork::cascadia(10, 1).unwrap(),
            StationNetwork::cascadia(10, 1).unwrap()
        );
    }

    #[test]
    fn input_labels() {
        assert_eq!(ChileanInput::Full.label(), "full");
        assert_eq!(ChileanInput::Small.label(), "small");
        assert_eq!(ChileanInput::Full.station_count(), 121);
    }
}
