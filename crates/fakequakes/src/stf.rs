//! Source time functions (STFs): the normalised slip-rate histories that
//! spread each subfault's slip over its rise time.
//!
//! MudPy's kinematic synthesis uses Dreger-style exponential and cosine
//! STFs. We implement both plus a triangle; the cumulative form (needed for
//! displacement waveforms, which are what GNSS records) is available in
//! closed form for each.

/// Supported source-time-function shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StfKind {
    /// Dreger STF: `s(t) ∝ t·exp(-t/τ)`, a realistic asymmetric pulse.
    Dreger,
    /// Cosine bell over the rise time.
    Cosine,
    /// Symmetric triangle over the rise time.
    Triangle,
}

impl StfKind {
    /// Normalised cumulative STF: fraction of the final slip completed at
    /// time `t` after onset, for a subfault with rise time `rise_s`.
    /// Returns 0 before onset, approaches 1 well after `rise_s`.
    pub fn cumulative(self, t: f64, rise_s: f64) -> f64 {
        if t <= 0.0 || rise_s <= 0.0 {
            return if t > 0.0 { 1.0 } else { 0.0 };
        }
        match self {
            StfKind::Dreger => {
                // s(t) = t e^{-t/tau}; integral = tau^2 (1 - e^{-t/tau}(1 + t/tau)).
                // tau chosen so that ~85% of moment is released within rise_s.
                let tau = rise_s / 3.0;
                let x = t / tau;
                1.0 - (-x).exp() * (1.0 + x)
            }
            StfKind::Cosine => {
                if t >= rise_s {
                    1.0
                } else {
                    0.5 - 0.5 * (std::f64::consts::PI * t / rise_s).cos()
                }
            }
            StfKind::Triangle => {
                let f = (t / rise_s).min(1.0);
                if f < 0.5 {
                    2.0 * f * f
                } else {
                    1.0 - 2.0 * (1.0 - f) * (1.0 - f)
                }
            }
        }
    }

    /// Instantaneous slip rate (derivative of [`Self::cumulative`]) —
    /// useful for velocity waveforms and tests.
    pub fn rate(self, t: f64, rise_s: f64) -> f64 {
        if t <= 0.0 || rise_s <= 0.0 {
            return 0.0;
        }
        match self {
            StfKind::Dreger => {
                let tau = rise_s / 3.0;
                let x = t / tau;
                x * (-x).exp() / tau
            }
            StfKind::Cosine => {
                if t >= rise_s {
                    0.0
                } else {
                    0.5 * std::f64::consts::PI / rise_s * (std::f64::consts::PI * t / rise_s).sin()
                }
            }
            StfKind::Triangle => {
                let f = t / rise_s;
                if f >= 1.0 {
                    0.0
                } else if f < 0.5 {
                    4.0 * f / rise_s
                } else {
                    4.0 * (1.0 - f) / rise_s
                }
            }
        }
    }

    /// Label used in configuration files.
    pub fn label(self) -> &'static str {
        match self {
            StfKind::Dreger => "dreger",
            StfKind::Cosine => "cosine",
            StfKind::Triangle => "triangle",
        }
    }

    /// Parse a configuration label.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "dreger" => Some(StfKind::Dreger),
            "cosine" => Some(StfKind::Cosine),
            "triangle" => Some(StfKind::Triangle),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KINDS: [StfKind; 3] = [StfKind::Dreger, StfKind::Cosine, StfKind::Triangle];

    #[test]
    fn cumulative_is_zero_before_onset() {
        for k in KINDS {
            assert_eq!(k.cumulative(0.0, 5.0), 0.0);
            assert_eq!(k.cumulative(-1.0, 5.0), 0.0);
        }
    }

    #[test]
    fn cumulative_reaches_one() {
        for k in KINDS {
            let v = k.cumulative(100.0, 5.0);
            assert!((v - 1.0).abs() < 1e-6, "{}: {v}", k.label());
        }
    }

    #[test]
    fn cumulative_monotone_nondecreasing() {
        for k in KINDS {
            let mut prev = 0.0;
            for i in 0..200 {
                let t = i as f64 * 0.1;
                let v = k.cumulative(t, 8.0);
                assert!(v + 1e-12 >= prev, "{} not monotone at t={t}", k.label());
                assert!((0.0..=1.0 + 1e-12).contains(&v));
                prev = v;
            }
        }
    }

    #[test]
    fn rate_integrates_to_cumulative() {
        for k in KINDS {
            let rise = 6.0;
            let dt = 1e-3;
            let mut acc = 0.0;
            for i in 0..((3.0 * rise / dt) as usize) {
                let t = i as f64 * dt;
                acc += k.rate(t + dt / 2.0, rise) * dt;
            }
            let cum = k.cumulative(3.0 * rise, rise);
            assert!(
                (acc - cum).abs() < 1e-3,
                "{}: integral {acc} vs cumulative {cum}",
                k.label()
            );
        }
    }

    #[test]
    fn zero_rise_time_is_a_step() {
        for k in KINDS {
            assert_eq!(k.cumulative(0.1, 0.0), 1.0);
            assert_eq!(k.cumulative(-0.1, 0.0), 0.0);
            assert_eq!(k.rate(0.1, 0.0), 0.0);
        }
    }

    #[test]
    fn labels_roundtrip() {
        for k in KINDS {
            assert_eq!(StfKind::parse(k.label()), Some(k));
        }
        assert_eq!(StfKind::parse("DREGER"), Some(StfKind::Dreger));
        assert_eq!(StfKind::parse("boxcar"), None);
    }

    #[test]
    fn dreger_releases_most_moment_within_rise_time() {
        let v = StfKind::Dreger.cumulative(5.0, 5.0);
        assert!(v > 0.75 && v < 0.95, "Dreger at t=rise: {v}");
    }
}
