//! Stochastic slip field synthesis: correlated Gaussian fields on the fault
//! mesh via Cholesky sampling or truncated Karhunen–Loève expansion.
//!
//! This is the heart of FakeQuakes' "stochastic slip" method: build the von
//! Kármán covariance over the (recycled) subfault–subfault distance matrix,
//! factor it once, then draw as many independent slip realisations as the
//! batch needs. The factorisation is the expensive, recyclable part; draws
//! are cheap — exactly the cost structure that makes the A Phase
//! embarrassingly parallel once the `.npy` matrices exist.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use rand::rngs::StdRng;
use rand::Rng;
#[cfg(test)]
use rand::SeedableRng;

use crate::error::{FqError, FqResult};
use crate::linalg::Matrix;
use crate::par;
use crate::simd;
use crate::vonkarman::VonKarman;

/// How to factor the covariance for sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldMethod {
    /// Exact sampling via Cholesky factorisation.
    Cholesky,
    /// Truncated Karhunen–Loève expansion keeping the leading `modes`
    /// eigenmodes. Cheaper draws, smoother fields; FakeQuakes' default
    /// approach (Melgar et al. use the leading ~K modes).
    KarhunenLoeve {
        /// Number of leading eigenmodes retained.
        modes: usize,
    },
}

/// A factored correlated-Gaussian-field sampler over `n` mesh points.
#[derive(Debug, Clone)]
pub struct CorrelatedField {
    n: usize,
    method_label: &'static str,
    /// For Cholesky: lower-triangular L. For KL: `V * diag(sqrt(λ))`
    /// restricted to the retained modes (an `n × k` matrix).
    factor: Matrix,
    /// Fraction of total variance captured by the retained modes (1.0 for
    /// Cholesky).
    variance_captured: f64,
}

impl CorrelatedField {
    /// Build a sampler from the von Kármán kernel evaluated on the
    /// subfault–subfault distance matrix.
    pub fn from_distances(
        distances: &Matrix,
        kernel: &VonKarman,
        method: FieldMethod,
    ) -> FqResult<Self> {
        if distances.rows() != distances.cols() {
            return Err(FqError::Linalg("distance matrix must be square".into()));
        }
        let n = distances.rows();
        if n == 0 {
            return Err(FqError::Linalg("empty distance matrix".into()));
        }
        let cov = assemble_covariance(distances, kernel);
        match method {
            FieldMethod::Cholesky => {
                let l = cov.cholesky()?;
                Ok(Self {
                    n,
                    method_label: "cholesky",
                    factor: l,
                    variance_captured: 1.0,
                })
            }
            FieldMethod::KarhunenLoeve { modes } => {
                let k = modes.clamp(1, n);
                // The truncated path skips the O(n³) eigenvector
                // accumulation for the n − k discarded modes; it still
                // returns all n eigenvalues, so variance bookkeeping is
                // exact. With k = n the full QL path is cheaper.
                let (vals, vecs) = if k < n {
                    cov.symmetric_eigen_topk(k, 30)?
                } else {
                    cov.symmetric_eigen(30)?
                };
                let total: f64 = vals.iter().map(|v| v.max(0.0)).sum();
                let kept: f64 = vals.iter().take(k).map(|v| v.max(0.0)).sum();
                let factor = Matrix::from_fn(n, k, |i, m| vecs[(i, m)] * vals[m].max(0.0).sqrt());
                Ok(Self {
                    n,
                    method_label: "karhunen-loeve",
                    factor,
                    variance_captured: if total > 0.0 { kept / total } else { 0.0 },
                })
            }
        }
    }

    /// Number of mesh points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the field covers no mesh points (cannot occur after construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Label of the factorisation method ("cholesky" / "karhunen-loeve").
    pub fn method_label(&self) -> &'static str {
        self.method_label
    }

    /// Fraction of field variance the factorisation preserves.
    pub fn variance_captured(&self) -> f64 {
        self.variance_captured
    }

    /// Draw one zero-mean, unit-marginal-variance correlated field.
    pub fn sample(&self, rng: &mut StdRng) -> Vec<f64> {
        let k = self.factor.cols();
        let z: Vec<f64> = (0..k).map(|_| standard_normal(rng)).collect();
        self.factor.matvec(&z)
    }

    /// Approximate heap footprint of the factor matrix in bytes (what a
    /// byte-budgeted [`FactorCache`] charges for this entry).
    pub fn approx_bytes(&self) -> usize {
        self.factor.rows() * self.factor.cols() * std::mem::size_of::<f64>()
    }
}

/// Assemble the von Kármán correlation matrix over a symmetric distance
/// matrix, evaluating the kernel for the **upper half only** and
/// mirroring — the kernel's fractional-order Bessel quadrature is the
/// expensive part, and `correlation(d_ij)` ≡ `correlation(d_ji)` because
/// the distance matrix is exactly symmetric. Rows of the upper triangle
/// fan out across threads; the result is byte-identical to
/// [`assemble_covariance_seq`].
pub fn assemble_covariance(distances: &Matrix, kernel: &VonKarman) -> Matrix {
    let n = distances.rows();
    let mut cov = Matrix::zeros(n, n);
    if n == 0 {
        return cov;
    }
    {
        let data = cov.as_mut_slice();
        let chunk = par::chunk_for(n, 4) * n;
        par::for_each_chunk(data, chunk, |start, rows_chunk| {
            let first_row = start / n;
            for (r, row) in rows_chunk.chunks_mut(n).enumerate() {
                let i = first_row + r;
                row[i] = 1.0;
                // Full quads of the row tail go through the 4-lane
                // kernel batch; the j-remainder falls back to the
                // scalar path, which computes identical bits per lane
                // (see vonkarman::bessel_k_frac_lanes).
                let drow = distances.row(i);
                let quad_end = i + 1 + (n - i - 1) / 4 * 4;
                let mut j = i + 1;
                while j < quad_end {
                    let c = kernel.correlation_x4([drow[j], drow[j + 1], drow[j + 2], drow[j + 3]]);
                    row[j..j + 4].copy_from_slice(&c);
                    j += 4;
                }
                for jj in quad_end..n {
                    row[jj] = kernel.correlation(drow[jj]);
                }
            }
        });
        // Mirror the computed upper half into the lower half (cheap
        // copies, sequential).
        for i in 1..n {
            for j in 0..i {
                data[i * n + j] = data[j * n + i];
            }
        }
    }
    cov
}

/// Sequential full-matrix covariance assembly (scalar kernel path,
/// evaluating every off-diagonal element). Kept as the determinism
/// oracle: the parallel half-assembly must match it byte for byte.
pub fn assemble_covariance_seq(distances: &Matrix, kernel: &VonKarman) -> Matrix {
    let n = distances.rows();
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            1.0
        } else {
            kernel.correlation(distances[(i, j)])
        }
    })
}

/// Frozen pre-SIMD covariance assembly: sequential, full-matrix, on the
/// libm Bessel quadrature ([`crate::vonkarman::von_karman_kernel_libm`]).
/// Only the `bench_snapshot` baseline calls this; it is the "before"
/// arm every committed covariance speedup is measured against.
pub fn assemble_covariance_reference_libm(distances: &Matrix, kernel: &VonKarman) -> Matrix {
    let n = distances.rows();
    let a = (kernel.a_strike_km * kernel.a_dip_km).sqrt();
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            1.0
        } else {
            let x = (distances[(i, j)] / a).max(0.0);
            crate::vonkarman::von_karman_kernel_libm(x, kernel.hurst)
        }
    })
}

/// Method component of a [`FactorCache`] key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum MethodKey {
    Cholesky,
    KarhunenLoeve(usize),
}

impl From<FieldMethod> for MethodKey {
    fn from(m: FieldMethod) -> Self {
        match m {
            FieldMethod::Cholesky => MethodKey::Cholesky,
            FieldMethod::KarhunenLoeve { modes } => MethodKey::KarhunenLoeve(modes),
        }
    }
}

/// Cache key: fault-mesh identity, matrix size, an FNV digest of the
/// distance matrix bits, the kernel parameters (bit-exact), and the
/// factorisation method.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct FactorKey {
    mesh: String,
    n: usize,
    dist_digest: u64,
    kernel_bits: [u64; 3],
    method: MethodKey,
}

/// FNV-1a over the raw bit patterns of a float slice — cheap (O(n²) for
/// a distance matrix vs the O(n³) factorisation it guards) and exact:
/// any bitwise difference in the distances produces a different key.
fn fnv1a_f64(xs: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Hit/miss/entry counts of a [`FactorCache`], for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FactorCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to factorise.
    pub misses: u64,
    /// Entries dropped by LRU eviction under a byte budget.
    pub evictions: u64,
    /// Distinct factors currently cached.
    pub entries: usize,
    /// Approximate bytes held by cached factor matrices.
    pub bytes: usize,
}

/// Source of factored correlated fields — the seam between science code
/// that *needs* a factor and whatever supplies it (a process-local
/// [`FactorCache`], the service layer's shared content-addressed store, a
/// test stub). Implementations must be deterministic: the returned field
/// must be bit-identical to
/// [`CorrelatedField::from_distances`] on the same inputs.
pub trait FactorBackend: Sync {
    /// Fetch (or compute) the factored field for this mesh/kernel/method.
    fn fetch(
        &self,
        mesh_id: &str,
        distances: &Matrix,
        kernel: &VonKarman,
        method: FieldMethod,
    ) -> FqResult<Arc<CorrelatedField>>;
}

/// One cached factor plus its LRU bookkeeping.
#[derive(Debug)]
struct CacheEntry {
    field: Arc<CorrelatedField>,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: BTreeMap<FactorKey, CacheEntry>,
    bytes: usize,
    tick: u64,
}

/// A cache of factored [`CorrelatedField`]s keyed by
/// `(fault-mesh id, distance-matrix digest, correlation params, method)`,
/// so a catalog of N rupture draws factorises once and draws N times —
/// the same recycling the FDW applies to its `.npy` distance matrices
/// and Green's-function libraries.
///
/// Memory is bounded: construct with [`FactorCache::with_byte_budget`]
/// and the least-recently-used factors are evicted once the summed
/// factor-matrix footprint exceeds the budget. Eviction only discards the
/// cache's reference — in-flight `Arc`s stay valid — and a later lookup
/// recomputes the factor, bit-identically, by determinism of the
/// factorisation. A budget of zero (the default) means unbounded.
///
/// Thread-safe; the factorisation itself runs outside the lock, so
/// concurrent misses on different keys don't serialise (concurrent
/// misses on the *same* key may both factorise — first insert wins, and
/// both results are identical by determinism).
#[derive(Debug, Default)]
pub struct FactorCache {
    inner: Mutex<CacheInner>,
    byte_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl FactorCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache that evicts least-recently-used factors once the
    /// summed factor footprint exceeds `bytes` (`0` = unbounded). The
    /// most recently touched entry is never evicted, so a single factor
    /// larger than the budget still caches (and the budget is treated as
    /// best-effort for it).
    pub fn with_byte_budget(bytes: usize) -> Self {
        Self {
            byte_budget: bytes,
            ..Self::default()
        }
    }

    /// The configured eviction budget in bytes (`0` = unbounded).
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// The process-wide shared cache.
    pub fn global() -> &'static FactorCache {
        static CACHE: OnceLock<FactorCache> = OnceLock::new();
        CACHE.get_or_init(FactorCache::new)
    }

    /// Fetch the factored field for this mesh/kernel/method, building it
    /// via [`CorrelatedField::from_distances`] on a miss.
    pub fn get_or_build(
        &self,
        mesh_id: &str,
        distances: &Matrix,
        kernel: &VonKarman,
        method: FieldMethod,
    ) -> FqResult<Arc<CorrelatedField>> {
        let key = FactorKey {
            mesh: mesh_id.to_string(),
            n: distances.rows(),
            dist_digest: fnv1a_f64(distances.as_slice()),
            kernel_bits: [
                kernel.a_strike_km.to_bits(),
                kernel.a_dip_km.to_bits(),
                kernel.hurst.to_bits(),
            ],
            method: method.into(),
        };
        {
            let mut inner = self.inner.lock().expect("factor cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&entry.field));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(CorrelatedField::from_distances(distances, kernel, method)?);
        let mut inner = self.inner.lock().expect("factor cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let field = match inner.map.get_mut(&key) {
            // A concurrent miss on the same key beat us to the insert;
            // its factor is bit-identical to ours, so serve it.
            Some(entry) => {
                entry.last_used = tick;
                Arc::clone(&entry.field)
            }
            None => {
                let bytes = built.approx_bytes();
                inner.bytes += bytes;
                inner.map.insert(
                    key.clone(),
                    CacheEntry {
                        field: Arc::clone(&built),
                        bytes,
                        last_used: tick,
                    },
                );
                built
            }
        };
        if self.byte_budget > 0 {
            while inner.bytes > self.byte_budget && inner.map.len() > 1 {
                // Victim: smallest last_used tick, excluding the entry we
                // just touched. BTreeMap iteration order makes the scan
                // deterministic even on ties (ticks are unique anyway).
                let victim = inner
                    .map
                    .iter()
                    .filter(|(k, _)| **k != key)
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone());
                match victim {
                    Some(v) => {
                        if let Some(evicted) = inner.map.remove(&v) {
                            inner.bytes -= evicted.bytes;
                            self.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    None => break,
                }
            }
        }
        Ok(field)
    }

    /// Snapshot of hit/miss/eviction/entry/byte counts.
    pub fn stats(&self) -> FactorCacheStats {
        let inner = self.inner.lock().expect("factor cache poisoned");
        FactorCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len(),
            bytes: inner.bytes,
        }
    }

    /// Drop all cached factors and reset counters (tests, benchmarks).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("factor cache poisoned");
        inner.map.clear();
        inner.bytes = 0;
        inner.tick = 0;
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

impl FactorBackend for FactorCache {
    fn fetch(
        &self,
        mesh_id: &str,
        distances: &Matrix,
        kernel: &VonKarman,
        method: FieldMethod,
    ) -> FqResult<Arc<CorrelatedField>> {
        self.get_or_build(mesh_id, distances, kernel, method)
    }
}

/// Draw a standard normal via Box–Muller (avoids a distribution-crate
/// dependency; the polar form is rejection-free here because we always use
/// both uniforms).
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Summary statistics of a sampled field (used by tests and the Fig. 1
/// product report).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

/// Compute summary statistics of a slice; empty input yields all-zero stats.
pub fn field_stats(x: &[f64]) -> FieldStats {
    if x.is_empty() {
        return FieldStats {
            mean: 0.0,
            std: 0.0,
            min: 0.0,
            max: 0.0,
        };
    }
    let n = x.len() as f64;
    let mean = simd::lane_sum(x) / n;
    let sq: Vec<f64> = x.iter().map(|v| (v - mean) * (v - mean)).collect();
    let var = simd::lane_sum(&sq) / n;
    let min = x.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    FieldStats {
        mean,
        std: var.sqrt(),
        min,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistanceMatrices;
    use crate::geometry::FaultModel;
    use crate::stations::{ChileanInput, StationNetwork};

    fn field_fixture(method: FieldMethod) -> CorrelatedField {
        let fault = FaultModel::chilean_subduction(8, 4).unwrap();
        let net = StationNetwork::chilean_input(ChileanInput::Small, 1);
        let d = DistanceMatrices::compute(&fault, &net);
        CorrelatedField::from_distances(
            &d.subfault_to_subfault,
            &VonKarman {
                a_strike_km: 120.0,
                a_dip_km: 60.0,
                hurst: 0.75,
            },
            method,
        )
        .unwrap()
    }

    #[test]
    fn cholesky_field_covers_mesh() {
        let f = field_fixture(FieldMethod::Cholesky);
        assert_eq!(f.len(), 32);
        assert!(!f.is_empty());
        assert_eq!(f.method_label(), "cholesky");
        assert_eq!(f.variance_captured(), 1.0);
    }

    #[test]
    fn kl_truncation_captures_most_variance() {
        let f = field_fixture(FieldMethod::KarhunenLoeve { modes: 16 });
        assert_eq!(f.method_label(), "karhunen-loeve");
        assert!(
            f.variance_captured() > 0.8,
            "16/32 modes capture {}",
            f.variance_captured()
        );
        assert!(f.variance_captured() <= 1.0 + 1e-9);
    }

    #[test]
    fn kl_modes_clamped_to_mesh_size() {
        let f = field_fixture(FieldMethod::KarhunenLoeve { modes: 10_000 });
        assert!((f.variance_captured() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn samples_are_deterministic_given_seed() {
        let f = field_fixture(FieldMethod::Cholesky);
        let mut r1 = StdRng::seed_from_u64(11);
        let mut r2 = StdRng::seed_from_u64(11);
        assert_eq!(f.sample(&mut r1), f.sample(&mut r2));
    }

    #[test]
    fn samples_have_roughly_unit_variance() {
        let f = field_fixture(FieldMethod::Cholesky);
        let mut rng = StdRng::seed_from_u64(5);
        let mut acc = 0.0;
        let reps = 200;
        for _ in 0..reps {
            let s = f.sample(&mut rng);
            let st = field_stats(&s);
            acc += st.std * st.std + st.mean * st.mean;
        }
        let var = acc / reps as f64;
        assert!((0.7..1.3).contains(&var), "ensemble variance {var}");
    }

    #[test]
    fn nearby_points_are_correlated() {
        // With long correlation lengths, adjacent subfaults must co-vary
        // strongly across an ensemble.
        let f = field_fixture(FieldMethod::Cholesky);
        let mut rng = StdRng::seed_from_u64(17);
        let mut cov01 = 0.0;
        let reps = 400;
        for _ in 0..reps {
            let s = f.sample(&mut rng);
            cov01 += s[0] * s[1]; // adjacent down-dip neighbours
        }
        cov01 /= reps as f64;
        assert!(cov01 > 0.5, "neighbour covariance {cov01}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(99);
        let xs: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        let st = field_stats(&xs);
        assert!(st.mean.abs() < 0.03, "mean {}", st.mean);
        assert!((st.std - 1.0).abs() < 0.03, "std {}", st.std);
    }

    #[test]
    fn rejects_bad_inputs() {
        let vk = VonKarman::default();
        let rect = Matrix::zeros(2, 3);
        assert!(CorrelatedField::from_distances(&rect, &vk, FieldMethod::Cholesky).is_err());
        let empty = Matrix::zeros(0, 0);
        assert!(CorrelatedField::from_distances(&empty, &vk, FieldMethod::Cholesky).is_err());
    }

    #[test]
    fn half_assembly_matches_sequential_bytewise() {
        let fault = FaultModel::chilean_subduction(9, 5).unwrap();
        let net = StationNetwork::chilean_input(ChileanInput::Small, 1);
        let d = DistanceMatrices::compute(&fault, &net);
        let vk = VonKarman {
            a_strike_km: 80.0,
            a_dip_km: 35.0,
            hurst: 0.6,
        };
        let par = assemble_covariance(&d.subfault_to_subfault, &vk);
        let seq = assemble_covariance_seq(&d.subfault_to_subfault, &vk);
        assert_eq!(par.as_slice(), seq.as_slice());
        assert_eq!(assemble_covariance(&Matrix::zeros(0, 0), &vk).rows(), 0);
    }

    #[test]
    fn kl_truncated_path_matches_full_eigen_metadata() {
        // modes < n takes the top-k path; its variance bookkeeping must
        // agree with the full path because both see all n eigenvalues.
        let full = field_fixture(FieldMethod::KarhunenLoeve { modes: 32 });
        let trunc = field_fixture(FieldMethod::KarhunenLoeve { modes: 12 });
        assert!(trunc.variance_captured() < full.variance_captured());
        assert!(trunc.variance_captured() > 0.5);
    }

    #[test]
    fn factor_cache_hits_on_identical_inputs() {
        let fault = FaultModel::chilean_subduction(6, 3).unwrap();
        let net = StationNetwork::chilean_input(ChileanInput::Small, 1);
        let d = DistanceMatrices::compute(&fault, &net);
        let vk = VonKarman::default();
        let cache = FactorCache::new();
        let a = cache
            .get_or_build(
                "mesh-a",
                &d.subfault_to_subfault,
                &vk,
                FieldMethod::Cholesky,
            )
            .unwrap();
        let b = cache
            .get_or_build(
                "mesh-a",
                &d.subfault_to_subfault,
                &vk,
                FieldMethod::Cholesky,
            )
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a cache hit");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        // Different method → different entry.
        cache
            .get_or_build(
                "mesh-a",
                &d.subfault_to_subfault,
                &vk,
                FieldMethod::KarhunenLoeve { modes: 4 },
            )
            .unwrap();
        assert_eq!(cache.stats().entries, 2);
        // Different kernel parameters → different entry.
        let vk2 = VonKarman {
            hurst: vk.hurst * 0.5,
            ..vk
        };
        cache
            .get_or_build(
                "mesh-a",
                &d.subfault_to_subfault,
                &vk2,
                FieldMethod::Cholesky,
            )
            .unwrap();
        assert_eq!(cache.stats().entries, 3);
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn cached_factor_draw_is_bit_identical_to_fresh() {
        let fault = FaultModel::chilean_subduction(6, 3).unwrap();
        let net = StationNetwork::chilean_input(ChileanInput::Small, 1);
        let d = DistanceMatrices::compute(&fault, &net);
        let vk = VonKarman::default();
        let cache = FactorCache::new();
        let fresh =
            CorrelatedField::from_distances(&d.subfault_to_subfault, &vk, FieldMethod::Cholesky)
                .unwrap();
        // Warm the cache, then read it back.
        cache
            .get_or_build("m", &d.subfault_to_subfault, &vk, FieldMethod::Cholesky)
            .unwrap();
        let cached = cache
            .get_or_build("m", &d.subfault_to_subfault, &vk, FieldMethod::Cholesky)
            .unwrap();
        let mut r1 = StdRng::seed_from_u64(31);
        let mut r2 = StdRng::seed_from_u64(31);
        assert_eq!(fresh.sample(&mut r1), cached.sample(&mut r2));
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        let fault = FaultModel::chilean_subduction(6, 3).unwrap();
        let net = StationNetwork::chilean_input(ChileanInput::Small, 1);
        let d = DistanceMatrices::compute(&fault, &net);
        let vk = VonKarman::default();
        let one_factor = 18 * 18 * std::mem::size_of::<f64>();
        // Budget fits exactly one Cholesky factor of this mesh.
        let cache = FactorCache::with_byte_budget(one_factor + 64);
        assert_eq!(cache.byte_budget(), one_factor + 64);
        let a = cache
            .get_or_build("m", &d.subfault_to_subfault, &vk, FieldMethod::Cholesky)
            .unwrap();
        assert_eq!(cache.stats().bytes, one_factor);
        let vk2 = VonKarman {
            hurst: vk.hurst * 0.5,
            ..vk
        };
        cache
            .get_or_build("m", &d.subfault_to_subfault, &vk2, FieldMethod::Cholesky)
            .unwrap();
        let s = cache.stats();
        assert_eq!(s.evictions, 1, "first factor evicted under budget");
        assert_eq!(s.entries, 1);
        assert!(s.bytes <= cache.byte_budget());
        // Re-fetching the evicted key recomputes (a miss), and the
        // recomputed factor draws bit-identically to the evicted one.
        let a2 = cache
            .get_or_build("m", &d.subfault_to_subfault, &vk, FieldMethod::Cholesky)
            .unwrap();
        assert_eq!(cache.stats().misses, 3, "post-eviction lookup is a miss");
        assert!(!Arc::ptr_eq(&a, &a2), "recompute, not the original Arc");
        let mut r1 = StdRng::seed_from_u64(77);
        let mut r2 = StdRng::seed_from_u64(77);
        assert_eq!(a.sample(&mut r1), a2.sample(&mut r2));
    }

    #[test]
    fn lru_prefers_least_recently_used_victim() {
        let fault = FaultModel::chilean_subduction(6, 3).unwrap();
        let net = StationNetwork::chilean_input(ChileanInput::Small, 1);
        let d = DistanceMatrices::compute(&fault, &net);
        let vk = |h: f64| VonKarman {
            hurst: h,
            ..VonKarman::default()
        };
        let one_factor = 18 * 18 * std::mem::size_of::<f64>();
        // Budget fits two factors; the third insert evicts one.
        let cache = FactorCache::with_byte_budget(2 * one_factor + 64);
        let dm = &d.subfault_to_subfault;
        cache
            .get_or_build("m", dm, &vk(0.9), FieldMethod::Cholesky)
            .unwrap();
        cache
            .get_or_build("m", dm, &vk(0.8), FieldMethod::Cholesky)
            .unwrap();
        // Touch the first key so the second becomes the LRU victim.
        cache
            .get_or_build("m", dm, &vk(0.9), FieldMethod::Cholesky)
            .unwrap();
        cache
            .get_or_build("m", dm, &vk(0.7), FieldMethod::Cholesky)
            .unwrap();
        assert_eq!(cache.stats().evictions, 1);
        // 0.9 survived (hit); 0.8 was evicted (miss on re-fetch).
        let hits_before = cache.stats().hits;
        cache
            .get_or_build("m", dm, &vk(0.9), FieldMethod::Cholesky)
            .unwrap();
        assert_eq!(cache.stats().hits, hits_before + 1);
        let misses_before = cache.stats().misses;
        cache
            .get_or_build("m", dm, &vk(0.8), FieldMethod::Cholesky)
            .unwrap();
        assert_eq!(cache.stats().misses, misses_before + 1);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let fault = FaultModel::chilean_subduction(6, 3).unwrap();
        let net = StationNetwork::chilean_input(ChileanInput::Small, 1);
        let d = DistanceMatrices::compute(&fault, &net);
        let cache = FactorCache::new();
        for i in 0..5 {
            let vk = VonKarman {
                hurst: 0.5 + 0.05 * i as f64,
                ..VonKarman::default()
            };
            cache
                .get_or_build("m", &d.subfault_to_subfault, &vk, FieldMethod::Cholesky)
                .unwrap();
        }
        let s = cache.stats();
        assert_eq!((s.evictions, s.entries), (0, 5));
    }

    #[test]
    fn field_stats_empty_and_known() {
        let st = field_stats(&[]);
        assert_eq!(st.mean, 0.0);
        let st = field_stats(&[1.0, 2.0, 3.0]);
        assert_eq!(st.mean, 2.0);
        assert_eq!(st.min, 1.0);
        assert_eq!(st.max, 3.0);
        assert!((st.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }
}
