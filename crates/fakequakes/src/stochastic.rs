//! Stochastic slip field synthesis: correlated Gaussian fields on the fault
//! mesh via Cholesky sampling or truncated Karhunen–Loève expansion.
//!
//! This is the heart of FakeQuakes' "stochastic slip" method: build the von
//! Kármán covariance over the (recycled) subfault–subfault distance matrix,
//! factor it once, then draw as many independent slip realisations as the
//! batch needs. The factorisation is the expensive, recyclable part; draws
//! are cheap — exactly the cost structure that makes the A Phase
//! embarrassingly parallel once the `.npy` matrices exist.

use rand::rngs::StdRng;
use rand::Rng;
#[cfg(test)]
use rand::SeedableRng;

use crate::error::{FqError, FqResult};
use crate::linalg::Matrix;
use crate::vonkarman::VonKarman;

/// How to factor the covariance for sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldMethod {
    /// Exact sampling via Cholesky factorisation.
    Cholesky,
    /// Truncated Karhunen–Loève expansion keeping the leading `modes`
    /// eigenmodes. Cheaper draws, smoother fields; FakeQuakes' default
    /// approach (Melgar et al. use the leading ~K modes).
    KarhunenLoeve {
        /// Number of leading eigenmodes retained.
        modes: usize,
    },
}

/// A factored correlated-Gaussian-field sampler over `n` mesh points.
#[derive(Debug, Clone)]
pub struct CorrelatedField {
    n: usize,
    method_label: &'static str,
    /// For Cholesky: lower-triangular L. For KL: `V * diag(sqrt(λ))`
    /// restricted to the retained modes (an `n × k` matrix).
    factor: Matrix,
    /// Fraction of total variance captured by the retained modes (1.0 for
    /// Cholesky).
    variance_captured: f64,
}

impl CorrelatedField {
    /// Build a sampler from the von Kármán kernel evaluated on the
    /// subfault–subfault distance matrix.
    pub fn from_distances(
        distances: &Matrix,
        kernel: &VonKarman,
        method: FieldMethod,
    ) -> FqResult<Self> {
        if distances.rows() != distances.cols() {
            return Err(FqError::Linalg("distance matrix must be square".into()));
        }
        let n = distances.rows();
        if n == 0 {
            return Err(FqError::Linalg("empty distance matrix".into()));
        }
        let cov = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else {
                kernel.correlation(distances[(i, j)])
            }
        });
        match method {
            FieldMethod::Cholesky => {
                let l = cov.cholesky()?;
                Ok(Self {
                    n,
                    method_label: "cholesky",
                    factor: l,
                    variance_captured: 1.0,
                })
            }
            FieldMethod::KarhunenLoeve { modes } => {
                let k = modes.clamp(1, n);
                let (vals, vecs) = cov.symmetric_eigen(30)?;
                let total: f64 = vals.iter().map(|v| v.max(0.0)).sum();
                let kept: f64 = vals.iter().take(k).map(|v| v.max(0.0)).sum();
                let factor = Matrix::from_fn(n, k, |i, m| vecs[(i, m)] * vals[m].max(0.0).sqrt());
                Ok(Self {
                    n,
                    method_label: "karhunen-loeve",
                    factor,
                    variance_captured: if total > 0.0 { kept / total } else { 0.0 },
                })
            }
        }
    }

    /// Number of mesh points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the field covers no mesh points (cannot occur after construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Label of the factorisation method ("cholesky" / "karhunen-loeve").
    pub fn method_label(&self) -> &'static str {
        self.method_label
    }

    /// Fraction of field variance the factorisation preserves.
    pub fn variance_captured(&self) -> f64 {
        self.variance_captured
    }

    /// Draw one zero-mean, unit-marginal-variance correlated field.
    pub fn sample(&self, rng: &mut StdRng) -> Vec<f64> {
        let k = self.factor.cols();
        let z: Vec<f64> = (0..k).map(|_| standard_normal(rng)).collect();
        self.factor.matvec(&z)
    }
}

/// Draw a standard normal via Box–Muller (avoids a distribution-crate
/// dependency; the polar form is rejection-free here because we always use
/// both uniforms).
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Summary statistics of a sampled field (used by tests and the Fig. 1
/// product report).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

/// Compute summary statistics of a slice; empty input yields all-zero stats.
pub fn field_stats(x: &[f64]) -> FieldStats {
    if x.is_empty() {
        return FieldStats {
            mean: 0.0,
            std: 0.0,
            min: 0.0,
            max: 0.0,
        };
    }
    let n = x.len() as f64;
    let mean = x.iter().sum::<f64>() / n;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let min = x.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    FieldStats {
        mean,
        std: var.sqrt(),
        min,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistanceMatrices;
    use crate::geometry::FaultModel;
    use crate::stations::{ChileanInput, StationNetwork};

    fn field_fixture(method: FieldMethod) -> CorrelatedField {
        let fault = FaultModel::chilean_subduction(8, 4).unwrap();
        let net = StationNetwork::chilean_input(ChileanInput::Small, 1);
        let d = DistanceMatrices::compute(&fault, &net);
        CorrelatedField::from_distances(
            &d.subfault_to_subfault,
            &VonKarman {
                a_strike_km: 120.0,
                a_dip_km: 60.0,
                hurst: 0.75,
            },
            method,
        )
        .unwrap()
    }

    #[test]
    fn cholesky_field_covers_mesh() {
        let f = field_fixture(FieldMethod::Cholesky);
        assert_eq!(f.len(), 32);
        assert!(!f.is_empty());
        assert_eq!(f.method_label(), "cholesky");
        assert_eq!(f.variance_captured(), 1.0);
    }

    #[test]
    fn kl_truncation_captures_most_variance() {
        let f = field_fixture(FieldMethod::KarhunenLoeve { modes: 16 });
        assert_eq!(f.method_label(), "karhunen-loeve");
        assert!(
            f.variance_captured() > 0.8,
            "16/32 modes capture {}",
            f.variance_captured()
        );
        assert!(f.variance_captured() <= 1.0 + 1e-9);
    }

    #[test]
    fn kl_modes_clamped_to_mesh_size() {
        let f = field_fixture(FieldMethod::KarhunenLoeve { modes: 10_000 });
        assert!((f.variance_captured() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn samples_are_deterministic_given_seed() {
        let f = field_fixture(FieldMethod::Cholesky);
        let mut r1 = StdRng::seed_from_u64(11);
        let mut r2 = StdRng::seed_from_u64(11);
        assert_eq!(f.sample(&mut r1), f.sample(&mut r2));
    }

    #[test]
    fn samples_have_roughly_unit_variance() {
        let f = field_fixture(FieldMethod::Cholesky);
        let mut rng = StdRng::seed_from_u64(5);
        let mut acc = 0.0;
        let reps = 200;
        for _ in 0..reps {
            let s = f.sample(&mut rng);
            let st = field_stats(&s);
            acc += st.std * st.std + st.mean * st.mean;
        }
        let var = acc / reps as f64;
        assert!((0.7..1.3).contains(&var), "ensemble variance {var}");
    }

    #[test]
    fn nearby_points_are_correlated() {
        // With long correlation lengths, adjacent subfaults must co-vary
        // strongly across an ensemble.
        let f = field_fixture(FieldMethod::Cholesky);
        let mut rng = StdRng::seed_from_u64(17);
        let mut cov01 = 0.0;
        let reps = 400;
        for _ in 0..reps {
            let s = f.sample(&mut rng);
            cov01 += s[0] * s[1]; // adjacent down-dip neighbours
        }
        cov01 /= reps as f64;
        assert!(cov01 > 0.5, "neighbour covariance {cov01}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(99);
        let xs: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        let st = field_stats(&xs);
        assert!(st.mean.abs() < 0.03, "mean {}", st.mean);
        assert!((st.std - 1.0).abs() < 0.03, "std {}", st.std);
    }

    #[test]
    fn rejects_bad_inputs() {
        let vk = VonKarman::default();
        let rect = Matrix::zeros(2, 3);
        assert!(CorrelatedField::from_distances(&rect, &vk, FieldMethod::Cholesky).is_err());
        let empty = Matrix::zeros(0, 0);
        assert!(CorrelatedField::from_distances(&empty, &vk, FieldMethod::Cholesky).is_err());
    }

    #[test]
    fn field_stats_empty_and_known() {
        let st = field_stats(&[]);
        assert_eq!(st.mean, 0.0);
        let st = field_stats(&[1.0, 2.0, 3.0]);
        assert_eq!(st.mean, 2.0);
        assert_eq!(st.min, 1.0);
        assert_eq!(st.max, 3.0);
        assert!((st.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }
}
