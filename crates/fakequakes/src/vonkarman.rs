//! Von Kármán spatial correlation for stochastic slip.
//!
//! FakeQuakes draws slip distributions from a Gaussian random field with a
//! von Kármán autocorrelation (Mai & Beroza 2002). The exact kernel uses
//! the modified Bessel function K_H; we implement K_H for the Hurst
//! exponents of interest via the standard small/large-argument expansions
//! of K_0 and K_1 plus linear blending in H, which is accurate to better
//! than 1 % over the argument range a correlation kernel ever sees — more
//! than adequate since the Hurst exponent itself is only known to ~0.1.

use crate::simd;

/// Parameters of a von Kármán correlation kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VonKarman {
    /// Correlation length along strike, km.
    pub a_strike_km: f64,
    /// Correlation length down dip, km.
    pub a_dip_km: f64,
    /// Hurst exponent `H` in (0, 1]; FakeQuakes default is 0.75.
    pub hurst: f64,
}

impl Default for VonKarman {
    fn default() -> Self {
        Self {
            a_strike_km: 30.0,
            a_dip_km: 15.0,
            hurst: 0.75,
        }
    }
}

impl VonKarman {
    /// Correlation lengths scaled to a rupture of the given dimensions,
    /// following the Melgar & Hayes (2019) regressions used in FakeQuakes:
    /// correlation lengths are a fixed fraction of rupture length/width.
    pub fn for_rupture(length_km: f64, width_km: f64, hurst: f64) -> Self {
        Self {
            a_strike_km: (0.17 * length_km).max(1.0),
            a_dip_km: (0.27 * width_km).max(1.0),
            hurst: hurst.clamp(0.01, 1.0),
        }
    }

    /// Isotropic-equivalent correlation at 3-D separation `r_km`,
    /// using the geometric mean of the two correlation lengths.
    ///
    /// `C(r) = G_H(r/a)` with `G_H(0) = 1`, monotonically decreasing.
    pub fn correlation(&self, r_km: f64) -> f64 {
        let a = (self.a_strike_km * self.a_dip_km).sqrt();
        let x = (r_km / a).max(0.0);
        von_karman_kernel(x, self.hurst)
    }

    /// Four isotropic correlations at once: the lane-batched entry
    /// `assemble_covariance` uses for full quads of a covariance row.
    /// Lane `l` is bitwise equal to `self.correlation(r_km[l])`.
    pub fn correlation_x4(&self, r_km: [f64; 4]) -> [f64; 4] {
        let a = (self.a_strike_km * self.a_dip_km).sqrt();
        von_karman_kernel_x4(r_km.map(|r| (r / a).max(0.0)), self.hurst)
    }

    /// Anisotropic correlation for separations expressed in the fault's
    /// strike/dip frame.
    pub fn correlation_anisotropic(&self, dr_strike_km: f64, dr_dip_km: f64) -> f64 {
        let x = ((dr_strike_km / self.a_strike_km).powi(2) + (dr_dip_km / self.a_dip_km).powi(2))
            .sqrt();
        von_karman_kernel(x, self.hurst)
    }
}

/// Normalised von Kármán kernel `G_H(x) = x^H K_H(x) / (2^{H-1} Γ(H))`,
/// with `G_H(0) = 1`.
///
/// The one-lane instantiation of [`von_karman_lanes`]: bitwise equal to
/// lane `l` of [`von_karman_kernel_x4`] by construction, because the
/// lane loop carries no cross-lane operations.
pub fn von_karman_kernel(x: f64, hurst: f64) -> f64 {
    von_karman_lanes([x], hurst)[0]
}

/// Four kernel evaluations at once — the batch entry
/// `assemble_covariance` feeds with quads of distances so the Bessel
/// quadrature's exp/cosh work runs 4-wide.
pub fn von_karman_kernel_x4(xs: [f64; 4], hurst: f64) -> [f64; 4] {
    von_karman_lanes(xs, hurst)
}

/// Generic-lane von Kármán kernel. Out-of-range abscissae (`x <= 0`
/// maps to 1, `x > 60` to 0) are substituted with a safe `x = 1` before
/// the quadrature and patched afterwards, so a mixed quad still runs
/// every lane through the same instruction stream.
fn von_karman_lanes<const L: usize>(xs: [f64; L], hurst: f64) -> [f64; L] {
    let h = hurst.clamp(0.01, 1.0);
    let mut safe = xs;
    for v in &mut safe {
        if *v <= 0.0 || *v > 60.0 {
            *v = 1.0;
        }
    }
    let kh = bessel_k_frac_lanes(h, safe);
    let norm = 2f64.powf(h - 1.0) * gamma(h);
    let mut out = [0.0; L];
    for l in 0..L {
        out[l] = if xs[l] <= 0.0 {
            1.0
        } else if xs[l] > 60.0 {
            0.0
        } else {
            (xs[l].powf(h) * kh[l] / norm).clamp(0.0, 1.0)
        };
    }
    out
}

/// Frozen pre-SIMD kernel on the libm quadrature
/// ([`bessel_k_fractional_libm`]); the `bench_snapshot` covariance
/// baseline and the cross-check anchor for the fq path.
pub fn von_karman_kernel_libm(x: f64, hurst: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    if x > 60.0 {
        return 0.0;
    }
    let h = hurst.clamp(0.01, 1.0);
    let kh = bessel_k_fractional_libm(h, x);
    let norm = 2f64.powf(h - 1.0) * gamma(h);
    (x.powf(h) * kh / norm).clamp(0.0, 1.0)
}

/// Lanczos approximation of the Gamma function for positive arguments.
pub fn gamma(x: f64) -> f64 {
    // Lanczos g=7, n=9 coefficients.
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_81,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// Modified Bessel function of the second kind `K_0(x)`, x > 0.
/// Abramowitz & Stegun 9.8.5–9.8.8 polynomial approximations.
pub fn bessel_k0(x: f64) -> f64 {
    if x <= 2.0 {
        let t = x * x / 4.0;
        let i0 = bessel_i0(x);
        -((x / 2.0).ln()) * i0
            + (-0.577_215_66
                + t * (0.422_784_20
                    + t * (0.230_697_56
                        + t * (0.034_885_90
                            + t * (0.002_626_98 + t * (0.000_107_50 + t * 0.000_007_40))))))
    } else {
        let t = 2.0 / x;
        (x.exp()).recip() / x.sqrt()
            * (1.253_314_14
                + t * (-0.078_323_58
                    + t * (0.021_895_68
                        + t * (-0.010_624_46
                            + t * (0.005_878_72 + t * (-0.002_515_40 + t * 0.000_532_08))))))
    }
}

/// Modified Bessel function of the second kind `K_1(x)`, x > 0.
pub fn bessel_k1(x: f64) -> f64 {
    if x <= 2.0 {
        let t = x * x / 4.0;
        let i1 = bessel_i1(x);
        ((x / 2.0).ln()) * i1
            + (1.0 / x)
                * (1.0
                    + t * (0.154_431_44
                        + t * (-0.672_784_79
                            + t * (-0.181_568_97
                                + t * (-0.019_194_02
                                    + t * (-0.001_104_04 + t * (-0.000_046_86)))))))
    } else {
        let t = 2.0 / x;
        (x.exp()).recip() / x.sqrt()
            * (1.253_314_14
                + t * (0.234_986_19
                    + t * (-0.036_556_20
                        + t * (0.015_042_68
                            + t * (-0.007_803_53 + t * (0.003_256_14 + t * (-0.000_682_45)))))))
    }
}

/// Modified Bessel function of the first kind `I_0(x)`.
pub fn bessel_i0(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 3.75 {
        let t = (x / 3.75) * (x / 3.75);
        1.0 + t
            * (3.515_622_9
                + t * (3.089_942_4
                    + t * (1.206_749_2 + t * (0.265_973_2 + t * (0.036_076_8 + t * 0.004_581_3)))))
    } else {
        let t = 3.75 / ax;
        (ax.exp() / ax.sqrt())
            * (0.398_942_28
                + t * (0.013_285_92
                    + t * (0.002_253_19
                        + t * (-0.001_575_65
                            + t * (0.009_162_81
                                + t * (-0.020_577_06
                                    + t * (0.026_355_37
                                        + t * (-0.016_476_33 + t * 0.003_923_77))))))))
    }
}

/// Modified Bessel function of the first kind `I_1(x)`.
pub fn bessel_i1(x: f64) -> f64 {
    let ax = x.abs();
    let ans = if ax < 3.75 {
        let t = (x / 3.75) * (x / 3.75);
        ax * (0.5
            + t * (0.878_905_94
                + t * (0.514_988_69
                    + t * (0.150_849_34
                        + t * (0.026_587_33 + t * (0.003_015_32 + t * 0.000_324_11))))))
    } else {
        let t = 3.75 / ax;
        let top = 0.398_942_28
            + t * (-0.039_880_24
                + t * (-0.003_620_18
                    + t * (0.001_638_01
                        + t * (-0.010_315_55
                            + t * (0.022_829_67
                                + t * (-0.028_953_12
                                    + t * (0.017_876_54 + t * (-0.004_200_59))))))));
        ax.exp() / ax.sqrt() * top
    };
    if x < 0.0 {
        -ans
    } else {
        ans
    }
}

/// Fractional-order `K_ν(x)` for `ν ∈ [0,1]`, via the integral
/// representation `K_ν(x) = ∫_0^∞ e^{-x cosh t} cosh(νt) dt` evaluated
/// with composite Simpson quadrature. Accurate to ~1e-8 relative over the
/// argument range a correlation kernel sees.
///
/// The one-lane instantiation of [`bessel_k_frac_lanes`] — the scalar
/// path and the 4-lane batch compute identical bits per abscissa.
pub fn bessel_k_fractional(nu: f64, x: f64) -> f64 {
    bessel_k_frac_lanes(nu, [x])[0]
}

/// Four `K_ν` evaluations at once (shared order `ν`, four abscissae).
pub fn bessel_k_fractional_x4(nu: f64, xs: [f64; 4]) -> [f64; 4] {
    bessel_k_frac_lanes(nu, xs)
}

/// Simpson panel count of the `K_ν` quadrature (even, fixed).
const KNU_PANELS: usize = 400;

/// Generic-lane Simpson quadrature for `K_ν`.
///
/// Three things make this the hot-path form (DESIGN.md §13):
///
/// 1. **No libm in the inner loop.** `cosh(i·h)` and `cosh(ν·i·h)` are
///    advanced by the stable three-term recurrence
///    `c_{i+1} = 2 cosh(h) · c_i − c_{i−1}`, so the only transcendental
///    per node is one [`simd::fq_exp`] — down from an exp and two coshes.
/// 2. **Lane-parallel evaluation.** All per-node work is an `l`-indexed
///    elementwise loop with no cross-lane data flow, which LLVM
///    autovectorizes at `L = 4` — and which guarantees the `L = 1`
///    instantiation computes bit-for-bit the lane-`l` value of the
///    `L = 4` one.
/// 3. **Fixed accumulation order.** Per lane: `f(0)`, then the interior
///    nodes ascending with their Simpson weights, then the `t_max`
///    endpoint taken from the recurrence (not a fresh `cosh(t_max)`),
///    then the `h/3` scale. This order is canonical and
///    platform-independent.
///
/// Non-positive abscissae are substituted with `x = 1` and patched to
/// `K_ν(x ≤ 0) = ∞` afterwards.
fn bessel_k_frac_lanes<const L: usize>(nu: f64, xs: [f64; L]) -> [f64; L] {
    let nu = nu.clamp(0.0, 1.0);
    let mut x = xs;
    for v in &mut x {
        if *v <= 0.0 {
            *v = 1.0;
        }
    }
    // Integrand ~ e^{-x cosh t}; negligible once x(cosh t - 1) > 45.
    let mut h = [0.0; L];
    for l in 0..L {
        let b = 1.0 + 45.0 / x[l];
        h[l] = (b + (b * b - 1.0).sqrt()).ln() / KNU_PANELS as f64;
    }
    // Recurrence state: c tracks cosh(i h), d tracks cosh(nu i h).
    let mut two_ch = [0.0; L];
    let mut two_cnh = [0.0; L];
    let mut c_prev = [1.0; L];
    let mut c_cur = [0.0; L];
    let mut d_prev = [1.0; L];
    let mut d_cur = [0.0; L];
    let mut sum = [0.0; L];
    for l in 0..L {
        let ch = simd::fq_cosh(h[l]);
        let cnh = simd::fq_cosh(nu * h[l]);
        two_ch[l] = 2.0 * ch;
        two_cnh[l] = 2.0 * cnh;
        c_cur[l] = ch;
        d_cur[l] = cnh;
        sum[l] = simd::fq_exp(-x[l]); // f(0) = e^{-x cosh 0} cosh 0
    }
    for i in 1..KNU_PANELS {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        for l in 0..L {
            sum[l] += w * (simd::fq_exp(-(x[l] * c_cur[l])) * d_cur[l]);
            let c_next = two_ch[l] * c_cur[l] - c_prev[l];
            c_prev[l] = c_cur[l];
            c_cur[l] = c_next;
            let d_next = two_cnh[l] * d_cur[l] - d_prev[l];
            d_prev[l] = d_cur[l];
            d_cur[l] = d_next;
        }
    }
    let mut out = [0.0; L];
    for l in 0..L {
        let s = sum[l] + simd::fq_exp(-(x[l] * c_cur[l])) * d_cur[l];
        out[l] = if xs[l] <= 0.0 {
            f64::INFINITY
        } else {
            s * h[l] / 3.0
        };
    }
    out
}

/// The original libm Simpson quadrature for `K_ν`, frozen pre-SIMD: the
/// bench baseline and the accuracy cross-check for
/// [`bessel_k_fractional`]. Not used by any hot path.
pub fn bessel_k_fractional_libm(nu: f64, x: f64) -> f64 {
    let nu = nu.clamp(0.0, 1.0);
    if x <= 0.0 {
        return f64::INFINITY;
    }
    let t_max = ((1.0 + 45.0 / x) + ((1.0 + 45.0 / x).powi(2) - 1.0).sqrt()).ln();
    let n = KNU_PANELS;
    let h = t_max / n as f64;
    let f = |t: f64| (-(x * t.cosh())).exp() * (nu * t).cosh();
    let mut sum = f(0.0) + f(t_max);
    for i in 1..n {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        sum += w * f(i as f64 * h);
    }
    sum * h / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= rel * b.abs().max(1e-30)
    }

    #[test]
    fn gamma_known_values() {
        assert!(approx(gamma(1.0), 1.0, 1e-10));
        assert!(approx(gamma(2.0), 1.0, 1e-10));
        assert!(approx(gamma(5.0), 24.0, 1e-10));
        assert!(approx(gamma(0.5), std::f64::consts::PI.sqrt(), 1e-10));
        assert!(approx(gamma(1.5), 0.5 * std::f64::consts::PI.sqrt(), 1e-10));
    }

    #[test]
    fn bessel_k0_known_values() {
        // Reference values from A&S tables.
        assert!(approx(bessel_k0(0.1), 2.427_069, 1e-4));
        assert!(approx(bessel_k0(1.0), 0.421_024, 1e-4));
        assert!(approx(bessel_k0(2.0), 0.113_894, 1e-4));
        assert!(approx(bessel_k0(5.0), 3.691_1e-3, 1e-3));
    }

    #[test]
    fn bessel_k1_known_values() {
        assert!(approx(bessel_k1(0.1), 9.853_84, 1e-4));
        assert!(approx(bessel_k1(1.0), 0.601_907, 1e-4));
        assert!(approx(bessel_k1(2.0), 0.139_866, 1e-4));
        assert!(approx(bessel_k1(5.0), 4.044_6e-3, 1e-3));
    }

    #[test]
    fn kernel_is_one_at_zero() {
        for h in [0.25, 0.5, 0.75, 1.0] {
            assert_eq!(von_karman_kernel(0.0, h), 1.0);
        }
    }

    #[test]
    fn kernel_decreases_monotonically() {
        for h in [0.3, 0.75] {
            let mut prev = 1.0;
            for i in 1..100 {
                let x = i as f64 * 0.1;
                let v = von_karman_kernel(x, h);
                assert!(v <= prev + 1e-12, "kernel not monotone at x={x}, h={h}");
                assert!((0.0..=1.0).contains(&v));
                prev = v;
            }
        }
    }

    #[test]
    fn kernel_vanishes_at_large_distance() {
        assert_eq!(von_karman_kernel(100.0, 0.75), 0.0);
        assert!(von_karman_kernel(20.0, 0.75) < 1e-6);
    }

    #[test]
    fn exponential_limit_at_h_half() {
        // K_{1/2}(x) = sqrt(pi/(2x)) e^{-x}, so G_{1/2}(x) = e^{-x}.
        for x in [0.2, 0.5, 1.0, 2.0, 4.0] {
            let g = von_karman_kernel(x, 0.5);
            assert!(approx(g, (-x).exp(), 1e-4), "x={x}: {g} vs {}", (-x).exp());
        }
    }

    #[test]
    fn fractional_k_matches_integer_orders() {
        for x in [0.1, 0.5, 1.0, 2.0, 5.0] {
            assert!(approx(bessel_k_fractional(0.0, x), bessel_k0(x), 1e-4));
            assert!(approx(bessel_k_fractional(1.0, x), bessel_k1(x), 1e-4));
        }
        assert_eq!(bessel_k_fractional(0.5, 0.0), f64::INFINITY);
    }

    #[test]
    fn bessel_i0_i1_tabulated_values() {
        // I_0 / I_1 reference values (A&S tables / DLMF 10.25).
        // The A&S 9.8.1–9.8.4 polynomials carry ~2e-7 error.
        for (x, want) in [
            (0.1, 1.002_501_562_934_095_6),
            (0.5, 1.063_483_370_741_324),
            (1.0, 1.266_065_877_752_008_4),
            (2.0, 2.279_585_302_336_067_3),
            (5.0, 27.239_871_823_604_44),
        ] {
            assert!(approx(bessel_i0(x), want, 2e-6), "I0({x})");
        }
        for (x, want) in [
            (0.5, 0.257_894_305_390_896_1),
            (1.0, 0.565_159_103_992_485_1),
            (2.0, 1.590_636_854_637_329_3),
            (5.0, 24.335_642_142_450_53),
        ] {
            assert!(approx(bessel_i1(x), want, 2e-6), "I1({x})");
        }
    }

    #[test]
    fn bessel_k0_tabulated_values_tight() {
        // DLMF-grade references; the A&S polynomial is good to ~1e-7.
        for (x, want) in [
            (0.1, 2.427_069_024_702_017),
            (0.5, 0.924_419_071_227_666),
            (1.0, 0.421_024_438_240_708_4),
            (2.0, 0.113_893_872_749_533_5),
            (5.0, 3.691_098_334_042_594e-3),
        ] {
            assert!(approx(bessel_k0(x), want, 2e-6), "K0({x})");
        }
    }

    #[test]
    fn bessel_k_fractional_tabulated_values() {
        // K_{1/2}(x) = sqrt(pi/(2x)) e^{-x} exactly: pins the laned
        // quadrature (recurrence + fq_exp) to ~1e-7 against a closed
        // form, well past the quadrature's own design accuracy.
        for x in [0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0] {
            let exact = (std::f64::consts::PI / (2.0 * x)).sqrt() * (-x).exp();
            assert!(
                approx(bessel_k_fractional(0.5, x), exact, 1e-7),
                "K_1/2({x})"
            );
        }
        // Integer-order ends of the nu range against tabulated K0/K1.
        for (nu, x, want) in [
            (0.0, 0.5, 0.924_419_071_227_666),
            (0.0, 1.0, 0.421_024_438_240_708_4),
            (0.0, 2.0, 0.113_893_872_749_533_5),
            (1.0, 0.5, 1.656_441_120_003_301),
            (1.0, 1.0, 0.601_907_230_197_234_6),
            (1.0, 2.0, 0.139_865_881_816_522_6),
        ] {
            assert!(
                approx(bessel_k_fractional(nu, x), want, 1e-6),
                "K_{nu}({x})"
            );
        }
    }

    #[test]
    fn laned_quadrature_matches_scalar_bitwise() {
        // The x4 batch must compute exactly the scalar path per lane,
        // including out-of-range lanes mixed into a quad.
        for nu in [0.0, 0.25, 0.75, 1.0] {
            let xs = [0.3, 7.0, 0.001, 42.0];
            let batch = bessel_k_fractional_x4(nu, xs);
            for (l, x) in xs.into_iter().enumerate() {
                assert_eq!(
                    batch[l].to_bits(),
                    bessel_k_fractional(nu, x).to_bits(),
                    "nu={nu} lane {l}"
                );
            }
        }
        let mixed = [-1.0, 0.5, 61.0, 3.0];
        let batch = von_karman_kernel_x4(mixed, 0.75);
        for (l, x) in mixed.into_iter().enumerate() {
            assert_eq!(
                batch[l].to_bits(),
                von_karman_kernel(x, 0.75).to_bits(),
                "lane {l}"
            );
        }
        assert_eq!(batch[0], 1.0, "x <= 0 patches to 1");
        assert_eq!(batch[2], 0.0, "x > 60 patches to 0");
        assert_eq!(bessel_k_fractional_x4(0.5, [0.0; 4]), [f64::INFINITY; 4]);
    }

    #[test]
    fn fq_quadrature_cross_checks_libm_quadrature() {
        // Same Simpson rule, different exp/cosh evaluation: the two must
        // agree to the transcendental error budget (~1e-12), far inside
        // the quadrature's 1e-8 design accuracy.
        for nu in [0.0, 0.4, 0.75, 1.0] {
            for x in [0.05, 0.3, 1.0, 4.0, 20.0, 55.0] {
                let fq = bessel_k_fractional(nu, x);
                let libm = bessel_k_fractional_libm(nu, x);
                assert!(approx(fq, libm, 1e-10), "nu={nu} x={x}: {fq} vs {libm}");
            }
        }
        for x in [0.2, 1.0, 5.0, 30.0] {
            assert!(approx(
                von_karman_kernel(x, 0.75),
                von_karman_kernel_libm(x, 0.75),
                1e-10
            ));
        }
    }

    #[test]
    fn correlation_x4_matches_scalar_bitwise() {
        let vk = VonKarman::default();
        let rs = [0.0, 3.0, 12.5, 700.0];
        let batch = vk.correlation_x4(rs);
        for (l, r) in rs.into_iter().enumerate() {
            assert_eq!(batch[l].to_bits(), vk.correlation(r).to_bits(), "lane {l}");
        }
    }

    #[test]
    fn correlation_respects_anisotropy() {
        let vk = VonKarman {
            a_strike_km: 40.0,
            a_dip_km: 10.0,
            hurst: 0.75,
        };
        // Same physical distance decorrelates faster in the dip direction.
        let along = vk.correlation_anisotropic(20.0, 0.0);
        let down = vk.correlation_anisotropic(0.0, 20.0);
        assert!(along > down);
    }

    #[test]
    fn rupture_scaled_lengths() {
        let vk = VonKarman::for_rupture(200.0, 80.0, 0.75);
        assert!((vk.a_strike_km - 34.0).abs() < 1e-9);
        assert!((vk.a_dip_km - 21.6).abs() < 1e-9);
        // Degenerate ruptures still get a positive correlation length.
        let tiny = VonKarman::for_rupture(0.1, 0.1, 0.75);
        assert!(tiny.a_strike_km >= 1.0 && tiny.a_dip_km >= 1.0);
    }

    #[test]
    fn isotropic_correlation_at_zero_is_one() {
        let vk = VonKarman::default();
        assert_eq!(vk.correlation(0.0), 1.0);
        assert!(vk.correlation(5.0) < 1.0);
        assert!(vk.correlation(5.0) > vk.correlation(15.0));
    }
}
