//! Synthetic GNSS waveform synthesis — the C Phase's science payload.
//!
//! For each rupture scenario and each station, sum over subfaults the
//! station's static Green's function response scaled by that subfault's
//! slip and modulated in time by the source time function delayed by the
//! kinematic onset (plus a travel-time delay from the station–subfault
//! distance). Add GNSS noise. The result is the 3-component, 1 Hz
//! displacement waveform that EEW models train on.

use rayon::prelude::*;

use crate::error::{FqError, FqResult};
use crate::geometry::FaultModel;
use crate::greens::GfLibrary;
use crate::linalg::Matrix;
use crate::noise::NoiseModel;
use crate::rupture::RuptureScenario;
use crate::stf::StfKind;

/// Waveform synthesis parameters.
#[derive(Debug, Clone, Copy)]
pub struct WaveformConfig {
    /// Sample interval in seconds (1.0 for high-rate GNSS).
    pub dt_s: f64,
    /// Total record duration in seconds.
    pub duration_s: f64,
    /// Source time function shape.
    pub stf: StfKind,
    /// Apparent S-wave propagation speed used for travel-time delays, km/s.
    pub s_wave_kms: f64,
    /// Noise model for horizontal components.
    pub noise: NoiseModel,
}

impl Default for WaveformConfig {
    fn default() -> Self {
        Self {
            dt_s: 1.0,
            duration_s: 512.0,
            stf: StfKind::Dreger,
            s_wave_kms: 3.5,
            noise: NoiseModel::default(),
        }
    }
}

impl WaveformConfig {
    /// Number of samples in a record.
    pub fn n_samples(&self) -> usize {
        (self.duration_s / self.dt_s).ceil() as usize
    }

    /// Validate the configuration.
    pub fn validate(&self) -> FqResult<()> {
        if self.dt_s <= 0.0 || self.duration_s <= 0.0 {
            return Err(FqError::Config("dt and duration must be positive".into()));
        }
        if self.s_wave_kms <= 0.0 {
            return Err(FqError::Config("S-wave speed must be positive".into()));
        }
        Ok(())
    }
}

/// A 3-component displacement record at one station.
#[derive(Debug, Clone)]
pub struct GnssWaveform {
    /// Station code.
    pub station_code: String,
    /// Scenario id this waveform belongs to.
    pub scenario_id: u64,
    /// Sample interval, seconds.
    pub dt_s: f64,
    /// East displacement, metres.
    pub east_m: Vec<f64>,
    /// North displacement, metres.
    pub north_m: Vec<f64>,
    /// Up displacement, metres.
    pub up_m: Vec<f64>,
}

impl GnssWaveform {
    /// Number of samples per component.
    pub fn len(&self) -> usize {
        self.east_m.len()
    }

    /// True if the record has no samples.
    pub fn is_empty(&self) -> bool {
        self.east_m.is_empty()
    }

    /// Peak ground displacement: max over time of the 3-D vector norm.
    /// This is the feature EEW magnitude models are built on (Ruhl et al.
    /// 2017).
    pub fn pgd_m(&self) -> f64 {
        let mut peak = 0.0f64;
        for i in 0..self.len() {
            let v =
                (self.east_m[i].powi(2) + self.north_m[i].powi(2) + self.up_m[i].powi(2)).sqrt();
            peak = peak.max(v);
        }
        peak
    }

    /// Final (permanent) static offset vector magnitude, averaged over the
    /// last 5 % of the record to suppress noise.
    pub fn static_offset_m(&self) -> f64 {
        let n = self.len();
        if n == 0 {
            return 0.0;
        }
        let tail = (n / 20).max(1);
        let avg = |c: &[f64]| crate::simd::lane_sum(&c[n - tail..]) / tail as f64;
        let (e, no, u) = (avg(&self.east_m), avg(&self.north_m), avg(&self.up_m));
        (e * e + no * no + u * u).sqrt()
    }
}

/// Synthesise the waveform for one (scenario, station) pair.
///
/// `station_idx` indexes both `gfs.stations()` and the rows of
/// `station_distances` (the recycled station–subfault matrix).
pub fn synthesize_station(
    fault: &FaultModel,
    gfs: &GfLibrary,
    station_distances: &Matrix,
    scenario: &RuptureScenario,
    station_idx: usize,
    config: &WaveformConfig,
    noise_seed: u64,
) -> FqResult<GnssWaveform> {
    config.validate()?;
    if gfs.n_subfaults() != fault.len() {
        return Err(FqError::Config(format!(
            "GF library covers {} subfaults, fault has {}",
            gfs.n_subfaults(),
            fault.len()
        )));
    }
    if station_idx >= gfs.n_stations() {
        return Err(FqError::Config(format!(
            "station index {station_idx} out of range ({} stations)",
            gfs.n_stations()
        )));
    }
    let sta = &gfs.stations()[station_idx];
    let n = config.n_samples();
    let mut east = vec![0.0; n];
    let mut north = vec![0.0; n];
    let mut up = vec![0.0; n];

    for (j, resp) in sta.responses.iter().enumerate() {
        let slip = scenario.slip_m[j];
        if slip <= 0.0 {
            continue;
        }
        let onset = scenario.onset_s[j];
        let travel = station_distances[(station_idx, j)] / config.s_wave_kms;
        let t0 = onset + travel;
        let rise = scenario.rise_time_s[j];
        // Hoist the onset test out of the sample loop: find the first k
        // with `k·dt > t0` (the same predicate the loop used to evaluate
        // per sample). The guess from division is corrected by exact
        // comparisons in both directions, so no sample is mis-classified
        // by floating-point rounding of the quotient.
        let mut k_start = ((t0 / config.dt_s).max(0.0) as usize).min(n);
        while k_start > 0 && (k_start - 1) as f64 * config.dt_s > t0 {
            k_start -= 1;
        }
        while k_start < n && k_start as f64 * config.dt_s <= t0 {
            k_start += 1;
        }
        for k in k_start..n {
            let t = k as f64 * config.dt_s;
            let f = config.stf.cumulative(t - t0, rise);
            if f <= 0.0 {
                continue;
            }
            let s = slip * f;
            east[k] += resp.e * s;
            north[k] += resp.n * s;
            up[k] += resp.u * s;
        }
    }

    // Independent noise per component; vertical is noisier.
    let base = noise_seed
        .wrapping_mul(0x2545_F491_4F6C_DD1D)
        .wrapping_add(scenario.id)
        .wrapping_add(station_idx as u64);
    for (c, (series, model)) in [
        (&mut east, config.noise),
        (&mut north, config.noise),
        (&mut up, config.noise.vertical()),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, p)| (i as u64, p))
    {
        let noise = model.generate(n, config.dt_s, base.wrapping_add(c * 7919));
        for (s, nz) in series.iter_mut().zip(noise) {
            *s += nz;
        }
    }

    Ok(GnssWaveform {
        station_code: sta.station_code.clone(),
        scenario_id: scenario.id,
        dt_s: config.dt_s,
        east_m: east,
        north_m: north,
        up_m: up,
    })
}

/// Synthesise waveforms for every station in the library for one scenario,
/// in parallel with Rayon. This is what one C-Phase job computes per
/// scenario.
pub fn synthesize_all_stations(
    fault: &FaultModel,
    gfs: &GfLibrary,
    station_distances: &Matrix,
    scenario: &RuptureScenario,
    config: &WaveformConfig,
    noise_seed: u64,
) -> FqResult<Vec<GnssWaveform>> {
    (0..gfs.n_stations())
        // fdwlint::allow(raw-parallelism): ordered indexed map — each station is a pure function of its index and collect preserves order, so parallel == sequential bitwise
        .into_par_iter()
        .map(|si| {
            synthesize_station(
                fault,
                gfs,
                station_distances,
                scenario,
                si,
                config,
                noise_seed,
            )
        })
        .collect()
}

/// Sequential variant of [`synthesize_all_stations`] for the
/// Rayon-vs-sequential ablation bench.
pub fn synthesize_all_stations_seq(
    fault: &FaultModel,
    gfs: &GfLibrary,
    station_distances: &Matrix,
    scenario: &RuptureScenario,
    config: &WaveformConfig,
    noise_seed: u64,
) -> FqResult<Vec<GnssWaveform>> {
    (0..gfs.n_stations())
        .map(|si| {
            synthesize_station(
                fault,
                gfs,
                station_distances,
                scenario,
                si,
                config,
                noise_seed,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistanceMatrices;
    use crate::rupture::{RuptureConfig, RuptureGenerator};
    use crate::stations::{ChileanInput, StationNetwork};

    struct Fixture {
        fault: FaultModel,
        gfs: GfLibrary,
        dists: DistanceMatrices,
        scenario: RuptureScenario,
    }

    fn fixture() -> Fixture {
        let fault = FaultModel::chilean_subduction(12, 6).unwrap();
        let net = StationNetwork::chilean_input(ChileanInput::Small, 1);
        let dists = DistanceMatrices::compute(&fault, &net);
        let gfs = GfLibrary::compute(&fault, &net).unwrap();
        let gen = RuptureGenerator::new(
            &fault,
            &dists.subfault_to_subfault,
            RuptureConfig {
                mw_range: (8.5, 8.5),
                ..Default::default()
            },
        )
        .unwrap();
        let scenario = gen.generate(1, 0);
        Fixture {
            fault,
            gfs,
            dists,
            scenario,
        }
    }

    fn quiet_config() -> WaveformConfig {
        WaveformConfig {
            noise: NoiseModel::none(),
            ..Default::default()
        }
    }

    #[test]
    fn waveform_has_configured_length() {
        let fx = fixture();
        let w = synthesize_station(
            &fx.fault,
            &fx.gfs,
            &fx.dists.station_to_subfault,
            &fx.scenario,
            0,
            &quiet_config(),
            1,
        )
        .unwrap();
        assert_eq!(w.len(), 512);
        assert!(!w.is_empty());
        assert_eq!(w.north_m.len(), 512);
        assert_eq!(w.up_m.len(), 512);
        assert_eq!(w.scenario_id, 0);
    }

    #[test]
    fn starts_at_zero_and_reaches_permanent_offset() {
        let fx = fixture();
        let w = synthesize_station(
            &fx.fault,
            &fx.gfs,
            &fx.dists.station_to_subfault,
            &fx.scenario,
            0,
            &quiet_config(),
            1,
        )
        .unwrap();
        assert_eq!(w.east_m[0], 0.0);
        assert_eq!(w.north_m[0], 0.0);
        assert_eq!(w.up_m[0], 0.0);
        let offset = w.static_offset_m();
        assert!(
            offset > 1e-4,
            "Mw 8.5 should displace a Chilean station: {offset}"
        );
        // Displacement settles: last two samples nearly equal.
        let n = w.len();
        assert!((w.east_m[n - 1] - w.east_m[n - 2]).abs() < 1e-6);
    }

    #[test]
    fn pgd_bounds_static_offset() {
        let fx = fixture();
        let w = synthesize_station(
            &fx.fault,
            &fx.gfs,
            &fx.dists.station_to_subfault,
            &fx.scenario,
            0,
            &quiet_config(),
            1,
        )
        .unwrap();
        assert!(w.pgd_m() >= w.static_offset_m() * 0.99);
    }

    #[test]
    fn noise_changes_but_does_not_dominate() {
        let fx = fixture();
        let quiet = synthesize_station(
            &fx.fault,
            &fx.gfs,
            &fx.dists.station_to_subfault,
            &fx.scenario,
            0,
            &quiet_config(),
            1,
        )
        .unwrap();
        let noisy = synthesize_station(
            &fx.fault,
            &fx.gfs,
            &fx.dists.station_to_subfault,
            &fx.scenario,
            0,
            &WaveformConfig::default(),
            1,
        )
        .unwrap();
        assert_ne!(quiet.east_m, noisy.east_m);
        // Signal-to-noise for a Mw 8.5 nearby event must be comfortably > 1.
        let diff: f64 = quiet
            .east_m
            .iter()
            .zip(&noisy.east_m)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / quiet.len() as f64;
        assert!(
            diff < quiet.pgd_m(),
            "noise {diff} vs pgd {}",
            quiet.pgd_m()
        );
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let fx = fixture();
        let cfg = quiet_config();
        let par = synthesize_all_stations(
            &fx.fault,
            &fx.gfs,
            &fx.dists.station_to_subfault,
            &fx.scenario,
            &cfg,
            2,
        )
        .unwrap();
        let seq = synthesize_all_stations_seq(
            &fx.fault,
            &fx.gfs,
            &fx.dists.station_to_subfault,
            &fx.scenario,
            &cfg,
            2,
        )
        .unwrap();
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.east_m, b.east_m);
            assert_eq!(a.station_code, b.station_code);
        }
    }

    #[test]
    fn bad_station_index_rejected() {
        let fx = fixture();
        assert!(synthesize_station(
            &fx.fault,
            &fx.gfs,
            &fx.dists.station_to_subfault,
            &fx.scenario,
            99,
            &quiet_config(),
            1,
        )
        .is_err());
    }

    #[test]
    fn bad_config_rejected() {
        let fx = fixture();
        let cfg = WaveformConfig {
            dt_s: 0.0,
            ..Default::default()
        };
        assert!(synthesize_station(
            &fx.fault,
            &fx.gfs,
            &fx.dists.station_to_subfault,
            &fx.scenario,
            0,
            &cfg,
            1,
        )
        .is_err());
        assert!(WaveformConfig {
            duration_s: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(WaveformConfig {
            s_wave_kms: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn n_samples_rounds_up() {
        let cfg = WaveformConfig {
            dt_s: 1.0,
            duration_s: 511.5,
            ..Default::default()
        };
        assert_eq!(cfg.n_samples(), 512);
    }

    #[test]
    fn noise_seed_changes_noise_only() {
        let fx = fixture();
        let cfg = WaveformConfig::default();
        let a = synthesize_station(
            &fx.fault,
            &fx.gfs,
            &fx.dists.station_to_subfault,
            &fx.scenario,
            0,
            &cfg,
            1,
        )
        .unwrap();
        let b = synthesize_station(
            &fx.fault,
            &fx.gfs,
            &fx.dists.station_to_subfault,
            &fx.scenario,
            0,
            &cfg,
            2,
        )
        .unwrap();
        assert_ne!(a.east_m, b.east_m);
        // Static offsets agree to within the accumulated random-walk level.
        assert!((a.static_offset_m() - b.static_offset_m()).abs() < 0.2);
    }
}
