//! Property-based tests of the fakequakes crate's core invariants.

use proptest::prelude::*;

use fakequakes::distance::DistanceMatrices;
use fakequakes::geo::{EnuPoint, GeoPoint, LocalFrame};
use fakequakes::geometry::{moment_from_mw, mw_from_moment, FaultModel, ScalingLaw};
use fakequakes::linalg::Matrix;
use fakequakes::mseed::{crc32, MseedFile};
use fakequakes::npy;
use fakequakes::rupture::{RuptureConfig, RuptureGenerator};
use fakequakes::stations::StationNetwork;
use fakequakes::stf::StfKind;
use fakequakes::stochastic::{
    assemble_covariance, field_stats, standard_normal, CorrelatedField, FactorCache, FieldMethod,
};
use fakequakes::vonkarman::{von_karman_kernel, VonKarman};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn finite_f64() -> impl Strategy<Value = f64> {
    // Payload values that survive exact roundtrips.
    prop_oneof![
        -1e12f64..1e12,
        Just(0.0),
        Just(-0.0),
        Just(f64::MAX),
        Just(f64::MIN_POSITIVE),
    ]
}

proptest! {
    #[test]
    fn geo_distance_is_a_symmetric_nonnegative_form(
        lon1 in -75.0..-68.0f64, lat1 in -40.0..-17.0f64, d1 in 0.0..80.0f64,
        lon2 in -75.0..-68.0f64, lat2 in -40.0..-17.0f64, d2 in 0.0..80.0f64,
    ) {
        let a = GeoPoint::new(lon1, lat1, d1);
        let b = GeoPoint::new(lon2, lat2, d2);
        let ab = a.distance_3d_km(&b);
        let ba = b.distance_3d_km(&a);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9);
        // 3-D distance dominates both the surface separation and the
        // depth difference.
        prop_assert!(ab + 1e-9 >= (d1 - d2).abs());
        prop_assert!(ab + 1e-9 >= a.surface_distance_km(&b));
    }

    #[test]
    fn local_frame_roundtrips(
        lon in -75.0..-68.0f64, lat in -40.0..-17.0f64, depth in 0.0..80.0f64,
        olon in -75.0..-68.0f64, olat in -40.0..-17.0f64,
    ) {
        let frame = LocalFrame::new(GeoPoint::new(olon, olat, 0.0));
        let p = GeoPoint::new(lon, lat, depth);
        let back = frame.unproject(&frame.project(&p));
        prop_assert!((back.lon - p.lon).abs() < 1e-9);
        prop_assert!((back.lat - p.lat).abs() < 1e-9);
        prop_assert!((back.depth_km - p.depth_km).abs() < 1e-9);
    }

    #[test]
    fn enu_norm_exceeds_components(e in -500.0..500.0f64, n in -500.0..500.0f64, u in -80.0..0.0f64) {
        let p = EnuPoint { e, n, u };
        prop_assert!(p.norm() + 1e-12 >= p.horizontal_norm());
        prop_assert!(p.norm() + 1e-12 >= u.abs());
    }

    #[test]
    fn moment_magnitude_bijection(mw in 6.0..9.5f64) {
        prop_assert!((mw_from_moment(moment_from_mw(mw)) - mw).abs() < 1e-9);
    }

    #[test]
    fn scaling_laws_monotone(mw in 6.0..9.4f64, dmw in 0.01..0.5f64) {
        let s = ScalingLaw::default();
        prop_assert!(s.length_km(mw + dmw) > s.length_km(mw));
        prop_assert!(s.width_km(mw + dmw) > s.width_km(mw));
    }

    #[test]
    fn von_karman_kernel_bounded_and_decreasing(
        h in 0.05..1.0f64,
        x in 0.0..50.0f64,
        dx in 0.01..5.0f64,
    ) {
        let g1 = von_karman_kernel(x, h);
        let g2 = von_karman_kernel(x + dx, h);
        prop_assert!((0.0..=1.0).contains(&g1));
        prop_assert!(g2 <= g1 + 1e-9, "kernel increased: G({x})={g1} G({})={g2}", x + dx);
    }

    #[test]
    fn stf_cumulative_is_a_cdf(kind in 0usize..3, rise in 0.5..30.0f64, t in 0.0..100.0f64) {
        let stf = [StfKind::Dreger, StfKind::Cosine, StfKind::Triangle][kind];
        let c = stf.cumulative(t, rise);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
        prop_assert!(stf.cumulative(t + 1.0, rise) + 1e-9 >= c);
        prop_assert!(stf.rate(t, rise) >= 0.0);
    }

    #[test]
    fn npy_roundtrip_arbitrary_matrices(
        rows in 1usize..12,
        cols in 1usize..12,
        seedvals in proptest::collection::vec(finite_f64(), 1..144),
    ) {
        let m = Matrix::from_fn(rows, cols, |i, j| {
            seedvals[(i * cols + j) % seedvals.len()]
        });
        let back = npy::from_npy_bytes(&npy::to_npy_bytes(&m)).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn mseed_roundtrip_arbitrary_records(
        recs in proptest::collection::vec(
            ("[A-Z]{1,6}\\.[A-Z]{2,3}", 0.01..10.0f64,
             proptest::collection::vec(finite_f64(), 0..64)),
            0..8,
        )
    ) {
        let mut f = MseedFile::new();
        for (code, dt, samples) in &recs {
            f.push(code.clone(), *dt, samples.clone());
        }
        let bytes = f.to_bytes().unwrap();
        prop_assert_eq!(bytes.len(), f.nbytes());
        let back = MseedFile::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, f);
    }

    #[test]
    fn crc_detects_any_single_bit_flip(
        data in proptest::collection::vec(any::<u8>(), 1..128),
        bit in any::<u16>(),
    ) {
        let mut corrupted = data.clone();
        let idx = (bit as usize / 8) % corrupted.len();
        corrupted[idx] ^= 1 << (bit % 8);
        prop_assert_ne!(crc32(&data), crc32(&corrupted));
    }

    #[test]
    fn cholesky_reconstructs_random_spd(
        n in 2usize..8,
        vals in proptest::collection::vec(-1.0..1.0f64, 64),
    ) {
        // A = B B^T + n*I is SPD for any B.
        let b = Matrix::from_fn(n, n, |i, j| vals[(i * n + j) % vals.len()]);
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = if i == j { n as f64 } else { 0.0 };
                for k in 0..n {
                    s += b[(i, k)] * b[(j, k)];
                }
                a[(i, j)] = s;
            }
        }
        let l = a.cholesky().unwrap();
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += l[(i, k)] * l[(j, k)];
                }
                prop_assert!((s - a[(i, j)]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn field_stats_bounds(xs in proptest::collection::vec(-1e6..1e6f64, 0..64)) {
        let st = field_stats(&xs);
        if !xs.is_empty() {
            prop_assert!(st.min <= st.mean + 1e-9);
            prop_assert!(st.mean <= st.max + 1e-9);
            prop_assert!(st.std >= 0.0);
            prop_assert!(st.std <= (st.max - st.min) + 1e-9);
        }
    }

    #[test]
    fn station_file_roundtrip_arbitrary_networks(n in 1usize..40, seed in any::<u64>()) {
        let net = StationNetwork::chilean(n, seed).unwrap();
        let parsed =
            StationNetwork::from_station_file("p", &net.to_station_file()).unwrap();
        prop_assert_eq!(parsed.len(), n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rupture_invariants_hold_for_any_seed(
        seed in any::<u64>(),
        id in 0u64..1000,
        mw in 7.5..9.0f64,
    ) {
        let fault = FaultModel::chilean_subduction(12, 6).unwrap();
        let net = StationNetwork::chilean(2, 1).unwrap();
        let d = DistanceMatrices::compute(&fault, &net);
        let gen = RuptureGenerator::new(
            &fault,
            &d.subfault_to_subfault,
            RuptureConfig { mw_range: (mw, mw), ..Default::default() },
        )
        .unwrap();
        let r = gen.generate(seed, id);
        // Moment matches target magnitude exactly after rescaling.
        prop_assert!((mw_from_moment(r.moment(&fault)) - mw).abs() < 1e-6);
        // Hypocentre slips and starts at t=0.
        prop_assert!(r.slip_m[r.hypocenter_idx] > 0.0);
        prop_assert!(r.onset_s[r.hypocenter_idx].abs() < 1e-9);
        // Slip nonnegative everywhere; onset finite exactly on the patch.
        for i in 0..fault.len() {
            prop_assert!(r.slip_m[i] >= 0.0);
            prop_assert_eq!(r.slip_m[i] > 0.0, r.onset_s[i].is_finite());
        }
        prop_assert!(r.duration_s().is_finite());
    }

    #[test]
    fn truncated_kl_draw_matches_full_eigen_truncation(
        seed in any::<u64>(),
        nx in 4usize..8,
        nd in 3usize..6,
        modes in 1usize..4,
    ) {
        // The fast top-k path behind `FieldMethod::KarhunenLoeve` must
        // draw the same field the full eigendecomposition would after
        // keeping the same modes.
        let fault = FaultModel::chilean_subduction(nx, nd).unwrap();
        let net = StationNetwork::chilean(2, 1).unwrap();
        let d = DistanceMatrices::compute(&fault, &net);
        let n = fault.len();
        let k = modes.min(n);
        let kernel = VonKarman::default();
        let cov = assemble_covariance(&d.subfault_to_subfault, &kernel);
        let (vals, vecs) = cov.symmetric_eigen(50).unwrap();
        // Near-degenerate retained modes admit basis rotations the two
        // solvers may resolve differently; only well-separated spectra
        // pin the eigenvectors down to sign canonicalisation.
        let scale = vals[0].abs().max(1e-12);
        for m in 0..k {
            prop_assume!((vals[m] - vals[m + 1]).abs() / scale > 1e-6);
        }
        let field = CorrelatedField::from_distances(
            &d.subfault_to_subfault,
            &kernel,
            FieldMethod::KarhunenLoeve { modes: k },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let draw = field.sample(&mut rng);
        // Reference draw: full eigendecomposition, truncated to the same
        // modes, applied to the same normal deviates.
        let mut rng_ref = StdRng::seed_from_u64(seed);
        let z: Vec<f64> = (0..k).map(|_| standard_normal(&mut rng_ref)).collect();
        for i in 0..n {
            let want: f64 = (0..k)
                .map(|m| vecs[(i, m)] * vals[m].max(0.0).sqrt() * z[m])
                .sum();
            prop_assert!(
                (draw[i] - want).abs() < 1e-7 * scale.max(1.0),
                "component {i}: truncated {} vs full {want}",
                draw[i]
            );
        }
    }

    #[test]
    fn recycled_factor_draw_is_bit_identical_to_fresh(
        seed in any::<u64>(),
        id in 0u64..500,
        cholesky in any::<bool>(),
    ) {
        let fault = FaultModel::chilean_subduction(8, 4).unwrap();
        let net = StationNetwork::chilean(2, 1).unwrap();
        let d = DistanceMatrices::compute(&fault, &net);
        let cfg = RuptureConfig {
            method: if cholesky {
                FieldMethod::Cholesky
            } else {
                FieldMethod::KarhunenLoeve { modes: 8 }
            },
            ..Default::default()
        };
        let fresh =
            RuptureGenerator::new(&fault, &d.subfault_to_subfault, cfg.clone()).unwrap();
        let cache = FactorCache::new();
        // Warm the cache, then build a second generator that must hit it.
        RuptureGenerator::new_cached(&fault, &d.subfault_to_subfault, cfg.clone(), &cache)
            .unwrap();
        let cached =
            RuptureGenerator::new_cached(&fault, &d.subfault_to_subfault, cfg, &cache).unwrap();
        prop_assert!(cache.stats().hits >= 1, "second build must hit the cache");
        let a = fresh.generate(seed, id);
        let b = cached.generate(seed, id);
        prop_assert_eq!(a.slip_m, b.slip_m);
        prop_assert_eq!(a.onset_s, b.onset_s);
        prop_assert_eq!(a.rise_time_s, b.rise_time_s);
        prop_assert_eq!(a.hypocenter_idx, b.hypocenter_idx);
    }
}
