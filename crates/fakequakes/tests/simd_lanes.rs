//! Integration gates for the portable SIMD lane layer (`fakequakes::simd`)
//! and the cache-blocked kernels built on it.
//!
//! Three invariants are pinned here, per DESIGN.md §13:
//!
//! 1. every laned/blocked kernel is **bitwise identical** to its scalar
//!    reference twin — at small sizes, at the acceptance scale (n = 240),
//!    and at sizes that exercise the remainder lanes (n ≢ 0 mod 4);
//! 2. results are **invariant to the thread count**: the same kernels run
//!    under rayon pools of 1, 2 and 8 threads (the FDW_THREADS settings
//!    the suite maps onto rayon) fold identical digests;
//! 3. the laned Bessel quadrature agrees with its scalar instantiation
//!    lane-for-lane, including out-of-range substitution lanes.

use fakequakes::distance::DistanceMatrices;
use fakequakes::geometry::FaultModel;
use fakequakes::linalg::Matrix;
use fakequakes::simd;
use fakequakes::stations::{ChileanInput, StationNetwork};
use fakequakes::stochastic::{assemble_covariance, assemble_covariance_seq};
use fakequakes::vonkarman::{bessel_k_fractional, bessel_k_fractional_x4, VonKarman};
use proptest::prelude::*;

fn pattern_vec(len: usize, salt: usize) -> Vec<f64> {
    (0..len)
        .map(|i| ((i * 7 + salt * 13) % 23) as f64 * 0.37 - 3.1)
        .collect()
}

fn spd_matrix(n: usize) -> Matrix {
    // B·Bᵀ scaled plus a dominant diagonal: well-conditioned SPD at any n.
    let b = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 11) % 13) as f64 * 0.1 - 0.6);
    let mut m = b.matmul(&b.transpose()).unwrap();
    for i in 0..n {
        m[(i, i)] += n as f64;
    }
    m
}

proptest! {
    #[test]
    fn dot_matches_reference_bitwise_any_length(
        len in 0usize..70,
        salt in 0usize..32,
    ) {
        let a = pattern_vec(len, salt);
        let b = pattern_vec(len, salt + 1);
        prop_assert_eq!(
            simd::dot(&a, &b).to_bits(),
            simd::dot_reference(&a, &b).to_bits()
        );
    }

    #[test]
    fn lane_sum_matches_reference_bitwise_any_length(
        len in 0usize..70,
        salt in 0usize..32,
    ) {
        let x = pattern_vec(len, salt);
        prop_assert_eq!(
            simd::lane_sum(&x).to_bits(),
            simd::lane_sum_reference(&x).to_bits()
        );
    }

    #[test]
    fn matmul_matches_reference_bitwise_random_shapes(
        m in 1usize..12,
        k in 1usize..40,
        n in 1usize..12,
        salt in 0usize..16,
    ) {
        let a = Matrix::from_fn(m, k, |i, j| ((i * 3 + j * 7 + salt) % 17) as f64 * 0.2 - 1.1);
        let b = Matrix::from_fn(k, n, |i, j| ((i * 5 + j * 2 + salt) % 19) as f64 * 0.3 - 2.0);
        let blocked = a.matmul(&b).unwrap();
        let reference = a.matmul_reference(&b).unwrap();
        prop_assert_eq!(blocked.as_slice(), reference.as_slice());
    }

    #[test]
    fn laned_bessel_matches_scalar_lane_for_lane(
        x0 in 0.01f64..50.0, x1 in 0.01f64..50.0,
        x2 in 0.01f64..50.0, x3 in 0.01f64..50.0,
        hurst in 0.05f64..0.95,
    ) {
        let xs = [x0, x1, x2, x3];
        let lanes = bessel_k_fractional_x4(hurst, xs);
        for l in 0..4 {
            prop_assert_eq!(
                lanes[l].to_bits(),
                bessel_k_fractional(hurst, xs[l]).to_bits()
            );
        }
    }
}

/// The acceptance scale plus the sizes that stress remainder lanes:
/// one over a quad boundary (241) and a stripe-plus-tail size (243).
#[test]
fn kernels_match_reference_bitwise_at_acceptance_scale() {
    for n in [240usize, 241, 243] {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.1 - 0.5);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 13) % 7) as f64 * 0.2 - 0.6);
        assert_eq!(
            a.matmul(&b).unwrap().as_slice(),
            a.matmul_reference(&b).unwrap().as_slice(),
            "matmul mismatch at n={n}"
        );
        let v = pattern_vec(n, 3);
        assert_eq!(
            a.matvec(&v),
            a.matvec_reference(&v),
            "matvec mismatch at n={n}"
        );
        let spd = spd_matrix(n);
        assert_eq!(
            spd.cholesky().unwrap().as_slice(),
            spd.cholesky_reference().unwrap().as_slice(),
            "cholesky mismatch at n={n}"
        );
    }
}

/// Covariance assembly on a mesh whose row remainders are ≢ 0 mod 4 —
/// every row of the upper triangle ends in a partial quad somewhere.
#[test]
fn covariance_matches_scalar_oracle_on_odd_mesh() {
    let fault = FaultModel::chilean_subduction(9, 7).unwrap(); // n = 63
    let net = StationNetwork::chilean_input(ChileanInput::Small, 1);
    let d = DistanceMatrices::compute(&fault, &net);
    let vk = VonKarman::default();
    let laned = assemble_covariance(&d.subfault_to_subfault, &vk);
    let scalar = assemble_covariance_seq(&d.subfault_to_subfault, &vk);
    assert_eq!(laned.as_slice(), scalar.as_slice());
}

/// Explicit remainder-lane cases: every split of a 16-element stripe, a
/// quad, and a scalar tail shows up in one of these lengths.
#[test]
fn dot_remainder_lanes_explicit() {
    for len in [
        0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 19, 20, 31, 32, 33, 47, 63,
    ] {
        let a = pattern_vec(len, 5);
        let b = pattern_vec(len, 9);
        assert_eq!(
            simd::dot(&a, &b).to_bits(),
            simd::dot_reference(&a, &b).to_bits(),
            "dot mismatch at len={len}"
        );
        assert_eq!(
            simd::lane_sum(&a).to_bits(),
            simd::lane_sum_reference(&a).to_bits(),
            "lane_sum mismatch at len={len}"
        );
    }
}

fn kernel_digest() -> u64 {
    let fault = FaultModel::chilean_subduction(12, 5).unwrap();
    let net = StationNetwork::chilean(6, 1).unwrap();
    let d = DistanceMatrices::compute(&fault, &net);
    let vk = VonKarman::default();
    let cov = assemble_covariance(&d.subfault_to_subfault, &vk);
    let chol = cov.cholesky().unwrap();
    let n = fault.len();
    let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.1 - 0.5);
    let prod = a.matmul(&cov).unwrap();
    let mv = cov.matvec(&pattern_vec(n, 2));
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for xs in [
        d.subfault_to_subfault.as_slice(),
        d.station_to_subfault.as_slice(),
        cov.as_slice(),
        chol.as_slice(),
        prod.as_slice(),
        &mv,
    ] {
        for x in xs {
            h = (h ^ x.to_bits()).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The full kernel chain folds the same digest under FDW_THREADS 1, 2
/// and 8. The thread-count knob is read once per process (a OnceLock in
/// the rayon shim), so each setting runs in a re-executed child of this
/// test binary; child mode just prints the digest and exits.
#[test]
fn kernel_outputs_invariant_under_thread_count() {
    if std::env::var("FDW_LANES_CHILD").is_ok() {
        println!("digest={:016x}", kernel_digest());
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let mut digests = Vec::new();
    for threads in [1usize, 2, 8] {
        let out = std::process::Command::new(&exe)
            .args([
                "--exact",
                "kernel_outputs_invariant_under_thread_count",
                "--nocapture",
            ])
            .env("FDW_LANES_CHILD", "1")
            .env("FDW_THREADS", threads.to_string())
            .output()
            .expect("spawn digest child");
        assert!(
            out.status.success(),
            "child (FDW_THREADS={threads}) failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        // libtest may interleave its own "test ... ok" prefix on the same
        // line, so scan for the marker rather than anchoring at col 0.
        let digest = text
            .lines()
            .find_map(|l| l.find("digest=").map(|p| &l[p + 7..p + 23]))
            .and_then(|d| u64::from_str_radix(d, 16).ok())
            .expect("child digest line");
        digests.push(digest);
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "digests differ across FDW_THREADS: {digests:x?}"
    );
}
