//! The ratcheting baseline: a committed JSON file freezing the number of
//! known violations per `(rule, crate)` bucket. CI fails when any bucket
//! grows; `--update-baseline` rewrites it and refuses to raise a count,
//! so the only way a number moves is *down* (or through an explicit allow
//! directive with a rationale, which removes the finding entirely).
//!
//! The file is written with `fdw_obs::json` (same escaping and
//! deterministic formatting as the telemetry exporters) and re-validated
//! with `fdw_obs::json::validate` on every load, so one JSON dialect
//! covers the whole workspace.

use std::collections::BTreeMap;

/// Schema version stamped into the file.
pub const VERSION: u64 = 1;

/// Frozen violation counts per `rule/crate` bucket.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Bucket → frozen count. BTreeMap so rendering is deterministic.
    pub counts: BTreeMap<String, u64>,
}

impl Baseline {
    /// Frozen count for `bucket` (0 when absent).
    pub fn count(&self, bucket: &str) -> u64 {
        self.counts.get(bucket).copied().unwrap_or(0)
    }

    /// Render as a pretty, deterministic JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"version\": {VERSION},\n"));
        out.push_str("  \"counts\": {");
        let mut first = true;
        for (bucket, n) in &self.counts {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{}\": {}",
                fdw_obs::json::escape(bucket),
                n
            ));
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        debug_assert!(fdw_obs::json::validate(&out).is_ok());
        out
    }

    /// Parse a baseline document. The input must be well-formed JSON (per
    /// the shared validator) shaped as
    /// `{"version": 1, "counts": {"<bucket>": <u64>, ...}}`.
    pub fn parse(text: &str) -> Result<Self, String> {
        fdw_obs::json::validate(text)
            .map_err(|off| format!("baseline is not well-formed JSON (byte {off})"))?;
        let mut p = Parser {
            b: text.as_bytes(),
            pos: 0,
        };
        p.ws();
        p.expect(b'{')?;
        let mut version = None;
        let mut counts = BTreeMap::new();
        loop {
            p.ws();
            if p.eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.ws();
            p.expect(b':')?;
            p.ws();
            match key.as_str() {
                "version" => version = Some(p.number()?),
                "counts" => {
                    p.expect(b'{')?;
                    loop {
                        p.ws();
                        if p.eat(b'}') {
                            break;
                        }
                        let bucket = p.string()?;
                        p.ws();
                        p.expect(b':')?;
                        p.ws();
                        let n = p.number()?;
                        counts.insert(bucket, n);
                        p.ws();
                        p.eat(b',');
                    }
                }
                other => return Err(format!("baseline has unknown key '{other}'")),
            }
            p.ws();
            p.eat(b',');
        }
        match version {
            Some(VERSION) => Ok(Self { counts }),
            Some(v) => Err(format!("baseline version {v} unsupported (want {VERSION})")),
            None => Err("baseline missing 'version'".into()),
        }
    }
}

/// Tiny cursor over the (already validated) baseline document — only the
/// subset of JSON the schema uses: objects, strings, unsigned integers.
struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }
    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.pos) == Some(&c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!(
                "baseline parse error at byte {}: expected '{}'",
                self.pos, c as char
            ))
        }
    }
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&c) = self.b.get(self.pos) {
            if c == b'\\' {
                return Err("baseline bucket names must not contain escapes".into());
            }
            if c == b'"' {
                let s = std::str::from_utf8(&self.b[start..self.pos])
                    .map_err(|_| "baseline: invalid utf-8".to_string())?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err("baseline: unterminated string".into())
    }
    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while self.b.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.b[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("baseline: expected unsigned integer at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let mut b = Baseline::default();
        b.counts.insert("unwrap-in-lib/htcsim".into(), 12);
        b.counts.insert("raw-parallelism/fakequakes".into(), 3);
        let json = b.to_json();
        assert!(fdw_obs::json::validate(&json).is_ok());
        assert_eq!(Baseline::parse(&json).unwrap(), b);
    }

    #[test]
    fn empty_roundtrips() {
        let b = Baseline::default();
        assert_eq!(Baseline::parse(&b.to_json()).unwrap(), b);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Baseline::parse("{").is_err());
        assert!(Baseline::parse("{\"version\": 99, \"counts\": {}}").is_err());
        assert!(Baseline::parse("{\"counts\": {}}").is_err());
        assert!(Baseline::parse("{\"version\": 1, \"nope\": {}}").is_err());
    }
}
