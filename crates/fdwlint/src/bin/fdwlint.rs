//! The `fdwlint` CLI — scan the workspace, compare against the committed
//! ratchet baseline, and report.
//!
//! ```text
//! fdwlint [--root DIR] [--baseline FILE] [--json] [--update-baseline] [--list-rules]
//! ```
//!
//! Exit status: 0 clean, 1 violations (over-budget buckets or bad allow
//! directives), 2 usage/IO errors. `--update-baseline` rewrites the
//! baseline with the current counts and **refuses to raise any count** —
//! the ratchet only turns one way; new violations must be fixed or
//! carry an inline `fdwlint::allow` with a rationale.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use fdwlint::{collect_workspace_sources, find_root, report, rules, Baseline, Ratchet};

struct Args {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: bool,
    update_baseline: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        baseline: None,
        json: false,
        update_baseline: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = Some(it.next().ok_or("--root needs a path")?.into()),
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a path")?.into())
            }
            "--json" => args.json = true,
            "--update-baseline" => args.update_baseline = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err("usage: fdwlint [--root DIR] [--baseline FILE] [--json] \
                     [--update-baseline] [--list-rules]"
                    .into())
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for r in rules::RULES {
            println!("{:<26} {}", r.name, r.description);
        }
        return ExitCode::SUCCESS;
    }

    let root = match args
        .root
        .or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d)))
    {
        Some(r) => r,
        None => {
            eprintln!("fdwlint: could not locate the workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };
    let baseline_path = args
        .baseline
        .unwrap_or_else(|| root.join("fdwlint.baseline.json"));

    let sources = match collect_workspace_sources(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fdwlint: failed to read workspace sources: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = fdwlint::scan_sources(&sources);

    let have_baseline = baseline_path.is_file();
    let baseline = if have_baseline {
        match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|t| Baseline::parse(&t))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("fdwlint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    let ratchet = Ratchet::compare(&outcome, &baseline);

    if args.update_baseline {
        // The ratchet only tightens: once a baseline exists, refuse to
        // freeze *new* debt. The sole exception is bootstrap — with no
        // committed baseline yet, the current counts become the initial
        // budget. Directive errors block either way.
        if (have_baseline && !ratchet.over_budget.is_empty())
            || !outcome.directive_errors.is_empty()
        {
            eprint!("{}", report::human(&outcome, &ratchet));
            eprintln!(
                "fdwlint: refusing to update the baseline while buckets are over budget — \
                 fix the findings or add `fdwlint::allow(<rule>): <reason>` directives"
            );
            return ExitCode::FAILURE;
        }
        let tightened = ratchet.tightened();
        if let Err(e) = std::fs::write(&baseline_path, tightened.to_json()) {
            eprintln!("fdwlint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "fdwlint: baseline written to {} ({} bucket(s), {} violation(s) frozen)",
            baseline_path.display(),
            tightened.counts.len(),
            tightened.counts.values().sum::<u64>()
        );
        return ExitCode::SUCCESS;
    }

    if args.json {
        print!("{}", report::json(&outcome, &ratchet, &baseline));
    } else {
        eprint!("{}", report::human(&outcome, &ratchet));
        println!("{}", report::summary(&outcome, &ratchet));
    }
    if ratchet.is_clean(&outcome) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
