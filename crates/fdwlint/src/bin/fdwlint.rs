//! The `fdwlint` CLI — scan the workspace (token rules + the call-graph
//! pass), compare against the committed ratchet baseline, and report.
//!
//! ```text
//! fdwlint [--root DIR] [--baseline FILE] [--json] [--taint-depth N]
//!         [--write-baseline [--force]] [--list-rules] [--explain RULE]
//! ```
//!
//! Exit status: `0` clean, `1` violations (over-budget buckets or bad
//! allow directives), `2` usage/IO errors. `--write-baseline` (alias:
//! `--update-baseline`) rewrites the baseline with the current counts and
//! **refuses to raise any count** — the ratchet only turns one way; new
//! violations must be fixed or carry an inline `fdwlint::allow` with a
//! rationale. `--force` overrides that refusal and prints exactly which
//! buckets were loosened and by how much.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use fdwlint::{
    collect_workspace_sources, find_root, report, rules, AnalysisOptions, Baseline, Ratchet,
};

struct Args {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: bool,
    write_baseline: bool,
    force: bool,
    list_rules: bool,
    explain: Option<String>,
    taint_depth: usize,
}

const USAGE: &str = "usage: fdwlint [--root DIR] [--baseline FILE] [--json] [--taint-depth N] \
     [--write-baseline [--force]] [--list-rules] [--explain RULE]\n\
     exit codes: 0 clean, 1 violations, 2 usage/IO error";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        baseline: None,
        json: false,
        write_baseline: false,
        force: false,
        list_rules: false,
        explain: None,
        taint_depth: AnalysisOptions::default().taint_depth,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = Some(it.next().ok_or("--root needs a path")?.into()),
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a path")?.into())
            }
            "--json" => args.json = true,
            "--write-baseline" | "--update-baseline" => args.write_baseline = true,
            "--force" => args.force = true,
            "--list-rules" => args.list_rules = true,
            "--explain" => args.explain = Some(it.next().ok_or("--explain needs a rule name")?),
            "--taint-depth" => {
                args.taint_depth = it
                    .next()
                    .ok_or("--taint-depth needs a number")?
                    .parse()
                    .map_err(|_| "--taint-depth needs a non-negative integer".to_string())?
            }
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for r in rules::RULES {
            println!("{:<32} {}", r.name, r.description);
        }
        return ExitCode::SUCCESS;
    }

    if let Some(name) = &args.explain {
        let Some(r) = rules::RULES.iter().find(|r| r.name == *name) else {
            eprintln!("fdwlint: no rule named '{name}' (see --list-rules)");
            return ExitCode::from(2);
        };
        println!("{}\n", r.name);
        println!("  invariant: {}\n", r.description);
        println!("  example (violating):");
        for line in r.example.lines() {
            println!("    {line}");
        }
        return ExitCode::SUCCESS;
    }

    let root = match args
        .root
        .or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d)))
    {
        Some(r) => r,
        None => {
            eprintln!("fdwlint: could not locate the workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };
    let baseline_path = args
        .baseline
        .unwrap_or_else(|| root.join("fdwlint.baseline.json"));

    let sources = match collect_workspace_sources(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fdwlint: failed to read workspace sources: {e}");
            return ExitCode::from(2);
        }
    };
    let opts = AnalysisOptions {
        taint_depth: args.taint_depth,
    };
    let outcome = fdwlint::scan_workspace(&sources, &opts);

    let have_baseline = baseline_path.is_file();
    let baseline = if have_baseline {
        match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|t| Baseline::parse(&t))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("fdwlint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    let ratchet = Ratchet::compare(&outcome, &baseline);

    if args.write_baseline {
        // The ratchet only tightens: once a baseline exists, refuse to
        // freeze *new* debt unless --force. Bootstrap (no committed
        // baseline yet) initialises the budget from the current counts.
        // Directive errors block unconditionally — they are syntax
        // errors, not debt.
        if !outcome.directive_errors.is_empty() {
            eprint!("{}", report::human(&outcome, &ratchet));
            eprintln!("fdwlint: refusing to write a baseline with malformed allow directives");
            return ExitCode::FAILURE;
        }
        let loosened: Vec<(String, u64, u64)> = ratchet
            .over_budget
            .iter()
            .map(|(bucket, frozen, now, _)| (bucket.clone(), *frozen, *now))
            .collect();
        if have_baseline && !loosened.is_empty() && !args.force {
            eprint!("{}", report::human(&outcome, &ratchet));
            eprintln!(
                "fdwlint: refusing to loosen the ratchet — fix the findings, add \
                 `fdwlint::allow(<rule>): <reason>` directives, or pass --force"
            );
            return ExitCode::FAILURE;
        }
        let tightened = ratchet.tightened();
        if let Err(e) = std::fs::write(&baseline_path, tightened.to_json()) {
            eprintln!("fdwlint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        if !loosened.is_empty() {
            println!("fdwlint: --force loosened the ratchet:");
            for (bucket, frozen, now) in &loosened {
                println!("  {bucket}: {frozen} -> {now}");
            }
        }
        println!(
            "fdwlint: baseline written to {} ({} bucket(s), {} violation(s) frozen)",
            baseline_path.display(),
            tightened.counts.len(),
            tightened.counts.values().sum::<u64>()
        );
        return ExitCode::SUCCESS;
    }

    if args.json {
        print!("{}", report::json(&outcome, &ratchet, &baseline));
    } else {
        eprint!("{}", report::human(&outcome, &ratchet));
        println!("{}", report::summary(&outcome, &ratchet));
    }
    if ratchet.is_clean(&outcome) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
