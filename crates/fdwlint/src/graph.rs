//! Workspace symbol table and call graph (DESIGN.md §14).
//!
//! Built from the item-parse layer ([`crate::syntax`]): every function
//! definition in non-test sources becomes a node; every call expression
//! is resolved against the symbol table by name and path suffix, with a
//! same-file → same-crate → workspace tier preference. Resolution is an
//! over-approximation — a method call resolves to *every* workspace
//! method of that name that survives the tier filter, and taint flows
//! along all edges — so the graph can produce false paths but will not
//! silently drop a real one for any call it resolves.

use std::collections::BTreeMap;

use crate::lexer::{mask, Masked};
use crate::rules::SourceFile;
use crate::syntax::{self, Call};

/// Path roots that mark a call as outside the workspace.
const EXTERNAL_ROOTS: &[&str] = &["std", "core", "alloc", "rayon"];

/// Method names too generic to resolve *across crates*: `.write(` in
/// dagman must not grow an edge to `MseedFile::write` in fakequakes just
/// because the names collide. Within the defining file or crate the
/// receiver is plausibly the workspace type; across crates these names
/// are treated as non-workspace calls. Distinctive sink methods
/// (`observe`, `span_us`, `record`, ...) are deliberately absent.
const COMMON_METHOD_NAMES: &[&str] = &[
    "write", "read", "push", "pop", "insert", "remove", "get", "set", "len", "is_empty", "new",
    "clone", "next", "flush", "extend", "iter", "drain", "contains", "take", "send", "recv",
    "join", "run", "start", "stop", "clear", "append", "from", "into", "default", "fmt", "eq",
    "cmp", "hash", "drop", "tick", "step", "add", "sub", "emit", "apply", "build", "init", "reset",
    "update", "finish", "close", "open", "load", "store", "parse", "name", "id",
];

/// One source file of the graph, with its masked channels retained for
/// the downstream taint pass.
#[derive(Debug)]
pub struct FileInfo {
    /// Package name owning the file.
    pub crate_name: String,
    /// Workspace-relative path.
    pub rel_path: String,
    /// Masked lexer channels.
    pub masked: Masked,
    /// Under a `tests/`/`benches/`/`examples/` tree — no defs taken.
    pub is_test_path: bool,
}

/// One function definition node.
#[derive(Debug)]
pub struct FnNode {
    /// Index into [`Graph::files`].
    pub file: usize,
    /// Bare name.
    pub name: String,
    /// `impl`/`trait` type, if a method.
    pub self_type: Option<String>,
    /// Fully qualified segments: crate ident, file modules, inline
    /// modules, self type (if any), name.
    pub qualified: Vec<String>,
    /// 1-based span of the definition.
    pub start_line: usize,
    /// 1-based line of the closing brace.
    pub end_line: usize,
    /// Declared with a visibility qualifier.
    pub is_pub: bool,
    /// Raw call expressions in the body (pre-resolution).
    pub calls: Vec<Call>,
}

impl FnNode {
    /// `path::to::fn` display form.
    pub fn display(&self) -> String {
        self.qualified.join("::")
    }
}

/// A resolved caller→callee edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee node index.
    pub callee: usize,
    /// 1-based call-site line in the caller's file.
    pub line: usize,
}

/// How one call site classified.
#[derive(Debug, PartialEq)]
pub enum Resolution {
    /// Matched ≥1 workspace definition (all listed; >1 = ambiguous).
    Workspace(Vec<usize>),
    /// External root, std method, tuple constructor, closure call —
    /// provably or plausibly not a workspace function.
    NonWorkspace,
    /// Name matches a workspace def but qualification/kind rejected
    /// every candidate — a site the graph honestly failed to place.
    Unresolved,
}

/// Call-site classification counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct GraphStats {
    /// All call sites seen in non-test sources.
    pub total_sites: usize,
    /// Sites resolved to ≥1 workspace definition.
    pub workspace_sites: usize,
    /// Sites classified as outside the workspace.
    pub non_workspace_sites: usize,
    /// Sites the resolver could not place.
    pub unresolved_sites: usize,
    /// Workspace sites that matched more than one definition.
    pub ambiguous_sites: usize,
}

impl GraphStats {
    /// Fraction of call sites classified (workspace or non-workspace).
    /// The workspace self-check asserts this stays ≥ 0.95.
    pub fn resolution_rate(&self) -> f64 {
        if self.total_sites == 0 {
            return 1.0;
        }
        (self.workspace_sites + self.non_workspace_sites) as f64 / self.total_sites as f64
    }
}

/// The workspace call graph.
#[derive(Debug)]
pub struct Graph {
    /// Files, aligned with [`FnNode::file`].
    pub files: Vec<FileInfo>,
    /// Function nodes.
    pub fns: Vec<FnNode>,
    /// Forward edges per node (deduped per callee, first call line kept).
    pub edges: Vec<Vec<Edge>>,
    /// Reverse adjacency: for each node, its callers.
    pub reverse: Vec<Vec<usize>>,
    /// Resolution counters.
    pub stats: GraphStats,
}

/// Module path a file contributes from its location: `crates/x/src/a/b.rs`
/// → `[a, b]`; `lib.rs`/`main.rs`/`mod.rs` tails drop.
fn module_path(rel_path: &str) -> Vec<String> {
    let mut p = rel_path;
    if let Some(rest) = p.strip_prefix("crates/") {
        p = rest.split_once('/').map(|x| x.1).unwrap_or(rest);
    }
    p = p.strip_prefix("src/").unwrap_or(p);
    p = p.strip_suffix(".rs").unwrap_or(p);
    let mut segs: Vec<String> = p
        .split('/')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if segs
        .last()
        .is_some_and(|l| l == "lib" || l == "main" || l == "mod")
    {
        segs.pop();
    }
    segs
}

/// Same test-tree predicate the per-file rules use.
pub fn is_test_path(rel_path: &str) -> bool {
    ["tests/", "benches/", "examples/"]
        .iter()
        .any(|d| rel_path.starts_with(d) || rel_path.contains(&format!("/{d}")))
}

/// Build the call graph over `files`.
pub fn build(files: &[SourceFile]) -> Graph {
    let mut infos = Vec::with_capacity(files.len());
    let mut fns: Vec<FnNode> = Vec::new();

    for (fi, f) in files.iter().enumerate() {
        let masked = mask(&f.text);
        let test_path = is_test_path(&f.rel_path);
        if !test_path {
            let parsed = syntax::parse(&masked);
            let crate_ident = f.crate_name.replace('-', "_");
            let file_mods = module_path(&f.rel_path);
            for d in parsed.fns {
                let mut qualified = vec![crate_ident.clone()];
                qualified.extend(file_mods.iter().cloned());
                qualified.extend(d.mods.iter().cloned());
                if let Some(ty) = &d.self_type {
                    qualified.push(ty.clone());
                }
                qualified.push(d.name.clone());
                fns.push(FnNode {
                    file: fi,
                    name: d.name,
                    self_type: d.self_type,
                    qualified,
                    start_line: d.start_line,
                    end_line: d.end_line,
                    is_pub: d.is_pub,
                    calls: d.calls,
                });
            }
        }
        infos.push(FileInfo {
            crate_name: f.crate_name.clone(),
            rel_path: f.rel_path.clone(),
            masked,
            is_test_path: test_path,
        });
    }

    // Name → candidate node indices (BTreeMap keeps everything ordered
    // and deterministic; fdwlint holds itself to its own hash rules).
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in fns.iter().enumerate() {
        by_name.entry(n.name.as_str()).or_default().push(i);
    }

    let mut stats = GraphStats::default();
    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
    for caller in 0..fns.len() {
        let mut seen: Vec<usize> = Vec::new();
        // Immutable borrows of surrounding tables; collect edges after.
        let resolved: Vec<(Resolution, usize)> = fns[caller]
            .calls
            .iter()
            .map(|c| (resolve(c, caller, &fns, &infos, &by_name), c.line))
            .collect();
        for (res, line) in resolved {
            stats.total_sites += 1;
            match res {
                Resolution::Workspace(targets) => {
                    stats.workspace_sites += 1;
                    if targets.len() > 1 {
                        stats.ambiguous_sites += 1;
                    }
                    for t in targets {
                        if !seen.contains(&t) {
                            seen.push(t);
                            edges[caller].push(Edge { callee: t, line });
                        }
                    }
                }
                Resolution::NonWorkspace => stats.non_workspace_sites += 1,
                Resolution::Unresolved => stats.unresolved_sites += 1,
            }
        }
    }

    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
    for (caller, out) in edges.iter().enumerate() {
        for e in out {
            reverse[e.callee].push(caller);
        }
    }

    Graph {
        files: infos,
        fns,
        edges,
        reverse,
        stats,
    }
}

/// Classify one call site made by `caller`.
fn resolve(
    call: &Call,
    caller: usize,
    fns: &[FnNode],
    files: &[FileInfo],
    by_name: &BTreeMap<&str, Vec<usize>>,
) -> Resolution {
    // Normalize the path: `crate::` → caller's crate ident, `Self::` →
    // caller's impl type, `self::`/`super::` stripped (approximate —
    // suffix matching absorbs the lost precision).
    let caller_node = &fns[caller];
    let caller_file = &files[caller_node.file];
    let mut path: Vec<String> = Vec::with_capacity(call.path.len());
    for (i, seg) in call.path.iter().enumerate() {
        if i == 0 {
            match seg.as_str() {
                "crate" => {
                    path.push(caller_file.crate_name.replace('-', "_"));
                    continue;
                }
                "Self" => {
                    if let Some(ty) = &caller_node.self_type {
                        path.push(ty.clone());
                    }
                    continue;
                }
                "self" | "super" => continue,
                _ => {}
            }
        }
        path.push(seg.clone());
    }
    if path.is_empty() {
        return Resolution::NonWorkspace;
    }
    if path.len() > 1 && EXTERNAL_ROOTS.contains(&path[0].as_str()) {
        return Resolution::NonWorkspace;
    }
    let name = path.last().map(String::as_str).unwrap_or("");
    let Some(candidates) = by_name.get(name) else {
        // No workspace definition bears this name: std call, tuple
        // constructor, closure invocation — not a workspace edge.
        return Resolution::NonWorkspace;
    };

    let filtered: Vec<usize> = if call.is_method {
        // A `.name(` call can only land on a method.
        candidates
            .iter()
            .copied()
            .filter(|&i| fns[i].self_type.is_some())
            .collect()
    } else if path.len() > 1 {
        // Qualified call: the definition's qualified path must end with
        // the written path.
        candidates
            .iter()
            .copied()
            .filter(|&i| {
                let q = &fns[i].qualified;
                q.len() >= path.len() && q[q.len() - path.len()..] == path[..]
            })
            .collect()
    } else {
        // Bare `name(` call: prefer free functions; fall back to any
        // (an associated fn brought in scope by `use Type::assoc`).
        let free: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| fns[i].self_type.is_none())
            .collect();
        if free.is_empty() {
            candidates.clone()
        } else {
            free
        }
    };
    if filtered.is_empty() {
        if call.is_method {
            // Methods of this name exist but none survived the kind
            // filter — can't happen (filter is kind-only); defensive.
            return Resolution::Unresolved;
        }
        // Qualified path mismatch on a known name: e.g. enum-variant
        // "calls" (`E::B(x)`) where `B` collides with a fn name.
        return Resolution::Unresolved;
    }

    // Tier preference: same file, then same crate, then workspace-wide.
    let same_file: Vec<usize> = filtered
        .iter()
        .copied()
        .filter(|&i| fns[i].file == caller_node.file)
        .collect();
    if !same_file.is_empty() {
        return Resolution::Workspace(same_file);
    }
    let same_crate: Vec<usize> = filtered
        .iter()
        .copied()
        .filter(|&i| files[fns[i].file].crate_name == caller_file.crate_name)
        .collect();
    if !same_crate.is_empty() {
        return Resolution::Workspace(same_crate);
    }
    if call.is_method && COMMON_METHOD_NAMES.contains(&name) {
        // Too generic to trust across crate boundaries.
        return Resolution::NonWorkspace;
    }
    Resolution::Workspace(filtered)
}

impl Graph {
    /// Node whose span contains `(file, line)`, innermost-last wins.
    pub fn fn_at(&self, file: usize, line: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, n) in self.fns.iter().enumerate() {
            if n.file == file && n.start_line <= line && line <= n.end_line {
                // Later defs with tighter spans (nested fns) override.
                if best.is_none_or(|b| {
                    let bn = &self.fns[b];
                    n.end_line - n.start_line <= bn.end_line - bn.start_line
                }) {
                    best = Some(i);
                }
            }
        }
        best
    }

    /// Nodes defined in the file at `rel_path`.
    pub fn fns_in_file(&self, rel_path: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, n)| self.files[n.file].rel_path == rel_path)
            .map(|(i, _)| i)
            .collect()
    }

    /// `file:line (qualified::name)` label for chain rendering.
    pub fn label(&self, node: usize) -> String {
        let n = &self.fns[node];
        let f = &self.files[n.file];
        format!("{}:{} {}", f.rel_path, n.start_line, n.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(crate_name: &str, rel_path: &str, text: &str) -> SourceFile {
        SourceFile {
            crate_name: crate_name.into(),
            rel_path: rel_path.into(),
            text: text.into(),
        }
    }

    fn idx(g: &Graph, name: &str) -> usize {
        g.fns
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    fn callees(g: &Graph, name: &str) -> Vec<String> {
        let i = idx(g, name);
        g.edges[i]
            .iter()
            .map(|e| g.fns[e.callee].name.clone())
            .collect()
    }

    #[test]
    fn resolves_free_path_and_method_calls_across_crates() {
        let g = build(&[
            src(
                "fdw-core",
                "crates/core/src/live.rs",
                "pub fn timed(obs: &Obs) {\n    let t = now_marker();\n    obs.observe(t);\n}\nfn now_marker() -> u64 { 0 }\n",
            ),
            src(
                "fdw-obs",
                "crates/obs/src/metrics.rs",
                "pub struct MetricsRegistry;\nimpl MetricsRegistry {\n    pub fn observe(&self, v: u64) { let _ = v; }\n}\n",
            ),
        ]);
        assert_eq!(callees(&g, "timed"), vec!["now_marker", "observe"]);
        assert_eq!(
            g.fns[idx(&g, "observe")].qualified,
            vec!["fdw_obs", "metrics", "MetricsRegistry", "observe"]
        );
        // Reverse edge present.
        assert_eq!(g.reverse[idx(&g, "observe")], vec![idx(&g, "timed")]);
    }

    #[test]
    fn common_method_names_do_not_cross_crates() {
        let g = build(&[
            src(
                "dagman",
                "crates/dagman/src/driver.rs",
                "fn flush_log(f: &mut File) {\n    f.write(b);\n}\n",
            ),
            src(
                "fakequakes",
                "crates/fakequakes/src/mseed.rs",
                "pub struct MseedFile;\nimpl MseedFile {\n    pub fn write(&self, p: &Path) { let _ = p; }\n}\n",
            ),
        ]);
        assert!(
            callees(&g, "flush_log").is_empty(),
            ".write must not jump crates"
        );
        // ...but within the defining crate the edge exists.
        let g2 = build(&[src(
            "fakequakes",
            "crates/fakequakes/src/mseed.rs",
            "pub struct MseedFile;\nimpl MseedFile {\n    pub fn write(&self, p: &Path) { let _ = p; }\n}\npub fn save(m: &MseedFile, p: &Path) { m.write(p); }\n",
        )]);
        assert_eq!(callees(&g2, "save"), vec!["write"]);
    }

    #[test]
    fn crate_and_self_prefixes_normalize() {
        let g = build(&[src(
            "htcsim",
            "crates/htcsim/src/userlog.rs",
            "pub struct UserLog;\nimpl UserLog {\n    pub fn record(&mut self) { Self::stamp(); crate::userlog::helper(); }\n    fn stamp() {}\n}\npub fn helper() {}\n",
        )]);
        let rec = callees(&g, "record");
        assert!(rec.contains(&"stamp".to_string()), "{rec:?}");
        assert!(rec.contains(&"helper".to_string()), "{rec:?}");
    }

    #[test]
    fn std_paths_and_unknown_names_are_non_workspace() {
        let g = build(&[src(
            "fdw-core",
            "crates/core/src/x.rs",
            "fn f() {\n    std::mem::swap(a, b);\n    format(x);\n    rayon::join(p, q);\n}\n",
        )]);
        assert!(callees(&g, "f").is_empty());
        assert_eq!(g.stats.total_sites, 3);
        assert_eq!(g.stats.non_workspace_sites, 3);
        assert!((g.stats.resolution_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn test_tree_files_contribute_no_defs() {
        let g = build(&[
            src(
                "htcsim",
                "crates/htcsim/tests/golden.rs",
                "fn helper_only_in_tests() {}\n",
            ),
            src(
                "htcsim",
                "crates/htcsim/src/lib.rs",
                "fn f() { helper_only_in_tests(); }\n",
            ),
        ]);
        assert_eq!(g.fns.len(), 1);
        assert!(callees(&g, "f").is_empty());
        assert_eq!(g.stats.non_workspace_sites, 1);
    }

    #[test]
    fn fn_at_picks_the_innermost_span() {
        let g = build(&[src(
            "fdw-core",
            "crates/core/src/x.rs",
            "fn outer() {\n    fn inner() {\n        work();\n    }\n    inner();\n}\nfn work() {}\n",
        )]);
        let at = g.fn_at(0, 3).map(|i| g.fns[i].name.clone());
        assert_eq!(at.as_deref(), Some("inner"));
        let at5 = g.fn_at(0, 5).map(|i| g.fns[i].name.clone());
        assert_eq!(at5.as_deref(), Some("outer"));
    }

    #[test]
    fn module_paths_from_rel_paths() {
        assert!(module_path("crates/htcsim/src/lib.rs").is_empty());
        assert_eq!(module_path("crates/obs/src/metrics.rs"), vec!["metrics"]);
        assert_eq!(
            module_path("crates/core/src/fault/mesh.rs"),
            vec!["fault", "mesh"]
        );
        assert_eq!(module_path("crates/core/src/fault/mod.rs"), vec!["fault"]);
        assert_eq!(module_path("src/runner.rs"), vec!["runner"]);
    }
}
