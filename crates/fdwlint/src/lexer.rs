//! A small Rust lexer for lint purposes: it does **not** build a syntax
//! tree, it separates a source file into the four channels the rules
//! care about —
//!
//! 1. *masked code*: the source with every comment and string/char
//!    literal replaced by spaces (newlines preserved), so pattern
//!    matching never fires on rule text quoted inside a literal or a
//!    comment;
//! 2. *comment text per line*: where `fdwlint::allow(...)` directives
//!    live;
//! 3. *string-literal contents per line*: what the literal-aware rules
//!    (`ulog-code-registry`, `dead-config-knob`) match against — each
//!    completed `"..."`/`r#"..."#` literal is attributed to the line it
//!    opened on;
//! 4. *test-region marks per line*: lines inside `#[cfg(test)]` items or
//!    `mod tests { ... }` blocks, which every rule skips (test code may
//!    unwrap, spawn threads, and iterate hash maps freely).
//!
//! Handled literal forms: line comments (`//`, `///`, `//!`), nested
//! block comments, `"..."` with escapes **including the `\`-newline line
//! continuation** (the escaped newline still flushes a line, so the
//! line-number accounting the item parser depends on never drifts), raw
//! strings `r"..."` / `r#"..."#` (any hash depth), byte variants
//! `b"..."` / `br#"..."#`, char and byte-char literals including escapes
//! and the `'"'` / `'/'` forms that would otherwise derail string or
//! comment detection, and lifetimes (`'a` is code, not an unterminated
//! char).

/// The four channels of one lexed source file. All vectors have one
/// entry per source line.
#[derive(Debug)]
pub struct Masked {
    /// Source lines with comments and literal contents blanked to spaces.
    pub code: Vec<String>,
    /// Comment text found on each line (line + block, concatenated).
    pub comments: Vec<String>,
    /// Completed string-literal contents per line (the line the literal
    /// *opened* on; multi-line literals are attributed whole to that
    /// line). Char literals are not collected.
    pub strings: Vec<Vec<String>>,
    /// True for lines inside `#[cfg(test)]` items or `mod tests` blocks.
    pub in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    /// Inside a `"` string, the char after a `\` (escape payload).
    StrEsc,
    RawStr(u32),
    Char,
    /// Inside a char literal, the char after a `\`.
    CharEsc,
}

/// Lex `source` into its masked channels.
pub fn mask(source: &str) -> Masked {
    let b: Vec<char> = source.chars().collect();
    let mut code = String::with_capacity(source.len());
    let mut comment = String::with_capacity(64);
    let mut code_lines: Vec<String> = Vec::new();
    let mut comment_lines: Vec<String> = Vec::new();
    // Completed literals as (0-based start line, content).
    let mut literals: Vec<(usize, String)> = Vec::new();
    let mut lit = String::new();
    let mut lit_start = 0usize;
    let mut st = State::Code;
    let mut i = 0usize;

    macro_rules! newline {
        () => {{
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(std::mem::take(&mut comment));
        }};
    }

    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            match st {
                // A line comment ends at the newline.
                State::LineComment => st = State::Code,
                // `\` + newline is the string line continuation: the
                // escape consumed the newline itself, the string goes on.
                State::StrEsc => st = State::Str,
                // Strings continue across lines; the content keeps the
                // newline so registry-style exact matches stay honest.
                State::Str | State::RawStr(_) => lit.push('\n'),
                _ => {}
            }
            newline!();
            i += 1;
            continue;
        }
        match st {
            State::Code => {
                if c == '/' && b.get(i + 1) == Some(&'/') {
                    st = State::LineComment;
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    st = State::BlockComment(1);
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = State::Str;
                    lit_start = code_lines.len();
                    code.push(' ');
                    i += 1;
                } else if is_raw_str_start(&b, i) {
                    // r / b / br prefix chars were already emitted as
                    // code; we stand on the `r`. Count hashes.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    // is_raw_str_start guarantees a quote at j.
                    st = State::RawStr(hashes);
                    lit_start = code_lines.len();
                    for _ in i..=j {
                        code.push(' ');
                    }
                    i = j + 1;
                } else if c == '\'' {
                    if is_char_literal(&b, i) {
                        st = State::Char;
                        code.push(' ');
                        i += 1;
                    } else {
                        // Lifetime: keep as code.
                        code.push(c);
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && b.get(i + 1) == Some(&'/') {
                    st = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    st = State::BlockComment(depth + 1);
                    comment.push_str("/*");
                    code.push_str("  ");
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    lit.push(c);
                    code.push(' ');
                    st = State::StrEsc;
                } else if c == '"' {
                    literals.push((lit_start, std::mem::take(&mut lit)));
                    st = State::Code;
                    code.push(' ');
                } else {
                    lit.push(c);
                    code.push(' ');
                }
                i += 1;
            }
            State::StrEsc => {
                // The escape payload never opens or closes anything.
                lit.push(c);
                code.push(' ');
                st = State::Str;
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' && raw_str_closes(&b, i, hashes) {
                    literals.push((lit_start, std::mem::take(&mut lit)));
                    for _ in 0..=hashes {
                        code.push(' ');
                    }
                    i += 1 + hashes as usize;
                    st = State::Code;
                } else {
                    lit.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    code.push(' ');
                    st = State::CharEsc;
                } else {
                    if c == '\'' {
                        st = State::Code;
                    }
                    code.push(' ');
                }
                i += 1;
            }
            State::CharEsc => {
                code.push(' ');
                st = State::Char;
                i += 1;
            }
        }
    }
    // A trailing newline already flushed the last line; only flush the
    // buffer when the file ends mid-line (or is empty).
    if !source.ends_with('\n') || code_lines.is_empty() {
        newline!();
    }
    // An unterminated literal at EOF still surfaces (best effort).
    if !lit.is_empty() {
        literals.push((lit_start, lit));
    }

    let mut strings: Vec<Vec<String>> = vec![Vec::new(); code_lines.len()];
    for (line, text) in literals {
        strings[line.min(code_lines.len() - 1)].push(text);
    }

    let in_test = mark_test_regions(&code_lines);
    Masked {
        code: code_lines,
        comments: comment_lines,
        strings,
        in_test,
    }
}

/// Is `b[i]` the `r` of a raw-string opener (`r"`, `r#"`, with optional
/// preceding handled elsewhere)? Also accepts the `r` of `br"`.
fn is_raw_str_start(b: &[char], i: usize) -> bool {
    if b[i] != 'r' {
        return false;
    }
    // Don't fire inside identifiers like `for` or `var`: previous char
    // must not be ident-continue, except `b` (byte raw string) when the
    // char before *that* is not ident-continue.
    if i > 0 {
        let p = b[i - 1];
        let ident = p.is_alphanumeric() || p == '_';
        let byte_prefix = p == 'b' && (i < 2 || !(b[i - 2].is_alphanumeric() || b[i - 2] == '_'));
        if ident && !byte_prefix {
            return false;
        }
    }
    let mut j = i + 1;
    while b.get(j) == Some(&'#') {
        j += 1;
    }
    b.get(j) == Some(&'"')
}

/// Does the `"` at `b[i]` close a raw string opened with `hashes` hashes?
fn raw_str_closes(b: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| b.get(i + k) == Some(&'#'))
}

/// Distinguish a char literal from a lifetime at the `'` in `b[i]`:
/// `'x'` and `'\n'` are literals; `'a` followed by anything but `'` is a
/// lifetime (as in `&'a str` or `'static`).
fn is_char_literal(b: &[char], i: usize) -> bool {
    match b.get(i + 1) {
        Some('\\') => true,
        Some(c) if (c.is_alphanumeric() || *c == '_') => b.get(i + 2) == Some(&'\''),
        Some('\'') => false, // `''` is not valid; treat as code
        Some(_) => b.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Mark lines covered by `#[cfg(test)]` items and `mod tests { ... }`
/// blocks. Operates on masked code, so braces inside strings/comments
/// never unbalance the match.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    // Flatten with line indices for brace matching across lines.
    let joined: Vec<(usize, char)> = code
        .iter()
        .enumerate()
        .flat_map(|(ln, l)| l.chars().map(move |c| (ln, c)).chain([(ln, '\n')]))
        .collect();
    let text: String = joined.iter().map(|(_, c)| *c).collect();

    let mut starts: Vec<usize> = Vec::new();
    for pat in ["#[cfg(test)]", "# [cfg (test)]"] {
        let mut from = 0;
        while let Some(p) = text[from..].find(pat) {
            starts.push(from + p);
            from += p + pat.len();
        }
    }
    // `mod tests` as a whole word (covers `pub mod tests`, `mod tests;`).
    let mut from = 0;
    while let Some(p) = text[from..].find("mod tests") {
        let abs = from + p;
        let before_ok = abs == 0
            || !text[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = text[abs + "mod tests".len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            starts.push(abs);
        }
        from = abs + "mod tests".len();
    }

    let chars: Vec<char> = text.chars().collect();
    for s in starts {
        let start_line = joined[s].0;
        // Find the item's opening `{`; a `;` first means a brace-less
        // item (`#[cfg(test)] use foo;`, `mod tests;`) — mark through it.
        let mut j = s;
        let mut open = None;
        while j < chars.len() {
            match chars[j] {
                '{' => {
                    open = Some(j);
                    break;
                }
                ';' => break,
                _ => j += 1,
            }
        }
        let end_line = match open {
            Some(o) => {
                let mut depth = 0i64;
                let mut k = o;
                loop {
                    match chars.get(k) {
                        Some('{') => depth += 1,
                        Some('}') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        None => break,
                        _ => {}
                    }
                    k += 1;
                }
                joined.get(k).map_or(code.len() - 1, |(ln, _)| *ln)
            }
            None => joined.get(j).map_or(code.len() - 1, |(ln, _)| *ln),
        };
        for flag in in_test
            .iter_mut()
            .take(end_line.min(code.len() - 1) + 1)
            .skip(start_line)
        {
            *flag = true;
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let m = mask("let x = 1; // Instant::now()\nlet s = \"SystemTime::now\";\n");
        assert!(!m.code[0].contains("Instant"));
        assert!(m.comments[0].contains("Instant::now()"));
        assert!(!m.code[1].contains("SystemTime"));
        assert!(m.code[1].contains("let s ="));
    }

    #[test]
    fn masks_raw_and_byte_strings() {
        let m = mask("let a = r#\"thread_rng\"#;\nlet b = br\"par_iter\";\nlet c = b\"x\";\n");
        assert!(!m.code.join("\n").contains("thread_rng"));
        assert!(!m.code.join("\n").contains("par_iter"));
    }

    #[test]
    fn raw_string_with_hash_quote_inside() {
        let m = mask("let a = r##\"quote \"# inside\"##; let after = unwrap_here();\n");
        assert!(m.code[0].contains("after"));
        assert!(!m.code[0].contains("inside"));
    }

    #[test]
    fn raw_string_containing_line_comment_and_quote_stays_masked() {
        // Regression (parser prerequisite): `//` and `"` inside a raw
        // string must neither start a comment nor end the literal, and
        // code after the literal must survive as code.
        let m = mask("let a = r#\"x // not a comment \" still\"#; call_site();\n");
        assert!(m.code[0].contains("call_site()"), "{:?}", m.code);
        assert!(!m.code[0].contains("not a comment"));
        assert!(m.comments[0].is_empty(), "{:?}", m.comments);
        assert_eq!(m.strings[0], vec!["x // not a comment \" still"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let m = mask("fn f<'a>(x: &'a str) -> &'static str { x }\nlet c = 'x'; let n = '\\n';\n");
        assert!(m.code[0].contains("'a"));
        assert!(m.code[0].contains("'static"));
        assert!(!m.code[1].contains('x'));
    }

    #[test]
    fn nested_block_comments() {
        let m = mask("/* outer /* inner */ still comment */ code()\n");
        assert!(m.code[0].contains("code()"));
        assert!(!m.code[0].contains("outer"));
        assert!(m.comments[0].contains("inner"));
    }

    #[test]
    fn deeply_nested_block_comments_terminate_exactly() {
        // Regression: three levels of nesting, with `*/` pairs inside —
        // code resumes only after the balanced close.
        let m = mask("/* 1 /* 2 /* 3 */ 2 */ 1 */ live(); /* x */ more();\n");
        assert!(m.code[0].contains("live()"), "{:?}", m.code);
        assert!(m.code[0].contains("more()"));
        assert!(!m.code[0].contains('1'));
        assert!(!m.code[0].contains('x'));
    }

    #[test]
    fn char_literals_with_quote_and_slash_do_not_derail_masking() {
        // Regression: `'"'` must not open a string and `'/'` twice must
        // not start a comment — the trailing call must stay code, the
        // trailing real comment must stay comment.
        let src = "let q = '\"'; let a = '/'; let b = '/'; after_chars(); // real comment\n";
        let m = mask(src);
        assert!(m.code[0].contains("after_chars()"), "{:?}", m.code);
        assert!(!m.code[0].contains('"'));
        assert!(m.comments[0].contains("real comment"));
        // And a string *after* a quote-char-literal still masks:
        let m = mask("let q = '\"'; let s = \"Instant::now\"; tail();\n");
        assert!(m.code[0].contains("tail()"));
        assert!(!m.code[0].contains("Instant"));
        assert_eq!(m.strings[0], vec!["Instant::now"]);
    }

    #[test]
    fn escaped_newline_keeps_line_accounting() {
        // Regression: the `\`-newline continuation used to swallow the
        // newline, shifting every later line number (and so every item
        // span the parser extracts). Three lines in, three lines out.
        let src = "let s = \"abc\\\n  def\";\nlet t = Instant::now();\n";
        let m = mask(src);
        assert_eq!(m.code.len(), 3, "{:?}", m.code);
        assert!(m.code[2].contains("Instant::now"), "{:?}", m.code);
        assert!(!m.code[1].contains("def"));
        // The literal is attributed to its opening line.
        assert_eq!(m.strings[0].len(), 1);
        assert!(m.strings[0][0].contains("def"));
    }

    #[test]
    fn string_closing_right_after_continuation_closes() {
        let src = "let s = \"x\\\n\"; after();\n";
        let m = mask(src);
        assert_eq!(m.code.len(), 2);
        assert!(m.code[1].contains("after()"), "{:?}", m.code);
    }

    #[test]
    fn strings_channel_collects_literals_per_line() {
        let m = mask("emit(\"000\", \"fault_nx\");\nlet raw = r#\"030\"#;\n");
        assert_eq!(m.strings[0], vec!["000", "fault_nx"]);
        assert_eq!(m.strings[1], vec!["030"]);
        assert!(m.code[0].contains("emit("));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn b() {}\n";
        let m = mask(src);
        assert_eq!(m.in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn mod_tests_without_cfg_is_marked() {
        let src = "fn a() {}\nmod tests {\n  fn t() {}\n}\nfn b() {}\n";
        let m = mask(src);
        assert_eq!(m.in_test, vec![false, true, true, true, false]);
    }

    #[test]
    fn braceless_cfg_test_item_marks_through_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() {}\n";
        let m = mask(src);
        assert_eq!(m.in_test, vec![true, true, false]);
    }

    #[test]
    fn string_braces_do_not_unbalance_test_regions() {
        let src = "mod tests {\n  const S: &str = \"}\";\n  fn t() {}\n}\nfn live() {}\n";
        let m = mask(src);
        assert_eq!(m.in_test, vec![true, true, true, true, false]);
    }
}
