//! # fdwlint — workspace determinism lints
//!
//! The suite's core guarantees — bitwise parallel==sequential kernels
//! (DESIGN.md §8), byte-identical telemetry, ULOG and rescue round-trips
//! (§5–§7) — are enforced dynamically by tests. This crate adds the
//! static layer: a zero-external-dependency analysis pass over the
//! workspace's own `.rs` sources that machine-checks the invariants those
//! tests rely on, on every commit, via `scripts/ci.sh`.
//!
//! * [`lexer`] — masks comments, string/char literals and
//!   `#[cfg(test)]`/`mod tests` regions so rules never fire on quoted
//!   rule text or test code;
//! * [`rules`] — the rule set ([`rules::RULES`]) with per-crate scoping
//!   and inline `// fdwlint::allow(<rule>): <reason>` escape hatches;
//! * [`baseline`] — the committed ratchet (`fdwlint.baseline.json`):
//!   existing violations are frozen per `(rule, crate)` bucket and counts
//!   may only decrease;
//! * [`report`] — human `file:line` diagnostics and the machine-readable
//!   JSON report (validated by `fdw_obs::json::validate`).
//!
//! Run it locally with `cargo run -p fdwlint` from anywhere in the repo.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod syntax;
pub mod taint;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

pub use baseline::Baseline;
pub use graph::GraphStats;
pub use rules::{DirectiveError, Finding, SourceFile};
pub use taint::{AllowedFlow, AnalysisOptions};

/// Everything one scan produced, before ratcheting.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Every violation found (allow-directives already applied).
    pub findings: Vec<Finding>,
    /// Malformed/unknown allow directives — always hard errors.
    pub directive_errors: Vec<DirectiveError>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Source→sink flows downgraded by an `fdwlint::allow` on some hop
    /// (graph pass only). `scripts/sanitize.sh` cross-references these
    /// against artifacts that differ across thread counts.
    pub allowed_flows: Vec<AllowedFlow>,
    /// Call-site resolution statistics of the graph pass, if it ran.
    pub graph_stats: Option<GraphStats>,
}

impl ScanOutcome {
    /// Violation counts per `rule/crate` bucket.
    pub fn counts(&self) -> BTreeMap<String, u64> {
        let mut counts = BTreeMap::new();
        for f in &self.findings {
            *counts.entry(f.bucket()).or_insert(0) += 1;
        }
        counts
    }
}

/// Scan a set of in-memory sources (what the fixture tests drive).
pub fn scan_sources(files: &[SourceFile]) -> ScanOutcome {
    let mut out = ScanOutcome {
        files_scanned: files.len(),
        ..Default::default()
    };
    for f in files {
        let (findings, errors) = rules::scan_file(f);
        out.findings.extend(findings);
        out.directive_errors.extend(errors);
    }
    // Deterministic report order regardless of the walk.
    out.findings
        .sort_by(|a, b| (&a.rel_path, a.line, a.rule).cmp(&(&b.rel_path, b.line, b.rule)));
    out.directive_errors
        .sort_by(|a, b| (&a.rel_path, a.line).cmp(&(&b.rel_path, b.line)));
    out
}

/// Full workspace analysis: the per-file token rules of [`scan_sources`]
/// plus the call-graph pass ([`graph`] + [`taint`]) that follows
/// nondeterminism across function boundaries.
pub fn scan_workspace(files: &[SourceFile], opts: &AnalysisOptions) -> ScanOutcome {
    let mut out = scan_sources(files);
    let g = graph::build(files);
    let (graph_findings, allowed_flows) = taint::analyze(&g, opts);
    out.findings.extend(graph_findings);
    out.findings
        .sort_by(|a, b| (&a.rel_path, a.line, a.rule).cmp(&(&b.rel_path, b.line, b.rule)));
    out.allowed_flows = allowed_flows;
    out.graph_stats = Some(g.stats);
    out
}

/// The comparison of a scan against the committed ratchet.
#[derive(Debug)]
pub struct Ratchet {
    /// Buckets whose current count exceeds the frozen one, with every
    /// finding in the bucket (the offender is among them).
    pub over_budget: Vec<(String, u64, u64, Vec<Finding>)>,
    /// Buckets whose current count dropped below the frozen one:
    /// `(bucket, frozen, current)` — candidates for `--update-baseline`.
    pub improved: Vec<(String, u64, u64)>,
    /// Current counts per bucket.
    pub counts: BTreeMap<String, u64>,
}

impl Ratchet {
    /// Compare `outcome` against `base`.
    pub fn compare(outcome: &ScanOutcome, base: &Baseline) -> Self {
        let counts = outcome.counts();
        let mut over_budget = Vec::new();
        let mut improved = Vec::new();
        for (bucket, &n) in &counts {
            let frozen = base.count(bucket);
            if n > frozen {
                let members: Vec<Finding> = outcome
                    .findings
                    .iter()
                    .filter(|f| f.bucket() == *bucket)
                    .cloned()
                    .collect();
                over_budget.push((bucket.clone(), frozen, n, members));
            }
        }
        for (bucket, &frozen) in &base.counts {
            let n = counts.get(bucket).copied().unwrap_or(0);
            if n < frozen {
                improved.push((bucket.clone(), frozen, n));
            }
        }
        Self {
            over_budget,
            improved,
            counts,
        }
    }

    /// Clean means nothing over budget (improvements are advisory).
    pub fn is_clean(&self, outcome: &ScanOutcome) -> bool {
        self.over_budget.is_empty() && outcome.directive_errors.is_empty()
    }

    /// The baseline the current tree deserves.
    pub fn tightened(&self) -> Baseline {
        Baseline {
            counts: self.counts.clone(),
        }
    }
}

/// Locate the workspace root: walk up from `start` to the first directory
/// holding both `Cargo.toml` and `crates/`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Package names per `crates/<dir>` (directory name where they agree).
fn crate_name_for(dir: &str) -> String {
    match dir {
        "core" => "fdw-core".to_string(),
        "obs" => "fdw-obs".to_string(),
        "bench" => "fdw-bench".to_string(),
        other => other.to_string(),
    }
}

/// Collect every lintable source of the workspace: `src/**/*.rs` of the
/// umbrella crate and of each member under `crates/` (including this
/// crate — fdwlint lints itself), plus members' `tests/` and `benches/`
/// trees (scanned for directive errors only; path-scoped rules skip
/// them). `vendor/`, `examples/` and `target/` are out of scope.
pub fn collect_workspace_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let mut push_tree = |crate_name: &str, tree: &Path, rel_prefix: &str| -> std::io::Result<()> {
        if !tree.is_dir() {
            return Ok(());
        }
        let mut stack = vec![tree.to_path_buf()];
        while let Some(dir) = stack.pop() {
            let mut entries: Vec<_> = std::fs::read_dir(&dir)?
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .map(|e| e.path())
                .collect();
            entries.sort();
            for path in entries {
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_some_and(|e| e == "rs") {
                    let rel = path
                        .strip_prefix(tree)
                        .expect("walked path is under its tree")
                        .to_string_lossy()
                        .replace('\\', "/");
                    files.push(SourceFile {
                        crate_name: crate_name.to_string(),
                        rel_path: format!("{rel_prefix}/{rel}"),
                        text: std::fs::read_to_string(&path)?,
                    });
                }
            }
        }
        Ok(())
    };

    for sub in ["src", "tests", "benches"] {
        push_tree("fdw-suite", &root.join(sub), sub)?;
    }
    let mut members: Vec<_> = std::fs::read_dir(root.join("crates"))?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for member in members {
        let dir = member
            .file_name()
            .expect("crates/* entries are named")
            .to_string_lossy()
            .to_string();
        let name = crate_name_for(&dir);
        for sub in ["src", "tests", "benches"] {
            push_tree(&name, &member.join(sub), &format!("crates/{dir}/{sub}"))?;
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome_with(buckets: &[(&str, &str, usize)]) -> ScanOutcome {
        let mut out = ScanOutcome::default();
        for (rule, krate, n) in buckets {
            let rule = rules::RULES
                .iter()
                .find(|r| r.name == *rule)
                .expect("known rule")
                .name;
            for i in 0..*n {
                out.findings.push(Finding {
                    rule,
                    crate_name: krate.to_string(),
                    rel_path: format!("crates/{krate}/src/x.rs"),
                    line: i + 1,
                    excerpt: String::new(),
                    chain: Vec::new(),
                });
            }
        }
        out
    }

    #[test]
    fn ratchet_flags_growth_and_notes_improvement() {
        let mut base = Baseline::default();
        base.counts.insert("unwrap-in-lib/htcsim".into(), 2);
        base.counts.insert("raw-parallelism/fakequakes".into(), 3);

        let grown = outcome_with(&[("unwrap-in-lib", "htcsim", 3)]);
        let r = Ratchet::compare(&grown, &base);
        assert_eq!(r.over_budget.len(), 1);
        assert_eq!(r.over_budget[0].1, 2);
        assert_eq!(r.over_budget[0].2, 3);
        assert!(!r.is_clean(&grown));
        // The vanished fakequakes bucket counts as improved.
        assert!(r
            .improved
            .iter()
            .any(|(b, f, n)| b == "raw-parallelism/fakequakes" && *f == 3 && *n == 0));

        let within = outcome_with(&[
            ("unwrap-in-lib", "htcsim", 2),
            ("raw-parallelism", "fakequakes", 1),
        ]);
        let r = Ratchet::compare(&within, &base);
        assert!(r.is_clean(&within));
        assert_eq!(r.improved.len(), 1);
        assert_eq!(r.tightened().count("raw-parallelism/fakequakes"), 1);
    }

    #[test]
    fn directive_errors_are_never_clean() {
        let mut out = ScanOutcome::default();
        out.directive_errors.push(DirectiveError {
            rel_path: "crates/core/src/x.rs".into(),
            line: 1,
            message: "bad".into(),
        });
        let r = Ratchet::compare(&out, &Baseline::default());
        assert!(!r.is_clean(&out));
    }
}
