//! Report rendering: human `file:line` diagnostics for the terminal and
//! a machine-readable JSON document (one JSON dialect with the telemetry
//! exporters — escaped with `fdw_obs::json::escape`, validated by
//! `fdw_obs::json::validate`).

use crate::{Ratchet, ScanOutcome};
use fdw_obs::json::escape;

/// Human diagnostics: over-budget buckets with every member finding,
/// directive errors, and improvement notes. Empty string when there is
/// nothing to say.
pub fn human(outcome: &ScanOutcome, ratchet: &Ratchet) -> String {
    let mut out = String::new();
    for e in &outcome.directive_errors {
        out.push_str(&format!(
            "error[bad-allow-directive]: {}:{}: {}\n",
            e.rel_path, e.line, e.message
        ));
    }
    for (bucket, frozen, now, members) in &ratchet.over_budget {
        out.push_str(&format!(
            "error[{bucket}]: {now} violation(s), ratchet budget is {frozen}\n"
        ));
        for f in members {
            out.push_str(&format!(
                "  {}:{}: [{}] {}\n",
                f.rel_path, f.line, f.rule, f.excerpt
            ));
            for hop in &f.chain {
                out.push_str(&format!("    {hop}\n"));
            }
        }
    }
    for (bucket, frozen, now) in &ratchet.improved {
        out.push_str(&format!(
            "note[{bucket}]: improved {frozen} -> {now}; run `fdwlint --update-baseline` to ratchet down\n"
        ));
    }
    out
}

/// One-line summary for the happy path.
pub fn summary(outcome: &ScanOutcome, ratchet: &Ratchet) -> String {
    let current: u64 = ratchet.counts.values().sum();
    let mut line = format!(
        "fdwlint: {} file(s), {} rule(s), {} frozen violation(s), {} bucket(s) over budget",
        outcome.files_scanned,
        crate::rules::RULES.len(),
        current,
        ratchet.over_budget.len()
    );
    if let Some(g) = &outcome.graph_stats {
        line.push_str(&format!(
            ", call graph {}/{} site(s) resolved ({:.1}%), {} allowed flow(s)",
            g.workspace_sites + g.non_workspace_sites,
            g.total_sites,
            g.resolution_rate() * 100.0,
            outcome.allowed_flows.len()
        ));
    }
    line
}

/// The machine-readable report. Always well-formed JSON (debug-asserted
/// against the shared validator).
pub fn json(outcome: &ScanOutcome, ratchet: &Ratchet, baseline: &crate::Baseline) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"tool\": \"fdwlint\",\n");
    out.push_str(&format!("  \"version\": {},\n", crate::baseline::VERSION));
    out.push_str(&format!(
        "  \"files_scanned\": {},\n",
        outcome.files_scanned
    ));
    out.push_str(&format!(
        "  \"status\": \"{}\",\n",
        if ratchet.is_clean(outcome) {
            "clean"
        } else {
            "violations"
        }
    ));

    out.push_str("  \"rules\": [");
    for (i, r) in crate::rules::RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"description\": \"{}\"}}",
            escape(r.name),
            escape(r.description)
        ));
    }
    out.push_str("\n  ],\n");

    let obj = |map: &std::collections::BTreeMap<String, u64>| {
        let mut s = String::from("{");
        for (i, (k, v)) in map.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{}\": {}", escape(k), v));
        }
        if !map.is_empty() {
            s.push_str("\n  ");
        }
        s.push('}');
        s
    };
    out.push_str(&format!("  \"counts\": {},\n", obj(&ratchet.counts)));
    out.push_str(&format!("  \"baseline\": {},\n", obj(&baseline.counts)));

    out.push_str("  \"directive_errors\": [");
    for (i, e) in outcome.directive_errors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape(&e.rel_path),
            e.line,
            escape(&e.message)
        ));
    }
    out.push_str("\n  ],\n");

    out.push_str("  \"over_budget\": [");
    let mut first = true;
    for (bucket, frozen, now, members) in &ratchet.over_budget {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"bucket\": \"{}\", \"baseline\": {frozen}, \"current\": {now}, \"findings\": [",
            escape(bucket)
        ));
        for (i, f) in members.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n      {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"excerpt\": \"{}\", \"chain\": [{}]}}",
                escape(f.rule),
                escape(&f.rel_path),
                f.line,
                escape(&f.excerpt),
                str_array(&f.chain)
            ));
        }
        out.push_str("\n    ]}");
    }
    out.push_str("\n  ],\n");

    out.push_str("  \"improved\": [");
    for (i, (bucket, frozen, now)) in ratchet.improved.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"bucket\": \"{}\", \"baseline\": {frozen}, \"current\": {now}}}",
            escape(bucket)
        ));
    }
    out.push_str("\n  ],\n");

    out.push_str("  \"allowed_flows\": [");
    for (i, a) in outcome.allowed_flows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"sink_kind\": \"{}\", \"reason\": \"{}\", \"chain\": [{}]}}",
            escape(a.rule),
            escape(&a.rel_path),
            a.line,
            escape(&a.sink_kind),
            escape(&a.reason),
            str_array(&a.chain)
        ));
    }
    out.push_str("\n  ],\n");

    match &outcome.graph_stats {
        Some(g) => out.push_str(&format!(
            "  \"graph\": {{\"total_sites\": {}, \"workspace_sites\": {}, \"non_workspace_sites\": {}, \"unresolved_sites\": {}, \"ambiguous_sites\": {}, \"resolution_rate\": {:.4}}}\n",
            g.total_sites,
            g.workspace_sites,
            g.non_workspace_sites,
            g.unresolved_sites,
            g.ambiguous_sites,
            g.resolution_rate()
        )),
        None => out.push_str("  \"graph\": null\n"),
    }
    out.push_str("}\n");
    debug_assert!(fdw_obs::json::validate(&out).is_ok());
    out
}

/// `"a", "b"` — a JSON string array body.
fn str_array(items: &[String]) -> String {
    items
        .iter()
        .map(|s| format!("\"{}\"", escape(s)))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, SourceFile};
    use crate::{scan_sources, Baseline, Ratchet};

    fn sample() -> (ScanOutcome, Ratchet, Baseline) {
        let files = [SourceFile {
            crate_name: "htcsim".into(),
            rel_path: "crates/htcsim/src/x.rs".into(),
            text: "fn f() { let t = std::time::Instant::now(); }\n".into(),
        }];
        let outcome = scan_sources(&files);
        let base = Baseline::default();
        let ratchet = Ratchet::compare(&outcome, &base);
        (outcome, ratchet, base)
    }

    #[test]
    fn json_report_validates_and_carries_findings() {
        let (outcome, ratchet, base) = sample();
        let doc = json(&outcome, &ratchet, &base);
        assert!(fdw_obs::json::validate(&doc).is_ok());
        assert!(doc.contains("\"status\": \"violations\""));
        assert!(doc.contains("wall-clock-in-sim/htcsim"));
        assert!(doc.contains("\"line\": 1"));
    }

    #[test]
    fn human_report_is_file_line_addressable() {
        let (outcome, ratchet, _) = sample();
        let text = human(&outcome, &ratchet);
        assert!(text.contains("crates/htcsim/src/x.rs:1:"), "{text}");
        assert!(text.contains("ratchet budget is 0"), "{text}");
        let _ = summary(&outcome, &ratchet);
    }

    #[test]
    fn finding_bucket_format() {
        let f = Finding {
            rule: "unwrap-in-lib",
            crate_name: "dagman".into(),
            rel_path: "crates/dagman/src/dag.rs".into(),
            line: 3,
            excerpt: String::new(),
            chain: Vec::new(),
        };
        assert_eq!(f.bucket(), "unwrap-in-lib/dagman");
    }
}
