//! The determinism rule set and the per-file scanner.
//!
//! Each rule encodes one invariant the suite's reproducibility guarantees
//! depend on (DESIGN.md §5/§8/§9). Rules run over the masked code channel
//! of [`crate::lexer::mask`], skip test regions, honour inline
//! `fdwlint::allow(<rule>): <reason>` / file-level
//! `fdwlint::allow-file(<rule>): <reason>` directives, and are scoped per
//! crate so e.g. the bench harness may read the wall clock while
//! simulation crates may not.

use crate::lexer::mask;

/// Rule identifiers, in report order. The first six are per-file token
/// rules; the last four run on the workspace call graph
/// ([`crate::graph`]/[`crate::taint`], DESIGN.md §14).
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "wall-clock-in-sim",
        description: "Instant::now/SystemTime::now outside the bench crate and the single \
                      allowlisted fdw-obs wallclock helper: sim crates must take time from \
                      SimTime or fdw_obs::wallclock so seeded runs never observe the host clock",
        example: "let t0 = std::time::Instant::now(); // in a sim crate",
    },
    RuleInfo {
        name: "unordered-hash-iteration",
        description: "iterating a HashMap/HashSet in a crate whose output must be byte-stable \
                      (htcsim, dagman, fdw-obs, vdc-*) without sorting or an order-insensitive \
                      consumer: ULOG/metrics/rescue bytes must not depend on hasher state",
        example: "for (job, rt) in &self.jobs { out.push_str(&render(job, rt)); }",
    },
    RuleInfo {
        name: "unseeded-randomness",
        description: "thread_rng/rand::random/from_entropy/OsRng: every RNG in the workspace \
                      must be constructed from an explicit u64 seed",
        example: "let mut rng = rand::thread_rng();",
    },
    RuleInfo {
        name: "raw-parallelism",
        description: "parallel constructs (thread::spawn, rayon::join/scope, par_iter) outside \
                      fakequakes::par's chunk-aligned helpers, which are the only fan-out \
                      primitives proven bitwise parallel==sequential",
        example: "rayon::join(|| left(), || right()); // outside fakequakes::par",
    },
    RuleInfo {
        name: "unwrap-in-lib",
        description: ".unwrap()/panic! in non-test library code: each crate has a frozen budget \
                      in the ratchet baseline that may only decrease",
        example: "let spec = self.specs.get(&id).unwrap();",
    },
    RuleInfo {
        name: "naive-float-accum",
        description: "bare .sum::<f64>() in fakequakes non-test code: hot-path float reductions \
                      must go through simd::lane_sum, whose lane-width-4 accumulation order is \
                      the canonical one the goldens and the parallel==sequential proofs pin \
                      (DESIGN.md §13); a bare iterator sum is both slower and a second, \
                      unblessed summation order",
        example: "let total = samples.iter().sum::<f64>(); // use simd::lane_sum",
    },
    RuleInfo {
        name: "nondet-flow-to-sink",
        description: "a function from which both a nondeterminism source (wall clock, hash \
                      iteration order, unseeded RNG, non-canonical float fold) and a serialized \
                      sink (ULOG writer, telemetry exporter, .npy/.mseed serializer, digest, \
                      BENCH json) are reachable within --taint-depth calls, with no single \
                      callee joining them deeper: the join point of a tainted dataflow, \
                      reported with the full call chain",
        example: "fn report(obs: &Obs) {\n\
                  \x20   let us = WallTimer::start().elapsed_us(); // wall-clock source\n\
                  \x20   obs.observe(\"io_us\", us as f64);          // telemetry sink\n\
                  }",
    },
    RuleInfo {
        name: "dead-config-knob",
        description: "a key parsed into FdwConfig (crates/core/src/config.rs) whose field is \
                      never read outside config.rs: a knob that validates but steers nothing \
                      silently lies to every experiment config that sets it",
        example: "\"recycle_npy\" => cfg.recycle_npy = value.parse()..., // never read again",
    },
    RuleInfo {
        name: "ulog-code-registry",
        description: "every ULOG numeric event code is defined exactly once, in \
                      htcsim::condor_log::codes, and spelled via the registry everywhere else \
                      in htcsim/dagman: a fat-fingered duplicate literal would silently fork \
                      the log dialect the paper's shell scripts grep",
        example: "out.push_str(\"005 \"); // spell it codes::TERMINATED",
    },
    RuleInfo {
        name: "unblessed-parallel-reachability",
        description: "code reachable from the fakequakes::par / htcsim::des entry points that \
                      invokes a parallel primitive outside the blessed chunk-aligned helpers: \
                      the engines' parallel==sequential proofs only cover fan-outs that go \
                      through par.rs or carry a written raw-parallelism justification",
        example: "fn drain_epoch() { rayon::scope(|s| ...) } // reachable from des::run",
    },
];

/// Static metadata of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// The identifier used in directives, buckets and reports.
    pub name: &'static str,
    /// One-sentence statement of the invariant.
    pub description: &'static str,
    /// A violating snippet, shown by `fdwlint --explain <rule>`.
    pub example: &'static str,
}

/// True iff `name` names a known rule.
pub fn is_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// Crates whose emitted artifacts (ULOG, rescue files, metrics/trace
/// JSON, CSV, catalog listings) must be byte-stable across runs and
/// hasher seeds — the scope of `unordered-hash-iteration`.
pub const BYTE_STABLE_CRATES: &[&str] =
    &["htcsim", "dagman", "fdw-obs", "vdc-burst", "vdc-catalog"];

/// The single sanctioned wall-clock read (see `fdw_obs::wallclock`).
pub const WALLCLOCK_ALLOWLIST: &[&str] = &["crates/obs/src/wallclock.rs"];

/// The single sanctioned home of parallel primitives.
pub const PARALLELISM_ALLOWLIST: &[&str] = &["crates/fakequakes/src/par.rs"];

/// The sanctioned home of lane-ordered float reductions — the module that
/// *defines* `lane_sum` may of course spell out scalar sums (its reference
/// twins and doc text) — the scope exemption of `naive-float-accum`.
pub const LANE_SUM_ALLOWLIST: &[&str] = &["crates/fakequakes/src/simd.rs"];

/// Raw parallel-primitive spellings — shared between the per-file
/// `raw-parallelism` rule and the graph-level
/// `unblessed-parallel-reachability` rule.
pub(crate) const PAR_PATTERNS: &[&str] = &[
    "thread::spawn",
    "rayon::join",
    "rayon::scope",
    "rayon::spawn",
    "par_iter",
    "par_chunks",
    "par_bridge",
];

/// One source file handed to the scanner. `rel_path` is
/// workspace-root-relative with forward slashes; `crate_name` is the
/// package name (`htcsim`, `fdw-core`, ...).
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Package name owning the file.
    pub crate_name: String,
    /// Workspace-relative path (`crates/htcsim/src/cluster.rs`).
    pub rel_path: String,
    /// Full source text.
    pub text: String,
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired.
    pub rule: &'static str,
    /// Package name (baseline bucket component).
    pub crate_name: String,
    /// Workspace-relative path.
    pub rel_path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// For graph rules: the call chain behind the finding, one hop per
    /// entry, rendered into the human and JSON reports. Empty for
    /// per-file rules.
    pub chain: Vec<String>,
}

impl Finding {
    /// The ratchet bucket this finding counts against.
    pub fn bucket(&self) -> String {
        format!("{}/{}", self.rule, self.crate_name)
    }
}

/// A malformed or unknown allow directive — reported as a hard error so
/// escape hatches can't silently rot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectiveError {
    /// Workspace-relative path.
    pub rel_path: String,
    /// 1-based line number of the directive.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

/// Parsed allow directives of one file.
#[derive(Default)]
pub(crate) struct Allows {
    /// (line, rule, reason): suppress `rule` on that line and the next.
    pub(crate) inline: Vec<(usize, String, String)>,
    /// (rule, reason) pairs suppressed for the whole file.
    pub(crate) file: Vec<(String, String)>,
    pub(crate) errors: Vec<DirectiveError>,
}

impl Allows {
    /// Is `rule` suppressed at `line` (directive on the line or the one
    /// above, or file-wide)?
    pub(crate) fn allowed(&self, rule: &str, line: usize) -> bool {
        self.file.iter().any(|(r, _)| r == rule)
            || self
                .inline
                .iter()
                .any(|(l, r, _)| r == rule && (*l == line || *l + 1 == line))
    }

    /// The written justification for a suppression of `rule` anywhere in
    /// the line range `[lo, hi]` (or file-wide), if one exists.
    pub(crate) fn reason_in_span(&self, rule: &str, lo: usize, hi: usize) -> Option<String> {
        if let Some((_, reason)) = self.file.iter().find(|(r, _)| r == rule) {
            return Some(reason.clone());
        }
        self.inline
            .iter()
            .find(|(l, r, _)| r == rule && *l >= lo && *l <= hi)
            .map(|(_, _, reason)| reason.clone())
    }
}

/// Extract `fdwlint::allow(...)` / `fdwlint::allow-file(...)` directives
/// from the per-line comment channel. A directive must name a known rule
/// and carry a non-empty `: <reason>` tail, and must open the comment
/// (`// fdwlint::allow(...)`) — prose *mentioning* the syntax mid-comment
/// is not a directive.
pub(crate) fn parse_allows(rel_path: &str, comments: &[String]) -> Allows {
    let mut out = Allows::default();
    for (idx, text) in comments.iter().enumerate() {
        let trimmed = text.trim_start();
        let Some(rest) = trimmed.strip_prefix("fdwlint::allow") else {
            continue;
        };
        let (is_file, rest) = match rest.strip_prefix("-file") {
            Some(r) => (true, r),
            None => (false, rest),
        };
        let mut err = |msg: String| {
            out.errors.push(DirectiveError {
                rel_path: rel_path.to_string(),
                line: idx + 1,
                message: msg,
            });
        };
        let Some(rest) = rest.strip_prefix('(') else {
            err("allow directive missing '(<rule>)'".into());
            continue;
        };
        let Some(close) = rest.find(')') else {
            err("allow directive missing closing ')'".into());
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !is_rule(&rule) {
            err(format!("allow directive names unknown rule '{rule}'"));
            continue;
        }
        let tail = &rest[close + 1..];
        let reason = tail
            .strip_prefix(':')
            .map(str::trim)
            .filter(|r| !r.is_empty())
            .map(str::to_string);
        let Some(reason) = reason else {
            err(format!(
                "allow({rule}) needs a rationale: `fdwlint::allow({rule}): <why>`"
            ));
            continue;
        };
        if is_file {
            out.file.push((rule, reason));
        } else {
            out.inline.push((idx + 1, rule, reason));
        }
    }
    out
}

/// Scan one file against every applicable rule.
pub fn scan_file(file: &SourceFile) -> (Vec<Finding>, Vec<DirectiveError>) {
    let m = mask(&file.text);
    let allows = parse_allows(&file.rel_path, &m.comments);
    let mut findings = Vec::new();

    let is_test_path = ["tests/", "benches/", "examples/"]
        .iter()
        .any(|d| file.rel_path.starts_with(d) || file.rel_path.contains(&format!("/{d}")));
    if is_test_path {
        return (findings, allows.errors);
    }

    let mut push = |rule: &'static str, line: usize| {
        if allows.allowed(rule, line) {
            return;
        }
        findings.push(Finding {
            rule,
            crate_name: file.crate_name.clone(),
            rel_path: file.rel_path.clone(),
            line,
            excerpt: file
                .text
                .lines()
                .nth(line - 1)
                .unwrap_or("")
                .trim()
                .to_string(),
            chain: Vec::new(),
        });
    };

    let hash_names = collect_hash_names(&m.code, &m.in_test);

    for (idx, code) in m.code.iter().enumerate() {
        if m.in_test[idx] {
            continue;
        }
        let line = idx + 1;

        // wall-clock-in-sim
        if file.crate_name != "fdw-bench"
            && !WALLCLOCK_ALLOWLIST.contains(&file.rel_path.as_str())
            && (code.contains("Instant::now") || code.contains("SystemTime::now"))
        {
            push("wall-clock-in-sim", line);
        }

        // unseeded-randomness
        if [
            "thread_rng",
            "rand::random",
            "from_entropy",
            "OsRng",
            "getrandom",
        ]
        .iter()
        .any(|p| code.contains(p))
        {
            push("unseeded-randomness", line);
        }

        // raw-parallelism
        if !PARALLELISM_ALLOWLIST.contains(&file.rel_path.as_str())
            && PAR_PATTERNS.iter().any(|p| code.contains(p))
        {
            push("raw-parallelism", line);
        }

        // unordered-hash-iteration
        if BYTE_STABLE_CRATES.contains(&file.crate_name.as_str())
            && iterates_hash(code, &hash_names)
            && !order_insensitive(&m.code, idx)
        {
            push("unordered-hash-iteration", line);
        }

        // unwrap-in-lib: library sources only (not bin targets), and the
        // bench harness is exempt wholesale (its bins may panic freely).
        if file.crate_name != "fdw-bench" && !file.rel_path.contains("/src/bin/") {
            let hits = count_occurrences(code, ".unwrap()") + count_occurrences(code, "panic!(");
            for _ in 0..hits {
                push("unwrap-in-lib", line);
            }
        }

        // naive-float-accum: fakequakes library code only; the simd module
        // itself (home of lane_sum and its scalar reference twin) is exempt.
        if file.crate_name == "fakequakes"
            && !LANE_SUM_ALLOWLIST.contains(&file.rel_path.as_str())
            && !file.rel_path.contains("/src/bin/")
        {
            let hits = count_occurrences(code, ".sum::<f64>()");
            for _ in 0..hits {
                push("naive-float-accum", line);
            }
        }
    }
    (findings, allows.errors)
}

/// Names bound to a `HashMap`/`HashSet` anywhere in the file's non-test
/// code: `x: HashMap<..>` (let, param, field) and
/// `x = HashMap::new()` / `HashSet::with_capacity(..)` forms. A
/// name-level (not type-level) analysis — deliberately conservative, with
/// the allow directive as the escape hatch.
pub(crate) fn collect_hash_names(code: &[String], in_test: &[bool]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for (idx, line) in code.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        for marker in ["HashMap", "HashSet"] {
            let mut from = 0usize;
            while let Some(p) = line[from..].find(marker) {
                let abs = from + p;
                // Word boundary on both sides (skip e.g. `XHashMapY`).
                let before = line[..abs].chars().next_back();
                let after = line[abs + marker.len()..].chars().next();
                let bounded = !before.is_some_and(|c| c.is_alphanumeric() || c == '_')
                    && !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
                if bounded {
                    if let Some(name) = binder_before(&line[..abs]) {
                        if !names.contains(&name) {
                            names.push(name);
                        }
                    }
                }
                from = abs + marker.len();
            }
        }
    }
    names
}

/// Given the text preceding a `HashMap`/`HashSet` token, extract the
/// identifier it is bound to: `... name : [&mut] [path::]` or
/// `... name = `.
fn binder_before(prefix: &str) -> Option<String> {
    let mut rest = prefix.trim_end();
    // Strip type-path/reference noise between the binder and the marker:
    // `std::collections::`, `&`, `&mut`, `Option<`, etc. Walk back over
    // path segments and punctuation until we hit `:` or `=`.
    loop {
        rest = rest.trim_end();
        if rest.ends_with("::") {
            rest = &rest[..rest.len() - 2];
            rest = rest.trim_end_matches(|c: char| c.is_alphanumeric() || c == '_');
        } else if rest.ends_with('&') || rest.ends_with('<') || rest.ends_with('(') {
            rest = &rest[..rest.len() - 1];
        } else if rest.ends_with("mut") {
            rest = &rest[..rest.len() - 3];
        } else {
            break;
        }
    }
    rest = rest.trim_end();
    let sep = rest.chars().next_back()?;
    if sep != ':' && sep != '=' {
        return None;
    }
    // `::` path separator is not a binder.
    if sep == ':' && rest.len() >= 2 && rest.as_bytes()[rest.len() - 2] == b':' {
        return None;
    }
    if sep == '='
        && rest.len() >= 2
        && matches!(rest.as_bytes()[rest.len() - 2], b'=' | b'!' | b'<' | b'>')
    {
        return None;
    }
    let rest = rest[..rest.len() - 1].trim_end();
    let name: String = rest
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(name)
    }
}

/// Does this masked line iterate one of the hash-typed names?
pub(crate) fn iterates_hash(code: &str, names: &[String]) -> bool {
    for name in names {
        for suffix in [
            ".iter()",
            ".iter_mut()",
            ".keys()",
            ".values()",
            ".values_mut()",
            ".drain(",
            ".into_iter()",
            ".into_keys()",
            ".into_values()",
        ] {
            let pat = format!("{name}{suffix}");
            if contains_ident(code, &pat, name.len()) {
                return true;
            }
        }
        // `for x in name` / `for x in &name` / `for x in self.name`
        if let Some(p) = code.find(" in ") {
            let tail = code[p + 4..].trim_start();
            let tail = tail
                .trim_start_matches(['&', ' '])
                .trim_start_matches("mut ");
            let tail = tail.strip_prefix("self.").unwrap_or(tail);
            if tail.starts_with(name.as_str()) {
                let after = tail[name.len()..].chars().next();
                if !after.is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '(') {
                    return true;
                }
            }
        }
    }
    false
}

/// Non-overlapping occurrences of `pat` in `code` — the unwrap budget
/// counts call sites, not lines.
fn count_occurrences(code: &str, pat: &str) -> usize {
    let mut n = 0;
    let mut from = 0;
    while let Some(p) = code[from..].find(pat) {
        n += 1;
        from += p + pat.len();
    }
    n
}

/// `pat` occurs in `code` with an identifier boundary before the name
/// part (so `self.map.iter()` matches `map.iter()` but `bitmap.iter()`
/// does not match `map.iter()`).
fn contains_ident(code: &str, pat: &str, name_len: usize) -> bool {
    let mut from = 0usize;
    while let Some(p) = code[from..].find(pat) {
        let abs = from + p;
        let before = code[..abs].chars().next_back();
        if !before.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            return true;
        }
        from = abs + name_len.max(1);
    }
    false
}

/// Is the iteration starting at line `idx` consumed order-insensitively?
/// Looks ahead up to 4 lines for a sort, a BTree re-collection, or a
/// commutative consumer; an opening `{` stops the window, because a loop
/// body observes elements in hash order no matter what follows it.
pub(crate) fn order_insensitive(code: &[String], idx: usize) -> bool {
    let mut stmt = String::new();
    for line in code.iter().skip(idx).take(4) {
        stmt.push_str(line);
        stmt.push(' ');
        if line.trim_end().ends_with('{') {
            break;
        }
    }
    [
        ".sort", // sort()/sort_by/sort_unstable after collect
        "BTree", // re-collected into an ordered container
        ".sum()",
        ".sum::",
        ".product()",
        ".count()",
        ".all(",
        ".any(",
        ".fold(", // only safe for commutative folds; reviewed case by case
        ".min(",
        ".max(",
        ".min_by",
        ".max_by",
        ".contains(",
        ".extend(", // extending an ordered/keyed container re-sorts on key
    ]
    .iter()
    .any(|p| stmt.contains(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(crate_name: &str, rel_path: &str, text: &str) -> SourceFile {
        SourceFile {
            crate_name: crate_name.into(),
            rel_path: rel_path.into(),
            text: text.into(),
        }
    }

    fn rules_fired(f: &SourceFile) -> Vec<&'static str> {
        scan_file(f).0.into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn binder_extraction() {
        assert_eq!(binder_before("    let mut held: "), Some("held".into()));
        assert_eq!(binder_before("    jobs: "), Some("jobs".into()));
        assert_eq!(
            binder_before("let m = std::collections::"),
            Some("m".into())
        );
        assert_eq!(binder_before("    counts: BTreeMap<String, "), None);
        assert_eq!(binder_before("use std::collections::"), None);
        assert_eq!(binder_before("    pub fn f(x: &mut "), Some("x".into()));
    }

    #[test]
    fn wall_clock_fires_and_scopes() {
        let f = file(
            "htcsim",
            "crates/htcsim/src/x.rs",
            "fn f() { let t = std::time::Instant::now(); }\n",
        );
        assert_eq!(rules_fired(&f), vec!["wall-clock-in-sim"]);
        // Bench crate is exempt (crate-level allow).
        let b = file(
            "fdw-bench",
            "crates/bench/src/bin/x.rs",
            "fn f() { let t = Instant::now(); }\n",
        );
        assert!(rules_fired(&b).is_empty());
        // The one obs helper is allowlisted.
        let o = file(
            "fdw-obs",
            "crates/obs/src/wallclock.rs",
            "fn f() { let t = Instant::now(); }\n",
        );
        assert!(rules_fired(&o).is_empty());
    }

    #[test]
    fn directives_suppress_and_validate() {
        let same_line = file(
            "fdw-core",
            "crates/core/src/x.rs",
            "let t = Instant::now(); // fdwlint::allow(wall-clock-in-sim): bench-only path\n",
        );
        assert!(rules_fired(&same_line).is_empty());
        let prev_line = file(
            "fdw-core",
            "crates/core/src/x.rs",
            "// fdwlint::allow(wall-clock-in-sim): measured outside sim\nlet t = Instant::now();\n",
        );
        assert!(rules_fired(&prev_line).is_empty());
        let whole_file = file(
            "fdw-core",
            "crates/core/src/x.rs",
            "// fdwlint::allow-file(wall-clock-in-sim): this file is wall-time tooling\n\nfn f() { Instant::now(); }\n",
        );
        assert!(rules_fired(&whole_file).is_empty());

        let bad_rule = file(
            "fdw-core",
            "crates/core/src/x.rs",
            "// fdwlint::allow(no-such-rule): whatever\n",
        );
        let (_, errs) = scan_file(&bad_rule);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("unknown rule"));

        let no_reason = file(
            "fdw-core",
            "crates/core/src/x.rs",
            "// fdwlint::allow(unwrap-in-lib)\nx.unwrap();\n",
        );
        let (f, errs) = scan_file(&no_reason);
        assert_eq!(errs.len(), 1, "reason-less directive is an error");
        assert_eq!(f.len(), 1, "and does not suppress");
    }

    #[test]
    fn hash_iteration_fires_only_in_byte_stable_crates() {
        let src = "fn f() {\n    let mut m: HashMap<u32, u32> = HashMap::new();\n    for (k, v) in &m { emit(k, v); }\n}\n";
        let hit = file("htcsim", "crates/htcsim/src/x.rs", src);
        assert_eq!(rules_fired(&hit), vec!["unordered-hash-iteration"]);
        let other = file("fakequakes", "crates/fakequakes/src/x.rs", src);
        assert!(rules_fired(&other).is_empty());
    }

    #[test]
    fn hash_iteration_suppressed_by_sort_or_commutative_consumer() {
        for src in [
            "fn f(m: HashMap<u32, u32>) {\n    let mut v: Vec<_> = m.keys().collect();\n    v.sort();\n}\n",
            "fn f(m: HashMap<u32, u32>) -> u32 { m.values().sum() }\n",
            "fn f(m: HashMap<u32, u32>) -> bool { m.values().all(|v| *v > 0) }\n",
            "fn f(m: HashSet<u32>) -> usize { m.iter().count() }\n",
        ] {
            let f = file("dagman", "crates/dagman/src/x.rs", src);
            assert!(rules_fired(&f).is_empty(), "should not fire: {src}");
        }
    }

    #[test]
    fn unseeded_randomness_and_raw_parallelism() {
        let r = file(
            "eew",
            "crates/eew/src/x.rs",
            "fn f() { let mut rng = rand::thread_rng(); }\n",
        );
        assert_eq!(rules_fired(&r), vec!["unseeded-randomness"]);
        let p = file(
            "fdw-core",
            "crates/core/src/x.rs",
            "fn f() { std::thread::spawn(|| work()); }\n",
        );
        assert_eq!(rules_fired(&p), vec!["raw-parallelism"]);
        let par = file(
            "fakequakes",
            "crates/fakequakes/src/par.rs",
            "fn f() { rayon::join(|| a(), || b()); }\n",
        );
        assert!(
            rules_fired(&par).is_empty(),
            "par.rs is the sanctioned home"
        );
    }

    #[test]
    fn patterns_in_strings_comments_and_tests_do_not_fire() {
        let src = concat!(
            "// Instant::now() would be wrong here\n",
            "const HINT: &str = \"never call thread_rng or x.unwrap()\";\n",
            "const RAW: &str = r#\"par_iter in a raw string\"#;\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { let t = std::time::Instant::now(); x.unwrap(); }\n",
            "}\n",
        );
        let f = file("htcsim", "crates/htcsim/src/x.rs", src);
        assert!(rules_fired(&f).is_empty(), "{:?}", scan_file(&f).0);
    }

    #[test]
    fn naive_float_accum_scoped_to_fakequakes_outside_simd() {
        let src = "fn m0(terms: &[f64]) -> f64 { terms.iter().sum::<f64>() }\n";
        let hot = file("fakequakes", "crates/fakequakes/src/rupture.rs", src);
        assert_eq!(rules_fired(&hot), vec!["naive-float-accum"]);
        // The simd module defines lane_sum and its scalar twin — exempt.
        let home = file("fakequakes", "crates/fakequakes/src/simd.rs", src);
        assert!(rules_fired(&home).is_empty());
        // Other crates are out of scope (their sums feed no goldens).
        let other = file("htcsim", "crates/htcsim/src/x.rs", src);
        assert!(rules_fired(&other).is_empty());
        // Typed sums of other widths and untyped sums are not matched:
        // the rule targets the one spelling the hot paths actually used.
        let f32_sum = file(
            "fakequakes",
            "crates/fakequakes/src/x.rs",
            "fn f(x: &[f32]) -> f32 { x.iter().sum::<f32>() }\n",
        );
        assert!(rules_fired(&f32_sum).is_empty());
        let lane = file(
            "fakequakes",
            "crates/fakequakes/src/x.rs",
            "fn f(x: &[f64]) -> f64 { crate::simd::lane_sum(x) }\n",
        );
        assert!(rules_fired(&lane).is_empty());
    }

    #[test]
    fn unwrap_budget_counts_lib_code_only() {
        let lib = file(
            "dagman",
            "crates/dagman/src/x.rs",
            "fn f() { x.unwrap(); panic!(\"boom\"); }\n",
        );
        assert_eq!(rules_fired(&lib), vec!["unwrap-in-lib", "unwrap-in-lib"]);
        let bin = file(
            "fdw-core",
            "crates/core/src/bin/tool.rs",
            "fn main() { x.unwrap(); }\n",
        );
        assert!(rules_fired(&bin).is_empty());
        let test_file = file(
            "dagman",
            "crates/dagman/tests/proptests.rs",
            "fn f() { x.unwrap(); }\n",
        );
        assert!(rules_fired(&test_file).is_empty());
    }
}
