//! Item-level parsing over the masked token stream: `mod`/`fn`/`impl`/
//! `trait` spans and the call expressions inside each function body.
//!
//! This is deliberately **not** a Rust parser. It consumes the masked
//! code channel of [`crate::lexer::mask`] (literals and comments already
//! blanked), tokenizes it, and recovers just enough structure for the
//! workspace call graph (DESIGN.md §14): which functions exist, where
//! their bodies start and end, and which names they call. Macro bodies,
//! trait-object dispatch and calls through closure-typed locals are out
//! of model — [`crate::graph`] documents how each is approximated.

use crate::lexer::Masked;

/// One token of masked code: an identifier/keyword or one punctuation
/// glyph (`::` is a single token).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token text.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// True for identifier/keyword tokens.
    pub is_ident: bool,
}

/// Tokenize masked code lines. Whitespace separates; identifiers clump;
/// `::` is fused; every other char is its own token.
pub fn tokenize(code: &[String]) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in code.iter().enumerate() {
        let ln = idx + 1;
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    text: chars[start..i].iter().collect(),
                    line: ln,
                    is_ident: !chars[start].is_ascii_digit(),
                });
            } else if c == ':' && chars.get(i + 1) == Some(&':') {
                out.push(Token {
                    text: "::".into(),
                    line: ln,
                    is_ident: false,
                });
                i += 2;
            } else {
                out.push(Token {
                    text: c.to_string(),
                    line: ln,
                    is_ident: false,
                });
                i += 1;
            }
        }
    }
    out
}

/// A function definition recovered from one file.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any (`UserLog` for
    /// `impl UserLog { fn record ... }`).
    pub self_type: Option<String>,
    /// Inline `mod` path inside the file (not including the file's own
    /// module as derived from its path).
    pub mods: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
    /// 1-based line of the body's closing brace.
    pub end_line: usize,
    /// Declared `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// Calls made inside the body.
    pub calls: Vec<Call>,
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Path segments: `["par", "map_indexed"]` for `par::map_indexed(`,
    /// `["helper"]` for `helper(`, `["m"]` for `.m(`.
    pub path: Vec<String>,
    /// True for `.name(` method-call syntax.
    pub is_method: bool,
    /// 1-based source line of the callee name.
    pub line: usize,
}

impl Call {
    /// Last path segment — the callee's bare name.
    pub fn name(&self) -> &str {
        self.path.last().map(String::as_str).unwrap_or("")
    }
}

/// An inline `mod name { ... }` span.
#[derive(Debug, Clone)]
pub struct ModSpan {
    /// Module name.
    pub name: String,
    /// 1-based first line (the `mod` keyword).
    pub start_line: usize,
    /// 1-based last line (closing brace).
    pub end_line: usize,
}

/// Everything the item parser recovers from one file.
#[derive(Debug, Default)]
pub struct FileSyntax {
    /// Function definitions, in source order.
    pub fns: Vec<FnDef>,
    /// Inline module spans, in source order.
    pub mods: Vec<ModSpan>,
}

/// What a brace frame on the scope stack was opened by.
#[derive(Debug)]
enum Frame {
    Mod(usize),      // index into FileSyntax::mods
    TypeCtx(String), // impl/trait block: self type name
    Fn(usize),       // index into FileSyntax::fns
    Block,           // everything else
}

const KEYWORDS_NOT_CALLS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "in", "as", "move",
    "mut", "ref", "impl", "dyn", "where", "use", "pub", "mod", "struct", "enum", "trait", "const",
    "static", "type", "unsafe", "async", "await", "break", "continue",
];

/// Parse one masked file into its item structure.
pub fn parse(masked: &Masked) -> FileSyntax {
    let toks = tokenize(&masked.code);
    let mut out = FileSyntax::default();
    let mut stack: Vec<Frame> = Vec::new();
    let mut i = 0usize;
    // Visibility flag: set by `pub`, consumed by the next item keyword,
    // cleared at statement boundaries.
    let mut saw_pub = false;

    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "pub" => {
                saw_pub = true;
                // Skip a `(crate)` / `(super)` visibility argument.
                if toks.get(i + 1).map(|t| t.text.as_str()) == Some("(") {
                    i = skip_balanced(&toks, i + 1, "(", ")");
                    continue;
                }
                i += 1;
                continue;
            }
            ";" => {
                saw_pub = false;
                i += 1;
                continue;
            }
            "mod" => {
                if let Some(name_tok) = toks.get(i + 1).filter(|t| t.is_ident) {
                    if toks.get(i + 2).map(|t| t.text.as_str()) == Some("{") {
                        out.mods.push(ModSpan {
                            name: name_tok.text.clone(),
                            start_line: t.line,
                            end_line: t.line, // fixed when the frame pops
                        });
                        stack.push(Frame::Mod(out.mods.len() - 1));
                        saw_pub = false;
                        i += 3;
                        continue;
                    }
                }
                saw_pub = false;
                i += 1;
                continue;
            }
            "impl" | "trait" => {
                let (ty, next) = parse_type_ctx_header(&toks, i);
                if toks.get(next).map(|t| t.text.as_str()) == Some("{") {
                    stack.push(Frame::TypeCtx(ty));
                    i = next + 1;
                } else {
                    // `impl Trait for X;`-like or parse miss: skip keyword.
                    i += 1;
                }
                saw_pub = false;
                continue;
            }
            "fn" => {
                let is_pub = saw_pub;
                saw_pub = false;
                let Some(name_tok) = toks.get(i + 1).filter(|t| t.is_ident) else {
                    i += 1;
                    continue; // `fn(` type position (fn pointer type)
                };
                let name = name_tok.text.clone();
                let start_line = t.line;
                // Find the body `{` (or `;` for a bodiless signature) at
                // zero paren/angle depth.
                let mut j = i + 2;
                let mut paren = 0i64;
                let mut angle = 0i64;
                let mut body = None;
                while let Some(tk) = toks.get(j) {
                    match tk.text.as_str() {
                        "(" | "[" => paren += 1,
                        ")" | "]" => paren -= 1,
                        "<" => angle += 1,
                        ">" => angle = (angle - 1).max(0),
                        "-" => {} // `->`
                        ";" if paren == 0 => break,
                        "{" if paren == 0 => {
                            body = Some(j);
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let Some(body_open) = body else {
                    i = j.max(i + 1);
                    continue; // trait/extern signature without a body
                };
                let self_type = stack.iter().rev().find_map(|f| match f {
                    Frame::TypeCtx(ty) => Some(ty.clone()),
                    _ => None,
                });
                let mods = stack
                    .iter()
                    .filter_map(|f| match f {
                        Frame::Mod(m) => Some(out.mods[*m].name.clone()),
                        _ => None,
                    })
                    .collect();
                out.fns.push(FnDef {
                    name,
                    self_type,
                    mods,
                    start_line,
                    end_line: start_line, // fixed when the frame pops
                    is_pub,
                    calls: Vec::new(),
                });
                stack.push(Frame::Fn(out.fns.len() - 1));
                i = body_open + 1;
                continue;
            }
            "{" => {
                stack.push(Frame::Block);
                saw_pub = false;
                i += 1;
                continue;
            }
            "}" => {
                match stack.pop() {
                    Some(Frame::Mod(m)) => out.mods[m].end_line = t.line,
                    Some(Frame::Fn(f)) => out.fns[f].end_line = t.line,
                    _ => {}
                }
                i += 1;
                continue;
            }
            _ => {}
        }

        // Call-expression extraction, only inside a function body.
        if t.is_ident
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
            && !KEYWORDS_NOT_CALLS.contains(&t.text.as_str())
        {
            if let Some(fi) = innermost_fn(&stack) {
                // `name!(` is a macro invocation — but `!` would sit
                // between `name` and `(`, so this pattern can't be one.
                // Collect a leading `a::b::` path.
                let mut path = vec![t.text.clone()];
                let mut k = i;
                while k >= 2
                    && toks[k - 1].text == "::"
                    && toks[k - 2].is_ident
                    && !KEYWORDS_NOT_CALLS.contains(&toks[k - 2].text.as_str())
                {
                    path.insert(0, toks[k - 2].text.clone());
                    k -= 2;
                }
                let is_method = path.len() == 1 && k >= 1 && toks[k - 1].text == ".";
                // A bare name immediately after `fn` is a definition,
                // handled above; after `.` with a longer path is
                // impossible. Struct-literal and tuple-variant noise is
                // filtered later by the resolver (no matching def).
                out.fns[fi].calls.push(Call {
                    path,
                    is_method,
                    line: t.line,
                });
            }
        }
        i += 1;
    }

    // Unclosed frames (truncated input): close at last line.
    let last = toks.last().map(|t| t.line).unwrap_or(1);
    for f in stack {
        match f {
            Frame::Mod(m) => out.mods[m].end_line = last,
            Frame::Fn(f) => out.fns[f].end_line = last,
            _ => {}
        }
    }
    out
}

/// Parse an `impl`/`trait` header starting at `toks[i]`; return the self
/// type name and the index of the opening `{` (or wherever scanning
/// stopped). For `impl Tr for Ty` the type is `Ty`; generics and where
/// clauses are skipped.
fn parse_type_ctx_header(toks: &[Token], i: usize) -> (String, usize) {
    let mut j = i + 1;
    let mut angle = 0i64;
    let mut after_for: Option<String> = None;
    let mut first: Option<String> = None;
    let mut in_where = false;
    let mut take_next_for = false;
    while let Some(tk) = toks.get(j) {
        match tk.text.as_str() {
            "<" => angle += 1,
            ">" => angle = (angle - 1).max(0),
            "{" if angle == 0 => break,
            ";" if angle == 0 => break,
            "where" if angle == 0 => in_where = true,
            "for" if angle == 0 && !in_where => take_next_for = true,
            "&" | "mut" | "dyn" | "(" | ")" | "," | "'" => {}
            _ if tk.is_ident && angle == 0 && !in_where => {
                // Track the *last* segment of the current path: a path
                // like `lexer::Masked` visits both idents; keep the
                // later one by overwriting while `::` continues.
                if take_next_for {
                    after_for = Some(tk.text.clone());
                    if toks.get(j + 1).map(|t| t.text.as_str()) != Some("::") {
                        take_next_for = false;
                    }
                } else if after_for.is_none()
                    && (first.is_none()
                        || toks.get(j.wrapping_sub(1)).map(|t| t.text.as_str()) == Some("::"))
                {
                    first = Some(tk.text.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    (after_for.or(first).unwrap_or_default(), j)
}

/// Skip a balanced `open ... close` group starting at the `open` token.
fn skip_balanced(toks: &[Token], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0i64;
    let mut j = open_idx;
    while let Some(tk) = toks.get(j) {
        if tk.text == open {
            depth += 1;
        } else if tk.text == close {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Innermost enclosing function frame, if any.
fn innermost_fn(stack: &[Frame]) -> Option<usize> {
    stack.iter().rev().find_map(|f| match f {
        Frame::Fn(fi) => Some(*fi),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::mask;

    fn parse_src(src: &str) -> FileSyntax {
        parse(&mask(src))
    }

    #[test]
    fn extracts_fns_with_spans_and_calls() {
        let src = "\
pub fn outer(x: u32) -> u32 {
    helper(x);
    deep::path::call(x)
}

fn helper(x: u32) -> u32 {
    x + 1
}
";
        let fx = parse_src(src);
        assert_eq!(fx.fns.len(), 2);
        let outer = &fx.fns[0];
        assert_eq!(outer.name, "outer");
        assert!(outer.is_pub);
        assert_eq!((outer.start_line, outer.end_line), (1, 4));
        let calls: Vec<_> = outer.calls.iter().map(|c| c.name().to_string()).collect();
        assert_eq!(calls, vec!["helper", "call"]);
        assert_eq!(outer.calls[1].path, vec!["deep", "path", "call"]);
        assert!(!fx.fns[1].is_pub);
    }

    #[test]
    fn impl_and_trait_methods_get_self_type() {
        let src = "\
struct Log;
impl Log {
    pub fn record(&mut self, ev: u32) {
        self.push_inner(ev);
    }
}
impl std::fmt::Display for Log {
    fn fmt(&self, f: &mut Fmt) -> Result {
        write_out(f)
    }
}
trait Model {
    fn handle(&mut self) {
        default_body();
    }
    fn required(&self);
}
impl<T: Clone> Wrap<T> {
    fn get(&self) -> T { self.0.clone() }
}
";
        let fx = parse_src(src);
        let by_name = |n: &str| fx.fns.iter().find(|f| f.name == n).unwrap();
        assert_eq!(by_name("record").self_type.as_deref(), Some("Log"));
        assert_eq!(by_name("fmt").self_type.as_deref(), Some("Log"));
        assert_eq!(by_name("handle").self_type.as_deref(), Some("Model"));
        assert_eq!(by_name("get").self_type.as_deref(), Some("Wrap"));
        // `fn required(&self);` has no body — not a definition.
        assert!(fx.fns.iter().all(|f| f.name != "required"));
    }

    #[test]
    fn method_calls_and_macros() {
        let src = "\
fn f(log: &mut Log) {
    log.record(1);
    println!(\"not a call\");
    self.obs.observe(2.0);
    let v = vec![1];
    if cond(v) { }
}
";
        let fx = parse_src(src);
        let f = &fx.fns[0];
        let methods: Vec<_> = f
            .calls
            .iter()
            .filter(|c| c.is_method)
            .map(|c| c.name().to_string())
            .collect();
        assert_eq!(methods, vec!["record", "observe"]);
        // `println!` is a macro (the `!` breaks the ident-`(` pattern);
        // `if cond(v)` fires on `cond` but never on `if`.
        assert!(f.calls.iter().any(|c| c.name() == "cond"));
        assert!(f.calls.iter().all(|c| c.name() != "println"));
    }

    #[test]
    fn inline_mod_spans_and_fn_module_paths() {
        let src = "\
pub mod codes {
    pub fn lookup(c: u32) -> u32 { c }
}
fn top() { codes::lookup(1); }
";
        let fx = parse_src(src);
        assert_eq!(fx.mods.len(), 1);
        assert_eq!(fx.mods[0].name, "codes");
        assert_eq!((fx.mods[0].start_line, fx.mods[0].end_line), (1, 3));
        let lookup = fx.fns.iter().find(|f| f.name == "lookup").unwrap();
        assert_eq!(lookup.mods, vec!["codes"]);
        assert!(lookup.is_pub);
        let top = fx.fns.iter().find(|f| f.name == "top").unwrap();
        assert!(top.mods.is_empty());
        assert_eq!(top.calls[0].path, vec!["codes", "lookup"]);
    }

    #[test]
    fn nested_fns_and_closures_attribute_calls_to_the_right_fn() {
        let src = "\
fn outer() {
    let c = |x: u32| inner_call(x);
    c(1);
    fn nested() { nested_call(); }
    outer_call();
}
";
        let fx = parse_src(src);
        let outer = fx.fns.iter().find(|f| f.name == "outer").unwrap();
        let nested = fx.fns.iter().find(|f| f.name == "nested").unwrap();
        let outer_calls: Vec<_> = outer.calls.iter().map(|c| c.name().to_string()).collect();
        assert!(outer_calls.contains(&"inner_call".to_string()));
        assert!(outer_calls.contains(&"outer_call".to_string()));
        assert!(outer_calls.contains(&"c".to_string()));
        assert_eq!(nested.calls.len(), 1);
        assert_eq!(nested.calls[0].name(), "nested_call");
    }

    #[test]
    fn generic_fn_headers_and_where_clauses() {
        let src = "\
pub fn timed<T, F: FnOnce() -> T>(obs: &Obs, f: F) -> T
where
    F: Send,
{
    f()
}
";
        let fx = parse_src(src);
        assert_eq!(fx.fns.len(), 1);
        assert_eq!(fx.fns[0].name, "timed");
        assert_eq!((fx.fns[0].start_line, fx.fns[0].end_line), (1, 6));
        assert_eq!(fx.fns[0].calls.len(), 1, "{:?}", fx.fns[0].calls);
        assert_eq!(fx.fns[0].calls[0].name(), "f");
    }

    #[test]
    fn struct_and_match_braces_are_plain_blocks() {
        let src = "\
struct S { a: u32 }
enum E { A, B(u32) }
fn f(e: E) -> u32 {
    match e {
        E::A => zero(),
        E::B(x) => x,
    }
}
";
        let fx = parse_src(src);
        assert_eq!(fx.fns.len(), 1);
        let f = &fx.fns[0];
        assert_eq!((f.start_line, f.end_line), (3, 8));
        assert!(f.calls.iter().any(|c| c.name() == "zero"));
        // `E::B(x)` in a pattern looks like a call; it resolves to no
        // workspace fn later, which is the documented approximation.
    }
}
