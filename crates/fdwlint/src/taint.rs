//! Forward taint analysis and the call-graph rules (DESIGN.md §14).
//!
//! The determinism invariant the whole suite leans on — parallel ==
//! sequential, bitwise, all the way to serialized bytes — is only as
//! strong as the guarantee that no *nondeterminism source* can reach a
//! *serialized sink*. The per-file rules catch a source next to a sink;
//! this module catches the flow that crosses function boundaries:
//!
//! * `nondet-flow-to-sink` — a small forward taint lattice over the
//!   workspace call graph: per function, the bounded call-distance to
//!   the nearest source and to the nearest sink. The *join point* — the
//!   innermost function from which both are reachable — is the finding,
//!   reported with both call chains. `fdwlint::allow` at any hop on
//!   either chain downgrades the flow to a recorded [`AllowedFlow`]
//!   (which `scripts/sanitize.sh` cross-references against runtime
//!   artifact diffs).
//! * `dead-config-knob` — knobs parsed into `FdwConfig` whose field no
//!   code outside `config.rs` ever reads.
//! * `ulog-code-registry` — ULOG numeric event codes defined once, in
//!   `htcsim::condor_log::codes`, and spelled via the registry elsewhere.
//! * `unblessed-parallel-reachability` — parallel primitives reachable
//!   from the `fakequakes::par` / `htcsim::des` entry points without a
//!   blessing (the par.rs allowlist or a written justification).

use std::collections::BTreeMap;

use crate::graph::{FileInfo, Graph};
use crate::rules::{
    self, Allows, Finding, LANE_SUM_ALLOWLIST, PARALLELISM_ALLOWLIST, PAR_PATTERNS,
};
use crate::syntax;

/// Knobs of the workspace analysis.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptions {
    /// Maximum inter-procedural call depth the taint follows on each
    /// side of a flow (`--taint-depth`).
    pub taint_depth: usize,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        Self { taint_depth: 4 }
    }
}

/// A source→sink flow suppressed by an `fdwlint::allow` on some hop —
/// kept in the report so the dynamic determinism sweep can match a
/// differing artifact back to its justified static flow.
#[derive(Debug, Clone)]
pub struct AllowedFlow {
    /// The rule that would have fired (`nondet-flow-to-sink`).
    pub rule: &'static str,
    /// Join-point file.
    pub rel_path: String,
    /// Join-point definition line.
    pub line: usize,
    /// Sink category the flow ends in (`ulog`, `telemetry`,
    /// `npy-serializer`, `mseed-serializer`, `digest`, `bench-json`).
    pub sink_kind: String,
    /// The same chain a finding would have printed.
    pub chain: Vec<String>,
    /// The directive's written justification.
    pub reason: String,
}

/// The FdwConfig parser — scope of `dead-config-knob`.
const CONFIG_FILE: &str = "crates/core/src/config.rs";

/// The ULOG code registry's home — scope of `ulog-code-registry`.
const REGISTRY_FILE: &str = "crates/htcsim/src/condor_log.rs";

/// Crates that read/write ULOG text and must spell codes via the
/// registry.
const ULOG_CRATES: &[&str] = &["htcsim", "dagman"];

/// Files whose pub fns are the blessed parallel entry points.
const PARALLEL_ENTRY_FILES: &[&str] = &["crates/fakequakes/src/par.rs", "crates/htcsim/src/des.rs"];

/// Unreachable distance marker (room for +1 without overflow).
const INF: usize = usize::MAX / 2;

/// One entry of the serialized-sink table. `self_type` of `Some(T)`
/// requires the method to live in `impl T`; `None` accepts any def of
/// that name in the crate.
struct SinkSpec {
    kind: &'static str,
    krate: &'static str,
    name: &'static str,
    self_type: Option<&'static str>,
}

/// Every function whose output bytes land in an artifact the suite
/// byte-compares: ULOG writers, telemetry/trace exporters and
/// recorders, `.npy`/`.mseed` serializers, digests, bench JSON.
const SINKS: &[SinkSpec] = &[
    SinkSpec {
        kind: "ulog",
        krate: "htcsim",
        name: "record",
        self_type: Some("UserLog"),
    },
    SinkSpec {
        kind: "ulog",
        krate: "htcsim",
        name: "to_condor_log",
        self_type: None,
    },
    SinkSpec {
        kind: "digest",
        krate: "htcsim",
        name: "digest_fold",
        self_type: None,
    },
    SinkSpec {
        kind: "digest",
        krate: "htcsim",
        name: "fnv1a",
        self_type: None,
    },
    SinkSpec {
        kind: "digest",
        krate: "fdw-core",
        name: "fnv_u64",
        self_type: None,
    },
    SinkSpec {
        kind: "digest",
        krate: "fakequakes",
        name: "fnv1a_f64",
        self_type: None,
    },
    SinkSpec {
        kind: "digest",
        krate: "fakequakes",
        name: "crc32",
        self_type: None,
    },
    SinkSpec {
        kind: "npy-serializer",
        krate: "fakequakes",
        name: "write_npy",
        self_type: None,
    },
    SinkSpec {
        kind: "mseed-serializer",
        krate: "fakequakes",
        name: "push",
        self_type: Some("MseedFile"),
    },
    SinkSpec {
        kind: "mseed-serializer",
        krate: "fakequakes",
        name: "write",
        self_type: Some("MseedFile"),
    },
    SinkSpec {
        kind: "mseed-serializer",
        krate: "fakequakes",
        name: "to_bytes",
        self_type: Some("MseedFile"),
    },
    SinkSpec {
        kind: "telemetry",
        krate: "fdw-obs",
        name: "span_us",
        self_type: None,
    },
    SinkSpec {
        kind: "telemetry",
        krate: "fdw-obs",
        name: "observe",
        self_type: None,
    },
    SinkSpec {
        kind: "telemetry",
        krate: "fdw-obs",
        name: "inc",
        self_type: None,
    },
    SinkSpec {
        kind: "telemetry",
        krate: "fdw-obs",
        name: "gauge",
        self_type: None,
    },
    SinkSpec {
        kind: "telemetry",
        krate: "fdw-obs",
        name: "instant",
        self_type: None,
    },
    SinkSpec {
        kind: "telemetry",
        krate: "fdw-obs",
        name: "complete",
        self_type: None,
    },
    SinkSpec {
        kind: "telemetry",
        krate: "fdw-obs",
        name: "export",
        self_type: None,
    },
    SinkSpec {
        kind: "telemetry",
        krate: "fdw-obs",
        name: "render",
        self_type: None,
    },
    SinkSpec {
        kind: "telemetry",
        krate: "fdw-obs",
        name: "to_json",
        self_type: None,
    },
    SinkSpec {
        kind: "bench-json",
        krate: "fdw-bench",
        name: "write_obs_artifact",
        self_type: None,
    },
];

/// Sink category of a graph node, if it is one.
fn sink_kind_of(graph: &Graph, node: usize) -> Option<&'static str> {
    let n = &graph.fns[node];
    let krate = &graph.files[n.file].crate_name;
    SINKS
        .iter()
        .find(|s| {
            s.krate == krate
                && s.name == n.name
                && s.self_type
                    .is_none_or(|ty| n.self_type.as_deref() == Some(ty))
        })
        .map(|s| s.kind)
}

/// Nondeterminism sources in one file's non-test code, as
/// `(line, label)`. A per-file allow for the matching token rule counts
/// as a blessing here too — its rationale already covers the
/// nondeterminism.
fn find_sources(file: &FileInfo, allows: &Allows) -> Vec<(usize, &'static str)> {
    let m = &file.masked;
    let mut out = Vec::new();
    let hash_names = rules::collect_hash_names(&m.code, &m.in_test);
    for (idx, code) in m.code.iter().enumerate() {
        if m.in_test[idx] {
            continue;
        }
        let line = idx + 1;
        if file.crate_name != "fdw-bench"
            && (code.contains("Instant::now") || code.contains("SystemTime::now"))
            && !allows.allowed("wall-clock-in-sim", line)
        {
            out.push((line, "wall clock (Instant::now/SystemTime::now)"));
        }
        if [
            "thread_rng",
            "rand::random",
            "from_entropy",
            "OsRng",
            "getrandom",
        ]
        .iter()
        .any(|p| code.contains(p))
            && !allows.allowed("unseeded-randomness", line)
        {
            out.push((line, "unseeded RNG"));
        }
        if rules::iterates_hash(code, &hash_names)
            && !rules::order_insensitive(&m.code, idx)
            && !allows.allowed("unordered-hash-iteration", line)
        {
            out.push((line, "HashMap/HashSet iteration order"));
        }
        if file.crate_name == "fakequakes"
            && !LANE_SUM_ALLOWLIST.contains(&file.rel_path.as_str())
            && code.contains(".sum::<f64>()")
            && !allows.allowed("naive-float-accum", line)
        {
            out.push((line, "non-canonical float fold (.sum::<f64>())"));
        }
    }
    out
}

/// Run every graph rule over the workspace.
pub fn analyze(graph: &Graph, opts: &AnalysisOptions) -> (Vec<Finding>, Vec<AllowedFlow>) {
    let allows: Vec<Allows> = graph
        .files
        .iter()
        .map(|f| rules::parse_allows(&f.rel_path, &f.masked.comments))
        .collect();
    let mut findings = Vec::new();
    let mut allowed_flows = Vec::new();
    nondet_flow_to_sink(graph, opts, &allows, &mut findings, &mut allowed_flows);
    dead_config_knob(graph, &allows, &mut findings);
    ulog_code_registry(graph, &allows, &mut findings);
    unblessed_parallel_reachability(graph, &allows, &mut findings);
    (findings, allowed_flows)
}

/// The finding constructor for graph rules: located at a node's
/// definition line.
fn finding_at(
    graph: &Graph,
    rule: &'static str,
    file: usize,
    line: usize,
    chain: Vec<String>,
) -> Finding {
    let f = &graph.files[file];
    Finding {
        rule,
        crate_name: f.crate_name.clone(),
        rel_path: f.rel_path.clone(),
        line,
        excerpt: f
            .masked
            .code
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default(),
        chain,
    }
}

/// `a -> b -> c` rendering of a node path, with file:line per hop.
fn render_path(graph: &Graph, path: &[usize]) -> String {
    path.iter()
        .map(|&n| graph.label(n))
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Walk from `from` toward distance zero, following callees whose
/// distance strictly decreases. Deterministic: edges are in build order.
fn walk_to_zero(graph: &Graph, from: usize, dist: &[usize]) -> Vec<usize> {
    let mut path = vec![from];
    let mut cur = from;
    while dist[cur] > 0 {
        let Some(next) = graph.edges[cur]
            .iter()
            .map(|e| e.callee)
            .find(|&g| dist[g] == dist[cur] - 1)
        else {
            break; // can't happen for a relaxed distance; stay safe
        };
        path.push(next);
        cur = next;
    }
    path
}

fn nondet_flow_to_sink(
    graph: &Graph,
    opts: &AnalysisOptions,
    allows: &[Allows],
    findings: &mut Vec<Finding>,
    allowed_flows: &mut Vec<AllowedFlow>,
) {
    const RULE: &str = "nondet-flow-to-sink";
    let n = graph.fns.len();
    let d = opts.taint_depth;

    // Direct sources, attributed to the innermost containing fn.
    let mut direct: Vec<Option<(usize, &'static str)>> = vec![None; n];
    for (fi, file) in graph.files.iter().enumerate() {
        if file.is_test_path {
            continue;
        }
        for (line, label) in find_sources(file, &allows[fi]) {
            if let Some(f) = graph.fn_at(fi, line) {
                if direct[f].is_none() {
                    direct[f] = Some((line, label));
                }
            }
        }
    }

    // Bounded forward distances: to the nearest source-holding fn and to
    // the nearest sink fn. `d` relaxation rounds bound the depth.
    let mut src = vec![INF; n];
    let mut sink = vec![INF; n];
    for f in 0..n {
        if direct[f].is_some() {
            src[f] = 0;
        }
        if sink_kind_of(graph, f).is_some() {
            sink[f] = 0;
        }
    }
    for _ in 0..d {
        for caller in 0..n {
            for e in &graph.edges[caller] {
                src[caller] = src[caller].min(src[e.callee] + 1);
                sink[caller] = sink[caller].min(sink[e.callee] + 1);
            }
        }
    }

    for f in 0..n {
        if src[f] > d || sink[f] > d {
            continue;
        }
        let src_direct = src[f] == 0;
        let sink_direct = sink[f] == 0;
        if !src_direct && !sink_direct {
            // If one callee already joins both sides, the join point is
            // deeper — report there, not at every transitive caller.
            let covered = graph.edges[f]
                .iter()
                .any(|e| src[e.callee] < d && sink[e.callee] < d);
            if covered {
                continue;
            }
        }

        let src_path = walk_to_zero(graph, f, &src);
        let sink_path = walk_to_zero(graph, f, &sink);
        let src_holder = *src_path.last().unwrap_or(&f);
        let sink_node = *sink_path.last().unwrap_or(&f);
        let (sline, slabel) = direct[src_holder].unwrap_or((graph.fns[src_holder].start_line, "?"));
        let kind = sink_kind_of(graph, sink_node).unwrap_or("?");
        let chain = vec![
            format!(
                "source path: {} [{} at {}:{}]",
                render_path(graph, &src_path),
                slabel,
                graph.files[graph.fns[src_holder].file].rel_path,
                sline
            ),
            format!(
                "sink path: {} [sink: {}]",
                render_path(graph, &sink_path),
                kind
            ),
        ];

        // Allow at any hop of either chain downgrades the flow.
        let mut reason = None;
        for &hop in src_path.iter().chain(sink_path.iter()) {
            let node = &graph.fns[hop];
            if let Some(r) = allows[node.file].reason_in_span(
                RULE,
                node.start_line.saturating_sub(1),
                node.end_line,
            ) {
                reason = Some(r);
                break;
            }
        }
        let node = &graph.fns[f];
        match reason {
            Some(reason) => allowed_flows.push(AllowedFlow {
                rule: RULE,
                rel_path: graph.files[node.file].rel_path.clone(),
                line: node.start_line,
                sink_kind: kind.to_string(),
                chain,
                reason,
            }),
            None => findings.push(finding_at(graph, RULE, node.file, node.start_line, chain)),
        }
    }
}

/// Extract `"<key>" => cfg.<field> = ...` knob bindings from the config
/// parser and check each bound field is read somewhere outside the
/// config module.
fn dead_config_knob(graph: &Graph, allows: &[Allows], findings: &mut Vec<Finding>) {
    const RULE: &str = "dead-config-knob";
    let Some(ci) = graph.files.iter().position(|f| f.rel_path == CONFIG_FILE) else {
        return;
    };
    let m = &graph.files[ci].masked;

    let valid_key =
        |s: &str| !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    let mut knobs: Vec<(String, String, usize)> = Vec::new(); // (key, field, line)
    let mut current_key: Option<String> = None;
    for (idx, code) in m.code.iter().enumerate() {
        if m.in_test[idx] {
            continue;
        }
        if code.contains("=>") {
            current_key = m
                .strings
                .get(idx)
                .and_then(|v| v.first())
                .filter(|s| valid_key(s))
                .cloned();
        }
        // `cfg.<path> = <expr>` (not `==`): a knob assignment.
        let Some(pos) = code.find("cfg.") else {
            continue;
        };
        let after = &code[pos + 4..];
        let field: String = after
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '.')
            .collect();
        let rest = after[field.len()..].trim_start();
        let is_assign = rest.starts_with('=') && !rest.starts_with("==");
        if is_assign && !field.is_empty() {
            if let Some(key) = &current_key {
                knobs.push((key.clone(), field.clone(), idx + 1));
            }
        }
    }

    // The name a read would use: the last alphabetic segment of the
    // field path (`fault.pool.outage_pool` → `outage_pool`,
    // `mw_range.0` → `mw_range`).
    let read_name = |field: &str| -> Option<String> {
        field
            .split('.')
            .rfind(|s| s.chars().next().is_some_and(|c| c.is_ascii_alphabetic()))
            .map(str::to_string)
    };

    let mut read_fields: Vec<String> = Vec::new();
    for (_, field, _) in &knobs {
        if let Some(rn) = read_name(field) {
            if !read_fields.contains(&rn) {
                read_fields.push(rn);
            }
        }
    }
    let mut seen_read: BTreeMap<&str, bool> =
        read_fields.iter().map(|f| (f.as_str(), false)).collect();
    for file in &graph.files {
        if file.is_test_path || file.rel_path == CONFIG_FILE {
            continue;
        }
        for (idx, code) in file.masked.code.iter().enumerate() {
            if file.masked.in_test[idx] {
                continue;
            }
            for (fname, seen) in seen_read.iter_mut() {
                if *seen {
                    continue;
                }
                let pat = format!(".{fname}");
                let mut from = 0usize;
                while let Some(p) = code[from..].find(&pat) {
                    let abs = from + p;
                    let after = code[abs + pat.len()..].chars().next();
                    if !after.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                        *seen = true;
                        break;
                    }
                    from = abs + pat.len();
                }
            }
        }
    }

    for (key, field, line) in &knobs {
        let Some(rn) = read_name(field) else { continue };
        if seen_read.get(rn.as_str()).copied().unwrap_or(true) {
            continue;
        }
        if allows[ci].allowed(RULE, *line) {
            continue;
        }
        let chain = vec![format!(
            "knob '{key}' assigns cfg.{field}; no read of `.{rn}` outside {CONFIG_FILE}"
        )];
        findings.push(finding_at(graph, RULE, ci, *line, chain));
    }
}

/// Exact-three-digit string literal?
fn is_ulog_code(s: &str) -> bool {
    s.len() == 3 && s.chars().all(|c| c.is_ascii_digit())
}

fn ulog_code_registry(graph: &Graph, allows: &[Allows], findings: &mut Vec<Finding>) {
    const RULE: &str = "ulog-code-registry";
    let reg_idx = graph.files.iter().position(|f| f.rel_path == REGISTRY_FILE);
    let mut reg_codes: BTreeMap<String, usize> = BTreeMap::new();
    let mut reg_span: Option<(usize, usize, usize)> = None; // (file, lo, hi)

    if let Some(ri) = reg_idx {
        let file = &graph.files[ri];
        let fx = syntax::parse(&file.masked);
        match fx.mods.iter().find(|msp| msp.name == "codes") {
            Some(msp) => {
                reg_span = Some((ri, msp.start_line, msp.end_line));
                for idx in msp.start_line - 1..msp.end_line.min(file.masked.code.len()) {
                    for lit in file.masked.strings.get(idx).into_iter().flatten() {
                        if !is_ulog_code(lit) {
                            continue;
                        }
                        let line = idx + 1;
                        if let Some(first) = reg_codes.get(lit) {
                            if !allows[ri].allowed(RULE, line) {
                                let chain = vec![format!(
                                    "code \"{lit}\" already defined at {REGISTRY_FILE}:{first}"
                                )];
                                findings.push(finding_at(graph, RULE, ri, line, chain));
                            }
                        } else {
                            reg_codes.insert(lit.clone(), line);
                        }
                    }
                }
            }
            None => {
                if !allows[ri].allowed(RULE, 1) {
                    let chain = vec![format!("{REGISTRY_FILE} has no `mod codes` registry block")];
                    findings.push(finding_at(graph, RULE, ri, 1, chain));
                }
                return;
            }
        }
    }

    for (fi, file) in graph.files.iter().enumerate() {
        if file.is_test_path || !ULOG_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for (idx, lits) in file.masked.strings.iter().enumerate() {
            if file.masked.in_test[idx] {
                continue;
            }
            let line = idx + 1;
            if let Some((ri, lo, hi)) = reg_span {
                if ri == fi && line >= lo && line <= hi {
                    continue;
                }
            }
            for lit in lits {
                let is_registered = reg_codes.contains_key(lit);
                // With a registry present, only its codes are ULOG
                // codes; with none, any bare 3-digit literal in a ULOG
                // crate is suspect.
                if !is_ulog_code(lit) || (reg_idx.is_some() && !is_registered) {
                    continue;
                }
                if allows[fi].allowed(RULE, line) {
                    continue;
                }
                let chain = vec![format!(
                    "ULOG code \"{lit}\" spelled as a literal; reference htcsim::condor_log::codes"
                )];
                findings.push(finding_at(graph, RULE, fi, line, chain));
            }
        }
    }
}

fn unblessed_parallel_reachability(graph: &Graph, allows: &[Allows], findings: &mut Vec<Finding>) {
    const RULE: &str = "unblessed-parallel-reachability";
    // Entry points: pub fns of the blessed engine files.
    let mut queue: Vec<usize> = Vec::new();
    let mut parent: Vec<Option<usize>> = vec![None; graph.fns.len()];
    let mut reached = vec![false; graph.fns.len()];
    for (i, n) in graph.fns.iter().enumerate() {
        if n.is_pub && PARALLEL_ENTRY_FILES.contains(&graph.files[n.file].rel_path.as_str()) {
            reached[i] = true;
            queue.push(i);
        }
    }
    let mut qi = 0;
    while qi < queue.len() {
        let cur = queue[qi];
        qi += 1;
        for e in &graph.edges[cur] {
            if !reached[e.callee] {
                reached[e.callee] = true;
                parent[e.callee] = Some(cur);
                queue.push(e.callee);
            }
        }
    }

    for (fi, file) in graph.files.iter().enumerate() {
        if file.is_test_path || PARALLELISM_ALLOWLIST.contains(&file.rel_path.as_str()) {
            continue;
        }
        for (idx, code) in file.masked.code.iter().enumerate() {
            if file.masked.in_test[idx] {
                continue;
            }
            let line = idx + 1;
            if !PAR_PATTERNS.iter().any(|p| code.contains(p)) {
                continue;
            }
            // A written raw-parallelism blessing covers reachability too.
            if allows[fi].allowed("raw-parallelism", line) || allows[fi].allowed(RULE, line) {
                continue;
            }
            let Some(holder) = graph.fn_at(fi, line) else {
                continue;
            };
            if !reached[holder] {
                continue;
            }
            // Reconstruct entry -> ... -> holder.
            let mut path = vec![holder];
            let mut cur = holder;
            while let Some(p) = parent[cur] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            let chain = vec![format!(
                "reachable from entry: {}",
                render_path(graph, &path)
            )];
            findings.push(finding_at(graph, RULE, fi, line, chain));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build;
    use crate::rules::SourceFile;

    fn src(crate_name: &str, rel_path: &str, text: &str) -> SourceFile {
        SourceFile {
            crate_name: crate_name.into(),
            rel_path: rel_path.into(),
            text: text.into(),
        }
    }

    fn run(files: &[SourceFile], depth: usize) -> (Vec<Finding>, Vec<AllowedFlow>) {
        let g = build(files);
        analyze(&g, &AnalysisOptions { taint_depth: depth })
    }

    // A minimal two-crate workspace where the wall clock flows through a
    // helper into a telemetry sink: source and sink two calls apart.
    fn flow_fixture(allow_on_mid: bool) -> Vec<SourceFile> {
        let mid = if allow_on_mid {
            "pub fn mid(obs: &Obs) -> u64 {\n\
             \x20   // fdwlint::allow(nondet-flow-to-sink): host timing is the payload here\n\
             \x20   let us = read_clock();\n\
             \x20   us\n\
             }\n"
        } else {
            "pub fn mid(obs: &Obs) -> u64 {\n\
             \x20   let us = read_clock();\n\
             \x20   us\n\
             }\n"
        };
        vec![
            src(
                "fdw-core",
                "crates/core/src/pipeline.rs",
                &format!(
                    "pub fn drive(obs: &Obs) {{\n\
                     \x20   let us = mid(obs);\n\
                     \x20   obs.observe(us as f64);\n\
                     }}\n{mid}\
                     fn read_clock() -> u64 {{\n\
                     \x20   let t = std::time::Instant::now();\n\
                     \x20   0\n\
                     }}\n"
                ),
            ),
            src(
                "fdw-obs",
                "crates/obs/src/lib.rs",
                "pub struct Obs;\nimpl Obs {\n    pub fn observe(&self, v: f64) { let _ = v; }\n}\n",
            ),
        ]
    }

    #[test]
    fn interprocedural_flow_two_calls_apart_is_flagged_with_chain() {
        let (findings, allowed) = run(&flow_fixture(false), 4);
        let flows: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "nondet-flow-to-sink")
            .collect();
        assert_eq!(flows.len(), 1, "{findings:?}");
        let f = flows[0];
        // The join point is `drive`: source two hops down (mid ->
        // read_clock), sink one hop (observe).
        assert_eq!(f.rel_path, "crates/core/src/pipeline.rs");
        assert_eq!(f.line, 1);
        let chain = f.chain.join("\n");
        assert!(chain.contains("drive"), "{chain}");
        assert!(chain.contains("mid"), "{chain}");
        assert!(chain.contains("read_clock"), "{chain}");
        assert!(chain.contains("Instant::now"), "{chain}");
        assert!(chain.contains("sink: telemetry"), "{chain}");
        assert!(allowed.is_empty());
    }

    #[test]
    fn allow_on_intermediate_hop_downgrades_to_allowed_flow() {
        let (findings, allowed) = run(&flow_fixture(true), 4);
        assert!(
            findings.iter().all(|f| f.rule != "nondet-flow-to-sink"),
            "{findings:?}"
        );
        assert_eq!(allowed.len(), 1);
        assert_eq!(allowed[0].sink_kind, "telemetry");
        assert_eq!(allowed[0].reason, "host timing is the payload here");
        assert!(allowed[0].chain.join("\n").contains("mid"));
    }

    #[test]
    fn taint_depth_bounds_the_search() {
        // source is 2 hops from the join; depth 1 cannot see it.
        let (findings, _) = run(&flow_fixture(false), 1);
        assert!(
            findings.iter().all(|f| f.rule != "nondet-flow-to-sink"),
            "{findings:?}"
        );
    }

    #[test]
    fn join_point_is_the_innermost_function() {
        // outer -> drive -> {mid -> clock, observe}: drive joins, outer
        // must not duplicate the finding.
        let mut files = flow_fixture(false);
        files.push(src(
            "fdw-core",
            "crates/core/src/outer.rs",
            "pub fn outer(obs: &Obs) { drive(obs); }\n",
        ));
        let (findings, _) = run(&files, 4);
        let flows: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "nondet-flow-to-sink")
            .collect();
        assert_eq!(flows.len(), 1, "{flows:?}");
        assert_eq!(flows[0].rel_path, "crates/core/src/pipeline.rs");
    }

    #[test]
    fn direct_source_and_sink_in_one_fn() {
        let files = vec![src(
            "htcsim",
            "crates/htcsim/src/x.rs",
            "pub fn digest_fold(h: u64, x: u64) -> u64 { h ^ x }\n\
                 pub fn stamp(m: &HashMap<u64, u64>) -> u64 {\n\
                 \x20   let mut h = 0;\n\
                 \x20   for (k, v) in m.iter() {\n\
                 \x20       h = digest_fold(h, k ^ v);\n\
                 \x20   }\n\
                 \x20   h\n\
                 }\n",
        )];
        // `stamp` iterates a HashMap (source, dist 0) and calls
        // digest_fold (sink, dist 1).
        let (findings, _) = run(&files, 4);
        let flows: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "nondet-flow-to-sink")
            .collect();
        assert_eq!(flows.len(), 1, "{findings:?}");
        assert!(flows[0].chain.join("\n").contains("iteration order"));
    }

    #[test]
    fn dead_config_knob_fires_and_read_silences() {
        let config = "impl FdwConfig {\n\
                      \x20   pub fn parse(text: &str) -> Result<Self, String> {\n\
                      \x20       let mut cfg = FdwConfig::default();\n\
                      \x20       match key {\n\
                      \x20           \"live_knob\" => cfg.live_knob = value.parse().map_err(|_| bad(\"live_knob\"))?,\n\
                      \x20           \"ghost_knob\" => cfg.ghost_knob = value.parse().map_err(|_| bad(\"ghost_knob\"))?,\n\
                      \x20       }\n\
                      \x20       Ok(cfg)\n\
                      \x20   }\n\
                      }\n";
        let reader = "pub fn run(cfg: &FdwConfig) -> u32 { cfg.live_knob }\n";
        let (findings, _) = run(
            &[
                src("fdw-core", "crates/core/src/config.rs", config),
                src("fdw-core", "crates/core/src/runner.rs", reader),
            ],
            4,
        );
        let dead: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "dead-config-knob")
            .collect();
        assert_eq!(dead.len(), 1, "{findings:?}");
        assert_eq!(dead[0].line, 6);
        assert!(dead[0].chain[0].contains("ghost_knob"));
    }

    #[test]
    fn ulog_registry_duplicates_and_stray_literals() {
        let registry = "pub mod codes {\n\
                        \x20   pub const SUBMITTED: &str = \"000\";\n\
                        \x20   pub const TERMINATED: &str = \"005\";\n\
                        \x20   pub const DUP: &str = \"005\";\n\
                        }\n";
        let stray = "pub fn grep_terminations(text: &str) -> usize {\n\
                     \x20   text.matches(\"005\").count()\n\
                     }\n";
        let (findings, _) = run(
            &[
                src("htcsim", "crates/htcsim/src/condor_log.rs", registry),
                src("dagman", "crates/dagman/src/monitor.rs", stray),
            ],
            4,
        );
        let hits: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "ulog-code-registry")
            .collect();
        assert_eq!(hits.len(), 2, "{findings:?}");
        assert!(hits.iter().any(
            |f| f.rel_path.ends_with("condor_log.rs") && f.chain[0].contains("already defined")
        ));
        assert!(hits
            .iter()
            .any(|f| f.rel_path.ends_with("monitor.rs") && f.chain[0].contains("\"005\"")));
        // Non-code literals ("100" not in the registry) never fire.
        assert!(findings
            .iter()
            .all(|f| f.rule != "ulog-code-registry" || !f.chain[0].contains("100")));
    }

    #[test]
    fn unblessed_parallel_reachability_follows_the_graph() {
        let des = "pub fn run_epochs() { drain(); }\nfn drain() { helper_split(); }\n";
        let helper = "pub fn helper_split() {\n    rayon::join(|| 1, || 2);\n}\n";
        let (findings, _) = run(
            &[
                src("htcsim", "crates/htcsim/src/des.rs", des),
                src("htcsim", "crates/htcsim/src/split.rs", helper),
            ],
            4,
        );
        let hits: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "unblessed-parallel-reachability")
            .collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert_eq!(hits[0].rel_path, "crates/htcsim/src/split.rs");
        let chain = &hits[0].chain[0];
        assert!(chain.contains("run_epochs"), "{chain}");
        assert!(chain.contains("helper_split"), "{chain}");

        // The same site with a raw-parallelism blessing is clean.
        let blessed = "pub fn helper_split() {\n\
                       \x20   // fdwlint::allow(raw-parallelism): chunk-aligned, proven bitwise\n\
                       \x20   rayon::join(|| 1, || 2);\n\
                       }\n";
        let (findings, _) = run(
            &[
                src("htcsim", "crates/htcsim/src/des.rs", des),
                src("htcsim", "crates/htcsim/src/split.rs", blessed),
            ],
            4,
        );
        assert!(
            findings
                .iter()
                .all(|f| f.rule != "unblessed-parallel-reachability"),
            "{findings:?}"
        );
    }
}
