//! End-to-end CLI tests against a throwaway mini-workspace: exit codes,
//! `--write-baseline`'s one-way ratchet, the `--force` override with its
//! printed loosening diff, and the introspection flags.

use std::path::PathBuf;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_fdwlint");

/// A scratch workspace shaped the way `find_root` expects
/// (`Cargo.toml` + `crates/`), removed on drop.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("fdwlint-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates/eew/src")).unwrap();
        std::fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
        Self { root }
    }

    fn write_fx(&self, n_unwraps: usize) {
        let mut text = String::new();
        for i in 0..n_unwraps {
            text.push_str(&format!(
                "fn f{i}(x: Option<u32>) -> u32 {{ x.unwrap() }}\n"
            ));
        }
        if text.is_empty() {
            text.push_str("fn ok() {}\n");
        }
        std::fs::write(self.root.join("crates/eew/src/fx.rs"), text).unwrap();
    }

    fn run(&self, args: &[&str]) -> Output {
        Command::new(BIN)
            .arg("--root")
            .arg(&self.root)
            .args(args)
            .output()
            .expect("fdwlint binary runs")
    }

    fn baseline(&self) -> BaselineFile {
        BaselineFile(self.root.join("fdwlint.baseline.json"))
    }
}

struct BaselineFile(PathBuf);
impl BaselineFile {
    fn text(&self) -> String {
        std::fs::read_to_string(&self.0).unwrap()
    }
    fn exists(&self) -> bool {
        self.0.is_file()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn ratchet_lifecycle_bootstrap_refuse_force_tighten() {
    let ws = Scratch::new("ratchet");
    ws.write_fx(2);

    // Without a baseline the scan is over the (empty) budget: exit 1.
    assert_eq!(code(&ws.run(&[])), 1);

    // Bootstrap freezes the current counts.
    let out = ws.run(&["--write-baseline"]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    assert!(ws.baseline().exists());
    assert!(ws.baseline().text().contains("\"unwrap-in-lib/eew\": 2"));
    assert_eq!(code(&ws.run(&[])), 0, "status quo is clean");

    // Growth: scan fails, and --write-baseline refuses to loosen.
    ws.write_fx(3);
    assert_eq!(code(&ws.run(&[])), 1);
    let out = ws.run(&["--write-baseline"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("refusing to loosen"),
        "{}",
        stderr(&out)
    );
    assert!(
        ws.baseline().text().contains("\"unwrap-in-lib/eew\": 2"),
        "refusal must not touch the file"
    );

    // --force overrides and prints exactly what was loosened.
    let out = ws.run(&["--write-baseline", "--force"]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    assert!(
        stdout(&out).contains("unwrap-in-lib/eew: 2 -> 3"),
        "{}",
        stdout(&out)
    );
    assert!(ws.baseline().text().contains("\"unwrap-in-lib/eew\": 3"));

    // Improvement tightens without --force, and the legacy alias works.
    ws.write_fx(1);
    let out = ws.run(&["--update-baseline"]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    assert!(ws.baseline().text().contains("\"unwrap-in-lib/eew\": 1"));
}

#[test]
fn malformed_directives_block_baseline_writes_even_with_force() {
    let ws = Scratch::new("directives");
    std::fs::write(
        ws.root.join("crates/eew/src/fx.rs"),
        "// fdwlint::allow(unwrap-in-lib)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .unwrap();
    let out = ws.run(&["--write-baseline", "--force"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("malformed allow directives"),
        "{}",
        stderr(&out)
    );
    assert!(!ws.baseline().exists());
}

#[test]
fn json_report_is_valid_and_machine_readable() {
    let ws = Scratch::new("json");
    ws.write_fx(1);
    let out = ws.run(&["--json"]);
    assert_eq!(code(&out), 1, "violations still exit 1 under --json");
    let doc = stdout(&out);
    assert!(fdw_obs::json::validate(&doc).is_ok(), "{doc}");
    assert!(doc.contains("\"status\": \"violations\""));
    assert!(doc.contains("\"graph\""));
    assert!(doc.contains("\"allowed_flows\""));
}

#[test]
fn introspection_flags_and_exit_code_2() {
    let ws = Scratch::new("introspect");
    ws.write_fx(0);

    let out = ws.run(&["--list-rules"]);
    assert_eq!(code(&out), 0);
    for rule in [
        "nondet-flow-to-sink",
        "dead-config-knob",
        "ulog-code-registry",
        "unblessed-parallel-reachability",
    ] {
        assert!(stdout(&out).contains(rule), "{rule} missing from list");
    }

    let out = ws.run(&["--explain", "nondet-flow-to-sink"]);
    assert_eq!(code(&out), 0);
    let text = stdout(&out);
    assert!(text.contains("invariant:"), "{text}");
    assert!(text.contains("example"), "{text}");
    assert!(text.contains("obs.observe"), "{text}");

    assert_eq!(code(&ws.run(&["--explain", "no-such-rule"])), 2);
    assert_eq!(code(&ws.run(&["--no-such-flag"])), 2);
    assert_eq!(code(&ws.run(&["--taint-depth", "wat"])), 2);
}
