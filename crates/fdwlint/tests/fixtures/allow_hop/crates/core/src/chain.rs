//! Fixture: the depth-2 flow of `taint_depth`, but with an
//! `fdwlint::allow` on the *intermediate* hop — neither the join point
//! nor the source leaf. The flow must downgrade to an AllowedFlow.

pub fn join_depth2(obs: &Obs) {
    let x = mid2();
    obs.observe("d2", x);
}

// fdwlint::allow(nondet-flow-to-sink): the measured wall time is the telemetry payload by design in this fixture
fn mid2() -> f64 {
    clock_leaf2()
}

fn clock_leaf2() -> f64 {
    let _t = std::time::Instant::now();
    0.0
}
