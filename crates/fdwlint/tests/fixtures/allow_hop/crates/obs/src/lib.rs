//! Fixture sink crate: a minimal `Obs` with the telemetry sink method.

pub struct Obs;

impl Obs {
    pub fn observe(&self, name: &str, v: f64) {
        let _ = (name, v);
    }
}
