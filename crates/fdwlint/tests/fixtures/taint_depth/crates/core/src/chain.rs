//! Fixture: three independent wall-clock -> telemetry flows whose source
//! sits 1, 2 and 3 calls below the join point. `--taint-depth N` must
//! flag exactly the chains whose longest side fits in N hops.

pub fn join_depth1(obs: &Obs) {
    let x = clock_leaf1();
    obs.observe("d1", x);
}

fn clock_leaf1() -> f64 {
    let _t = std::time::Instant::now();
    0.0
}

pub fn join_depth2(obs: &Obs) {
    let x = mid2();
    obs.observe("d2", x);
}

fn mid2() -> f64 {
    clock_leaf2()
}

fn clock_leaf2() -> f64 {
    let _t = std::time::Instant::now();
    0.0
}

pub fn join_depth3(obs: &Obs) {
    let x = mid3a();
    obs.observe("d3", x);
}

fn mid3a() -> f64 {
    mid3b()
}

fn mid3b() -> f64 {
    clock_leaf3()
}

fn clock_leaf3() -> f64 {
    let _t = std::time::Instant::now();
    0.0
}
