//! Inter-procedural taint fixtures, loaded from the on-disk mini
//! workspaces under `tests/fixtures/`: flows whose source sits 1, 2 and
//! 3 calls below the join point, the `--taint-depth` bound, and an
//! `fdwlint::allow` on an intermediate hop downgrading a flow to a
//! recorded AllowedFlow.

use std::path::Path;

use fdwlint::{scan_workspace, AnalysisOptions, ScanOutcome, SourceFile};

/// Load `tests/fixtures/<name>/` as an in-memory workspace: each
/// `crates/<dir>/src/**.rs` becomes a SourceFile with the same
/// crate-name mapping the real scanner uses.
fn load_fixture(name: &str) -> Vec<SourceFile> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .join("crates");
    let crate_name = |dir: &str| match dir {
        "core" => "fdw-core".to_string(),
        "obs" => "fdw-obs".to_string(),
        "bench" => "fdw-bench".to_string(),
        other => other.to_string(),
    };
    let mut files = Vec::new();
    let mut members: Vec<_> = std::fs::read_dir(&root)
        .expect("fixture exists")
        .map(|e| e.expect("readable fixture entry").path())
        .collect();
    members.sort();
    for member in members {
        let dir = member
            .file_name()
            .expect("named")
            .to_string_lossy()
            .to_string();
        let src = member.join("src");
        let mut entries: Vec<_> = std::fs::read_dir(&src)
            .expect("fixture crate has src/")
            .map(|e| e.expect("readable source entry").path())
            .collect();
        entries.sort();
        for path in entries {
            let rel = path
                .file_name()
                .expect("named")
                .to_string_lossy()
                .to_string();
            files.push(SourceFile {
                crate_name: crate_name(&dir),
                rel_path: format!("crates/{dir}/src/{rel}"),
                text: std::fs::read_to_string(&path).expect("readable fixture source"),
            });
        }
    }
    files
}

fn scan_at(name: &str, depth: usize) -> ScanOutcome {
    scan_workspace(&load_fixture(name), &AnalysisOptions { taint_depth: depth })
}

/// The join-point fns flagged by nondet-flow-to-sink, by name.
fn flagged_joins(out: &ScanOutcome) -> Vec<String> {
    out.findings
        .iter()
        .filter(|f| f.rule == "nondet-flow-to-sink")
        .map(|f| {
            f.excerpt
                .split("fn ")
                .nth(1)
                .and_then(|s| s.split('(').next())
                .expect("finding anchors on a fn header")
                .to_string()
        })
        .collect()
}

#[test]
fn taint_depth_gates_each_chain() {
    // The fixture's three chains put the source 1, 2 and 3 calls below
    // the join; the sink is always 1 call away.
    assert_eq!(flagged_joins(&scan_at("taint_depth", 1)), ["join_depth1"]);
    assert_eq!(
        flagged_joins(&scan_at("taint_depth", 2)),
        ["join_depth1", "join_depth2"]
    );
    assert_eq!(
        flagged_joins(&scan_at("taint_depth", 3)),
        ["join_depth1", "join_depth2", "join_depth3"]
    );
    // Depth 0 only sees same-fn flows; the fixture has none.
    assert_eq!(flagged_joins(&scan_at("taint_depth", 0)), [] as [&str; 0]);
}

#[test]
fn depth_three_chain_is_printed_in_full() {
    let out = scan_at("taint_depth", 3);
    let f = out
        .findings
        .iter()
        .find(|f| f.rule == "nondet-flow-to-sink" && f.excerpt.contains("join_depth3"))
        .expect("depth-3 flow flagged");
    let chain = f.chain.join("\n");
    for hop in ["join_depth3", "mid3a", "mid3b", "clock_leaf3", "observe"] {
        assert!(chain.contains(hop), "missing hop {hop} in:\n{chain}");
    }
    assert!(chain.contains("Instant::now"), "{chain}");
    assert!(chain.contains("sink: telemetry"), "{chain}");
    assert!(
        chain.contains("crates/core/src/chain.rs"),
        "hops carry file:line — {chain}"
    );
}

#[test]
fn allow_on_intermediate_hop_downgrades_to_allowed_flow() {
    let out = scan_at("allow_hop", 4);
    assert!(
        out.findings.iter().all(|f| f.rule != "nondet-flow-to-sink"),
        "allowed flow still reported as a finding: {:?}",
        out.findings
    );
    assert!(
        out.directive_errors.is_empty(),
        "{:?}",
        out.directive_errors
    );
    assert_eq!(out.allowed_flows.len(), 1, "{:?}", out.allowed_flows);
    let a = &out.allowed_flows[0];
    assert_eq!(a.rule, "nondet-flow-to-sink");
    assert_eq!(a.sink_kind, "telemetry");
    assert!(a.reason.contains("telemetry payload by design"));
    // The chain survives the downgrade; the allowed hop is on it.
    assert!(a.chain.join("\n").contains("mid2"));
}

#[test]
fn fixtures_resolve_their_own_call_graphs() {
    for name in ["taint_depth", "allow_hop"] {
        let out = scan_at(name, 4);
        let g = out.graph_stats.expect("graph pass ran");
        assert!(
            g.resolution_rate() >= 0.95,
            "{name}: resolution rate {:.3}",
            g.resolution_rate()
        );
    }
}
